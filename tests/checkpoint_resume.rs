//! Checkpoint/resume contracts of the sweep verbs.
//!
//! The acceptance criteria this file pins:
//!
//! * A `defend` sweep resumed from a partially persisted checkpoint
//!   produces a report **equal to a fresh uninterrupted run** — the
//!   per-point codec round-trips every `f64` bit-exactly, so the rendered
//!   table is byte-identical too.
//! * The same holds for a `characterize` sweep resumed mid-way.
//! * A checkpoint record that decodes but carries the wrong schema is
//!   recomputed, never trusted — damage costs work, not correctness.
//! * After a resumed run, the checkpoint holds every point, so a second
//!   resume computes nothing.

use std::path::PathBuf;

use amperebleed::characterize::{self, CharacterizeConfig};
use amperebleed::defend::{self, AttackKind, DefendConfig};
use amperebleed::Platform;
use fpga_fabric::ring_oscillator::RoConfig;
use fpga_fabric::virus::VirusConfig;
use sim_rt::Pool;
use sim_store::Checkpoint;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("amperebleed-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn defend_resume_equals_fresh_run() {
    let config = DefendConfig::quick(AttackKind::Covert);
    let fresh = defend::run_with(&config, &Pool::serial()).unwrap();

    let dir = tmpdir("defend");
    let key = config.sweep_key();
    {
        // Simulate an interrupted sweep: only the baseline and the first
        // strength point landed before the drain.
        let partial = Checkpoint::open(&dir, "defend", &key).unwrap();
        partial.put(0, &fresh.baseline.to_value().to_json());
        partial.put(1, &fresh.points[0].to_value().to_json());
    }
    let ckpt = Checkpoint::open(&dir, "defend", &key).unwrap();
    assert_eq!(ckpt.len(), 2);
    let resumed = defend::run_checkpointed(&config, &Pool::new(2), &ckpt).unwrap();

    assert_eq!(resumed, fresh);
    assert_eq!(resumed.render(), fresh.render());
    for (a, b) in resumed.points.iter().zip(&fresh.points) {
        assert_eq!(a.success.to_bits(), b.success.to_bits());
        assert_eq!(a.strength.to_bits(), b.strength.to_bits());
    }
    // The resumed run back-filled the missing points: a second resume
    // decodes everything.
    assert_eq!(ckpt.len(), 1 + config.strengths.len());
    let ckpt = Checkpoint::open(&dir, "defend", &key).unwrap();
    let replayed = defend::run_checkpointed(&config, &Pool::new(8), &ckpt).unwrap();
    assert_eq!(replayed, fresh);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn defend_recomputes_schema_damaged_records() {
    let config = DefendConfig::quick(AttackKind::Covert);
    let fresh = defend::run_with(&config, &Pool::serial()).unwrap();

    // Valid JSON, wrong shape: must be recomputed, not trusted.
    let ckpt = Checkpoint::in_memory();
    ckpt.put(0, r#"{"not":"a point"}"#);
    ckpt.put(2, "42");
    let resumed = defend::run_checkpointed(&config, &Pool::serial(), &ckpt).unwrap();
    assert_eq!(resumed, fresh);
}

#[test]
fn characterize_resume_equals_fresh_run() {
    let factory = |_level: u32| {
        let mut p = Platform::zcu102(1_000);
        p.deploy_virus(VirusConfig::default())?;
        p.deploy_ro_bank(RoConfig::default())?;
        Ok(p)
    };
    let mut cfg = CharacterizeConfig::quick();
    cfg.levels = vec![0, 40, 80, 120, 160];
    cfg.samples_per_level = 120;
    let fresh = characterize::run_parallel(factory, &cfg, &Pool::serial()).unwrap();

    let dir = tmpdir("char");
    let key = cfg.sweep_key(1_000);
    {
        let partial = Checkpoint::open(&dir, "characterize", &key).unwrap();
        // Rows 0 and 3 landed; the rest are missing.
        partial.put(0, &fresh.rows[0].to_value().to_json());
        partial.put(3, &fresh.rows[3].to_value().to_json());
    }
    let ckpt = Checkpoint::open(&dir, "characterize", &key).unwrap();
    let resumed =
        characterize::run_parallel_checkpointed(factory, &cfg, &Pool::new(2), &ckpt).unwrap();
    assert_eq!(resumed, fresh);
    assert_eq!(ckpt.len(), cfg.levels.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_keys_separate_distinct_sweeps() {
    let covert = DefendConfig::quick(AttackKind::Covert);
    let rsa = DefendConfig::quick(AttackKind::Rsa);
    assert_ne!(covert.sweep_key(), rsa.sweep_key());
    let mut reseeded = covert.clone();
    reseeded.seed += 1;
    assert_ne!(covert.sweep_key(), reseeded.sweep_key());
    assert_eq!(
        covert.sweep_key(),
        DefendConfig::quick(AttackKind::Covert).sweep_key()
    );

    let quick = CharacterizeConfig::quick();
    assert_ne!(quick.sweep_key(1), quick.sweep_key(2));
    assert_eq!(quick.sweep_key(1), CharacterizeConfig::quick().sweep_key(1));
}
