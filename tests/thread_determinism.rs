//! Cross-thread-count determinism of the full fingerprinting campaign.
//!
//! The runtime's contract: every parallel stage derives per-job seeds
//! purely from the campaign seed and the job's index, so the corpus, the
//! feature datasets, and the Table III accuracy grid are *byte-identical*
//! whether the work runs on one worker or many. These tests pin that
//! contract end to end — floating-point results are compared through
//! their bit patterns, not with a tolerance.

use amperebleed::fingerprint::{
    build_dataset, collect_corpus_with, evaluate_grid_with, FingerprintConfig, ModelCapture,
    TABLE3_CHANNELS,
};
use dnn_models::ModelArch;
use sim_rt::Pool;

fn victims() -> Vec<ModelArch> {
    let models = dnn_models::zoo();
    ["mobilenet-v1", "resnet-50", "vgg-19", "squeezenet"]
        .iter()
        .map(|n| models.iter().find(|m| &m.name == n).unwrap().clone())
        .collect()
}

fn collect(pool: &Pool) -> (Vec<ModelCapture>, FingerprintConfig) {
    let models = victims();
    let refs: Vec<&ModelArch> = models.iter().collect();
    let config = FingerprintConfig::quick();
    let corpus = collect_corpus_with(&refs, &config, pool).unwrap();
    (corpus, config)
}

/// Every f64 in the corpus, as raw bits, in deterministic order.
fn corpus_bits(corpus: &[ModelCapture]) -> Vec<u64> {
    corpus
        .iter()
        .flat_map(|c| c.traces.iter())
        .flat_map(|t| t.samples.iter().map(|v| v.to_bits()))
        .collect()
}

#[test]
fn corpus_is_byte_identical_at_1_2_and_8_threads() {
    let (serial, config) = collect(&Pool::serial());
    let (two, _) = collect(&Pool::new(2));
    let (eight, _) = collect(&Pool::new(8));
    assert_eq!(serial.len(), 4 * config.traces_per_model);
    assert_eq!(corpus_bits(&serial), corpus_bits(&two));
    assert_eq!(corpus_bits(&serial), corpus_bits(&eight));
    // Labels and names ride along in slot order too.
    for (a, b) in serial.iter().zip(&eight) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.model_name, b.model_name);
    }
}

#[test]
fn feature_datasets_are_byte_identical_across_pools() {
    let (serial, config) = collect(&Pool::serial());
    let (eight, _) = collect(&Pool::new(8));
    for &channel in &TABLE3_CHANNELS {
        let a = build_dataset(&serial, channel, 2.0, config.resample_len).unwrap();
        let b = build_dataset(&eight, channel, 2.0, config.resample_len).unwrap();
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            let bits_a: Vec<u64> = a.features_of(i).iter().map(|v| v.to_bits()).collect();
            let bits_b: Vec<u64> = b.features_of(i).iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits_a, bits_b, "row {i} of {channel:?}");
        }
    }
}

#[test]
fn accuracy_grid_is_identical_at_1_2_and_8_threads() {
    let (corpus, config) = collect(&Pool::serial());
    let durations = [1.0, 2.0];
    let serial = evaluate_grid_with(&corpus, &config, &durations, &Pool::serial()).unwrap();
    let two = evaluate_grid_with(&corpus, &config, &durations, &Pool::new(2)).unwrap();
    let eight = evaluate_grid_with(&corpus, &config, &durations, &Pool::new(8)).unwrap();
    assert_eq!(serial, two);
    assert_eq!(serial, eight);
    // Exact accuracy equality, bitwise: the grids went through identical
    // arithmetic, not merely statistically similar runs.
    for ((_, cells_a), (_, cells_b)) in serial.rows.iter().zip(&eight.rows) {
        for (a, b) in cells_a.iter().zip(cells_b) {
            assert_eq!(a.top1.to_bits(), b.top1.to_bits());
            assert_eq!(a.top5.to_bits(), b.top5.to_bits());
        }
    }
}
