//! Integration tests for the extension scenarios built on top of the
//! paper's evaluation: covert channel, TEE inference, workload
//! reconnaissance, the DRC story, baselines, and the campaign orchestrator.

use amperebleed::campaign::{run as run_campaign, CampaignConfig};
use amperebleed::covert::{bit_error_rate, receive};
use amperebleed::{Channel, CurrentSampler, Platform};
use fpga_fabric::covert::CovertConfig;
use fpga_fabric::drc::{check, Netlist, Violation};
use fpga_fabric::enclave::EnclaveTask;
use fpga_fabric::tdc::TdcConfig;
use fpga_fabric::virus::VirusConfig;
use zynq_soc::{PowerDomain, SimTime};

#[test]
fn covert_channel_round_trip_with_background_noise() {
    // The transmitter shares the fabric with a busy victim: the receiver
    // must still sync (the virus adds a DC offset, not keying-rate energy).
    let payload = b"x51";
    let config = CovertConfig::default();
    let mut p = Platform::zcu102(0xAB);
    let virus = p.deploy_virus(VirusConfig::default()).unwrap();
    virus.activate_groups(30).unwrap();
    p.deploy_covert_transmitter(config, payload).unwrap();
    let rx = receive(&p, &config, payload.len(), SimTime::from_ms(333)).unwrap();
    assert_eq!(
        bit_error_rate(payload, &rx.payload),
        0.0,
        "decoded {:?}",
        String::from_utf8_lossy(&rx.payload)
    );
}

#[test]
fn enclave_activity_visible_next_to_other_tenants() {
    let mut p = Platform::zcu102(0xAC);
    let enclave = p.deploy_enclave().unwrap();
    let sampler = CurrentSampler::unprivileged(&p);
    let mean = |start: SimTime| {
        sampler
            .capture(PowerDomain::FpgaLogic, Channel::Current, start, 28.0, 40)
            .unwrap()
            .mean()
    };
    enclave.run(EnclaveTask::Idle);
    let idle = mean(SimTime::from_ms(40));
    enclave.run(EnclaveTask::MatMul);
    let busy = mean(SimTime::from_secs(5));
    assert!(busy - idle > 200.0, "{idle} -> {busy}");
}

#[test]
fn ro_fails_cloud_drc_but_amperebleed_needs_no_circuit() {
    // The baseline's circuit is rejected by the provider's flow...
    let violations = check(&Netlist::ring_oscillator(7));
    assert!(violations
        .iter()
        .any(|v| matches!(v, Violation::CombinationalLoop { .. })));
    // ...while the sensor attack runs with zero deployed logic.
    let p = Platform::zcu102(0xAD);
    let sampler = CurrentSampler::unprivileged(&p);
    let trace = sampler
        .capture(
            PowerDomain::FpgaLogic,
            Channel::Current,
            SimTime::from_ms(40),
            100.0,
            20,
        )
        .unwrap();
    assert!(trace.mean() > 0.0);
    assert!(p.fabric().deployed().is_empty(), "no attacker bitstream");
}

#[test]
fn tdc_baseline_coexists_with_ro_baseline() {
    let mut p = Platform::zcu102(0xAE);
    p.deploy_virus(VirusConfig::default()).unwrap();
    p.deploy_ro_bank(fpga_fabric::ring_oscillator::RoConfig::default())
        .unwrap();
    p.deploy_tdc(TdcConfig::default()).unwrap();
    let t = SimTime::from_ms(50);
    let ro = p.sample_ro(t).unwrap();
    let tdc = p.sample_tdc(t).unwrap();
    assert!(ro > 0.0);
    assert!(tdc > 0);
}

#[test]
fn minimal_campaign_is_reproducible() {
    let config = CampaignConfig::minimal();
    let a = run_campaign(&config).unwrap();
    let b = run_campaign(&config).unwrap();
    assert_eq!(
        a.characterization.pearson_current,
        b.characterization.pearson_current
    );
    assert_eq!(a.covert_ber, b.covert_ber);
    assert_eq!(a.tee_accuracy, b.tee_accuracy);
    assert_eq!(a.mitigation_effective, b.mitigation_effective);
}

#[test]
fn dpu_runner_queueing_shapes_cpu_load_window() {
    use dpu::runner::DpuRunner;
    use dpu::DpuConfig;
    let models = dnn_models::zoo();
    let vgg = models.iter().find(|m| m.name == "vgg-19").unwrap();
    let runner = DpuRunner::new(vgg, DpuConfig::default(), 5);
    // The victim's 5-second serve window fits only ~peak_throughput * 5
    // requests; later submissions spill past the window.
    let submits: Vec<SimTime> = (0..200).map(|k| SimTime::from_ms(k * 25)).collect();
    let completed = runner.serve(&submits);
    let stats = DpuRunner::stats(&completed);
    assert!(stats.throughput_ips <= runner.peak_throughput_ips() * 1.05);
    let within_5s = completed
        .iter()
        .filter(|r| r.finished_at <= SimTime::from_secs(5))
        .count();
    assert!(within_5s as f64 <= runner.peak_throughput_ips() * 5.0 + 1.0);
}
