//! Determinism and zero-strength-identity contracts of the `defend` verb.
//!
//! The acceptance criteria this file pins:
//!
//! * A defend sweep's rendered report is **byte-identical** for a fixed
//!   `(seed, attack config, defense stack)` at pool widths 1, 2 and 8 —
//!   the sweep points are pure functions of their inputs, so spreading
//!   them across workers cannot change a bit.
//! * With every defense strength at zero, the measured attack success
//!   **exactly** matches the undefended baseline (the stack installs
//!   nothing at strength zero, so the sensing path is the same code).

use amperebleed::covert;
use amperebleed::defend::{run_with, AttackKind, DefendConfig};
use sim_defend::LayerKind;
use sim_rt::Pool;

fn sweep(config: &DefendConfig, pool: &Pool) -> String {
    run_with(config, pool).unwrap().render()
}

#[test]
fn covert_sweep_report_is_byte_identical_at_1_2_and_8_workers() {
    let config = DefendConfig::quick(AttackKind::Covert);
    let serial = sweep(&config, &Pool::serial());
    let two = sweep(&config, &Pool::new(2));
    let eight = sweep(&config, &Pool::new(8));
    assert_eq!(serial, two);
    assert_eq!(serial, eight);
    // The full report structure, not just its rendering.
    let a = run_with(&config, &Pool::serial()).unwrap();
    let b = run_with(&config, &Pool::new(8)).unwrap();
    assert_eq!(a, b);
    for (pa, pb) in a.points.iter().zip(&b.points) {
        assert_eq!(pa.success.to_bits(), pb.success.to_bits());
    }
}

#[test]
fn fingerprint_sweep_report_is_byte_identical_across_pools() {
    let mut config = DefendConfig::quick(AttackKind::Fingerprint);
    // Two points keep the heavier fingerprint sweep affordable in CI.
    config.strengths = vec![0.0, 1.0];
    let serial = sweep(&config, &Pool::serial());
    let eight = sweep(&config, &Pool::new(8));
    assert_eq!(serial, eight);
}

#[test]
fn zero_strength_point_equals_undefended_baseline_exactly() {
    let config = DefendConfig::quick(AttackKind::Covert);
    let report = run_with(&config, &Pool::serial()).unwrap();
    let zero = report.points[0];
    assert_eq!(zero.strength, 0.0);
    assert_eq!(zero.success.to_bits(), report.baseline.success.to_bits());
    // And both match a direct, defend-free run of the attack.
    let (_rx, ber) = covert::round_trip(&config.covert, &config.payload, config.seed).unwrap();
    let direct = amperebleed::defend::bsc_capacity(ber);
    assert_eq!(zero.success.to_bits(), direct.to_bits());
}

#[test]
fn all_zero_strength_sweep_is_flat_at_the_baseline() {
    // A one-point sweep at strength 0 for each attack kind: success must
    // equal the undefended metric bit-for-bit even with every layer kind
    // stacked.
    let mut config = DefendConfig::quick(AttackKind::Covert);
    config.layers = vec![
        LayerKind::Jitter,
        LayerKind::Quantize,
        LayerKind::Noise,
        LayerKind::Throttle,
    ];
    config.strengths = vec![0.0];
    let report = run_with(&config, &Pool::serial()).unwrap();
    assert_eq!(
        report.points[0].success.to_bits(),
        report.baseline.success.to_bits()
    );
    assert!(!report.points[0].blocked);
}
