//! Negative tests for campaign/characterize config validation: bad
//! parameters must come back as `InvalidParameter`, never a panic. These
//! matter doubly now that the serving layer forwards client-supplied
//! overrides straight into these configs.

use amperebleed::campaign::CampaignConfig;
use amperebleed::characterize::{self, CharacterizeConfig};
use amperebleed::fingerprint::{self, FingerprintConfig};
use amperebleed::rsa_attack::{self, RsaAttackConfig};
use amperebleed::{covert, AttackError, Platform};
use fpga_fabric::covert::CovertConfig;
use fpga_fabric::virus::VirusConfig;
use sim_rt::pool::Pool;
use zynq_soc::SimTime;

fn ready_platform(seed: u64) -> Platform {
    let mut p = Platform::zcu102(seed);
    p.deploy_virus(VirusConfig::default()).unwrap();
    p
}

fn assert_invalid<T: std::fmt::Debug>(result: amperebleed::Result<T>, what: &str) {
    match result {
        Err(AttackError::InvalidParameter(_)) => {}
        other => panic!("{what}: expected InvalidParameter, got {other:?}"),
    }
}

#[test]
fn characterize_rejects_zero_sample_count() {
    let p = ready_platform(400);
    let cfg = CharacterizeConfig {
        samples_per_level: 0,
        ..CharacterizeConfig::quick()
    };
    assert_invalid(characterize::run(&p, &cfg), "zero samples_per_level");
}

#[test]
fn characterize_rejects_zero_duration_settle_phase() {
    let p = ready_platform(401);
    let cfg = CharacterizeConfig {
        settle: SimTime::ZERO,
        ..CharacterizeConfig::quick()
    };
    assert_invalid(characterize::run(&p, &cfg), "zero-duration settle");
}

#[test]
fn characterize_rejects_out_of_range_sample_rates() {
    let p = ready_platform(402);
    for rate in [0.0, -1_000.0, f64::NAN, f64::INFINITY] {
        let cfg = CharacterizeConfig {
            sample_rate_hz: rate,
            ..CharacterizeConfig::quick()
        };
        assert_invalid(characterize::run(&p, &cfg), &format!("rate {rate}"));
    }
}

#[test]
fn characterize_parallel_validates_before_spawning_jobs() {
    let cfg = CharacterizeConfig {
        samples_per_level: 0,
        ..CharacterizeConfig::quick()
    };
    let factory = |_level: u32| Ok(ready_platform(403));
    assert_invalid(
        characterize::run_parallel(factory, &cfg, &Pool::serial()),
        "parallel zero samples",
    );
}

#[test]
fn fingerprint_rejects_degenerate_configs() {
    let zero_traces = FingerprintConfig {
        traces_per_model: 0,
        ..FingerprintConfig::quick()
    };
    assert_invalid(
        fingerprint::run_with(&zero_traces, 2, &Pool::serial()),
        "zero traces_per_model",
    );

    let zero_capture = FingerprintConfig {
        capture_seconds: 0.0,
        ..FingerprintConfig::quick()
    };
    assert_invalid(
        fingerprint::run_with(&zero_capture, 2, &Pool::serial()),
        "zero capture_seconds",
    );

    let zero_resample = FingerprintConfig {
        resample_len: 0,
        ..FingerprintConfig::quick()
    };
    assert_invalid(
        fingerprint::run_with(&zero_resample, 2, &Pool::serial()),
        "zero resample_len",
    );

    let one_fold = FingerprintConfig {
        folds: 1,
        ..FingerprintConfig::quick()
    };
    assert_invalid(
        fingerprint::run_with(&one_fold, 2, &Pool::serial()),
        "single fold",
    );

    assert_invalid(
        fingerprint::run_with(&FingerprintConfig::quick(), 0, &Pool::serial()),
        "zero models",
    );
    assert_invalid(
        fingerprint::run_with(&FingerprintConfig::quick(), 10_000, &Pool::serial()),
        "more models than the zoo holds",
    );
}

#[test]
fn rsa_rejects_zero_samples_and_bad_statistics_settings() {
    let zero_samples = RsaAttackConfig {
        samples_per_key: 0,
        ..RsaAttackConfig::quick()
    };
    assert_invalid(rsa_attack::run(&zero_samples), "zero samples_per_key");

    let bad_rate = RsaAttackConfig {
        sample_rate_hz: f64::NAN,
        ..RsaAttackConfig::quick()
    };
    assert_invalid(rsa_attack::run(&bad_rate), "NaN sample rate");

    let bad_z = RsaAttackConfig {
        z_score: 0.0,
        ..RsaAttackConfig::quick()
    };
    assert_invalid(rsa_attack::run(&bad_z), "zero z-score");
}

#[test]
fn covert_round_trip_rejects_empty_payload() {
    assert_invalid(
        covert::round_trip(&CovertConfig::default(), b"", 7),
        "empty payload",
    );
}

#[test]
fn campaign_validate_catches_stage_overrides_up_front() {
    let mut cfg = CampaignConfig::minimal();
    assert!(cfg.validate().is_ok());
    cfg.characterize.samples_per_level = 0;
    assert_invalid(cfg.validate(), "campaign with zero samples_per_level");
    // campaign::run fails fast on the same config, before any capture.
    assert_invalid(
        amperebleed::campaign::run(&cfg),
        "campaign run with bad stage config",
    );
}

#[test]
fn valid_quick_configs_still_pass_validation() {
    assert!(CharacterizeConfig::quick().validate().is_ok());
    assert!(FingerprintConfig::quick().validate().is_ok());
    assert!(RsaAttackConfig::quick().validate().is_ok());
    assert!(CampaignConfig::default().validate().is_ok());
}
