//! End-to-end verification of the Section V mitigation: once the hwmon
//! nodes are root-only, every attack in the suite fails for an
//! unprivileged process, while privileged monitoring still works.

use amperebleed::characterize::{self, CharacterizeConfig};
use amperebleed::mitigation::{restrict_all_sensors, unrestrict_all_sensors};
use amperebleed::{AttackError, Channel, CurrentSampler, Platform};
use fpga_fabric::rsa::{RsaConfig, RsaKey};
use fpga_fabric::virus::VirusConfig;
use hwmon_sim::HwmonError;
use zynq_soc::{PowerDomain, SimTime};

#[test]
fn characterization_fails_under_mitigation() {
    let mut p = Platform::zcu102(200);
    p.deploy_virus(VirusConfig::default()).unwrap();
    restrict_all_sensors(&mut p).unwrap();
    let err = characterize::run(&p, &CharacterizeConfig::quick()).unwrap_err();
    assert!(matches!(
        err,
        AttackError::Hwmon(HwmonError::PermissionDenied(_))
    ));
}

#[test]
fn rsa_sampling_fails_under_mitigation() {
    let mut p = Platform::zcu102(201);
    p.deploy_rsa(
        RsaConfig::default(),
        RsaKey::with_hamming_weight(512, 0).unwrap(),
    )
    .unwrap();
    restrict_all_sensors(&mut p).unwrap();
    let sampler = CurrentSampler::unprivileged(&p);
    let err = sampler
        .capture(
            PowerDomain::FpgaLogic,
            Channel::Current,
            SimTime::from_ms(40),
            1_000.0,
            100,
        )
        .unwrap_err();
    assert!(matches!(
        err,
        AttackError::Hwmon(HwmonError::PermissionDenied(_))
    ));
}

#[test]
fn benign_root_monitoring_survives_mitigation() {
    let mut p = Platform::zcu102(202);
    let virus = p.deploy_virus(VirusConfig::default()).unwrap();
    virus.activate_groups(80).unwrap();
    restrict_all_sensors(&mut p).unwrap();
    // A root performance-monitoring daemon keeps full visibility.
    let root = CurrentSampler::privileged(&p);
    for domain in PowerDomain::ALL {
        let trace = root
            .capture(domain, Channel::Current, SimTime::from_ms(40), 100.0, 20)
            .unwrap();
        assert_eq!(trace.len(), 20);
    }
}

#[test]
fn attack_recovers_after_policy_rollback() {
    // The paper's caveat: the mitigation must stay applied; rolling it
    // back (e.g. a distro reverting permissions) re-opens the channel.
    let mut p = Platform::zcu102(203);
    let virus = p.deploy_virus(VirusConfig::default()).unwrap();
    restrict_all_sensors(&mut p).unwrap();
    unrestrict_all_sensors(&mut p);
    virus.activate_groups(160).unwrap();
    let sampler = CurrentSampler::unprivileged(&p);
    let trace = sampler
        .capture(
            PowerDomain::FpgaLogic,
            Channel::Current,
            SimTime::from_ms(40),
            100.0,
            20,
        )
        .unwrap();
    assert!(trace.mean() > 5_000.0, "attack works again after rollback");
}

#[test]
fn name_attribute_stays_world_readable() {
    // Device discovery (ls + name reads) is not a measurement and stays
    // open — the mitigation only protects the side channel itself.
    let mut p = Platform::zcu102(204);
    restrict_all_sensors(&mut p).unwrap();
    let name = p
        .hwmon()
        .read(
            p.sensor_path(PowerDomain::FpgaLogic, "name"),
            SimTime::ZERO,
            hwmon_sim::Privilege::User,
        )
        .unwrap();
    assert_eq!(name.trim(), "ina226_u79");
}
