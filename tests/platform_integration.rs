//! Cross-crate integration tests of the assembled platform: board model,
//! fabric deployment, PDN, sensors and hwmon working together.

use amperebleed::{Channel, CurrentSampler, Platform};
use dpu::DpuConfig;
use fpga_fabric::rsa::{RsaConfig, RsaKey};
use fpga_fabric::virus::VirusConfig;
use hwmon_sim::Privilege;
use zynq_soc::{PowerDomain, SimTime};

#[test]
fn hwmon_tree_matches_table_two() {
    let p = Platform::zcu102(1);
    let paths = p.hwmon().list();
    assert_eq!(paths.len(), 4 * 6);
    // All four Table II designators are present with correct names.
    let mut names = Vec::new();
    for i in 0..4 {
        let name = p
            .hwmon()
            .read(
                &format!("/sys/class/hwmon/hwmon{i}/name"),
                SimTime::ZERO,
                Privilege::User,
            )
            .unwrap();
        names.push(name.trim().to_owned());
    }
    names.sort();
    assert_eq!(
        names,
        vec!["ina226_u76", "ina226_u77", "ina226_u79", "ina226_u93"]
    );
}

#[test]
fn all_victims_coexist_on_the_fabric() {
    let mut p = Platform::zcu102(2);
    p.deploy_virus(VirusConfig::default()).unwrap();
    p.deploy_rsa(
        RsaConfig::default(),
        RsaKey::with_hamming_weight(512, 0).unwrap(),
    )
    .unwrap();
    p.deploy_dpu(DpuConfig::default()).unwrap();
    let used = p.fabric().used();
    let cap = p.fabric().capacity();
    assert!(used.fits_within(&cap));
    assert!(used.luts > 200_000, "the three designs are substantial");
}

#[test]
fn fabric_rejects_oversubscription() {
    let mut p = Platform::zcu102(3);
    p.deploy_virus(VirusConfig::default()).unwrap();
    // A second 160k-instance array does not fit next to the first.
    let err = p.deploy_virus(VirusConfig::default()).unwrap_err();
    assert!(err.to_string().contains("exceeds"));
}

#[test]
fn sensors_track_ground_truth_within_quantization() {
    let mut p = Platform::zcu102(4);
    let virus = p.deploy_virus(VirusConfig::default()).unwrap();
    virus.activate_groups(100).unwrap();
    let t = SimTime::from_ms(70);
    let sampler = CurrentSampler::unprivileged(&p);
    let measured = sampler
        .read_once(PowerDomain::FpgaLogic, Channel::Current, t)
        .unwrap();
    // Ground truth at the conversion window; allow noise + averaging slack.
    let truth = p.ground_truth_ma(PowerDomain::FpgaLogic, t);
    assert!(
        (measured - truth).abs() < truth * 0.02 + 10.0,
        "hwmon {measured} mA vs ground truth {truth} mA"
    );
}

#[test]
fn stabilizer_keeps_voltage_channel_quiet_under_full_load() {
    let mut p = Platform::zcu102(5);
    let virus = p.deploy_virus(VirusConfig::default()).unwrap();
    let sampler = CurrentSampler::unprivileged(&p);

    virus.activate_groups(0).unwrap();
    let v_idle = sampler
        .capture(
            PowerDomain::FpgaLogic,
            Channel::Voltage,
            SimTime::from_ms(40),
            100.0,
            50,
        )
        .unwrap()
        .mean();
    virus.activate_groups(160).unwrap();
    let v_busy = sampler
        .capture(
            PowerDomain::FpgaLogic,
            Channel::Voltage,
            SimTime::from_secs(10),
            100.0,
            50,
        )
        .unwrap()
        .mean();
    // 6.4 A of swing moves the voltage reading by only a few mV...
    let droop_mv = v_idle - v_busy;
    assert!(droop_mv >= 0.0);
    assert!(droop_mv < 10.0, "droop {droop_mv} mV");
    // ...while the current reading moves by amps.
    virus.activate_groups(0).unwrap();
    let i_idle = sampler
        .capture(
            PowerDomain::FpgaLogic,
            Channel::Current,
            SimTime::from_secs(20),
            100.0,
            50,
        )
        .unwrap()
        .mean();
    virus.activate_groups(160).unwrap();
    let i_busy = sampler
        .capture(
            PowerDomain::FpgaLogic,
            Channel::Current,
            SimTime::from_secs(30),
            100.0,
            50,
        )
        .unwrap()
        .mean();
    assert!(i_busy - i_idle > 5_000.0);
}

#[test]
fn concurrent_attacker_and_victim_threads() {
    // The victim reconfigures virus groups while the attacker samples;
    // the shared platform must stay consistent (no panics, sane readings).
    let mut p = Platform::zcu102(6);
    let virus = p.deploy_virus(VirusConfig::default()).unwrap();
    let p = std::sync::Arc::new(p);

    let victim_virus = std::sync::Arc::clone(&virus);
    // Raw OS threads on purpose: this test exercises genuinely concurrent
    // attacker/victim interleavings, not the deterministic pool.
    // sim-lint: allow(stray-spawn)
    let victim = std::thread::spawn(move || {
        for level in [0u32, 40, 80, 120, 160] {
            victim_virus.activate_groups(level).unwrap();
        }
    });
    let attacker_p = std::sync::Arc::clone(&p);
    // sim-lint: allow(stray-spawn)
    let attacker = std::thread::spawn(move || {
        let sampler = CurrentSampler::unprivileged(&attacker_p);
        let mut last = 0.0;
        for k in 0..50u64 {
            last = sampler
                .read_once(
                    PowerDomain::FpgaLogic,
                    Channel::Current,
                    SimTime::from_ms(40 + k * 35),
                )
                .unwrap();
        }
        last
    });
    victim.join().unwrap();
    let final_reading = attacker.join().unwrap();
    assert!(final_reading > 0.0);
}

#[test]
fn attack_transfers_to_versal_boards() {
    // Table I spans two families; the sensor layout is the same, so the
    // attack works unchanged on a Versal board (and its tighter
    // 0.775-0.825 V band changes nothing for the current channel).
    let board = zynq_soc::board::BoardSpec::by_name("VCK190").unwrap();
    let mut p = Platform::for_board(board, 42);
    let virus = p.deploy_virus(VirusConfig::default()).unwrap();
    let sampler = CurrentSampler::unprivileged(&p);

    virus.activate_groups(0).unwrap();
    let idle = sampler
        .capture(
            PowerDomain::FpgaLogic,
            Channel::Current,
            SimTime::from_ms(40),
            100.0,
            30,
        )
        .unwrap()
        .mean();
    virus.activate_groups(160).unwrap();
    let busy = sampler
        .capture(
            PowerDomain::FpgaLogic,
            Channel::Current,
            SimTime::from_secs(5),
            100.0,
            30,
        )
        .unwrap()
        .mean();
    assert!(
        busy - idle > 5_000.0,
        "attack must transfer: {idle} -> {busy}"
    );

    let v = p.ground_truth_volts(PowerDomain::FpgaLogic, SimTime::from_secs(5));
    assert!(
        p.board().fpga_voltage_band.contains(v),
        "Versal band holds ({v} V)"
    );
}

#[test]
fn per_domain_isolation_of_victim_activity() {
    // An FPGA-only victim must not move the CPU sensors (beyond their own
    // background noise).
    let mut p = Platform::zcu102(7);
    let virus = p.deploy_virus(VirusConfig::default()).unwrap();
    let sampler = CurrentSampler::unprivileged(&p);
    let capture_mean = |start_s: u64, domain| {
        sampler
            .capture(
                domain,
                Channel::Current,
                SimTime::from_secs(start_s),
                28.0,
                60,
            )
            .unwrap()
            .mean()
    };
    virus.activate_groups(0).unwrap();
    let cpu_idle = capture_mean(1, PowerDomain::FullPowerCpu);
    virus.activate_groups(160).unwrap();
    let cpu_busy = capture_mean(10, PowerDomain::FullPowerCpu);
    let rel = (cpu_busy - cpu_idle).abs() / cpu_idle;
    assert!(rel < 0.25, "CPU rail moved {rel} under an FPGA-only victim");
}
