//! Integration tests of the sensing stack: loads -> PDN -> INA226 -> hwmon,
//! focusing on the resolution asymmetries the attack exploits.

use amperebleed::{Channel, CurrentSampler, Platform};
use fpga_fabric::virus::VirusConfig;
use hwmon_sim::Privilege;
use zynq_soc::{PowerDomain, SimTime};

fn fpga_path(p: &Platform, attr: &str) -> String {
    p.sensor_path(PowerDomain::FpgaLogic, attr).to_owned()
}

#[test]
fn default_update_interval_is_35ms() {
    let p = Platform::zcu102(11);
    let s = p
        .hwmon()
        .read(
            &fpga_path(&p, "update_interval"),
            SimTime::ZERO,
            Privilege::User,
        )
        .unwrap();
    assert_eq!(s.trim(), "35");
}

#[test]
fn update_interval_requires_root_and_reconfigures_averaging() {
    let mut p = Platform::zcu102(12);
    let virus = p.deploy_virus(VirusConfig::default()).unwrap();
    virus.activate_groups(80).unwrap();
    let path = fpga_path(&p, "update_interval");
    assert!(p.hwmon().write(&path, "2", Privilege::User).is_err());
    p.hwmon().write(&path, "2", Privilege::Root).unwrap();
    let s = p
        .hwmon()
        .read(&path, SimTime::ZERO, Privilege::User)
        .unwrap();
    assert_eq!(s.trim(), "2");

    // At a 2 ms interval the sensor converts ~17x more often: reads 5 ms
    // apart come from different conversions, each with independent ADC
    // noise. A single pair can still quantize to the same mA, so compare
    // several conversions and require at least one difference.
    let sampler = CurrentSampler::unprivileged(&p);
    let reads: Vec<f64> = (0..8)
        .map(|k| {
            sampler
                .read_once(
                    PowerDomain::FpgaLogic,
                    Channel::Current,
                    SimTime::from_ms(10 + 5 * k),
                )
                .unwrap()
        })
        .collect();
    assert!(
        reads.iter().any(|&v| v != reads[0]),
        "independent conversions must not all agree: {reads:?}"
    );
}

#[test]
fn voltage_reads_are_quantized_to_1_25mv() {
    let mut p = Platform::zcu102(13);
    p.deploy_virus(VirusConfig::default()).unwrap();
    let sampler = CurrentSampler::unprivileged(&p);
    let t = sampler
        .capture(
            PowerDomain::FpgaLogic,
            Channel::Voltage,
            SimTime::from_ms(40),
            28.0,
            100,
        )
        .unwrap();
    // mV readings must be multiples of 1.25 mV within rounding: the set of
    // distinct values is tiny.
    let distinct: std::collections::BTreeSet<i64> =
        t.samples.iter().map(|&v| v.round() as i64).collect();
    assert!(
        distinct.len() <= 5,
        "stabilized rail must show few voltage levels: {distinct:?}"
    );
}

#[test]
fn power_is_current_times_voltage_with_truncation() {
    let mut p = Platform::zcu102(14);
    let virus = p.deploy_virus(VirusConfig::default()).unwrap();
    virus.activate_groups(120).unwrap();
    let sampler = CurrentSampler::unprivileged(&p);
    for k in 0..20u64 {
        let t = SimTime::from_ms(40 + 35 * k);
        let i_ma = sampler
            .read_once(PowerDomain::FpgaLogic, Channel::Current, t)
            .unwrap();
        let v_mv = sampler
            .read_once(PowerDomain::FpgaLogic, Channel::Voltage, t)
            .unwrap();
        let p_uw = sampler
            .read_once(PowerDomain::FpgaLogic, Channel::Power, t)
            .unwrap();
        let implied_uw = i_ma * v_mv;
        // The register pipeline truncates: measured <= implied, within one
        // power LSB (12.5 mW at this calibration) plus rounding slack.
        assert!(
            p_uw <= implied_uw + 30_000.0,
            "power {p_uw} should not exceed I*V {implied_uw}"
        );
        assert!(
            implied_uw - p_uw < 40_000.0,
            "power {p_uw} too far below I*V {implied_uw}"
        );
    }
}

#[test]
fn current_resolution_beats_power_resolution() {
    // Step the victim by ONE group (~40 mA, ~34 mW): the current channel
    // must resolve it crisply; the power channel moves by only 1-3 LSBs.
    let mut p = Platform::zcu102(15);
    let virus = p.deploy_virus(VirusConfig::default()).unwrap();
    let sampler = CurrentSampler::unprivileged(&p);
    let mean = |start: SimTime, ch| {
        sampler
            .capture(PowerDomain::FpgaLogic, ch, start, 28.0, 80)
            .unwrap()
            .mean()
    };
    virus.activate_groups(80).unwrap();
    let i0 = mean(SimTime::from_ms(40), Channel::Current);
    let p0 = mean(SimTime::from_ms(40), Channel::Power);
    virus.activate_groups(81).unwrap();
    let i1 = mean(SimTime::from_secs(10), Channel::Current);
    let p1 = mean(SimTime::from_secs(10), Channel::Power);
    let di = i1 - i0; // mA
    let dp = (p1 - p0) / 1_000.0; // mW
    assert!((25.0..55.0).contains(&di), "current step {di} mA");
    // Power steps by roughly di * 0.85 mW but can only land on 12.5 mW
    // register multiples.
    assert!((10.0..60.0).contains(&dp), "power step {dp} mW");
}

#[test]
fn sensor_noise_is_a_few_lsb() {
    let mut p = Platform::zcu102(16);
    let virus = p.deploy_virus(VirusConfig::default()).unwrap();
    virus.activate_groups(80).unwrap();
    let sampler = CurrentSampler::unprivileged(&p);
    let t = sampler
        .capture(
            PowerDomain::FpgaLogic,
            Channel::Current,
            SimTime::from_ms(40),
            28.0,
            200,
        )
        .unwrap();
    let s = trace_stats::Summary::from_samples(&t.samples).unwrap();
    assert!(s.std_dev > 0.0, "real sensors are never noise-free");
    assert!(
        s.std_dev < 25.0,
        "noise {} mA would swamp the 40 mA signal",
        s.std_dev
    );
}
