//! End-to-end runs of the three attacks on reduced configurations:
//! characterization (Fig. 2), DPU fingerprinting (Table III) and RSA
//! Hamming-weight recovery (Fig. 4).

use amperebleed::characterize::{self, CharacterizeConfig};
use amperebleed::fingerprint::{
    collect_corpus, evaluate_grid, FingerprintConfig, Fingerprinter, SensorChannel, TABLE3_CHANNELS,
};
use amperebleed::rsa_attack::{self, RsaAttackConfig};
use amperebleed::{Channel, CurrentSampler, Platform};
use dnn_models::zoo;
use dpu::DpuConfig;
use fpga_fabric::ring_oscillator::RoConfig;
use fpga_fabric::virus::VirusConfig;
use zynq_soc::{PowerDomain, SimTime};

#[test]
fn characterization_beats_ro_baseline_by_two_orders() {
    let mut p = Platform::zcu102(100);
    p.deploy_virus(VirusConfig::default()).unwrap();
    p.deploy_ro_bank(RoConfig::default()).unwrap();
    let report = characterize::run(&p, &CharacterizeConfig::quick()).unwrap();

    assert!(report.pearson_current > 0.995);
    assert!(report.pearson_power > 0.995);
    assert!(report.pearson_ro.unwrap().abs() > 0.95);
    let ratio = report.variation_ratio_vs_ro.unwrap();
    assert!(
        ratio > 100.0,
        "current variation must dwarf RO variation (got {ratio}x)"
    );
}

#[test]
fn fingerprinting_identifies_figure_three_models() {
    // The six models shown in Figure 3.
    let models = zoo();
    let six: Vec<&dnn_models::ModelArch> = [
        "mobilenet-v1",
        "squeezenet",
        "efficientnet-lite0",
        "inception-v3",
        "resnet-50",
        "vgg-19",
    ]
    .iter()
    .map(|n| models.iter().find(|m| &m.name == n).unwrap())
    .collect();
    let config = FingerprintConfig::quick();
    let corpus = collect_corpus(&six, &config).unwrap();
    let grid = evaluate_grid(&corpus, &config, &[1.0, 2.0]).unwrap();

    let fpga_current = SensorChannel {
        domain: PowerDomain::FpgaLogic,
        channel: Channel::Current,
    };
    let best = grid.cell(fpga_current, 2.0).unwrap();
    assert!(
        best.top1 > 0.8,
        "FPGA current should fingerprint 6 models nearly perfectly ({})",
        best.top1
    );
    assert!(best.top1 > grid.chance() * 3.0);

    // Longer captures help (or at least do not hurt much).
    let short = grid.cell(fpga_current, 1.0).unwrap();
    assert!(best.top1 >= short.top1 - 0.1);

    // Voltage is the weakest of the six rows.
    let voltage = grid
        .cell(
            SensorChannel {
                domain: PowerDomain::FpgaLogic,
                channel: Channel::Voltage,
            },
            2.0,
        )
        .unwrap();
    for &sc in &TABLE3_CHANNELS {
        let cell = grid.cell(sc, 2.0).unwrap();
        assert!(
            voltage.top1 <= cell.top1 + 1e-9,
            "voltage ({}) should not beat {sc} ({})",
            voltage.top1,
            cell.top1
        );
    }
}

#[test]
fn online_attack_on_unseen_capture() {
    let models = zoo();
    let four: Vec<&dnn_models::ModelArch> = ["mobilenet-v1", "resnet-50", "vgg-19", "densenet-121"]
        .iter()
        .map(|n| models.iter().find(|m| &m.name == n).unwrap())
        .collect();
    let config = FingerprintConfig::quick();
    let corpus = collect_corpus(&four, &config).unwrap();
    let fp = Fingerprinter::train(
        &corpus,
        SensorChannel {
            domain: PowerDomain::FpgaLogic,
            channel: Channel::Current,
        },
        &config,
    )
    .unwrap();

    // A black-box victim on a platform seed never seen in training.
    let mut hits = 0;
    for (i, victim) in four.iter().enumerate() {
        let mut platform = Platform::zcu102(0xBEEF + i as u64);
        let dpu = platform.deploy_dpu(DpuConfig::default()).unwrap();
        dpu.load_model(victim);
        let sampler = CurrentSampler::unprivileged(&platform);
        let trace = sampler
            .capture(
                PowerDomain::FpgaLogic,
                Channel::Current,
                SimTime::from_ms(40),
                1_000.0 / 35.0,
                57,
            )
            .unwrap();
        if fp.identify(&trace).unwrap() == victim.name {
            hits += 1;
        }
    }
    assert!(hits >= 3, "online attack hit only {hits}/4");
}

#[test]
fn rsa_hamming_weight_recovery() {
    let report = rsa_attack::run(&RsaAttackConfig::quick()).unwrap();
    // Current: every group separable; power: strictly fewer groups than
    // current on the full 17-key sweep (quick sweep uses 5 widely spaced
    // keys, so power may still separate all of them — check ordering only).
    assert!(report.current_separates_all());
    assert!(
        report.power_separability.distinguishable <= report.current_separability.distinguishable
    );
    // Mean current monotone in weight.
    let means: Vec<f64> = report
        .observations
        .iter()
        .map(|o| o.current_ma.mean)
        .collect();
    for w in means.windows(2) {
        assert!(w[1] > w[0]);
    }
}

#[test]
fn rsa_power_channel_collapses_adjacent_groups() {
    // Three adjacent paper keys (64 bits apart, ~8 mA / ~7 mW apart):
    // current separates them, the 25 mW power LSB does not.
    let config = RsaAttackConfig {
        hamming_weights: vec![448, 512, 576],
        samples_per_key: 6_000,
        ..RsaAttackConfig::quick()
    };
    let report = rsa_attack::run(&config).unwrap();
    assert_eq!(report.current_separability.distinguishable, 3);
    assert!(
        report.power_separability.distinguishable < 3,
        "power should merge adjacent groups, got {}",
        report.power_separability.distinguishable
    );
}
