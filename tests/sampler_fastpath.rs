//! Correctness pins for the zero-allocation sampling fast path.
//!
//! The operating-point cache, the latched-conversion memoization, the
//! typed hwmon read path and the batched three-channel capture are all
//! pure performance work: none of them may move a single bit of any
//! trace. These tests pin that contract three ways:
//!
//! * **Golden bits** — traces captured before the fast path existed,
//!   hard-coded as raw `f64` bit patterns. The rewritten stack must
//!   reproduce them exactly.
//! * **Typed vs. string equality** — randomized captures through the
//!   typed handle path must match a hand-rolled loop over the legacy
//!   string API byte for byte (on identically seeded platforms — reads
//!   advance sensor RNG, so each side gets its own platform).
//! * **Thread-count determinism** — captures fanned out through the
//!   runtime pool are byte-identical at 1, 2 and 8 workers.

use amperebleed::{Channel, CurrentSampler, Platform};
use fpga_fabric::virus::VirusConfig;
use hwmon_sim::Privilege;
use sim_rt::Pool;
use zynq_soc::{PowerDomain, SimTime};

/// The Figure 2 capture scene every golden below uses: ZCU102 seed 42,
/// default virus with 80 of 160 groups active.
fn virus_platform(seed: u64, groups: u32) -> Platform {
    let mut p = Platform::zcu102(seed);
    let virus = p.deploy_virus(VirusConfig::default()).unwrap();
    virus.activate_groups(groups).unwrap();
    p
}

const START: SimTime = SimTime::from_nanos(40_000_000);
const RATE_35MS: f64 = 1.0 / 0.035;

/// `capture` output as raw bits.
fn capture_bits(p: &Platform, channel: Channel, rate_hz: f64, count: usize) -> Vec<u64> {
    CurrentSampler::unprivileged(p)
        .capture(PowerDomain::FpgaLogic, channel, START, rate_hz, count)
        .unwrap()
        .samples
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

// Recorded from the pre-fast-path stack (string reads, one conversion
// per attribute access, no caches), zcu102(42) + virus at 80 groups,
// FpgaLogic, start 40 ms.
const GOLDEN_CURRENT_35MS_8: [u64; 8] = [
    0x40afea0000000000,
    0x40aff40000000000,
    0x40aff40000000000,
    0x40afea0000000000,
    0x40afea0000000000,
    0x40afea0000000000,
    0x40aff40000000000,
    0x40afea0000000000,
];
const GOLDEN_VOLTAGE_35MS_8: [u64; 8] = [
    0x408ad00000000000,
    0x408ad00000000000,
    0x408ad00000000000,
    0x408ad80000000000,
    0x408ad80000000000,
    0x408ad00000000000,
    0x408ad00000000000,
    0x408ad00000000000,
];
const GOLDEN_POWER_35MS_8: [u64; 8] = [0x414ab3f000000000; 8];
const GOLDEN_CURRENT_1KHZ_16: [u64; 16] = [0x40afea0000000000; 16];
/// zcu102(7), no victim deployed, DDR rail.
const GOLDEN_DDR_QUIET_8: [u64; 8] = [0x4061800000000000; 8];

#[test]
fn golden_current_trace_is_bit_exact() {
    let p = virus_platform(42, 80);
    assert_eq!(
        capture_bits(&p, Channel::Current, RATE_35MS, 8),
        GOLDEN_CURRENT_35MS_8
    );
}

#[test]
fn golden_voltage_trace_is_bit_exact() {
    let p = virus_platform(42, 80);
    assert_eq!(
        capture_bits(&p, Channel::Voltage, RATE_35MS, 8),
        GOLDEN_VOLTAGE_35MS_8
    );
}

#[test]
fn golden_power_trace_is_bit_exact() {
    let p = virus_platform(42, 80);
    assert_eq!(
        capture_bits(&p, Channel::Power, RATE_35MS, 8),
        GOLDEN_POWER_35MS_8
    );
}

#[test]
fn golden_value_hold_trace_is_bit_exact() {
    let p = virus_platform(42, 80);
    assert_eq!(
        capture_bits(&p, Channel::Current, 1_000.0, 16),
        GOLDEN_CURRENT_1KHZ_16
    );
}

#[test]
fn golden_quiet_ddr_trace_is_bit_exact() {
    let p = Platform::zcu102(7);
    let bits: Vec<u64> = CurrentSampler::unprivileged(&p)
        .capture(PowerDomain::Ddr, Channel::Current, START, RATE_35MS, 8)
        .unwrap()
        .samples
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(bits, GOLDEN_DDR_QUIET_8);
}

#[test]
fn legacy_string_api_still_matches_goldens() {
    // The string API is now a wrapper over the typed path; prove the
    // wrapper itself did not move.
    let p = virus_platform(42, 80);
    let path = p.sensor_path(PowerDomain::FpgaLogic, "curr1_input");
    let period = SimTime::from_secs_f64(0.035);
    for (k, &expected) in GOLDEN_CURRENT_35MS_8.iter().enumerate() {
        let t = START + SimTime::from_nanos(period.as_nanos() * k as u64);
        let v: f64 = p
            .hwmon()
            .read(path, t, Privilege::User)
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert_eq!(v.to_bits(), expected, "sample {k}");
    }
}

#[test]
fn batched_all_channels_matches_standalone_goldens() {
    // One conversion per boundary serves all three channels; since a
    // standalone capture converts the same boundaries in the same order,
    // every channel of the batched capture reproduces the standalone
    // goldens exactly.
    let p = virus_platform(42, 80);
    let [c, v, w] = CurrentSampler::unprivileged(&p)
        .capture_all_channels(PowerDomain::FpgaLogic, START, RATE_35MS, 8)
        .unwrap();
    let bits = |t: &amperebleed::Trace| t.samples.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&c), GOLDEN_CURRENT_35MS_8);
    assert_eq!(bits(&v), GOLDEN_VOLTAGE_35MS_8);
    assert_eq!(bits(&w), GOLDEN_POWER_35MS_8);
}

#[test]
fn value_hold_reads_take_the_lock_free_fast_path() {
    let before = obs::counter!("sampler.reads.held_fastpath").get();
    let p = virus_platform(42, 80);
    // 16 samples at 1 kHz inside one 35 ms window: 1 conversion, >= 15
    // held reads served from the latched integers.
    let _ = capture_bits(&p, Channel::Current, 1_000.0, 16);
    let after = obs::counter!("sampler.reads.held_fastpath").get();
    assert!(
        after - before >= 15,
        "held fast path not taken: {before} -> {after}"
    );
}

sim_rt::prop_check! {
    /// The typed handle path must equal a hand-rolled legacy string-API
    /// loop byte for byte, for any rate, count, update interval and
    /// channel.
    fn typed_capture_matches_string_capture(
        rate_hz in 1.0f64..20_000.0,
        count in 1usize..30,
        interval_ms in 2u64..36,
        channel_idx in 0usize..3,
    ) {
        let channel = Channel::ALL[channel_idx];
        let a = virus_platform(42, 80);
        let b = virus_platform(42, 80);
        for p in [&a, &b] {
            p.hwmon()
                .write(
                    p.sensor_path(PowerDomain::FpgaLogic, "update_interval"),
                    &interval_ms.to_string(),
                    Privilege::Root,
                )
                .unwrap();
        }
        let trace = CurrentSampler::unprivileged(&a)
            .capture(PowerDomain::FpgaLogic, channel, START, rate_hz, count)
            .unwrap();
        let path = b.sensor_path(PowerDomain::FpgaLogic, channel.attribute());
        for (k, sample) in trace.samples.iter().enumerate() {
            let t = START + SimTime::from_nanos(trace.period.as_nanos() * k as u64);
            let v: f64 = b
                .hwmon()
                .read(path, t, Privilege::User)
                .unwrap()
                .trim()
                .parse()
                .unwrap();
            assert_eq!(sample.to_bits(), v.to_bits(), "sample {k} of {channel}");
        }
    }

    /// The operating-point cache may never change the physics: ground
    /// truth after a sequence of cached reads and control changes equals
    /// ground truth computed fresh on an identically seeded platform.
    fn op_cache_never_changes_ground_truth(
        ns in 1_000_000u64..1_000_000_000u64,
        g1 in 0u32..161,
        g2 in 0u32..161,
        domain_idx in 0usize..4,
    ) {
        let t = SimTime::from_nanos(ns);
        let domain = PowerDomain::ALL[domain_idx];

        let a = virus_platform(42, g1);
        // Populate the cache at g1, then change control state.
        let warm = a.ground_truth_volts(domain, t);
        assert_eq!(warm.to_bits(), a.ground_truth_volts(domain, t).to_bits());
        a.virus().unwrap().activate_groups(g2).unwrap();
        let after_change = a.ground_truth_volts(domain, t);

        // Fresh platform that only ever saw the final control state.
        let b = virus_platform(42, g1);
        b.virus().unwrap().activate_groups(g2).unwrap();
        assert_eq!(after_change.to_bits(), b.ground_truth_volts(domain, t).to_bits());
        assert_eq!(
            a.ground_truth_ma(domain, t).to_bits(),
            b.ground_truth_ma(domain, t).to_bits()
        );
    }
}

/// Eight independent capture jobs (mixed domains and rates), fanned out
/// through a pool: per-job platforms are derived from the job seed, so
/// the result must not depend on the worker count.
fn pooled_capture_bits(pool: &Pool) -> Vec<Vec<u64>> {
    let jobs: Vec<usize> = (0..8).collect();
    pool.par_map_seeded(1234, &jobs, |seed, i, _| {
        let p = virus_platform(seed, (i as u32 * 20) % 161);
        let domain = PowerDomain::ALL[i % 4];
        let rate = if i % 2 == 0 { RATE_35MS } else { 1_000.0 };
        CurrentSampler::unprivileged(&p)
            .capture(domain, Channel::Current, START, rate, 24)
            .unwrap()
            .samples
            .iter()
            .map(|v| v.to_bits())
            .collect()
    })
}

#[test]
fn pooled_captures_are_byte_identical_at_1_2_and_8_threads() {
    let serial = pooled_capture_bits(&Pool::serial());
    assert_eq!(serial, pooled_capture_bits(&Pool::new(2)));
    assert_eq!(serial, pooled_capture_bits(&Pool::new(8)));
}
