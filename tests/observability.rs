//! Observability of the full stack: the minimal campaign must emit sane
//! counters through [`obs`], the JSONL sink must produce parseable rows,
//! and — the contract that matters most — instrumentation must not
//! perturb the deterministic results pinned by `thread_determinism.rs`.

use std::sync::{Arc, Mutex, MutexGuard};

use amperebleed::campaign::{run, CampaignConfig};
use amperebleed::fingerprint::{collect_corpus_with, FingerprintConfig, ModelCapture};
use dnn_models::ModelArch;
use obs::{Level, MemorySink, Sink};
use sim_rt::Pool;

/// These tests mutate the process-global filter and sink list; serialize
/// them so the default multi-threaded test runner cannot interleave.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Routes events to a fresh [`MemorySink`] only (silences stderr), runs
/// `f` at the given level, then restores the default `warn` filter.
fn with_memory_sink<T>(level: Level, f: impl FnOnce() -> T) -> (T, Arc<MemorySink>) {
    obs::init();
    obs::clear_sinks();
    let sink = Arc::new(MemorySink::new());
    obs::install_sink(Arc::clone(&sink) as Arc<dyn Sink>);
    obs::set_level(Some(level));
    let out = f();
    obs::set_level(Some(Level::Warn));
    obs::clear_sinks();
    (out, sink)
}

#[test]
fn minimal_campaign_emits_sane_counters_and_no_errors() {
    let _guard = guard();
    let (report, sink) = with_memory_sink(Level::Info, || {
        run(&CampaignConfig::minimal()).expect("minimal campaign runs")
    });

    // The embedded snapshot carries real traffic from every layer.
    let m = &report.metrics;
    assert!(m.counter("sampler.reads.current").unwrap_or(0) > 0);
    assert!(m.counter("ina226.conversions").unwrap_or(0) > 0);
    assert!(m.counter("hwmon.fs.reads").unwrap_or(0) > 0);
    assert!(m.counter("dpu.model_loads").unwrap_or(0) > 0);
    assert!(m.counter("rforest.fits").unwrap_or(0) > 0);
    let capture = m
        .histogram("sampler.capture.ns")
        .expect("capture latency histogram present");
    assert!(capture.count > 0);
    assert!(capture.p99 >= capture.p50);
    // Pool telemetry rides along as gauges.
    assert!(m.gauge("pool.global.jobs_completed").unwrap_or(0.0) > 0.0);

    // Nothing in a healthy campaign reaches the error level.
    assert_eq!(m.counter("obs.events.error").unwrap_or(0), 0);

    // The campaign lifecycle events reached the sink, sim-stamped.
    let events = sink.events();
    let campaign: Vec<_> = events
        .iter()
        .filter(|e| e.target == "core.campaign")
        .collect();
    assert!(campaign.iter().any(|e| e.message == "campaign started"));
    assert!(campaign.iter().any(|e| e.message == "campaign finished"));

    // Phase timings and the profile table round-trip the same data.
    assert_eq!(report.phase_timings.len(), 6);
    let table = report.profile_table();
    assert!(table.contains("phase timings"));
    assert!(table.contains("sampler.capture.ns"));

    // Exporters accept the snapshot: one row per metric, uniform schema.
    let jsonl = amperebleed::export::metrics_to_jsonl(m);
    assert_eq!(jsonl.lines().count(), m.len());
    for line in jsonl.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"name\":"), "{line}");
        assert!(line.contains("\"kind\":"), "{line}");
    }
    let csv = amperebleed::export::metrics_to_csv(m);
    assert_eq!(csv.lines().count(), 1 + m.len());
}

#[test]
fn jsonl_sink_writes_one_valid_object_per_event() {
    let _guard = guard();
    let path = std::env::temp_dir().join(format!("amperebleed_obs_{}.jsonl", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path");

    obs::init();
    obs::clear_sinks();
    let sink = obs::JsonlSink::create(path_str).expect("temp file opens");
    obs::install_sink(Arc::new(sink));
    obs::set_level(Some(Level::Debug));
    obs::info!("obs.test", sim = 1_500_000u64, "first"; "k" => 1, "tag" => "a");
    obs::debug!("obs.test", "second");
    obs::trace!("obs.test", "filtered out");
    obs::set_level(Some(Level::Warn));
    obs::flush();
    obs::clear_sinks();

    let body = std::fs::read_to_string(&path).expect("trace file readable");
    let _ = std::fs::remove_file(&path);
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(
        lines.len(),
        2,
        "trace-level event must be filtered:\n{body}"
    );
    assert!(lines[0].contains("\"message\":\"first\""), "{}", lines[0]);
    assert!(lines[0].contains("\"sim_ns\":1500000"), "{}", lines[0]);
    assert!(lines[0].contains("\"k\":1"), "{}", lines[0]);
    assert!(lines[1].contains("\"level\":\"debug\""), "{}", lines[1]);
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }
}

fn victims() -> Vec<ModelArch> {
    let models = dnn_models::zoo();
    ["mobilenet-v1", "resnet-50"]
        .iter()
        .map(|n| models.iter().find(|m| &m.name == n).unwrap().clone())
        .collect()
}

fn corpus_bits(corpus: &[ModelCapture]) -> Vec<u64> {
    corpus
        .iter()
        .flat_map(|c| c.traces.iter())
        .flat_map(|t| t.samples.iter().map(|v| v.to_bits()))
        .collect()
}

#[test]
fn trace_level_instrumentation_does_not_perturb_determinism() {
    let _guard = guard();
    let models = victims();
    let refs: Vec<&ModelArch> = models.iter().collect();
    let config = FingerprintConfig::quick();

    // Quietest possible run as the reference.
    let (baseline, _) = with_memory_sink(Level::Error, || {
        collect_corpus_with(&refs, &config, &Pool::serial()).unwrap()
    });
    // Loudest possible run: trace-level events captured in memory, metrics
    // hot on every sensor read, work-stealing pool. Results must be
    // byte-identical — instrumentation never touches an RNG stream.
    let (noisy, sink) = with_memory_sink(Level::Trace, || {
        collect_corpus_with(&refs, &config, &Pool::new(4)).unwrap()
    });
    assert!(
        sink.events().iter().any(|e| e.target == "hwmon.fs"),
        "trace level must actually exercise the event path"
    );
    assert_eq!(corpus_bits(&baseline), corpus_bits(&noisy));
}
