#!/usr/bin/env bash
# Offline CI gate for the AmpereBleed reproduction.
#
# The workspace has zero registry dependencies (everything lives under
# crates/, anchored by the crates/sim-rt runtime), so every step below
# runs with --offline and needs nothing but a Rust toolchain.
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

# Every temp file and background process any gate creates is registered
# here, so one EXIT trap cleans up no matter which gate fails.
cleanup_files=()
cleanup_pids=()
cleanup() {
    for pid in "${cleanup_pids[@]+"${cleanup_pids[@]}"}"; do
        kill "$pid" 2>/dev/null || true
    done
    for f in "${cleanup_files[@]+"${cleanup_files[@]}"}"; do
        rm -rf "$f"
    done
}
trap cleanup EXIT

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> sim-lint (workspace invariants)"
cargo run --offline -q -p sim-lint

echo "==> sim-lint self-test (each seeded violation must fail the gate)"
# One seeded fixture per rule family: the original per-file corpus plus
# one per cross-file rule. A gate that cannot fail is not a gate.
lint_selftest() {
    local rule="$1"
    shift
    if cargo run --offline -q -p sim-lint -- "$@" >/dev/null 2>&1; then
        echo "ci.sh: sim-lint passed the seeded $rule fixture; the gate is broken" >&2
        exit 1
    fi
    local json
    json="$(cargo run --offline -q -p sim-lint -- --json "$@" || true)"
    echo "$json" | grep -q "\"rule\":\"$rule\"" || {
        echo "ci.sh: sim-lint --json emitted no $rule rows for its seeded fixture" >&2
        exit 1
    }
}
lint_selftest wall-clock crates/sim-lint/tests/fixtures/seeded
lint_selftest lock-order \
    crates/sim-lint/tests/fixtures/lock_cycle/a \
    crates/sim-lint/tests/fixtures/lock_cycle/b
lint_selftest panic-path crates/sim-lint/tests/fixtures/panic_path
lint_selftest metric-name-drift crates/sim-lint/tests/fixtures/metric_drift
lint_selftest stale-waiver crates/sim-lint/tests/fixtures/stale_waiver

echo "==> cargo clippy (warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --release --workspace

echo "==> sim-lint release run (lint-report artifact, < 2 s wall time)"
# The release binary relints the whole workspace: its --json output is
# published as the lint-report artifact, and the run doubles as the
# perf gate — a full two-pass workspace analysis must stay under 2 s.
lint_report="lint-report.jsonl"
lint_t0="$(date +%s%N)"
./target/release/sim-lint --json >"$lint_report" || {
    echo "ci.sh: release sim-lint found diagnostics:" >&2
    cat "$lint_report" >&2
    exit 1
}
lint_elapsed_ms=$(( ($(date +%s%N) - lint_t0) / 1000000 ))
echo "    workspace lint in ${lint_elapsed_ms} ms -> $lint_report"
if [ "$lint_elapsed_ms" -ge 2000 ]; then
    echo "ci.sh: workspace lint took ${lint_elapsed_ms} ms (gate: < 2000 ms)" >&2
    exit 1
fi

echo "==> cargo test"
cargo test --offline --workspace -q

echo "==> cargo doc (sim-obs)"
cargo doc --offline --no-deps -p sim-obs

echo "==> observability smoke (trace-level events + JSONL sink)"
trace_file="$(mktemp)"
cleanup_files+=("$trace_file")
AMPEREBLEED_LOG=trace AMPEREBLEED_TRACE_FILE="$trace_file" \
    cargo run --offline --release --example quickstart >/dev/null 2>&1
if ! [ -s "$trace_file" ]; then
    echo "ci.sh: trace-level run left $trace_file empty" >&2
    exit 1
fi
head -n 1 "$trace_file" | grep -q '"level":' || {
    echo "ci.sh: trace file rows are not obs events" >&2
    exit 1
}
echo "    $(wc -l < "$trace_file") events traced"

echo "==> sampler fast-path smoke (bench --quick)"
fastpath_artifact="crates/bench/BENCH_sampler_fastpath.quick.json"
rm -f "$fastpath_artifact"
cargo bench --offline --bench sampler_fastpath -- --quick
if ! [ -s "$fastpath_artifact" ]; then
    echo "ci.sh: sampler_fastpath smoke left no artifact" >&2
    exit 1
fi
grep -q '"all_channels_fresh"' "$fastpath_artifact" || {
    echo "ci.sh: $fastpath_artifact is missing the headline row" >&2
    exit 1
}

echo "==> serve throughput smoke (bench --quick)"
serve_artifact="crates/bench/BENCH_serve_throughput.quick.json"
rm -f "$serve_artifact"
cargo bench --offline --bench serve_throughput -- --quick
if ! [ -s "$serve_artifact" ]; then
    echo "ci.sh: serve_throughput smoke left no artifact" >&2
    exit 1
fi
grep -q '"farm_req_per_sec"' "$serve_artifact" || {
    echo "ci.sh: $serve_artifact is missing the headline row" >&2
    exit 1
}

echo "==> store hit latency smoke (bench --quick)"
store_artifact="crates/bench/BENCH_store_hit_latency.quick.json"
rm -f "$store_artifact"
cargo bench --offline --bench store_hit_latency -- --quick
if ! [ -s "$store_artifact" ]; then
    echo "ci.sh: store_hit_latency smoke left no artifact" >&2
    exit 1
fi
grep -q '"warm_ms_per_req"' "$store_artifact" || {
    echo "ci.sh: $store_artifact is missing the headline row" >&2
    exit 1
}

echo "==> serve smoke (ephemeral port, one farm_client request, clean drain)"
serve_log="$(mktemp)"
cleanup_files+=("$serve_log")
cargo run --offline --release -p sim-serve --bin serve -- \
    --addr 127.0.0.1:0 --boards 2 >"$serve_log" 2>&1 &
serve_pid=$!
cleanup_pids+=("$serve_pid")
serve_addr=""
for _ in $(seq 1 100); do
    serve_addr="$(sed -n 's/^listening on \([0-9.:]*\) .*/\1/p' "$serve_log")"
    [ -n "$serve_addr" ] && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "ci.sh: serve exited before binding:" >&2
        cat "$serve_log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$serve_addr" ]; then
    echo "ci.sh: serve never reported its address:" >&2
    cat "$serve_log" >&2
    exit 1
fi
cargo run --offline --release --example farm_client -- "$serve_addr" --shutdown
wait "$serve_pid" || {
    echo "ci.sh: serve exited non-zero after drain:" >&2
    cat "$serve_log" >&2
    exit 1
}
grep -q '^serve: clean shutdown$' "$serve_log" || {
    echo "ci.sh: serve did not report a clean drain:" >&2
    cat "$serve_log" >&2
    exit 1
}

echo "==> defend smoke (ephemeral port, one-point sweep through serve)"
defend_log="$(mktemp)"
cleanup_files+=("$defend_log")
cargo run --offline --release -p sim-serve --bin serve -- \
    --addr 127.0.0.1:0 --boards 1 >"$defend_log" 2>&1 &
defend_pid=$!
cleanup_pids+=("$defend_pid")
defend_addr=""
for _ in $(seq 1 100); do
    defend_addr="$(sed -n 's/^listening on \([0-9.:]*\) .*/\1/p' "$defend_log")"
    [ -n "$defend_addr" ] && break
    if ! kill -0 "$defend_pid" 2>/dev/null; then
        echo "ci.sh: defend-smoke serve exited before binding:" >&2
        cat "$defend_log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$defend_addr" ]; then
    echo "ci.sh: defend-smoke serve never reported its address:" >&2
    cat "$defend_log" >&2
    exit 1
fi
defend_out="$(cargo run --offline --release --example farm_client -- "$defend_addr" \
    --verb defend --seed 11 \
    --config '{"attack": "covert", "layers": ["noise", "throttle"], "strengths": [0.6], "payload": "ci"}' \
    --shutdown)"
echo "$defend_out" | grep -q '"auc"' || {
    echo "ci.sh: defend smoke produced no sweep report:" >&2
    echo "$defend_out" >&2
    exit 1
}
wait "$defend_pid" || {
    echo "ci.sh: defend-smoke serve exited non-zero after drain:" >&2
    cat "$defend_log" >&2
    exit 1
}

echo "==> store smoke (serve twice over one store dir; warm run replays byte-identically)"
store_dir="$(mktemp -d)"
cleanup_files+=("$store_dir")
store_request() {
    # One request against a fresh serve over $store_dir; prints the
    # client transcript, leaves the serve log in $1.
    local log="$1"
    cargo run --offline --release -p sim-serve --bin serve -- \
        --addr 127.0.0.1:0 --boards 1 --store-dir "$store_dir" >"$log" 2>&1 &
    local pid=$!
    cleanup_pids+=("$pid")
    local addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^listening on \([0-9.:]*\) .*/\1/p' "$log")"
        [ -n "$addr" ] && break
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "ci.sh: store-smoke serve exited before binding:" >&2
            cat "$log" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "ci.sh: store-smoke serve never reported its address:" >&2
        cat "$log" >&2
        exit 1
    fi
    cargo run --offline --release --example farm_client -- "$addr" \
        --verb quickstart --seed 41 \
        --config '{"samples_per_level": 60}' \
        --shutdown
    wait "$pid" || {
        echo "ci.sh: store-smoke serve exited non-zero after drain:" >&2
        cat "$log" >&2
        exit 1
    }
}
store_log_cold="$(mktemp)"
store_log_warm="$(mktemp)"
store_out_cold="$(mktemp)"
store_out_warm="$(mktemp)"
cleanup_files+=("$store_log_cold" "$store_log_warm" "$store_out_cold" "$store_out_warm")
# Run outside command substitution so the serve pids register with the
# cleanup trap.
store_request "$store_log_cold" >"$store_out_cold"
store_request "$store_log_warm" >"$store_out_warm"
store_cold_out="$(cat "$store_out_cold")"
store_warm_out="$(cat "$store_out_warm")"
echo "$store_cold_out" | grep -q ', cached)' && {
    echo "ci.sh: cold store run claimed a cache hit:" >&2
    echo "$store_cold_out" >&2
    exit 1
}
echo "$store_warm_out" | grep -q ', cached)' || {
    echo "ci.sh: warm store run was not served from the store:" >&2
    echo "$store_warm_out" >&2
    exit 1
}
store_cold_result="$(echo "$store_cold_out" | grep '^result: ')"
store_warm_result="$(echo "$store_warm_out" | grep '^result: ')"
if [ -z "$store_cold_result" ] || [ "$store_cold_result" != "$store_warm_result" ]; then
    echo "ci.sh: warm store replay diverged from the cold result:" >&2
    echo "cold: $store_cold_result" >&2
    echo "warm: $store_warm_result" >&2
    exit 1
fi
ls "$store_dir"/seg-*.jsonl >/dev/null 2>&1 || {
    echo "ci.sh: store dir holds no persisted segments" >&2
    exit 1
}

echo "==> stats/flight smoke (live telemetry verb, forced deadline dump)"
stats_log="$(mktemp)"
flight_file="$(mktemp)"
cleanup_files+=("$stats_log" "$flight_file")
AMPEREBLEED_FLIGHT_FILE="$flight_file" \
    cargo run --offline --release -p sim-serve --bin serve -- \
    --addr 127.0.0.1:0 --boards 1 >"$stats_log" 2>&1 &
stats_pid=$!
cleanup_pids+=("$stats_pid")
stats_addr=""
for _ in $(seq 1 100); do
    stats_addr="$(sed -n 's/^listening on \([0-9.:]*\) .*/\1/p' "$stats_log")"
    [ -n "$stats_addr" ] && break
    if ! kill -0 "$stats_pid" 2>/dev/null; then
        echo "ci.sh: stats-smoke serve exited before binding:" >&2
        cat "$stats_log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$stats_addr" ]; then
    echo "ci.sh: stats-smoke serve never reported its address:" >&2
    cat "$stats_log" >&2
    exit 1
fi
stats_out="$(cargo run --offline --release --example farm_client -- "$stats_addr" \
    --stats --pretty)"
echo "$stats_out" | grep -q '"queue_depth"' || {
    echo "ci.sh: stats verb returned no queue state:" >&2
    echo "$stats_out" >&2
    exit 1
}
echo "$stats_out" | grep -q '"p99"' || {
    echo "ci.sh: stats verb returned no percentile records:" >&2
    echo "$stats_out" >&2
    exit 1
}
# An impossible deadline forces a deadline_exceeded, which must auto-dump
# the flight rings to AMPEREBLEED_FLIGHT_FILE (the request itself fails
# by design, hence the || true).
cargo run --offline --release --example farm_client -- "$stats_addr" \
    --verb quickstart --seed 3 --deadline-ms 0 >/dev/null || true
cargo run --offline --release --example farm_client -- "$stats_addr" \
    --verb ping --shutdown >/dev/null
wait "$stats_pid" || {
    echo "ci.sh: stats-smoke serve exited non-zero after drain:" >&2
    cat "$stats_log" >&2
    exit 1
}
if ! [ -s "$flight_file" ]; then
    echo "ci.sh: deadline_exceeded left no flight dump in $flight_file" >&2
    exit 1
fi
grep -q '"deadline_exceeded"' "$flight_file" || {
    echo "ci.sh: flight dump carries no deadline_exceeded rows:" >&2
    head "$flight_file" >&2
    exit 1
}
grep -q '"kind"' "$flight_file" || {
    echo "ci.sh: flight dump rows are not event records:" >&2
    head "$flight_file" >&2
    exit 1
}

echo "==> ci.sh: all gates passed"
