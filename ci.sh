#!/usr/bin/env bash
# Offline CI gate for the AmpereBleed reproduction.
#
# The workspace has zero registry dependencies (everything lives under
# crates/, anchored by the crates/sim-rt runtime), so every step below
# runs with --offline and needs nothing but a Rust toolchain.
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --release --workspace

echo "==> cargo test"
cargo test --offline --workspace -q

echo "==> ci.sh: all gates passed"
