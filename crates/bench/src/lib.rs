//! Experiment harnesses for the AmpereBleed reproduction.
//!
//! Each bench target under `benches/` regenerates one table or figure of
//! the paper (see DESIGN.md for the experiment index); this library hosts
//! the small amount of shared formatting code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;

/// Prints a section header for bench output.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats an accuracy as the paper prints it (three decimals).
pub fn acc(a: f64) -> String {
    format!("{a:.3}")
}

#[cfg(test)]
mod tests {
    #[test]
    fn acc_formats_three_decimals() {
        assert_eq!(super::acc(0.9972), "0.997");
        assert_eq!(super::acc(1.0), "1.000");
    }
}
