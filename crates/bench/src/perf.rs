//! The `perf` benchmark suite body, shared between the `cargo bench`
//! entry point (`benches/perf.rs`) and the in-tree smoke test that runs
//! the same code on the quick schedule under `cargo test`.

use std::hint::black_box;

use amperebleed::{Channel, CurrentSampler, Platform};
use dnn_models::zoo;
use dpu::{DpuAccelerator, DpuConfig};
use fpga_fabric::bigint::U1024;
use fpga_fabric::virus::VirusConfig;
use rforest::{cross_validate_with, Dataset, ForestConfig, RandomForest};
use sim_rt::bench::Harness;
use sim_rt::Pool;
use zynq_soc::{PowerDomain, PowerLoad, SimTime};

fn bench_sampler(h: &mut Harness) {
    let mut platform = Platform::zcu102(1);
    let virus = platform.deploy_virus(VirusConfig::default()).unwrap();
    virus.activate_groups(80).unwrap();
    let sampler = CurrentSampler::unprivileged(&platform);
    let mut t = 40_000_000u64; // advance so every read hits a fresh window
    h.bench("hwmon_read_current_fresh_conversion", || {
        t += 35_000_000;
        sampler
            .read_once(
                PowerDomain::FpgaLogic,
                Channel::Current,
                SimTime::from_nanos(t),
            )
            .unwrap()
    });
    h.bench("hwmon_read_current_held_value", || {
        sampler
            .read_once(
                PowerDomain::FpgaLogic,
                Channel::Current,
                SimTime::from_ms(40),
            )
            .unwrap()
    });
}

fn bench_loads(h: &mut Harness) {
    let virus = fpga_fabric::virus::PowerVirusArray::new(VirusConfig::default(), 2);
    virus.activate_groups(160).unwrap();
    let mut t = 0u64;
    h.bench("virus_array_current_eval", || {
        t += 100_000;
        virus.current_ma(SimTime::from_nanos(t), PowerDomain::FpgaLogic)
    });

    let models = zoo();
    let densenet = models.iter().find(|m| m.name == "densenet-264").unwrap();
    let dpu = DpuAccelerator::new(DpuConfig::default(), 3);
    dpu.load_model(densenet);
    let mut t = 0u64;
    h.bench("dpu_current_eval_densenet264", || {
        t += 137_000;
        dpu.current_ma(SimTime::from_nanos(t), PowerDomain::FpgaLogic)
    });
}

fn bench_bigint(h: &mut Harness) {
    let mut m = U1024::random(10);
    m.set_bit(0, true);
    m.set_bit(1023, true);
    let a = U1024::random(11).reduce(&m);
    let b_val = U1024::random(12).reduce(&m);
    h.bench("u1024_mod_mul_full_width", || {
        a.mod_mul(black_box(&b_val), &m)
    });
    let e = U1024::from_u64(65_537);
    h.bench("u1024_mod_exp_e65537", || a.mod_exp(black_box(&e), &m));
}

/// A Table III-shaped dataset: `classes` x 10 samples x 103 features
/// (the paper's grid is 39 classes; the smoke schedule shrinks it).
fn table3_dataset(classes: usize) -> Dataset {
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for class in 0..classes {
        for rep in 0..10usize {
            let row: Vec<f64> = (0..103)
                .map(|f| ((class * 31 + rep * 7 + f) as f64 * 0.37).sin() + class as f64)
                .collect();
            features.push(row);
            labels.push(class);
        }
    }
    Dataset::new(features, labels).unwrap()
}

fn bench_forest(h: &mut Harness) {
    let data = table3_dataset(if h.is_quick() { 8 } else { 39 });
    let config = ForestConfig {
        n_trees: if h.is_quick() { 5 } else { 20 },
        ..ForestConfig::default()
    };
    h.bench_with_setup(
        "rforest_fit_39class_20trees",
        || data.clone(),
        |d| RandomForest::fit(&d, &config),
    );
    let forest = RandomForest::fit(&data, &config);
    let probe = data.features_of(0).to_vec();
    h.bench("rforest_predict", || forest.predict(black_box(&probe)));
}

/// 10-fold CV on one thread vs. the work-stealing pool: the runtime's
/// measured speedup. On a single-core host the ratio hovers around 1.0
/// (pool overhead only) — print it, don't assert on it.
fn bench_forest_cv_speedup(h: &mut Harness) {
    let data = table3_dataset(if h.is_quick() { 8 } else { 39 });
    let config = ForestConfig {
        n_trees: if h.is_quick() { 4 } else { 10 },
        ..ForestConfig::default()
    };
    let serial = h.bench("rforest_cv10_serial", || {
        cross_validate_with(&data, &config, 10, 7, &Pool::serial())
    });
    let pool = Pool::new(0); // 0 = one worker per available core
    let parallel = h.bench("rforest_cv10_pooled", || {
        cross_validate_with(&data, &config, 10, 7, &pool)
    });
    println!(
        "perf/cv10 speedup: {:.2}x on {} worker thread(s)",
        serial.ns_per_iter / parallel.ns_per_iter,
        pool.threads()
    );
}

fn bench_signal(h: &mut Harness) {
    // A 5 s capture at the 35 ms cadence is 143 samples; pad to 256.
    let trace: Vec<f64> = (0..143)
        .map(|i| (i as f64 * 0.37).sin() * 100.0 + 1_500.0)
        .collect();
    h.bench("power_spectrum_143_samples", || {
        trace_stats::spectrum::power_spectrum(black_box(&trace)).unwrap()
    });
    h.bench("feature_vector_143_samples", || {
        trace_stats::features::feature_vector(black_box(&trace), 96).unwrap()
    });
    h.bench("autocorrelation_143_samples", || {
        trace_stats::periodicity::autocorrelation(black_box(&trace), 71).unwrap()
    });
}

/// Runs every benchmark group on `h`.
pub fn run_suite(h: &mut Harness) {
    bench_sampler(h);
    bench_loads(h);
    bench_bigint(h);
    bench_forest(h);
    bench_forest_cv_speedup(h);
    bench_signal(h);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole perf suite on the 3-iteration quick schedule: every hot
    /// path exercised, the CV speedup ratio printed, nothing asserted
    /// about absolute timings.
    #[test]
    fn perf_smoke() {
        let mut h = Harness::quick("perf-smoke");
        run_suite(&mut h);
        assert_eq!(h.results().len(), 13, "one measurement per bench");
        assert!(h.results().iter().all(|m| m.iters == 3));
        h.finish();
    }
}
