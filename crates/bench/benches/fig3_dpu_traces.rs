//! Figure 3 — current patterns leaked from the four sensitive sensors
//! while the DPU runs six different DNN models.
//!
//! The bench captures 5 s of each model's inference loop on all four
//! current sensors and prints a coarse ASCII rendering of each trace plus
//! its summary statistics; distinct per-model signatures are the raw
//! material of the Table III fingerprinting attack.
//!
//! Run with: `cargo bench --bench fig3_dpu_traces`

use amperebleed::{Channel, CurrentSampler, Platform};
use amperebleed_bench::section;
use dnn_models::zoo;
use dpu::DpuConfig;
use trace_stats::features::resample;
use trace_stats::Summary;
use zynq_soc::{PowerDomain, SimTime};

const FIGURE3_MODELS: [&str; 6] = [
    "mobilenet-v1",
    "squeezenet",
    "efficientnet-lite0",
    "inception-v3",
    "resnet-50",
    "vgg-19",
];

fn sparkline(xs: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-9);
    xs.iter()
        .map(|&x| GLYPHS[(((x - min) / span) * 7.0).round() as usize])
        .collect()
}

fn main() {
    let models = zoo();

    section("victim suite inventory (Section IV-B)");
    for fs in dnn_models::stats::family_stats(&models) {
        println!(
            "{:<14} {:>2} models  {:>6.2}-{:<6.2} GMACs  mean {:>6.1} MB",
            fs.family.to_string(),
            fs.models,
            fs.min_gmacs,
            fs.max_gmacs,
            fs.mean_size_mb
        );
    }
    println!(
        "workload spread across the zoo: {:.0}x",
        dnn_models::stats::workload_spread(&models).unwrap_or(f64::NAN)
    );
    let sensors = [
        PowerDomain::FullPowerCpu,
        PowerDomain::LowPowerCpu,
        PowerDomain::FpgaLogic,
        PowerDomain::Ddr,
    ];
    let rate = 1_000.0 / 35.0;
    let count = (5.0 * rate) as usize;

    let mut per_model_fpga_mean = Vec::new();
    for (i, name) in FIGURE3_MODELS.iter().enumerate() {
        let model = models.iter().find(|m| &m.name == name).expect("in zoo");
        section(&format!(
            "{name} ({:.1} MB, {:.2} GMACs)",
            model.model_size_mb(),
            model.total_macs() as f64 / 1e9
        ));
        let mut platform = Platform::zcu102(300 + i as u64);
        let dpu = platform.deploy_dpu(DpuConfig::default()).expect("dpu fits");
        dpu.load_model(model);
        let sampler = CurrentSampler::unprivileged(&platform);
        for &domain in &sensors {
            let trace = sampler
                .capture(domain, Channel::Current, SimTime::from_ms(40), rate, count)
                .expect("capture");
            let s = Summary::from_samples(&trace.samples).expect("summary");
            let shrunk = resample(&trace.samples, 64).expect("resample");
            println!(
                "{:<15} mean {:>7.0} mA  p2p {:>6.0} mA  {}",
                domain.to_string(),
                s.mean,
                s.range(),
                sparkline(&shrunk)
            );
            if domain == PowerDomain::FpgaLogic {
                per_model_fpga_mean.push(s.mean);
            }
        }
    }

    // Shape assertion: the six models produce pairwise-distinct mean FPGA
    // currents (sufficient separation for fingerprinting).
    section("per-model FPGA current means");
    for (name, mean) in FIGURE3_MODELS.iter().zip(&per_model_fpga_mean) {
        println!("{name:<22} {mean:>8.1} mA");
    }
    for i in 0..per_model_fpga_mean.len() {
        for j in i + 1..per_model_fpga_mean.len() {
            assert!(
                (per_model_fpga_mean[i] - per_model_fpga_mean[j]).abs() > 5.0,
                "{} and {} look alike",
                FIGURE3_MODELS[i],
                FIGURE3_MODELS[j]
            );
        }
    }
    println!("\n[ok] six distinct current signatures (Figure 3 shape)");
}
