//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! 1. **Sensor update interval** (2-35 ms): how the hwmon cadence affects
//!    fingerprinting-relevant signal (per-window variance captured).
//! 2. **Power-register truncation** (x25 LSB): RSA group separability with
//!    the datasheet truncation vs. a hypothetical fine-grained power node.
//! 3. **PDN stabilizer strength**: the RO baseline only becomes viable
//!    when the stabilizer is weakened — why crafted-circuit attacks die on
//!    modern boards.
//! 4. **Forest size/depth**: classifier cost/accuracy trade-off.
//!
//! Run with: `cargo bench --bench ablations`

use amperebleed::fingerprint::{collect_corpus, evaluate_grid, FingerprintConfig, SensorChannel};
use amperebleed::rsa_attack::{self, RsaAttackConfig};
use amperebleed::{Channel, CurrentSampler, Platform};
use amperebleed_bench::section;
use dnn_models::{zoo, ModelArch};
use fpga_fabric::ring_oscillator::{RoBank, RoConfig};
use fpga_fabric::virus::VirusConfig;
use hwmon_sim::Privilege;
use rforest::ForestConfig;
use trace_stats::Summary;
use zynq_soc::board::BoardSpec;
use zynq_soc::{Pdn, PowerDomain, SimTime};

fn ablate_update_interval() {
    section("ablation 1: hwmon update interval (root-configurable, 2-35 ms)");
    let mut p = Platform::zcu102(401);
    let virus = p.deploy_virus(VirusConfig::default()).expect("virus");
    virus.activate_groups(80).unwrap();
    println!(
        "{:>12} {:>16} {:>14}",
        "interval", "fresh conv/s", "trace std(mA)"
    );
    for interval_ms in [2u64, 4, 9, 18, 35] {
        p.hwmon()
            .write(
                p.sensor_path(PowerDomain::FpgaLogic, "update_interval"),
                &interval_ms.to_string(),
                Privilege::Root,
            )
            .expect("root write");
        let sampler = CurrentSampler::unprivileged(&p);
        let trace = sampler
            .capture(
                PowerDomain::FpgaLogic,
                Channel::Current,
                SimTime::from_ms(40),
                1_000.0 / interval_ms as f64,
                400,
            )
            .expect("capture");
        let s = Summary::from_samples(&trace.samples).expect("summary");
        println!(
            "{:>10}ms {:>16.0} {:>14.2}",
            interval_ms,
            1_000.0 / interval_ms as f64,
            s.std_dev
        );
    }
    println!("(faster intervals average fewer ADC samples -> more per-read noise,");
    println!(" but deliver ~17x more independent observations per second)");
}

fn ablate_power_truncation() {
    section("ablation 2: power-register truncation (25 mW LSB vs current)");
    let config = RsaAttackConfig {
        samples_per_key: 15_000,
        ..RsaAttackConfig::default()
    };
    let report = rsa_attack::run(&config).expect("attack");
    println!(
        "current channel (1 mA LSB) : {} / 17 groups",
        report.current_separability.distinguishable
    );
    println!(
        "power channel (25 mW LSB)  : {} / 17 groups",
        report.power_separability.distinguishable
    );
    assert!(
        report.power_separability.distinguishable < report.current_separability.distinguishable
    );
    println!("(the x25 LSB ratio is fixed by the INA226 datasheet: the power");
    println!(" channel is the current channel with its low bits cut off)");
}

fn ablate_stabilizer() {
    section("ablation 3: PDN stabilizer strength vs. RO baseline viability");
    // Drive the same load swing through PDNs of varying stabilizer
    // strength and measure the RO-observable relative variation.
    println!(
        "{:>10} {:>14} {:>18}",
        "strength", "droop (mV)", "RO rel. variation"
    );
    for strength in [1.0, 0.75, 0.5, 0.25, 0.0] {
        let pdn = Pdn::for_board(&BoardSpec::zcu102(), PowerDomain::FpgaLogic)
            .with_stabilizer_strength(strength);
        let v_idle = pdn.rail_voltage(880.0, 0.0);
        let v_busy = pdn.rail_voltage(7_280.0, 0.0);
        let mut bank = RoBank::new(RoConfig::default(), 4);
        let hi: f64 = (0..200)
            .map(|_| bank.sample_mean_count(v_idle))
            .sum::<f64>()
            / 200.0;
        let lo: f64 = (0..200)
            .map(|_| bank.sample_mean_count(v_busy))
            .sum::<f64>()
            / 200.0;
        println!(
            "{:>10.2} {:>14.2} {:>18.5}",
            strength,
            (v_idle - v_busy) * 1_000.0,
            (hi - lo) / hi
        );
    }
    println!("(only a weakened stabilizer gives the crafted circuit real signal;");
    println!(" AmpereBleed's current channel is independent of this knob)");
}

fn ablate_forest() {
    section("ablation 4: forest size / depth (6 models, FPGA current)");
    let models = zoo();
    let picks: Vec<&ModelArch> = [
        "mobilenet-v1",
        "squeezenet",
        "efficientnet-lite0",
        "inception-v3",
        "resnet-50",
        "vgg-19",
    ]
    .iter()
    .map(|n| models.iter().find(|m| &m.name == n).unwrap())
    .collect();
    let base = FingerprintConfig {
        traces_per_model: 8,
        capture_seconds: 3.0,
        folds: 4,
        ..FingerprintConfig::default()
    };
    let corpus = collect_corpus(&picks, &base).expect("corpus");
    println!("{:>8} {:>7} {:>8}", "trees", "depth", "top-1");
    for (trees, depth) in [(5, 4), (25, 8), (100, 32), (200, 32)] {
        let config = FingerprintConfig {
            forest: ForestConfig {
                n_trees: trees,
                max_depth: depth,
                ..ForestConfig::default()
            },
            ..base.clone()
        };
        let grid = evaluate_grid(&corpus, &config, &[3.0]).expect("grid");
        let cell = grid
            .cell(
                SensorChannel {
                    domain: PowerDomain::FpgaLogic,
                    channel: Channel::Current,
                },
                3.0,
            )
            .unwrap();
        println!("{trees:>8} {depth:>7} {:>8.3}", cell.top1);
    }
    println!("(the paper's 100 trees / depth 32 sits on the flat part of the curve)");
}

fn ablate_covert_bandwidth() {
    section("ablation 5: covert-channel bit period vs. error rate");
    use amperebleed::covert::{bit_error_rate, receive};
    use fpga_fabric::covert::CovertConfig;
    let payload = b"0123456789abcdef";
    println!("{:>12} {:>12} {:>10}", "bit period", "raw bit/s", "BER");
    for (ms, on_ma) in [
        (140u64, 400.0),
        (105, 400.0),
        (70, 400.0),
        (35, 400.0),
        (105, 8.0),
    ] {
        let config = CovertConfig {
            bit_period: SimTime::from_ms(ms),
            on_ma,
            ..CovertConfig::default()
        };
        let mut p = Platform::zcu102(405 ^ ms ^ on_ma as u64);
        p.deploy_covert_transmitter(config, payload)
            .expect("tx fits");
        let rx = receive(&p, &config, payload.len(), SimTime::from_ms(91)).expect("rx");
        let ber = bit_error_rate(payload, &rx.payload);
        let label = if on_ma < 50.0 {
            format!("{ms}ms/weak")
        } else {
            format!("{ms}ms")
        };
        println!(
            "{label:>12} {:>12.1} {:>10.4}",
            config.raw_bandwidth_bps(),
            ber
        );
    }
    println!("(multiple sensor updates per bit give voting margin; sub-update");
    println!(" periods and near-noise amplitudes corrupt the channel)");
}

fn ablate_dvfs_governor() {
    section("ablation 6: DVFS governor vs. CPU-rail signature");
    use zynq_soc::cpu::{CpuActivityConfig, CpuBackgroundLoad};
    use zynq_soc::dvfs::{DvfsConfig, DvfsCpuLoad, Governor};
    use zynq_soc::PowerLoad;
    let base = CpuBackgroundLoad::new(CpuActivityConfig::default(), 406);
    println!(
        "{:>14} {:>14} {:>12}",
        "governor", "mean I (mA)", "p2p (mA)"
    );
    for (name, governor) in [
        ("performance", Governor::Performance),
        ("powersave", Governor::Powersave),
        ("ondemand", Governor::Ondemand { up_threshold: 0.25 }),
    ] {
        let load = DvfsCpuLoad::new(
            base.clone(),
            DvfsConfig {
                governor,
                ..DvfsConfig::default()
            },
        );
        let samples: Vec<f64> = (0..600)
            .map(|k| load.current_ma(SimTime::from_ms(k * 10 + 3), PowerDomain::FullPowerCpu))
            .collect();
        let s = Summary::from_samples(&samples).expect("summary");
        println!("{name:>14} {:>14.1} {:>12.1}", s.mean, s.range());
    }
    println!("(an ondemand governor adds load-correlated frequency steps to the");
    println!(" CPU rail — extra structure a fingerprinting attacker can exploit)");
}

fn main() {
    ablate_update_interval();
    ablate_power_truncation();
    ablate_stabilizer();
    ablate_forest();
    ablate_covert_bandwidth();
    ablate_dvfs_governor();
    println!("\n[ok] ablations complete");
}
