//! Speedup gates for the zero-allocation sampling fast path.
//!
//! Times three capture workloads against baselines recorded on the
//! pre-fast-path stack (string reads, one conversion per attribute
//! access, three composite-load walks per averaging step) and writes
//! `BENCH_sampler_fastpath.json`:
//!
//! * **all_channels_fresh** — `capture_all_channels` over advancing
//!   windows, every sample a fresh conversion. The headline gate: the
//!   batched walk (one conversion serving all three channels, pair-walk
//!   load evaluation) must be at least 5x the old three-capture version.
//! * **single_fresh** — single-channel fresh-conversion captures; must
//!   not regress (the pair-walk and typed reads make it faster, but the
//!   conversion's noise sampling is pinned by byte-identity).
//! * **hold** — value-hold captures (1 kHz against a 35 ms interval);
//!   must not regress (held reads now skip the sensor mutex entirely).
//!
//! Run with: `cargo bench --bench sampler_fastpath` (full schedule,
//! exits non-zero when a gate fails) or `-- --quick` (smoke: measures
//! and writes the artifact, never fails on the timing).

use std::hint::black_box;
use std::time::Instant;

use amperebleed::{Channel, CurrentSampler, Platform};
use fpga_fabric::virus::VirusConfig;
use sim_rt::Record;
use zynq_soc::{PowerDomain, SimTime};

/// Samples per capture, matching the recorded baselines.
const SAMPLES: usize = 64;

/// Pre-fast-path cost of one 64-sample `capture_all_channels` with every
/// sample converting, in nanoseconds (min over 7 rounds on the reference
/// machine, commit d03b615).
const BASELINE_ALL_FRESH_NS: f64 = 2_347_335.0;
/// Same machine, one 64-sample single-channel fresh capture.
const BASELINE_SINGLE_FRESH_NS: f64 = 803_891.0;
/// Same machine, one 64-sample value-hold capture at 1 kHz.
const BASELINE_HOLD_NS: f64 = 40_704.0;

/// Headline gate on the batched fresh-conversion path.
const ALL_FRESH_MIN_SPEEDUP: f64 = 5.0;
/// No-regression gates (10% machine-noise allowance).
const NO_REGRESSION_MIN_SPEEDUP: f64 = 0.9;

/// One gated workload: name, recorded baseline, minimum speedup, body.
type Workload<'a> = (&'a str, f64, f64, Box<dyn FnMut() -> f64 + 'a>);

/// Mean nanoseconds per call over `iters` calls of `f`.
fn time_ns(iters: u64, mut f: impl FnMut() -> f64) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Min-of-rounds timing of `f`.
fn best_ns(rounds: u32, iters: u64, mut f: impl FnMut() -> f64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        best = best.min(time_ns(iters, &mut f));
    }
    best
}

fn main() {
    let quick = sim_rt::bench::quick_requested();
    obs::init();

    // The lock-order watchdog must be free in the bench profile: the
    // timings below go through Platform/sensor TrackedMutexes, so any
    // residual debug machinery would poison the recorded baselines.
    #[cfg(not(debug_assertions))]
    {
        use std::sync::Mutex;
        assert_eq!(
            std::mem::size_of::<sim_rt::TrackedMutex<u64>>(),
            std::mem::size_of::<Mutex<u64>>(),
            "TrackedMutex is not a zero-cost passthrough in this profile"
        );
        assert_eq!(sim_rt::lockorder::acquisitions(), 0);
    }

    let mut platform = Platform::zcu102(42);
    let virus = platform.deploy_virus(VirusConfig::default()).unwrap();
    virus.activate_groups(80).unwrap();
    let sampler = CurrentSampler::unprivileged(&platform);

    // Advancing start times keep every capture window ahead of all
    // previously converted boundaries, so fresh workloads never hit the
    // latched-conversion hold path.
    let mut t_all = 40_000_000u64;
    let all_fresh = move || {
        t_all += 10 * 35_000_000 * SAMPLES as u64;
        let [c, _, _] = sampler
            .capture_all_channels(
                PowerDomain::FpgaLogic,
                SimTime::from_nanos(t_all),
                1.0 / 0.035,
                SAMPLES,
            )
            .unwrap();
        c.samples[SAMPLES - 1]
    };
    let mut t_single = 20_000_000_000_000u64;
    let single_fresh = move || {
        t_single += 10 * 35_000_000 * SAMPLES as u64;
        let trace = sampler
            .capture(
                PowerDomain::FpgaLogic,
                Channel::Current,
                SimTime::from_nanos(t_single),
                1.0 / 0.035,
                SAMPLES,
            )
            .unwrap();
        trace.samples[SAMPLES - 1]
    };
    let mut t_hold = 40_000_000_000_000u64;
    let hold = move || {
        t_hold += 10 * 35_000_000 * SAMPLES as u64;
        let trace = sampler
            .capture(
                PowerDomain::FpgaLogic,
                Channel::Current,
                SimTime::from_nanos(t_hold),
                1_000.0,
                SAMPLES,
            )
            .unwrap();
        trace.samples[SAMPLES - 1]
    };

    // Containerized runners show multi-second noise windows of +40%; many
    // short rounds give min-of-rounds more chances to land in a calm one.
    let (rounds, iters) = if quick { (2, 3) } else { (14, 40) };
    let workloads: [Workload; 3] = [
        (
            "all_channels_fresh",
            BASELINE_ALL_FRESH_NS,
            ALL_FRESH_MIN_SPEEDUP,
            Box::new(all_fresh),
        ),
        (
            "single_fresh",
            BASELINE_SINGLE_FRESH_NS,
            NO_REGRESSION_MIN_SPEEDUP,
            Box::new(single_fresh),
        ),
        (
            "hold",
            BASELINE_HOLD_NS,
            NO_REGRESSION_MIN_SPEEDUP,
            Box::new(hold),
        ),
    ];

    let mut rows = Vec::new();
    let mut all_pass = true;
    for (name, baseline_ns, min_speedup, mut f) in workloads {
        let ns = best_ns(rounds, iters, &mut f);
        let speedup = baseline_ns / ns;
        let pass = speedup >= min_speedup;
        all_pass &= pass;
        println!(
            "sampler_fastpath/{name}: {ns:>12.1} ns/capture, baseline {baseline_ns:.0} ns, \
             speedup {speedup:.2}x (gate >= {min_speedup}x) -> {}",
            if pass { "pass" } else { "FAIL" }
        );
        let mut row = Record::new();
        row.push("bench", name)
            .push("samples_per_capture", SAMPLES as u64)
            .push("iters_per_round", iters)
            .push("rounds", rounds as u64)
            .push("quick", quick)
            .push("ns_per_capture", ns)
            .push("baseline_ns_per_capture", baseline_ns)
            .push("speedup", speedup)
            .push("min_speedup", min_speedup)
            .push("pass", pass);
        rows.push(row);
    }

    // Quick (smoke) timings land in a separate, uncommitted artifact so a
    // CI smoke can never clobber the committed full-run record.
    let path = if quick {
        "BENCH_sampler_fastpath.quick.json"
    } else {
        "BENCH_sampler_fastpath.json"
    };
    std::fs::write(path, sim_rt::to_jsonl(&rows)).expect("write artifact");
    println!("sampler_fastpath: wrote {path}");

    // Quick (smoke) timings are 3-iteration noise; only a full run judges.
    if !quick && !all_pass {
        std::process::exit(1);
    }
}
