//! Overhead of the observability layer on the sampler hot path.
//!
//! Measures [`CurrentSampler::capture`] twice in alternating rounds —
//! metrics, span recording, and the flight recorder all enabled versus
//! all runtime-disabled — and writes the comparison to
//! `BENCH_obs_overhead.json`. The budget is < 5% mean overhead on the
//! capture path; the process exits non-zero when a full run blows it.
//!
//! The "on" arm is the served configuration: every capture runs under an
//! ambient trace context with a span around it, metrics recording on,
//! and flight events flowing into the per-thread rings — so the number
//! bounds what a farm operator actually pays.
//!
//! Run with: `cargo bench --bench obs_overhead` (full schedule) or
//! `cargo bench --bench obs_overhead -- --quick` (smoke: measures and
//! writes the artifact, never fails on the timing).
//!
//! Both arms run in one process with the metrics feature compiled in, so
//! the comparison isolates the *runtime* cost of the atomic updates — the
//! honest bound for users who keep the default build. The `compile-off`
//! feature removes even the disabled-path branch.

use std::hint::black_box;
use std::time::Instant;

use amperebleed::{Channel, CurrentSampler, Platform};
use fpga_fabric::virus::VirusConfig;
use sim_rt::Record;
use zynq_soc::{PowerDomain, SimTime};

/// Samples per capture: a 2 s window at the hwmon cadence.
const SAMPLES: usize = 64;
/// Overhead budget on the capture path, in percent.
const THRESHOLD_PCT: f64 = 5.0;

/// Mean nanoseconds per call over `iters` calls of `f`.
fn time_ns(iters: u64, mut f: impl FnMut() -> f64) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Flips every observability layer at once: metrics, span recording,
/// and the flight recorder.
fn set_observability(on: bool) {
    obs::metrics::set_enabled(on);
    obs::trace::set_recording(on);
    obs::flight::set_enabled(on);
}

fn main() {
    let quick = sim_rt::bench::quick_requested();
    obs::init();

    let mut platform = Platform::zcu102(42);
    let virus = platform.deploy_virus(VirusConfig::default()).unwrap();
    virus.activate_groups(80).unwrap();
    let sampler = CurrentSampler::unprivileged(&platform);

    // Each capture starts at a fresh sim time so every sample converts
    // instead of hitting the held-value cache. Each runs under its own
    // trace root — the same shape a served request gives it.
    let mut t = 40_000_000u64;
    let mut trace_counter = 0u64;
    let mut capture = move || {
        t += 10 * 35_000_000 * SAMPLES as u64;
        let ctx = obs::trace::TraceContext::root("bench", 42, trace_counter);
        trace_counter += 1;
        obs::trace::scoped(ctx, || {
            let _span = obs::trace::span("bench.obs", "capture");
            let trace = sampler
                .capture(
                    PowerDomain::FpgaLogic,
                    Channel::Current,
                    SimTime::from_nanos(t),
                    1.0 / 0.035,
                    SAMPLES,
                )
                .unwrap();
            trace.samples[SAMPLES - 1]
        })
    };

    let (rounds, iters) = if quick { (2, 3) } else { (7, 200) };
    // Alternate off/on rounds and keep the minimum per arm: the minimum is
    // what the code costs; everything above it is scheduler noise.
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    for round in 0..rounds {
        set_observability(false);
        let off = time_ns(iters, &mut capture);
        set_observability(true);
        let on = time_ns(iters, &mut capture);
        best_off = best_off.min(off);
        best_on = best_on.min(on);
        // Drain the span log between rounds so the recording arm pays
        // steady-state push costs, never a growth-then-overflow cliff.
        let spans = obs::trace::take().len();
        println!(
            "obs_overhead/round {round}: off {off:>12.1} ns/capture, on {on:>12.1} ns/capture \
             ({spans} spans recorded)"
        );
    }

    let overhead_pct = (best_on - best_off) / best_off * 100.0;
    let pass = overhead_pct < THRESHOLD_PCT;
    println!(
        "obs_overhead/capture_{SAMPLES}_samples: off {best_off:.1} ns, on {best_on:.1} ns, \
         overhead {overhead_pct:+.2}% (budget {THRESHOLD_PCT}%) -> {}",
        if pass { "pass" } else { "FAIL" }
    );

    let mut row = Record::new();
    row.push("bench", "sampler_capture_hot_path")
        .push("samples_per_capture", SAMPLES as u64)
        .push("iters_per_round", iters)
        .push("rounds", rounds as u64)
        .push("quick", quick)
        .push("traced", true)
        .push("off_ns_per_capture", best_off)
        .push("on_ns_per_capture", best_on)
        .push("overhead_pct", overhead_pct)
        .push("threshold_pct", THRESHOLD_PCT)
        .push("pass", pass);
    // Quick smokes must not clobber the committed full-run artifact.
    let path = if quick {
        "BENCH_obs_overhead.quick.json"
    } else {
        "BENCH_obs_overhead.json"
    };
    std::fs::write(path, sim_rt::to_jsonl(&[row])).expect("write artifact");
    println!("obs_overhead: wrote {path}");

    // Quick (smoke) timings are 3-iteration noise; only a full run judges.
    if !quick && !pass {
        std::process::exit(1);
    }
}
