//! Figure 2 — FPGA current / voltage / power via hwmon and RO counts vs.
//! the number of activated power-virus instances (161 levels).
//!
//! Paper shape targets: r(current) = r(power) = 0.999, r(voltage) = 0.958
//! (on per-level means, with a ~0.006-LSB slope), r(RO) = -0.996, current
//! step ~40 LSB/setting, and current variation ~261x the RO's.
//!
//! Run with: `cargo bench --bench fig2_characterization`
//! Set `AMPEREBLEED_SAMPLES` to override samples per level (default 2000;
//! the paper uses 10000).

use amperebleed::characterize::{self, CharacterizeConfig};
use amperebleed::Platform;
use amperebleed_bench::section;
use fpga_fabric::ring_oscillator::RoConfig;
use fpga_fabric::virus::VirusConfig;

fn main() {
    let samples: usize = std::env::var("AMPEREBLEED_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);

    let mut platform = Platform::zcu102(261);
    platform
        .deploy_virus(VirusConfig::default())
        .expect("virus fits");
    platform
        .deploy_ro_bank(RoConfig::default())
        .expect("ro fits");
    platform
        .deploy_tdc(fpga_fabric::tdc::TdcConfig::default())
        .expect("tdc fits");

    let config = CharacterizeConfig {
        samples_per_level: samples,
        ..CharacterizeConfig::default()
    };
    eprintln!("sweeping 161 levels x {samples} samples ...");
    let report = characterize::run(&platform, &config).expect("sweep");

    section("Figure 2: per-level means (every 10th level)");
    println!(
        "{:>7} {:>12} {:>10} {:>12} {:>10}",
        "groups", "I(mA)", "V(mV)", "P(mW)", "RO count"
    );
    for row in report.rows.iter().step_by(10) {
        println!(
            "{:>7} {:>12.1} {:>10.2} {:>12.1} {:>10.2}",
            row.active_groups,
            row.current_ma.mean,
            row.voltage_mv.mean,
            row.power_uw.mean / 1_000.0,
            row.ro_count.as_ref().map_or(f64::NAN, |s| s.mean),
        );
    }

    section("correlations and slopes");
    println!(
        "pearson current : {:+.4}   (paper +0.999)",
        report.pearson_current
    );
    println!(
        "pearson power   : {:+.4}   (paper +0.999)",
        report.pearson_power
    );
    println!(
        "pearson voltage : {:+.4}   (paper +0.958 on means)",
        report.pearson_voltage.abs()
    );
    println!(
        "pearson RO      : {:+.4}   (paper -0.996)",
        report.pearson_ro.unwrap_or(f64::NAN)
    );
    println!(
        "current slope   : {:>7.2} mA/step   (paper ~40 LSB at 1 mA)",
        report.fit_current.slope
    );
    println!(
        "voltage slope   : {:>7.4} LSB/step  (paper ~0.006)",
        report.voltage_lsb_per_step()
    );
    println!(
        "power slope     : {:>7.2} LSB/step  (paper 1-2 LSB)",
        report.power_lsb_per_step()
    );
    let ratio = report.variation_ratio_vs_ro.unwrap_or(f64::NAN);
    println!("variation ratio : {ratio:>7.0}x        (paper 261x, vs RO)");
    let tdc_ratio = report.variation_ratio_vs_tdc.unwrap_or(f64::NAN);
    println!(
        "vs TDC baseline : {tdc_ratio:>7.0}x        (post-RO-ban sensors fare no better; r_TDC = {:+.4})",
        report.pearson_tdc.unwrap_or(f64::NAN)
    );

    // Shape assertions.
    assert!(report.pearson_current > 0.998);
    assert!(report.pearson_power > 0.995);
    assert!(report.pearson_ro.unwrap() < -0.98);
    assert!((30.0..50.0).contains(&report.fit_current.slope));
    assert!(report.voltage_lsb_per_step().abs() < 0.1);
    assert!((100.0..500.0).contains(&ratio));
    println!("\n[ok] Figure 2 shape reproduced");
}
