//! Figure 4 — the impact of RSA-1024 key Hamming weight on FPGA current
//! and power measurements: 17 keys (HW = 1, 64, 128, ..., 1024), 100 k
//! samples at 1 kHz per key.
//!
//! Paper shape: the current channel separates all 17 groups; the power
//! channel (25 mW LSB) collapses them into ~5.
//!
//! Run with: `cargo bench --bench fig4_rsa_hamming`
//! Set `AMPEREBLEED_SAMPLES` to override samples per key (default 100000).

use amperebleed::rsa_attack::{self, RsaAttackConfig};
use amperebleed_bench::section;

fn main() {
    let samples: usize = std::env::var("AMPEREBLEED_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let config = RsaAttackConfig {
        samples_per_key: samples,
        ..RsaAttackConfig::default()
    };
    eprintln!(
        "profiling {} keys x {} samples at {} Hz ...",
        config.hamming_weights.len(),
        config.samples_per_key,
        config.sample_rate_hz
    );
    let report = rsa_attack::run(&config).expect("attack");

    section("Figure 4: per-key distributions");
    println!(
        "{:>6} {:>12} {:>8} {:>8} {:>12} {:>9} {:>9}",
        "HW", "I mean(mA)", "I min", "I max", "P mean(mW)", "I group", "P group"
    );
    for (i, obs) in report.observations.iter().enumerate() {
        println!(
            "{:>6} {:>12.2} {:>8.0} {:>8.0} {:>12.2} {:>9} {:>9}",
            obs.hamming_weight,
            obs.current_ma.mean,
            obs.current_ma.min,
            obs.current_ma.max,
            obs.power_mw.mean,
            report.current_separability.cluster_of[i],
            report.power_separability.cluster_of[i],
        );
    }

    section("brute-force search space with known Hamming weight");
    println!("{:>6} {:>16} {:>14}", "HW", "log2 C(1024,HW)", "bits saved");
    for obs in report.observations.iter().step_by(4) {
        let bits = rsa_attack::search_space_bits(obs.hamming_weight);
        println!(
            "{:>6} {:>16.1} {:>14.1}",
            obs.hamming_weight,
            bits,
            1024.0 - bits
        );
    }

    let n_current = report.current_separability.distinguishable;
    let n_power = report.power_separability.distinguishable;
    section("separability verdict");
    println!("current channel : {n_current} / 17 groups (paper: 17)");
    println!("power channel   : {n_power} / 17 groups (paper: ~5)");

    // Shape assertions.
    assert_eq!(n_current, 17, "current must separate all 17 weights");
    assert!(
        (3..=8).contains(&n_power),
        "power should collapse to ~5 groups, got {n_power}"
    );
    // Monotone means.
    let means: Vec<f64> = report
        .observations
        .iter()
        .map(|o| o.current_ma.mean)
        .collect();
    for w in means.windows(2) {
        assert!(w[1] > w[0], "current means must be monotone in HW");
    }
    println!("\n[ok] Figure 4 shape reproduced");
}
