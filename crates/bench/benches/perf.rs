//! Performance benchmarks of the reproduction's hot paths: hwmon sampling
//! throughput, the electrical solve, big-integer modular arithmetic,
//! random-forest training (serial and on the work-stealing pool), and the
//! signal-processing kernels.
//!
//! Run with: `cargo bench --bench perf` (full schedule) or
//! `cargo bench --bench perf -- --quick` (3-iteration smoke). The same
//! smoke schedule also runs inside `cargo test` via the bench library's
//! `perf_smoke` test.

use sim_rt::bench::Harness;

fn main() {
    let mut h = Harness::from_env("perf");
    amperebleed_bench::perf::run_suite(&mut h);
    h.finish();
}
