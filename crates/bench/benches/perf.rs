//! Criterion performance benchmarks of the reproduction's hot paths:
//! hwmon sampling throughput, the electrical solve, big-integer modular
//! arithmetic, and random-forest training.
//!
//! Run with: `cargo bench --bench perf`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use amperebleed::{Channel, CurrentSampler, Platform};
use dnn_models::zoo;
use dpu::{DpuAccelerator, DpuConfig};
use fpga_fabric::bigint::U1024;
use fpga_fabric::virus::VirusConfig;
use rforest::{Dataset, ForestConfig, RandomForest};
use zynq_soc::{PowerDomain, PowerLoad, SimTime};

fn bench_sampler(c: &mut Criterion) {
    let mut platform = Platform::zcu102(1);
    let virus = platform.deploy_virus(VirusConfig::default()).unwrap();
    virus.activate_groups(80).unwrap();
    let sampler = CurrentSampler::unprivileged(&platform);
    let mut t = 40_000_000u64; // advance so every read hits a fresh window
    c.bench_function("hwmon_read_current_fresh_conversion", |b| {
        b.iter(|| {
            t += 35_000_000;
            black_box(
                sampler
                    .read_once(PowerDomain::FpgaLogic, Channel::Current, SimTime::from_nanos(t))
                    .unwrap(),
            )
        })
    });
    c.bench_function("hwmon_read_current_held_value", |b| {
        b.iter(|| {
            black_box(
                sampler
                    .read_once(
                        PowerDomain::FpgaLogic,
                        Channel::Current,
                        SimTime::from_ms(40),
                    )
                    .unwrap(),
            )
        })
    });
}

fn bench_loads(c: &mut Criterion) {
    let virus = fpga_fabric::virus::PowerVirusArray::new(VirusConfig::default(), 2);
    virus.activate_groups(160).unwrap();
    c.bench_function("virus_array_current_eval", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 100_000;
            black_box(virus.current_ma(SimTime::from_nanos(t), PowerDomain::FpgaLogic))
        })
    });

    let models = zoo();
    let densenet = models.iter().find(|m| m.name == "densenet-264").unwrap();
    let dpu = DpuAccelerator::new(DpuConfig::default(), 3);
    dpu.load_model(densenet);
    c.bench_function("dpu_current_eval_densenet264", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 137_000;
            black_box(dpu.current_ma(SimTime::from_nanos(t), PowerDomain::FpgaLogic))
        })
    });
}

fn bench_bigint(c: &mut Criterion) {
    let mut m = U1024::random(10);
    m.set_bit(0, true);
    m.set_bit(1023, true);
    let a = U1024::random(11).reduce(&m);
    let b_val = U1024::random(12).reduce(&m);
    c.bench_function("u1024_mod_mul_full_width", |bch| {
        bch.iter(|| black_box(a.mod_mul(black_box(&b_val), &m)))
    });
    c.bench_function("u1024_mod_exp_e65537", |bch| {
        let e = U1024::from_u64(65_537);
        bch.iter(|| black_box(a.mod_exp(black_box(&e), &m)))
    });
}

fn bench_forest(c: &mut Criterion) {
    // A Table III-shaped dataset: 39 classes x 10 samples x 103 features.
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for class in 0..39usize {
        for rep in 0..10usize {
            let row: Vec<f64> = (0..103)
                .map(|f| ((class * 31 + rep * 7 + f) as f64 * 0.37).sin() + class as f64)
                .collect();
            features.push(row);
            labels.push(class);
        }
    }
    let data = Dataset::new(features, labels).unwrap();
    let config = ForestConfig {
        n_trees: 20,
        ..ForestConfig::default()
    };
    c.bench_function("rforest_fit_39class_20trees", |b| {
        b.iter_batched(
            || data.clone(),
            |d| black_box(RandomForest::fit(&d, &config)),
            BatchSize::LargeInput,
        )
    });
    let forest = RandomForest::fit(&data, &config);
    let probe = data.features_of(0).to_vec();
    c.bench_function("rforest_predict", |b| {
        b.iter(|| black_box(forest.predict(black_box(&probe))))
    });
}

fn bench_signal(c: &mut Criterion) {
    // A 5 s capture at the 35 ms cadence is 143 samples; pad to 256.
    let trace: Vec<f64> = (0..143)
        .map(|i| (i as f64 * 0.37).sin() * 100.0 + 1_500.0)
        .collect();
    c.bench_function("power_spectrum_143_samples", |b| {
        b.iter(|| black_box(trace_stats::spectrum::power_spectrum(black_box(&trace)).unwrap()))
    });
    c.bench_function("feature_vector_143_samples", |b| {
        b.iter(|| {
            black_box(trace_stats::features::feature_vector(black_box(&trace), 96).unwrap())
        })
    });
    c.bench_function("autocorrelation_143_samples", |b| {
        b.iter(|| {
            black_box(trace_stats::periodicity::autocorrelation(black_box(&trace), 71).unwrap())
        })
    });
}

criterion_group!(
    benches,
    bench_sampler,
    bench_loads,
    bench_bigint,
    bench_forest,
    bench_signal
);
criterion_main!(benches);
