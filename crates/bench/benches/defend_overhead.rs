//! Overhead gates for the defense-layer hooks on the sensing path.
//!
//! The `SensorDefense` hook was added to the hwmon refresh path with the
//! promise that an *undefended* device pays only an `Option` match. This
//! bench holds that promise to numbers and writes
//! `BENCH_defend_overhead.json`:
//!
//! * **no_stack** — fresh-conversion captures on an undefended platform
//!   (the reference cost).
//! * **zero_strength** — the same captures after installing a
//!   jitter+noise+throttle stack at strength 0. The stack installs
//!   nothing, so the gate is tight: at most 15% over the reference
//!   (machine-noise allowance — structurally it is the same code path).
//! * **active_stack** — the same stack at full strength, reported with a
//!   loose gate (the runtime adapter adds per-window hashes and a
//!   throttle map lookup; 3x headroom keeps the gate honest without
//!   tracking machine speed).
//!
//! Run with: `cargo bench --bench defend_overhead` (gates enforced) or
//! `-- --quick` (smoke: measures and writes the artifact only).

use std::hint::black_box;
use std::time::Instant;

use amperebleed::{Channel, CurrentSampler, Platform};
use fpga_fabric::virus::VirusConfig;
use sim_defend::{stack_from, LayerKind};
use sim_rt::Record;
use zynq_soc::{PowerDomain, SimTime};

const SAMPLES: usize = 64;
const STACK: [LayerKind; 3] = [LayerKind::Jitter, LayerKind::Noise, LayerKind::Throttle];

/// Overhead ratio gates relative to the undefended reference.
const ZERO_STRENGTH_MAX_RATIO: f64 = 1.15;
const ACTIVE_STACK_MAX_RATIO: f64 = 3.0;

fn time_ns(iters: u64, mut f: impl FnMut() -> f64) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn best_ns(rounds: u32, iters: u64, mut f: impl FnMut() -> f64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        best = best.min(time_ns(iters, &mut f));
    }
    best
}

/// Builds a busy platform, optionally installs the stack at `strength`,
/// and returns a fresh-conversion capture closure over advancing windows.
fn capture_workload(strength: Option<f64>) -> impl FnMut() -> f64 {
    let mut platform = Platform::zcu102(42);
    let virus = platform.deploy_virus(VirusConfig::default()).unwrap();
    virus.activate_groups(80).unwrap();
    if let Some(s) = strength {
        let stack = stack_from(&STACK, s, 7);
        stack.install(platform.hwmon_mut()).unwrap();
    }
    let mut t = 40_000_000u64;
    // The closure owns the platform; the sampler is a Copy wrapper around
    // a borrow, so rebuilding it per call costs nothing measurable.
    move || {
        t += 10 * 35_000_000 * SAMPLES as u64;
        let trace = CurrentSampler::unprivileged(&platform)
            .capture(
                PowerDomain::FpgaLogic,
                Channel::Current,
                SimTime::from_nanos(t),
                1.0 / 0.035,
                SAMPLES,
            )
            .unwrap();
        trace.samples[SAMPLES - 1]
    }
}

fn main() {
    let quick = sim_rt::bench::quick_requested();
    obs::init();

    let (rounds, iters) = if quick { (2, 3) } else { (14, 40) };
    let reference_ns = best_ns(rounds, iters, capture_workload(None));

    let mut rows = Vec::new();
    let mut all_pass = true;
    let mut reference_row = Record::new();
    reference_row
        .push("bench", "no_stack")
        .push("samples_per_capture", SAMPLES as u64)
        .push("iters_per_round", iters)
        .push("rounds", rounds as u64)
        .push("quick", quick)
        .push("ns_per_capture", reference_ns);
    rows.push(reference_row);

    for (name, strength, max_ratio) in [
        ("zero_strength", 0.0, ZERO_STRENGTH_MAX_RATIO),
        ("active_stack", 1.0, ACTIVE_STACK_MAX_RATIO),
    ] {
        let ns = best_ns(rounds, iters, capture_workload(Some(strength)));
        let ratio = ns / reference_ns;
        let pass = ratio <= max_ratio;
        all_pass &= pass;
        println!(
            "defend_overhead/{name}: {ns:>12.1} ns/capture, reference {reference_ns:.0} ns, \
             ratio {ratio:.3}x (gate <= {max_ratio}x) -> {}",
            if pass { "pass" } else { "FAIL" }
        );
        let mut row = Record::new();
        row.push("bench", name)
            .push("samples_per_capture", SAMPLES as u64)
            .push("iters_per_round", iters)
            .push("rounds", rounds as u64)
            .push("quick", quick)
            .push("ns_per_capture", ns)
            .push("reference_ns_per_capture", reference_ns)
            .push("ratio", ratio)
            .push("max_ratio", max_ratio)
            .push("pass", pass);
        rows.push(row);
    }

    // Quick smokes must not clobber the committed full-run artifact.
    let path = if quick {
        "BENCH_defend_overhead.quick.json"
    } else {
        "BENCH_defend_overhead.json"
    };
    std::fs::write(path, sim_rt::to_jsonl(&rows)).expect("write artifact");
    println!("defend_overhead: wrote {path}");

    // Quick (smoke) timings are 3-iteration noise; only a full run judges.
    if !quick && !all_pass {
        std::process::exit(1);
    }
}
