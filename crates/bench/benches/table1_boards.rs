//! Table I — the ARM-FPGA SoC board survey — and Table II — the sensitive
//! ZCU102 sensors. Regenerates both tables from the board catalog.
//!
//! Run with: `cargo bench --bench table1_boards`

use amperebleed_bench::section;
use zynq_soc::board::BoardSpec;

fn main() {
    section("Table I: INA226 sensors on ARM-FPGA SoC boards");
    println!(
        "{:<10} {:<18} {:<16} {:<11} {:>6} {:>8} {:>9}",
        "Board", "FPGA family", "FPGA voltage", "CPU", "DRAM", "INA226", "Price($)"
    );
    for b in BoardSpec::catalog() {
        println!(
            "{:<10} {:<18} {:<16} {:<11} {:>4}GB {:>8} {:>9}",
            b.name,
            b.family.to_string(),
            format!(
                "{:.3}-{:.3} V",
                b.fpga_voltage_band.min_v, b.fpga_voltage_band.max_v
            ),
            b.cpu.to_string(),
            b.dram_gb,
            b.ina_sensor_count,
            b.price_usd,
        );
    }

    section("Table II: unprivileged-readable sensitive sensors (ZCU102)");
    for s in BoardSpec::zcu102().sensitive_sensors() {
        println!(
            "{:<12} shunt {:>4.1} mΩ  {}",
            s.designator,
            s.shunt_milliohm,
            s.domain.description()
        );
    }

    // Shape checks (fail loudly if the catalog drifts from the paper).
    let boards = BoardSpec::catalog();
    assert_eq!(boards.len(), 8);
    assert!(boards.iter().all(|b| b.ina_sensor_count >= 14));
    assert_eq!(BoardSpec::zcu102().sensitive_sensors().len(), 4);
    println!("\n[ok] catalog matches the paper's survey");
}
