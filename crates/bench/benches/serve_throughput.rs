//! Load bench for the sim-serve board farm: sustained throughput and
//! tail latency of a 4-board farm under 8 concurrent clients, gated
//! against the serial (single fresh board, one request at a time)
//! baseline measured in the same process.
//!
//! The load mix models a real farm shift: 8 tenants each polling the
//! same small set of standard campaigns (a shared characterization
//! baseline re-requested by every tenant). The farm beats serial on two
//! axes — compatible requests arriving in one scheduler batch dedup onto
//! a single board lock-hold, and distinct requests spread across boards
//! on multi-core hosts. The serial baseline has neither: it replays
//! every request individually on a fresh board, exactly as the
//! determinism contract specifies. On a single-core runner the batching
//! axis alone must carry the >= 2x gate.
//!
//! Writes `BENCH_serve_throughput.json`: serial and farm req/s plus
//! p50/p95/p99 request latency scraped from the `serve.request.latency_ns`
//! obs histogram.
//!
//! Run with: `cargo bench --bench serve_throughput` (full schedule, exits
//! non-zero if the farm fails the >= 2x speedup gate) or `-- --quick`
//! (smoke: small request count, never fails on the timing).

use std::time::Instant;

use sim_rt::pool::Pool;
use sim_rt::ser::Value;
use sim_rt::Record;
use sim_serve::{exec, Client, Server, ServerConfig};

/// Concurrent clients driving the farm.
const CLIENTS: usize = 8;
/// Boards in the farm under test.
const BOARDS: usize = 4;
/// The farm must beat serial execution by at least this factor.
const MIN_SPEEDUP: f64 = 2.0;

/// The benched campaign: a quickstart sweep, heavy enough that campaign
/// work (not protocol overhead) dominates each request.
fn bench_config() -> Value {
    Value::Object(vec![("samples_per_level".into(), Value::Int(120))])
}

/// The seed of wave `r`: every tenant requests the same standard
/// campaign in each wave, so concurrent arrivals are batch-compatible.
fn wave_seed(r: usize) -> u64 {
    9_000 + r as u64
}

fn main() {
    let quick = sim_rt::bench::quick_requested();
    obs::init();

    let waves = if quick { 2 } else { 4 };
    let total = CLIENTS * waves;
    let config = bench_config();

    // Serial baseline: the same requests, one at a time, each on a fresh
    // board image — what the tenants would run without a farm.
    let serial_start = Instant::now();
    for r in 0..waves {
        for _ in 0..CLIENTS {
            exec::execute("quickstart", wave_seed(r), &config).expect("serial run");
        }
    }
    let serial_s = serial_start.elapsed().as_secs_f64();
    let serial_rps = total as f64 / serial_s;

    // Farm run: drop the serial noise from the registry so the latency
    // histogram below holds only farm-side samples.
    obs::metrics::reset();
    let server = Server::bind(ServerConfig {
        boards: BOARDS,
        farm_seed: 1,
        threads: CLIENTS,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();

    let farm_start = Instant::now();
    let farm_s = sim_rt::pool::service_scope(|svc| {
        let join = svc.spawn("bench-server", move || server.run());
        let clients: Vec<usize> = (0..CLIENTS).collect();
        Pool::new(CLIENTS).par_map(&clients, |_, &c| {
            let mut conn = Client::connect(addr).expect("connect");
            conn.set_tenant(format!("bench-{c}"));
            for r in 0..waves {
                let resp = conn
                    .request("quickstart", Some(wave_seed(r)), config.clone())
                    .expect("request");
                assert_eq!(resp.status, "ok", "{:?}", resp.error);
            }
        });
        let elapsed = farm_start.elapsed().as_secs_f64();
        handle.shutdown();
        join.join().expect("server thread");
        elapsed
    });
    let farm_rps = total as f64 / farm_s;
    let speedup = farm_rps / serial_rps;
    let pass = speedup >= MIN_SPEEDUP;

    let snapshot = obs::metrics::snapshot();
    let latency = snapshot
        .histogram("serve.request.latency_ns")
        .expect("farm run populated the latency histogram")
        .clone();
    assert_eq!(latency.count, total as u64, "every request must be timed");
    let deduped = snapshot.counter("serve.batch.deduped").unwrap_or(0);

    println!(
        "serve_throughput: serial {serial_rps:.2} req/s, farm ({BOARDS} boards, {CLIENTS} \
         clients) {farm_rps:.2} req/s, speedup {speedup:.2}x (gate >= {MIN_SPEEDUP}x) -> {}",
        if pass { "pass" } else { "FAIL" }
    );
    println!(
        "serve_throughput: latency p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms \
         ({deduped}/{total} requests served from a batch)",
        latency.p50 / 1e6,
        latency.p95 / 1e6,
        latency.p99 / 1e6
    );

    let mut row = Record::new();
    row.push("bench", "serve_throughput")
        .push("quick", quick)
        .push("requests", total as u64)
        .push("clients", CLIENTS as u64)
        .push("boards", BOARDS as u64)
        .push("serial_req_per_sec", serial_rps)
        .push("farm_req_per_sec", farm_rps)
        .push("speedup", speedup)
        .push("min_speedup", MIN_SPEEDUP)
        .push("batch_deduped", deduped)
        .push("latency_p50_ns", latency.p50)
        .push("latency_p95_ns", latency.p95)
        .push("latency_p99_ns", latency.p99)
        .push("pass", pass);

    // Quick smokes must not clobber the committed full-run artifact.
    let path = if quick {
        "BENCH_serve_throughput.quick.json"
    } else {
        "BENCH_serve_throughput.json"
    };
    std::fs::write(path, sim_rt::to_jsonl(&[row])).expect("write artifact");
    println!("serve_throughput: wrote {path}");

    // Quick (smoke) timings are single-round noise; only a full run judges.
    if !quick && !pass {
        std::process::exit(1);
    }
}
