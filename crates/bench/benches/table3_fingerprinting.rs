//! Table III — classification accuracy for encrypted accelerator
//! fingerprinting: 39 models, 6 sensor channels, capture durations of
//! 1-5 s, top-1 and top-5 accuracy under 10-fold cross-validation with a
//! 100-tree / depth-32 random forest.
//!
//! Paper shape: FPGA current 0.997 top-1, power 0.989, DRAM 0.958,
//! full-power CPU 0.837, low-power CPU 0.557, FPGA voltage 0.116
//! (chance = 0.0256); accuracy grows with duration.
//!
//! Run with: `cargo bench --bench table3_fingerprinting`
//! Set `AMPEREBLEED_TRACES` to override traces per model (default 10).

use amperebleed::fingerprint::{
    build_fused_dataset, collect_corpus, evaluate_grid, FingerprintConfig, SensorChannel,
    TABLE3_CHANNELS,
};
use amperebleed::Channel;
use amperebleed_bench::{acc, section};
use dnn_models::{zoo, ModelArch};
use rforest::cross_validate;
use zynq_soc::PowerDomain;

fn main() {
    let traces: usize = std::env::var("AMPEREBLEED_TRACES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    let models = zoo();
    let all: Vec<&ModelArch> = models.iter().collect();
    let config = FingerprintConfig {
        traces_per_model: traces,
        capture_seconds: 5.0,
        ..FingerprintConfig::default()
    };

    eprintln!(
        "offline phase: {} models x {} traces x 6 channels ...",
        all.len(),
        config.traces_per_model
    );
    let corpus = collect_corpus(&all, &config).expect("corpus");

    eprintln!("evaluating 6 channels x 5 durations x 10-fold CV ...");
    let durations = [1.0, 2.0, 3.0, 4.0, 5.0];
    let grid = evaluate_grid(&corpus, &config, &durations).expect("grid");

    section("Table III: top-1 / top-5 accuracy (chance = 0.0256)");
    println!(
        "{:<24} {:>13} {:>13} {:>13} {:>13} {:>13}",
        "Sensor", "1 s", "2 s", "3 s", "4 s", "5 s (full)"
    );
    for (sc, cells) in &grid.rows {
        print!("{:<24}", sc.to_string());
        for c in cells {
            print!(" {:>6}/{:<6}", acc(c.top1), acc(c.top5));
        }
        println!();
    }

    // Extension row: all four current sensors fused (the attacker reads
    // them all anyway).
    let currents: Vec<SensorChannel> = TABLE3_CHANNELS
        .iter()
        .copied()
        .filter(|sc| sc.channel == Channel::Current)
        .collect();
    let fused = build_fused_dataset(&corpus, &currents, 5.0, config.resample_len).expect("fused");
    let fused_report = cross_validate(&fused, &config.forest, config.folds, config.seed);
    println!(
        "{:<24} {:>62} {:>6}/{:<6}",
        "All currents (fused)",
        "",
        acc(fused_report.top1),
        acc(fused_report.top5)
    );

    // Shape assertions against the paper's ordering.
    let cell = |d: PowerDomain, ch: Channel| {
        grid.cell(
            SensorChannel {
                domain: d,
                channel: ch,
            },
            5.0,
        )
        .expect("cell")
    };
    let fpga_i = cell(PowerDomain::FpgaLogic, Channel::Current);
    let fpga_v = cell(PowerDomain::FpgaLogic, Channel::Voltage);
    let fpga_p = cell(PowerDomain::FpgaLogic, Channel::Power);
    let dram_i = cell(PowerDomain::Ddr, Channel::Current);
    let lp_i = cell(PowerDomain::LowPowerCpu, Channel::Current);

    assert!(
        fpga_i.top1 > 0.9,
        "FPGA current top-1 {} (paper 0.997)",
        fpga_i.top1
    );
    assert!(
        fpga_p.top1 > 0.8,
        "FPGA power top-1 {} (paper 0.989)",
        fpga_p.top1
    );
    assert!(
        dram_i.top1 > 0.7,
        "DRAM top-1 {} (paper 0.958)",
        dram_i.top1
    );
    assert!(
        fpga_v.top1 < 0.5,
        "FPGA voltage top-1 {} must collapse (paper 0.116)",
        fpga_v.top1
    );
    assert!(fpga_v.top1 > grid.chance(), "voltage still beats chance");
    assert!(fpga_i.top1 > fpga_v.top1 + 0.3, "current >> voltage");
    assert!(lp_i.top1 < fpga_i.top1, "LP CPU below FPGA current");
    // Durations help the strongest channel.
    let fpga_i_1s = grid
        .cell(
            SensorChannel {
                domain: PowerDomain::FpgaLogic,
                channel: Channel::Current,
            },
            1.0,
        )
        .unwrap();
    assert!(fpga_i.top1 >= fpga_i_1s.top1 - 0.05);
    println!("\n[ok] Table III shape reproduced (who wins, and by how much)");
}
