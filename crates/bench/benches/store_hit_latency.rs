//! Latency bench for the content-addressed result store: cold execution
//! vs warm replay of the same campaign requests through a store-enabled
//! farm, gated on the warm path being >= 50x faster per request.
//!
//! The shape mirrors how a campaign archive is actually used: a sweep
//! runs once (cold — every request misses, executes on a board, and is
//! inserted), then analysis tooling replays the same requests (warm —
//! every request is served from the hot tier before admission ever sees
//! it). The bench also re-checks the store's core soundness claim inline:
//! every warm `result` must be byte-identical to its cold counterpart,
//! and every warm response must carry the `cached` flag.
//!
//! Writes `BENCH_store_hit_latency.json`: cold/warm mean per-request
//! latency, the speedup, and the store counters after the run.
//!
//! Run with: `cargo bench --bench store_hit_latency` (full schedule,
//! exits non-zero if the warm path fails the >= 50x gate) or `-- --quick`
//! (smoke: small request count, never fails on the timing).

use std::time::Instant;

use sim_rt::ser::Value;
use sim_rt::Record;
use sim_serve::{Client, Server, ServerConfig};
use sim_store::StoreConfig;

/// The warm path must beat cold execution by at least this factor.
const MIN_SPEEDUP: f64 = 50.0;

/// Distinct campaign requests in one sweep (distinct seeds → distinct
/// content addresses).
fn sweep(quick: bool) -> Vec<(&'static str, u64, Value)> {
    let seeds = if quick { 3 } else { 8 };
    let mut requests: Vec<(&'static str, u64, Value)> = (0..seeds)
        .map(|i| {
            (
                "quickstart",
                5_000 + i,
                // Heavy enough that board execution (not the TCP round
                // trip both paths pay) dominates a cold request.
                Value::Object(vec![("samples_per_level".into(), Value::Int(400))]),
            )
        })
        .collect();
    requests.push((
        "covert",
        5_100,
        Value::Object(vec![("payload".into(), Value::Str("warm".into()))]),
    ));
    requests
}

fn main() {
    let quick = sim_rt::bench::quick_requested();
    obs::init();

    let requests = sweep(quick);
    let warm_rounds = if quick { 2 } else { 20 };

    let server = Server::bind(ServerConfig {
        boards: 2,
        farm_seed: 3,
        store: Some(StoreConfig::default()),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();

    let (cold_s, warm_s, cold_results) = sim_rt::pool::service_scope(|svc| {
        let join = svc.spawn("store-bench-server", move || server.run());
        let mut conn = Client::connect(addr).expect("connect");

        // Cold sweep: every request executes on a board and is inserted.
        let cold_start = Instant::now();
        let cold_results: Vec<String> = requests
            .iter()
            .map(|(verb, seed, config)| {
                let resp = conn
                    .request(verb, Some(*seed), config.clone())
                    .expect("cold request");
                assert_eq!(resp.status, "ok", "{verb}: {:?}", resp.error);
                assert_ne!(resp.cached, Some(true), "cold sweep cannot hit");
                resp.result.expect("ok has a result").to_json()
            })
            .collect();
        let cold_s = cold_start.elapsed().as_secs_f64();

        // Warm replays: the same sweep, served from the store.
        let warm_start = Instant::now();
        for _ in 0..warm_rounds {
            for ((verb, seed, config), cold) in requests.iter().zip(&cold_results) {
                let resp = conn
                    .request(verb, Some(*seed), config.clone())
                    .expect("warm request");
                assert_eq!(resp.status, "ok", "{verb}: {:?}", resp.error);
                assert_eq!(resp.cached, Some(true), "warm replay must hit");
                let warm = resp.result.expect("ok has a result").to_json();
                assert_eq!(&warm, cold, "{verb}/{seed}: warm bytes diverged");
            }
        }
        let warm_s = warm_start.elapsed().as_secs_f64();

        handle.shutdown();
        join.join().expect("server thread");
        (cold_s, warm_s, cold_results)
    });

    let cold_per_req = cold_s / requests.len() as f64;
    let warm_per_req = warm_s / (requests.len() * warm_rounds) as f64;
    let speedup = cold_per_req / warm_per_req;
    let pass = speedup >= MIN_SPEEDUP;

    let snapshot = obs::metrics::snapshot();
    let hits = snapshot.counter("store.hits").unwrap_or(0);
    let misses = snapshot.counter("store.misses").unwrap_or(0);
    let inserts = snapshot.counter("store.inserts").unwrap_or(0);
    assert_eq!(
        hits,
        (requests.len() * warm_rounds) as u64,
        "every warm request must be a store hit"
    );
    assert_eq!(inserts, cold_results.len() as u64);

    println!(
        "store_hit_latency: cold {:.3} ms/req, warm {:.4} ms/req, speedup {speedup:.1}x \
         (gate >= {MIN_SPEEDUP}x) -> {}",
        cold_per_req * 1e3,
        warm_per_req * 1e3,
        if pass { "pass" } else { "FAIL" }
    );
    println!(
        "store_hit_latency: {} requests, {warm_rounds} warm rounds, store hits {hits}, \
         misses {misses}, inserts {inserts}",
        requests.len()
    );

    let mut row = Record::new();
    row.push("bench", "store_hit_latency")
        .push("quick", quick)
        .push("requests", requests.len() as u64)
        .push("warm_rounds", warm_rounds as u64)
        .push("cold_ms_per_req", cold_per_req * 1e3)
        .push("warm_ms_per_req", warm_per_req * 1e3)
        .push("speedup", speedup)
        .push("min_speedup", MIN_SPEEDUP)
        .push("store_hits", hits)
        .push("store_misses", misses)
        .push("store_inserts", inserts)
        .push("pass", pass);

    // Quick smokes must not clobber the committed full-run artifact.
    let path = if quick {
        "BENCH_store_hit_latency.quick.json"
    } else {
        "BENCH_store_hit_latency.json"
    };
    std::fs::write(path, sim_rt::to_jsonl(&[row])).expect("write artifact");
    println!("store_hit_latency: wrote {path}");

    // Quick (smoke) timings are single-round noise; only a full run judges.
    if !quick && !pass {
        std::process::exit(1);
    }
}
