//! Behavioural model of the Xilinx Deep-learning Processing Unit (DPU).
//!
//! The DPU is the victim accelerator of the paper's fingerprinting case
//! study (Section IV-B): a commercial, IEEE-1735-encrypted IP core that
//! executes quantized DNN inference on the FPGA fabric. Because its HDL is
//! encrypted, an attacker cannot learn the layer schedule from the source —
//! but the schedule is *electrically* visible: each layer drives the MAC
//! array and DDR traffic differently, producing a model-specific current
//! signature on the FPGA, DRAM and CPU rails (Figure 3).
//!
//! The model lowers a [`dnn_models::ModelArch`] to a [`DpuSchedule`] with a
//! roofline timing model (compute-bound vs. memory-bound per layer) and
//! executes it as a [`zynq_soc::PowerLoad`] spanning three power domains:
//!
//! * **FPGA logic** — MAC-array switching scaled by per-layer utilization,
//! * **DDR** — current proportional to achieved memory bandwidth,
//! * **Full-power CPU** — the runtime's pre/post-processing between
//!   inferences (image resize, softmax, scheduling).
//!
//! # Examples
//!
//! ```
//! use dnn_models::zoo;
//! use dpu::{DpuAccelerator, DpuConfig};
//! use zynq_soc::{PowerDomain, PowerLoad, SimTime};
//!
//! let models = zoo();
//! let resnet = models.iter().find(|m| m.name == "resnet-50").unwrap();
//! let dpu = DpuAccelerator::new(DpuConfig::default(), 1);
//! dpu.load_model(resnet);
//! let i = dpu.current_ma(SimTime::from_ms(10), PowerDomain::FpgaLogic);
//! assert!(i > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accelerator;
pub mod isa;
pub mod runner;
mod schedule;

pub use accelerator::{DpuAccelerator, DpuConfig};
pub use schedule::{DpuSchedule, ScheduledLayer};
