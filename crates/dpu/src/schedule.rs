use dnn_models::{LayerKind, ModelArch};
use zynq_soc::SimTime;

/// One layer as scheduled on the DPU: how long it runs and how hard it
/// drives the fabric and the memory system.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledLayer {
    /// Source layer name.
    pub name: String,
    /// Source layer kind.
    pub kind: LayerKind,
    /// Execution time.
    pub duration: SimTime,
    /// Fraction of peak MAC throughput achieved in `[0, 1]`.
    pub utilization: f64,
    /// Achieved DRAM bandwidth in GB/s.
    pub dram_gbps: f64,
}

/// A model lowered to the DPU's execution timeline.
///
/// # Examples
///
/// ```
/// use dnn_models::zoo;
/// use dpu::{DpuConfig, DpuSchedule};
///
/// let models = zoo();
/// let vgg = models.iter().find(|m| m.name == "vgg-19").unwrap();
/// let mobilenet = models.iter().find(|m| m.name == "mobilenet-v1").unwrap();
/// let cfg = DpuConfig::default();
/// let sv = DpuSchedule::lower(vgg, &cfg);
/// let sm = DpuSchedule::lower(mobilenet, &cfg);
/// assert!(sv.inference_time() > sm.inference_time());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DpuSchedule {
    /// Model name this schedule was lowered from.
    pub model_name: String,
    /// Per-layer timeline in execution order.
    pub layers: Vec<ScheduledLayer>,
    /// Cumulative end time of each layer in nanoseconds (for O(log n)
    /// timeline lookups on the electrical hot path).
    ends_ns: Vec<u64>,
}

impl DpuSchedule {
    /// Lowers a model through the roofline timing model: each layer runs
    /// for `max(compute_time, memory_time)` where compute time depends on
    /// the layer kind's achievable efficiency and memory time on the DPU's
    /// DDR bandwidth share.
    pub fn lower(model: &ModelArch, config: &crate::DpuConfig) -> Self {
        let peak_macs_per_s = config.peak_gmacs * 1e9;
        let bw_bytes_per_s = config.dram_bandwidth_gbps * 1e9;
        let layers: Vec<ScheduledLayer> = model
            .layers
            .iter()
            .map(|l| {
                let eff = l.kind.compute_efficiency();
                let t_compute = l.macs as f64 / (peak_macs_per_s * eff);
                let t_mem = l.dram_bytes as f64 / bw_bytes_per_s;
                let t = t_compute.max(t_mem).max(config.layer_overhead_s);
                let utilization = if t > 0.0 {
                    (l.macs as f64 / peak_macs_per_s / t).min(1.0)
                } else {
                    0.0
                };
                let dram_gbps = if t > 0.0 {
                    l.dram_bytes as f64 / t / 1e9
                } else {
                    0.0
                };
                ScheduledLayer {
                    name: l.name.clone(),
                    kind: l.kind,
                    duration: SimTime::from_secs_f64(t),
                    utilization,
                    dram_gbps: dram_gbps.min(config.dram_bandwidth_gbps),
                }
            })
            .collect();
        let mut ends_ns = Vec::with_capacity(layers.len());
        let mut acc = 0u64;
        for l in &layers {
            acc += l.duration.as_nanos();
            ends_ns.push(acc);
        }
        DpuSchedule {
            model_name: model.name.clone(),
            layers,
            ends_ns,
        }
    }

    /// End-to-end accelerator time of one inference (excluding the CPU
    /// pre/post-processing, which [`crate::DpuAccelerator`] adds).
    pub fn inference_time(&self) -> SimTime {
        self.layers
            .iter()
            .fold(SimTime::ZERO, |acc, l| acc + l.duration)
    }

    /// The layer active at `offset` into an inference, if any.
    pub fn layer_at(&self, offset: SimTime) -> Option<&ScheduledLayer> {
        let ns = offset.as_nanos();
        // First layer whose cumulative end is strictly greater than ns.
        let idx = self.ends_ns.partition_point(|&end| end <= ns);
        self.layers.get(idx)
    }

    /// Mean MAC-array utilization, time-weighted.
    pub fn mean_utilization(&self) -> f64 {
        let total = self.inference_time().as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        self.layers
            .iter()
            .map(|l| l.utilization * l.duration.as_secs_f64())
            .sum::<f64>()
            / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DpuConfig;
    use dnn_models::zoo;

    fn schedule_for(name: &str) -> DpuSchedule {
        let models = zoo();
        let m = models.iter().find(|m| m.name == name).unwrap();
        DpuSchedule::lower(m, &DpuConfig::default())
    }

    #[test]
    fn inference_latencies_are_plausible() {
        // Published ZCU102 DPU latencies: ResNet-50 ~13 ms, VGG-16 ~40 ms,
        // MobileNet-v1 ~4 ms. Shapes must hold within loose bounds.
        let resnet = schedule_for("resnet-50").inference_time().as_secs_f64() * 1e3;
        let vgg = schedule_for("vgg-19").inference_time().as_secs_f64() * 1e3;
        let mobilenet = schedule_for("mobilenet-v1").inference_time().as_secs_f64() * 1e3;
        assert!((4.0..40.0).contains(&resnet), "resnet-50 {resnet} ms");
        assert!((20.0..150.0).contains(&vgg), "vgg-19 {vgg} ms");
        assert!((1.0..15.0).contains(&mobilenet), "mobilenet {mobilenet} ms");
        assert!(vgg > resnet && resnet > mobilenet);
    }

    #[test]
    fn conv_layers_reach_high_utilization() {
        let s = schedule_for("vgg-19");
        let convs: Vec<&ScheduledLayer> = s
            .layers
            .iter()
            .filter(|l| l.kind == dnn_models::LayerKind::Conv && l.utilization > 0.0)
            .collect();
        assert!(!convs.is_empty());
        let peak = convs.iter().map(|l| l.utilization).fold(0.0, f64::max);
        assert!(
            peak > 0.5,
            "VGG convs should near-saturate the array ({peak})"
        );
    }

    #[test]
    fn depthwise_layers_are_memory_bound() {
        let s = schedule_for("mobilenet-v1");
        let dws: Vec<&ScheduledLayer> = s
            .layers
            .iter()
            .filter(|l| l.kind == dnn_models::LayerKind::DepthwiseConv)
            .collect();
        assert!(!dws.is_empty());
        for l in dws {
            assert!(
                l.utilization < 0.3,
                "{} runs at {} utilization, expected memory-bound",
                l.name,
                l.utilization
            );
        }
    }

    #[test]
    fn layer_at_walks_the_timeline() {
        let s = schedule_for("resnet-50");
        let first = s.layer_at(SimTime::ZERO).unwrap();
        assert_eq!(first.name, s.layers[0].name);
        let total = s.inference_time();
        assert!(s.layer_at(total).is_none());
        let mid = SimTime::from_nanos(total.as_nanos() / 2);
        assert!(s.layer_at(mid).is_some());
    }

    #[test]
    fn bandwidth_capped_at_config() {
        let cfg = DpuConfig::default();
        let s = schedule_for("mobilenet-v1");
        for l in &s.layers {
            assert!(l.dram_gbps <= cfg.dram_bandwidth_gbps + 1e-9);
            assert!((0.0..=1.0).contains(&l.utilization));
        }
    }

    #[test]
    fn mean_utilization_orders_families() {
        // VGG (dense convs) keeps the array busier than MobileNet (dw).
        let vgg = schedule_for("vgg-19").mean_utilization();
        let mb = schedule_for("mobilenet-v1").mean_utilization();
        assert!(vgg > mb, "vgg {vgg} vs mobilenet {mb}");
    }

    #[test]
    fn all_zoo_models_lower_cleanly() {
        let cfg = DpuConfig::default();
        for m in zoo() {
            let s = DpuSchedule::lower(&m, &cfg);
            assert_eq!(s.layers.len(), m.layers.len());
            assert!(s.inference_time() > SimTime::ZERO, "{}", m.name);
        }
    }
}
