//! DPU instruction set and micro-architectural executor.
//!
//! The real Xilinx DPU executes programs produced by the Vitis AI
//! compiler: LOAD/SAVE instructions move tiles between DDR and on-chip
//! buffers while CONV/POOL/ELEW instructions drive the compute engines,
//! with double buffering overlapping the two. The encrypted IP hides this
//! machinery — but its *timing* is exactly what leaks through the current
//! sensors, so the reproduction models it explicitly:
//!
//! * [`Program::compile`] lowers a [`dnn_models::ModelArch`] to the
//!   instruction stream (per layer: weight/activation LOADs, the engine
//!   op, the result SAVE, with an END terminator).
//! * [`Executor::run`] schedules the stream onto a two-engine machine
//!   (memory mover + compute array) with double buffering: a layer's
//!   LOADs overlap the previous layer's compute, reproducing the roofline
//!   behaviour `t = max(t_mem, t_compute)` that
//!   [`crate::DpuSchedule::lower`] uses in closed form.

use dnn_models::{LayerKind, ModelArch};
use zynq_soc::SimTime;

use crate::DpuConfig;

/// DPU opcodes (simplified from the B4096 instruction set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Move a tile from DDR into on-chip buffers.
    Load,
    /// Move a result tile from on-chip buffers to DDR.
    Save,
    /// Standard convolution on the MAC array.
    Conv,
    /// Depthwise convolution.
    DwConv,
    /// Pooling.
    Pool,
    /// Elementwise add / concat plumbing.
    Elew,
    /// Fully connected (matrix-vector) on the MAC array.
    Fc,
    /// Program terminator.
    End,
}

impl Opcode {
    /// Whether this opcode occupies the memory-mover engine.
    pub fn is_memory(self) -> bool {
        matches!(self, Opcode::Load | Opcode::Save)
    }

    /// Whether this opcode occupies the compute engine.
    pub fn is_compute(self) -> bool {
        matches!(
            self,
            Opcode::Conv | Opcode::DwConv | Opcode::Pool | Opcode::Elew | Opcode::Fc
        )
    }
}

/// One DPU instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// Operation.
    pub opcode: Opcode,
    /// MAC work for compute ops (0 for memory ops).
    pub macs: u64,
    /// DDR bytes for memory ops (0 for compute ops).
    pub bytes: u64,
    /// Source layer name (empty for END).
    pub layer: String,
}

/// Error produced by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProgramError {
    /// The program is empty.
    Empty,
    /// The program does not end with END.
    MissingEnd,
    /// An END appears before the final position.
    EarlyEnd(usize),
    /// A compute instruction carries no work.
    EmptyCompute(usize),
    /// A memory instruction moves no bytes.
    EmptyTransfer(usize),
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::Empty => write!(f, "program is empty"),
            ProgramError::MissingEnd => write!(f, "program does not end with END"),
            ProgramError::EarlyEnd(i) => write!(f, "END at position {i} before the end"),
            ProgramError::EmptyCompute(i) => write!(f, "compute instruction {i} has no work"),
            ProgramError::EmptyTransfer(i) => write!(f, "memory instruction {i} moves no bytes"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// A compiled DPU program.
///
/// # Examples
///
/// ```
/// use dnn_models::zoo;
/// use dpu::isa::Program;
///
/// let models = zoo();
/// let resnet = models.iter().find(|m| m.name == "resnet-50").unwrap();
/// let program = Program::compile(resnet);
/// program.validate().unwrap();
/// assert!(program.len() > resnet.layers.len()); // loads/saves added
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    instructions: Vec<Instruction>,
    model_name: String,
}

impl Program {
    /// Lowers a model to the instruction stream. Each layer becomes
    /// `LOAD(weights+ifm) ; <engine op> ; SAVE(ofm)`, splitting the
    /// layer's recorded DRAM traffic 3:1 between the load (weights and
    /// input dominate) and the save.
    pub fn compile(model: &ModelArch) -> Self {
        let mut instructions = Vec::with_capacity(model.layers.len() * 3 + 1);
        for layer in &model.layers {
            let load_bytes = layer.dram_bytes * 3 / 4;
            let save_bytes = layer.dram_bytes - load_bytes;
            if load_bytes > 0 {
                instructions.push(Instruction {
                    opcode: Opcode::Load,
                    macs: 0,
                    bytes: load_bytes,
                    layer: layer.name.clone(),
                });
            }
            let opcode = match layer.kind {
                LayerKind::Conv => Opcode::Conv,
                LayerKind::DepthwiseConv => Opcode::DwConv,
                LayerKind::Pool => Opcode::Pool,
                LayerKind::Add | LayerKind::Concat => Opcode::Elew,
                LayerKind::FullyConnected => Opcode::Fc,
            };
            instructions.push(Instruction {
                opcode,
                macs: layer.macs.max(1),
                bytes: 0,
                layer: layer.name.clone(),
            });
            if save_bytes > 0 {
                instructions.push(Instruction {
                    opcode: Opcode::Save,
                    macs: 0,
                    bytes: save_bytes,
                    layer: layer.name.clone(),
                });
            }
        }
        instructions.push(Instruction {
            opcode: Opcode::End,
            macs: 0,
            bytes: 0,
            layer: String::new(),
        });
        Program {
            instructions,
            model_name: model.name.clone(),
        }
    }

    /// The instruction stream.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions including END.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Model this program was compiled from.
    pub fn model_name(&self) -> &str {
        &self.model_name
    }

    /// Static checks a well-formed compiler output must satisfy.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProgramError`] found.
    pub fn validate(&self) -> Result<(), ProgramError> {
        if self.instructions.is_empty() {
            return Err(ProgramError::Empty);
        }
        if self.instructions.last().map(|i| i.opcode) != Some(Opcode::End) {
            return Err(ProgramError::MissingEnd);
        }
        for (i, instr) in self.instructions.iter().enumerate() {
            match instr.opcode {
                Opcode::End if i + 1 != self.instructions.len() => {
                    return Err(ProgramError::EarlyEnd(i));
                }
                op if op.is_compute() && instr.macs == 0 => {
                    return Err(ProgramError::EmptyCompute(i));
                }
                op if op.is_memory() && instr.bytes == 0 => {
                    return Err(ProgramError::EmptyTransfer(i));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// One scheduled instruction in the execution timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineEntry {
    /// Index into the program's instruction stream.
    pub instruction: usize,
    /// Start time relative to inference start.
    pub start: SimTime,
    /// End time relative to inference start.
    pub end: SimTime,
}

/// Two-engine executor with double buffering.
#[derive(Debug, Clone)]
pub struct Executor {
    config: DpuConfig,
}

impl Executor {
    /// Creates an executor for the given DPU configuration.
    pub fn new(config: DpuConfig) -> Self {
        Executor { config }
    }

    fn compute_time_s(&self, instr: &Instruction) -> f64 {
        let eff = match instr.opcode {
            Opcode::Conv => LayerKind::Conv.compute_efficiency(),
            Opcode::DwConv => LayerKind::DepthwiseConv.compute_efficiency(),
            Opcode::Pool => LayerKind::Pool.compute_efficiency(),
            Opcode::Elew => LayerKind::Add.compute_efficiency(),
            Opcode::Fc => LayerKind::FullyConnected.compute_efficiency(),
            _ => return 0.0,
        };
        instr.macs as f64 / (self.config.peak_gmacs * 1e9 * eff)
    }

    fn memory_time_s(&self, instr: &Instruction) -> f64 {
        instr.bytes as f64 / (self.config.dram_bandwidth_gbps * 1e9)
    }

    /// Executes the program: memory and compute engines run concurrently
    /// (double buffering) but instructions on the *same* engine serialize,
    /// and a layer's compute cannot start before its LOAD finished.
    /// Returns the timeline and the end-to-end latency.
    ///
    /// # Errors
    ///
    /// Propagates [`Program::validate`] failures.
    pub fn run(&self, program: &Program) -> Result<(Vec<TimelineEntry>, SimTime), ProgramError> {
        program.validate()?;
        let mut timeline = Vec::with_capacity(program.len());
        let mut mem_free = 0.0f64; // next free time of the memory mover
        let mut compute_free = 0.0f64; // next free time of the compute array
        let mut layer_data_ready = 0.0f64; // when the pending LOAD completes
        for (i, instr) in program.instructions().iter().enumerate() {
            let (start, end) = match instr.opcode {
                Opcode::Load => {
                    let start = mem_free;
                    let end = start + self.memory_time_s(instr);
                    mem_free = end;
                    layer_data_ready = end;
                    (start, end)
                }
                Opcode::Save => {
                    // The save waits for the producing compute op.
                    let start = mem_free.max(compute_free);
                    let end = start + self.memory_time_s(instr);
                    mem_free = end;
                    (start, end)
                }
                Opcode::End => {
                    let t = mem_free.max(compute_free);
                    (t, t)
                }
                _ => {
                    // Compute waits for its own data and the engine.
                    let start = compute_free.max(layer_data_ready) + self.config.layer_overhead_s;
                    let end = start + self.compute_time_s(instr);
                    compute_free = end;
                    (start, end)
                }
            };
            timeline.push(TimelineEntry {
                instruction: i,
                start: SimTime::from_secs_f64(start),
                end: SimTime::from_secs_f64(end),
            });
        }
        let latency = timeline.last().map(|e| e.end).unwrap_or(SimTime::ZERO);
        Ok((timeline, latency))
    }

    /// End-to-end latency of a program (convenience wrapper).
    ///
    /// # Errors
    ///
    /// Propagates [`Program::validate`] failures.
    pub fn latency(&self, program: &Program) -> Result<SimTime, ProgramError> {
        Ok(self.run(program)?.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DpuSchedule;
    use dnn_models::zoo;

    fn resnet() -> dnn_models::ModelArch {
        zoo().into_iter().find(|m| m.name == "resnet-50").unwrap()
    }

    #[test]
    fn compile_produces_valid_programs_for_whole_zoo() {
        for model in zoo() {
            let program = Program::compile(&model);
            program
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", model.name));
            assert_eq!(program.model_name(), model.name);
            assert!(!program.is_empty());
        }
    }

    #[test]
    fn program_structure_per_layer() {
        let model = resnet();
        let program = Program::compile(&model);
        // Every layer contributes an engine op; most also load and save.
        let compute_ops = program
            .instructions()
            .iter()
            .filter(|i| i.opcode.is_compute())
            .count();
        assert_eq!(compute_ops, model.layers.len());
        assert_eq!(program.instructions().last().unwrap().opcode, Opcode::End);
    }

    #[test]
    fn validate_catches_malformed_programs() {
        let model = resnet();
        let good = Program::compile(&model);

        let mut empty = good.clone();
        empty.instructions.clear();
        assert_eq!(empty.validate(), Err(ProgramError::Empty));

        let mut no_end = good.clone();
        no_end.instructions.pop();
        assert_eq!(no_end.validate(), Err(ProgramError::MissingEnd));

        let mut early_end = good.clone();
        early_end.instructions.insert(
            0,
            Instruction {
                opcode: Opcode::End,
                macs: 0,
                bytes: 0,
                layer: String::new(),
            },
        );
        assert_eq!(early_end.validate(), Err(ProgramError::EarlyEnd(0)));

        let mut lazy = good.clone();
        let conv_idx = lazy
            .instructions
            .iter()
            .position(|i| i.opcode.is_compute())
            .unwrap();
        lazy.instructions[conv_idx].macs = 0;
        assert_eq!(lazy.validate(), Err(ProgramError::EmptyCompute(conv_idx)));
    }

    #[test]
    fn executor_latency_tracks_roofline_schedule() {
        // The ISA executor and the closed-form roofline must agree within
        // a modest factor (the executor has cross-layer overlap the
        // closed form approximates).
        let config = DpuConfig::default();
        let executor = Executor::new(config);
        for name in ["resnet-50", "mobilenet-v1", "vgg-19"] {
            let model = zoo().into_iter().find(|m| m.name == name).unwrap();
            let program = Program::compile(&model);
            let isa_latency = executor.latency(&program).unwrap().as_secs_f64();
            let roofline = DpuSchedule::lower(&model, &config)
                .inference_time()
                .as_secs_f64();
            let ratio = isa_latency / roofline;
            // The executor serializes save->next-load on the memory mover
            // and pays per-op issue overhead, so it can run somewhat past
            // the idealized closed form on memory-bound networks.
            assert!(
                (0.5..2.0).contains(&ratio),
                "{name}: isa {isa_latency}s vs roofline {roofline}s"
            );
        }
    }

    #[test]
    fn double_buffering_beats_serial_execution() {
        let model = resnet();
        let program = Program::compile(&model);
        let config = DpuConfig::default();
        let executor = Executor::new(config);
        let (_, overlapped) = executor.run(&program).unwrap();
        // Serial reference: every instruction back-to-back, including the
        // same per-op issue overhead the executor pays.
        let serial: f64 = program
            .instructions()
            .iter()
            .map(|i| {
                let overhead = if i.opcode.is_compute() {
                    config.layer_overhead_s
                } else {
                    0.0
                };
                executor.compute_time_s(i) + executor.memory_time_s(i) + overhead
            })
            .sum();
        assert!(
            overlapped.as_secs_f64() < serial,
            "overlap must shorten execution ({} vs {serial})",
            overlapped.as_secs_f64()
        );
    }

    #[test]
    fn timeline_is_causally_ordered_per_engine() {
        let program = Program::compile(&resnet());
        let executor = Executor::new(DpuConfig::default());
        let (timeline, latency) = executor.run(&program).unwrap();
        let mut mem_end = SimTime::ZERO;
        let mut compute_end = SimTime::ZERO;
        for entry in &timeline {
            let instr = &program.instructions()[entry.instruction];
            assert!(entry.end >= entry.start);
            assert!(entry.end <= latency);
            if instr.opcode.is_memory() {
                assert!(entry.start >= mem_end, "memory engine overlap at {entry:?}");
                mem_end = entry.end;
            } else if instr.opcode.is_compute() {
                assert!(
                    entry.start >= compute_end,
                    "compute engine overlap at {entry:?}"
                );
                compute_end = entry.end;
            }
        }
    }

    #[test]
    fn error_display() {
        assert!(ProgramError::Empty.to_string().contains("empty"));
        assert!(ProgramError::EarlyEnd(3).to_string().contains('3'));
    }
}
