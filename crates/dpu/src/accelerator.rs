use std::sync::RwLock;

use dnn_models::ModelArch;
use zynq_soc::{hash01, PowerDomain, PowerLoad, SimTime};

use crate::DpuSchedule;

/// Electrical and performance parameters of the deployed DPU core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpuConfig {
    /// Peak MAC throughput in GMAC/s (B4096 core at 300 MHz: ~614 GMACs
    /// for 8-bit operands, counting one MAC as one operation).
    pub peak_gmacs: f64,
    /// Effective DRAM bandwidth available to the DPU, GB/s.
    pub dram_bandwidth_gbps: f64,
    /// Fixed per-layer scheduling overhead, seconds.
    pub layer_overhead_s: f64,
    /// Fabric current of the idle (clocked) DPU core, mA.
    pub fpga_idle_ma: f64,
    /// Additional fabric current of the MAC array at full utilization and
    /// full switching intensity, mA.
    pub fpga_active_ma: f64,
    /// DDR rail current per GB/s of traffic, mA.
    pub ddr_ma_per_gbps: f64,
    /// Full-power CPU current of the runtime's pre/post-processing, mA.
    pub cpu_pre_post_ma: f64,
    /// CPU pre/post-processing time per inference.
    pub pre_post_time: SimTime,
    /// Low-power domain coupling: extra mA at full DPU utilization
    /// (interconnect/OCM traffic). Small — this is why the LP-CPU channel
    /// fingerprints worse than the others in Table III.
    pub lp_coupling_ma: f64,
    /// Relative per-inference duration jitter (input-dependent work).
    pub inference_jitter: f64,
}

impl Default for DpuConfig {
    fn default() -> Self {
        DpuConfig {
            peak_gmacs: 614.0,
            dram_bandwidth_gbps: 9.6,
            layer_overhead_s: 12e-6,
            fpga_idle_ma: 380.0,
            fpga_active_ma: 2_300.0,
            ddr_ma_per_gbps: 55.0,
            cpu_pre_post_ma: 320.0,
            pre_post_time: SimTime::from_ms(6),
            lp_coupling_ma: 6.5,
            inference_jitter: 0.02,
        }
    }
}

/// The deployed DPU core, running inference request loops.
///
/// The accelerator executes whatever model the victim loaded, one inference
/// after another (the paper triggers each victim model "in series for 5
/// seconds"). Loading a model swaps the schedule atomically; the electrical
/// query path only takes a read lock.
///
/// # Examples
///
/// ```
/// use dnn_models::zoo;
/// use dpu::{DpuAccelerator, DpuConfig};
/// use zynq_soc::{PowerDomain, PowerLoad, SimTime};
///
/// let dpu = DpuAccelerator::new(DpuConfig::default(), 7);
/// let models = zoo();
/// dpu.load_model(&models[0]);
/// assert_eq!(dpu.loaded_model().as_deref(), Some(models[0].name.as_str()));
/// let busy = dpu.current_ma(SimTime::from_ms(3), PowerDomain::FpgaLogic);
/// dpu.unload();
/// let idle = dpu.current_ma(SimTime::from_ms(3), PowerDomain::FpgaLogic);
/// assert!(busy >= idle);
/// ```
#[derive(Debug)]
pub struct DpuAccelerator {
    config: DpuConfig,
    /// Loaded schedule plus the simulation time at which it was loaded
    /// (inference loops are phase-aligned to the load instant).
    state: RwLock<Option<LoadedModel>>,
    seed: u64,
}

#[derive(Debug)]
struct LoadedModel {
    schedule: DpuSchedule,
    loaded_at: SimTime,
    /// Per-model CPU pre/post-processing time: image decode + resize cost
    /// scales with the model's input resolution.
    pre_post: SimTime,
}

impl DpuAccelerator {
    /// Instantiates the accelerator; `seed` fixes activity jitter.
    pub fn new(config: DpuConfig, seed: u64) -> Self {
        DpuAccelerator {
            config,
            state: RwLock::new(None),
            seed,
        }
    }

    /// The accelerator configuration.
    pub fn config(&self) -> &DpuConfig {
        &self.config
    }

    /// Loads a model and starts its inference loop at simulation time zero.
    pub fn load_model(&self, model: &ModelArch) {
        self.load_model_at(model, SimTime::ZERO);
    }

    /// Loads a model whose inference loop starts at `at`.
    pub fn load_model_at(&self, model: &ModelArch, at: SimTime) {
        obs::counter!("dpu.model_loads").inc();
        obs::debug!(
            "dpu.accelerator",
            sim = at.as_nanos(),
            "model loaded";
            "model" => model.name.as_str()
        );
        let schedule = DpuSchedule::lower(model, &self.config);
        // Resize/normalize cost grows with the model's input resolution
        // (ILSVRC images are rescaled per-model, Section IV-B).
        let scale = (model.input as f64 / 224.0).powi(2);
        let pre_post = SimTime::from_secs_f64(self.config.pre_post_time.as_secs_f64() * scale);
        *self.state.write().expect("dpu state lock poisoned") = Some(LoadedModel {
            schedule,
            loaded_at: at,
            pre_post,
        });
        zynq_soc::invalidate_load_caches();
    }

    /// Stops inference and unloads the model.
    pub fn unload(&self) {
        *self.state.write().expect("dpu state lock poisoned") = None;
        zynq_soc::invalidate_load_caches();
    }

    /// Name of the loaded model, if any.
    pub fn loaded_model(&self) -> Option<String> {
        self.state
            .read()
            .expect("dpu state lock poisoned")
            .as_ref()
            .map(|m| m.schedule.model_name.clone())
    }

    /// One inference period: CPU pre/post phase followed by the
    /// accelerator timeline.
    fn period(&self, m: &LoadedModel) -> SimTime {
        m.pre_post + m.schedule.inference_time()
    }

    /// Electrical activity at `t`, described as
    /// `(utilization, switching, dram_gbps, in_pre_post)`.
    fn activity_at(&self, t: SimTime, m: &LoadedModel) -> (f64, f64, f64, bool) {
        if t < m.loaded_at {
            return (0.0, 0.0, 0.0, false);
        }
        let period = self.period(m).as_nanos();
        if period == 0 {
            return (0.0, 0.0, 0.0, false);
        }
        let since = (t - m.loaded_at).as_nanos();
        let inference_idx = since / period;
        let offset = since % period;
        // Input-dependent jitter: each inference is a little faster/slower;
        // model it as a phase wobble of the layer lookup.
        let jitter =
            (hash01(self.seed, 2, inference_idx) - 0.5) * 2.0 * self.config.inference_jitter;
        let pre_post_ns = m.pre_post.as_nanos();
        if offset < pre_post_ns {
            return (0.0, 0.0, 0.2, true); // light memory traffic during resize
        }
        let into_layers = ((offset - pre_post_ns) as f64 * (1.0 + jitter)) as u64;
        match m.schedule.layer_at(SimTime::from_nanos(into_layers)) {
            Some(layer) => (
                layer.utilization,
                layer.kind.switching_intensity(),
                layer.dram_gbps,
                false,
            ),
            None => (0.0, 0.0, 0.0, false),
        }
    }
}

impl PowerLoad for DpuAccelerator {
    fn current_ma(&self, t: SimTime, domain: PowerDomain) -> f64 {
        let state = self.state.read().expect("dpu state lock poisoned");
        let m = match state.as_ref() {
            Some(m) => m,
            None => {
                // Unconfigured fabric region: nothing but a trickle.
                return if domain == PowerDomain::FpgaLogic {
                    40.0
                } else {
                    0.0
                };
            }
        };
        let (util, switching, dram_gbps, in_pre_post) = self.activity_at(t, m);
        let bucket = t.as_micros() / 200;
        let wiggle = 1.0 + (hash01(self.seed, 3, bucket) - 0.5) * 0.01;
        match domain {
            PowerDomain::FpgaLogic => {
                (self.config.fpga_idle_ma + self.config.fpga_active_ma * util * switching) * wiggle
            }
            PowerDomain::Ddr => self.config.ddr_ma_per_gbps * dram_gbps * wiggle,
            PowerDomain::FullPowerCpu => {
                if in_pre_post {
                    self.config.cpu_pre_post_ma * wiggle
                } else {
                    // Runtime polls for completion.
                    18.0 * wiggle
                }
            }
            PowerDomain::LowPowerCpu => self.config.lp_coupling_ma * util * switching * wiggle,
        }
    }

    fn label(&self) -> &str {
        "dpu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::zoo;
    use std::sync::Arc;

    fn dpu_with(name: &str) -> DpuAccelerator {
        let models = zoo();
        let m = models.iter().find(|m| m.name == name).unwrap();
        let dpu = DpuAccelerator::new(DpuConfig::default(), 11);
        dpu.load_model(m);
        dpu
    }

    fn mean_current(dpu: &DpuAccelerator, domain: PowerDomain, dur_ms: u64) -> f64 {
        let n = 2_000;
        (0..n)
            .map(|k| {
                let t = SimTime::from_us(k * dur_ms * 1_000 / n + 13);
                dpu.current_ma(t, domain)
            })
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn unloaded_dpu_draws_trickle() {
        let dpu = DpuAccelerator::new(DpuConfig::default(), 0);
        assert_eq!(dpu.loaded_model(), None);
        assert_eq!(dpu.current_ma(SimTime::ZERO, PowerDomain::Ddr), 0.0);
        assert!(dpu.current_ma(SimTime::ZERO, PowerDomain::FpgaLogic) < 100.0);
    }

    #[test]
    fn loading_and_unloading() {
        let dpu = dpu_with("resnet-50");
        assert_eq!(dpu.loaded_model().as_deref(), Some("resnet-50"));
        dpu.unload();
        assert_eq!(dpu.loaded_model(), None);
    }

    #[test]
    fn different_models_have_distinct_mean_signatures() {
        let vgg = dpu_with("vgg-19");
        let mb = dpu_with("mobilenet-v1");
        let i_vgg = mean_current(&vgg, PowerDomain::FpgaLogic, 2_000);
        let i_mb = mean_current(&mb, PowerDomain::FpgaLogic, 2_000);
        // VGG keeps the MAC array hotter for much longer stretches.
        assert!(
            i_vgg > i_mb + 100.0,
            "vgg {i_vgg} mA vs mobilenet {i_mb} mA"
        );
    }

    #[test]
    fn dram_current_tracks_traffic() {
        let dpu = dpu_with("resnet-50");
        let i = mean_current(&dpu, PowerDomain::Ddr, 1_000);
        assert!(i > 10.0, "DDR must see inference traffic ({i} mA)");
    }

    #[test]
    fn cpu_phase_alternates_with_accelerator_phase() {
        let dpu = dpu_with("vgg-19");
        // Early in the period: pre/post (CPU busy); later: layers (CPU idle).
        let cpu_early = dpu.current_ma(SimTime::from_ms(1), PowerDomain::FullPowerCpu);
        let cpu_late = dpu.current_ma(SimTime::from_ms(20), PowerDomain::FullPowerCpu);
        assert!(cpu_early > cpu_late, "{cpu_early} vs {cpu_late}");
    }

    #[test]
    fn lp_coupling_is_small() {
        let dpu = dpu_with("vgg-19");
        let i = mean_current(&dpu, PowerDomain::LowPowerCpu, 1_000);
        assert!(i < 15.0, "LP coupling must stay small ({i} mA)");
    }

    #[test]
    fn load_model_at_delays_activity() {
        let models = zoo();
        let dpu = DpuAccelerator::new(DpuConfig::default(), 3);
        dpu.load_model_at(&models[0], SimTime::from_secs(1));
        let before = dpu.current_ma(SimTime::from_ms(100), PowerDomain::FpgaLogic);
        assert!((before - DpuConfig::default().fpga_idle_ma).abs() < 10.0);
    }

    #[test]
    fn accelerator_is_shareable_across_threads() {
        let dpu = Arc::new(dpu_with("resnet-50"));
        let d2 = Arc::clone(&dpu);
        // A raw OS thread on purpose: this asserts `Send + Sync` sharing
        // semantics, not pool-scheduled determinism.
        let handle =
            // sim-lint: allow(stray-spawn)
            std::thread::spawn(move || d2.current_ma(SimTime::from_ms(5), PowerDomain::FpgaLogic));
        let a = dpu.current_ma(SimTime::from_ms(5), PowerDomain::FpgaLogic);
        let b = handle.join().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn signature_is_periodic_per_inference() {
        let models = zoo();
        let m = models.iter().find(|m| m.name == "resnet-50").unwrap();
        let cfg = DpuConfig {
            inference_jitter: 0.0,
            ..DpuConfig::default()
        };
        let dpu = DpuAccelerator::new(cfg, 0);
        dpu.load_model(m);
        let period = cfg.pre_post_time + DpuSchedule::lower(m, &cfg).inference_time();
        let t0 = SimTime::from_us(1_500);
        let t1 = t0 + period;
        // Same phase in consecutive inferences -> same utilization term.
        // (The 200 us wiggle bucket differs, so allow its 1% band.)
        let a = dpu.current_ma(t0, PowerDomain::FpgaLogic);
        let b = dpu.current_ma(t1, PowerDomain::FpgaLogic);
        assert!((a - b).abs() / a < 0.02, "{a} vs {b}");
    }
}
