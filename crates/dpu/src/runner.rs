//! Inference runtime: the Vitis-AI-runner-like request queue in front of
//! the accelerator.
//!
//! The paper's victim "runs each model in series for 5 seconds" through
//! the Vitis AI runtime: requests queue in software, the CPU pre-processes
//! each image, the accelerator executes, results return in FIFO order.
//! This module provides that dispatch model as a deterministic scheduler:
//! given submission times, it computes per-request start/finish times and
//! aggregate latency/throughput statistics — the queueing behaviour that
//! shapes the CPU-channel signature (bursty pre-processing) and bounds the
//! victim's query rate.

use dnn_models::ModelArch;
use zynq_soc::{hash01, SimTime};

use crate::{DpuConfig, DpuSchedule};

/// Completed request record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedRequest {
    /// Request id (submission order).
    pub id: u64,
    /// Submission time.
    pub submitted_at: SimTime,
    /// When the runtime began pre-processing it.
    pub started_at: SimTime,
    /// When the result was ready.
    pub finished_at: SimTime,
}

impl CompletedRequest {
    /// End-to-end latency (submission to result).
    pub fn latency(&self) -> SimTime {
        self.finished_at - self.submitted_at
    }

    /// Time spent waiting in the queue before service began.
    pub fn queue_delay(&self) -> SimTime {
        self.started_at - self.submitted_at
    }
}

/// Aggregate service statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunnerStats {
    /// Number of requests served.
    pub served: usize,
    /// Mean end-to-end latency, seconds.
    pub mean_latency_s: f64,
    /// 99th-percentile end-to-end latency, seconds.
    pub p99_latency_s: f64,
    /// Achieved throughput, inferences per second.
    pub throughput_ips: f64,
}

/// FIFO inference runner for one loaded model.
///
/// # Examples
///
/// ```
/// use dnn_models::zoo;
/// use dpu::runner::DpuRunner;
/// use dpu::DpuConfig;
/// use zynq_soc::SimTime;
///
/// let models = zoo();
/// let resnet = models.iter().find(|m| m.name == "resnet-50").unwrap();
/// let runner = DpuRunner::new(resnet, DpuConfig::default(), 1);
/// // Saturating load: submissions every millisecond queue up.
/// let submits: Vec<SimTime> = (0..20).map(SimTime::from_ms).collect();
/// let completed = runner.serve(&submits);
/// let stats = DpuRunner::stats(&completed);
/// assert_eq!(stats.served, 20);
/// assert!(stats.p99_latency_s > stats.mean_latency_s / 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct DpuRunner {
    schedule: DpuSchedule,
    pre_post: SimTime,
    jitter: f64,
    seed: u64,
}

impl DpuRunner {
    /// Creates a runner for `model` on a DPU with `config`.
    pub fn new(model: &ModelArch, config: DpuConfig, seed: u64) -> Self {
        let schedule = DpuSchedule::lower(model, &config);
        let scale = (model.input as f64 / 224.0).powi(2);
        DpuRunner {
            schedule,
            pre_post: SimTime::from_secs_f64(config.pre_post_time.as_secs_f64() * scale),
            jitter: config.inference_jitter,
            seed,
        }
    }

    /// Nominal service time of one request (pre/post + accelerator).
    pub fn service_time(&self) -> SimTime {
        self.pre_post + self.schedule.inference_time()
    }

    /// Maximum sustainable throughput, inferences per second.
    pub fn peak_throughput_ips(&self) -> f64 {
        1.0 / self.service_time().as_secs_f64()
    }

    /// Serves requests submitted at the given times (must be
    /// non-decreasing), FIFO, one at a time — the single-core runner the
    /// paper's victim uses.
    ///
    /// # Panics
    ///
    /// Panics if submission times are not sorted.
    pub fn serve(&self, submissions: &[SimTime]) -> Vec<CompletedRequest> {
        assert!(
            submissions.windows(2).all(|w| w[0] <= w[1]),
            "submissions must be sorted"
        );
        let mut completed = Vec::with_capacity(submissions.len());
        let mut engine_free = SimTime::ZERO;
        for (id, &submitted_at) in submissions.iter().enumerate() {
            let started_at = submitted_at.max(engine_free);
            // Input-dependent service jitter, deterministic per request.
            let jitter = 1.0 + (hash01(self.seed, 6, id as u64) - 0.5) * 2.0 * self.jitter;
            let service = SimTime::from_secs_f64(self.service_time().as_secs_f64() * jitter);
            let finished_at = started_at + service;
            engine_free = finished_at;
            completed.push(CompletedRequest {
                id: id as u64,
                submitted_at,
                started_at,
                finished_at,
            });
        }
        completed
    }

    /// Aggregates statistics over completed requests.
    pub fn stats(completed: &[CompletedRequest]) -> RunnerStats {
        if completed.is_empty() {
            return RunnerStats {
                served: 0,
                mean_latency_s: 0.0,
                p99_latency_s: 0.0,
                throughput_ips: 0.0,
            };
        }
        let mut latencies: Vec<f64> = completed
            .iter()
            .map(|r| r.latency().as_secs_f64())
            .collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
        let p99_idx = ((latencies.len() as f64 * 0.99).ceil() as usize).min(latencies.len()) - 1;
        let first = completed
            .first()
            .map(|r| r.submitted_at.as_secs_f64())
            .unwrap_or(0.0);
        let last = completed
            .last()
            .map(|r| r.finished_at.as_secs_f64())
            .unwrap_or(0.0);
        let span = (last - first).max(1e-12);
        RunnerStats {
            served: completed.len(),
            mean_latency_s: mean,
            p99_latency_s: latencies[p99_idx],
            throughput_ips: completed.len() as f64 / span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::zoo;

    fn runner_for(name: &str) -> DpuRunner {
        let models = zoo();
        let m = models.iter().find(|m| m.name == name).unwrap();
        DpuRunner::new(m, DpuConfig::default(), 3)
    }

    #[test]
    fn fifo_order_and_no_overlap() {
        let runner = runner_for("resnet-50");
        let submits: Vec<SimTime> = (0..10).map(|k| SimTime::from_ms(k * 3)).collect();
        let completed = runner.serve(&submits);
        for pair in completed.windows(2) {
            assert!(pair[1].started_at >= pair[0].finished_at, "FIFO overlap");
        }
        for r in &completed {
            assert!(r.started_at >= r.submitted_at);
            assert!(r.finished_at > r.started_at);
        }
    }

    #[test]
    fn idle_runner_serves_immediately() {
        let runner = runner_for("mobilenet-v1");
        // Widely spaced submissions: no queueing.
        let spacing = SimTime::from_secs(1);
        let submits: Vec<SimTime> = (0..5)
            .map(|k| SimTime::from_nanos(spacing.as_nanos() * k))
            .collect();
        let completed = runner.serve(&submits);
        for r in &completed {
            assert_eq!(r.queue_delay(), SimTime::ZERO);
        }
        let stats = DpuRunner::stats(&completed);
        // Latency ~ service time (within the 2% jitter).
        let service = runner.service_time().as_secs_f64();
        assert!((stats.mean_latency_s - service).abs() / service < 0.05);
    }

    #[test]
    fn saturation_builds_queue_delay() {
        let runner = runner_for("vgg-19");
        // Submit far faster than the service rate.
        let submits: Vec<SimTime> = (0..30).map(SimTime::from_ms).collect();
        let completed = runner.serve(&submits);
        let last = completed.last().unwrap();
        assert!(
            last.queue_delay().as_secs_f64() > 10.0 * runner.service_time().as_secs_f64() / 2.0,
            "backlog must accumulate"
        );
        let stats = DpuRunner::stats(&completed);
        // Throughput saturates near the peak rate.
        let peak = runner.peak_throughput_ips();
        assert!((stats.throughput_ips - peak).abs() / peak < 0.1);
        assert!(stats.p99_latency_s >= stats.mean_latency_s);
    }

    #[test]
    fn faster_models_have_higher_peak_throughput() {
        let fast = runner_for("mobilenet-v1").peak_throughput_ips();
        let slow = runner_for("vgg-19").peak_throughput_ips();
        assert!(fast > 3.0 * slow, "{fast} vs {slow}");
    }

    #[test]
    fn empty_submissions() {
        let runner = runner_for("resnet-50");
        let completed = runner.serve(&[]);
        assert!(completed.is_empty());
        let stats = DpuRunner::stats(&completed);
        assert_eq!(stats.served, 0);
        assert_eq!(stats.throughput_ips, 0.0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_submissions_rejected() {
        let runner = runner_for("resnet-50");
        let _ = runner.serve(&[SimTime::from_ms(5), SimTime::from_ms(1)]);
    }

    #[test]
    fn deterministic_under_seed() {
        let models = zoo();
        let m = models.iter().find(|m| m.name == "resnet-50").unwrap();
        let a = DpuRunner::new(m, DpuConfig::default(), 9);
        let b = DpuRunner::new(m, DpuConfig::default(), 9);
        let submits: Vec<SimTime> = (0..8).map(SimTime::from_ms).collect();
        assert_eq!(a.serve(&submits), b.serve(&submits));
    }
}
