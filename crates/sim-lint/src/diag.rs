//! Span-accurate diagnostics and their text/JSON renderings.

use std::fmt;

/// How bad a rule violation is. Every diagnostic — regardless of severity
/// — fails the CI gate; the distinction is purely presentational today and
/// leaves room for advisory rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: printed, counted, still gate-failing.
    Warning,
    /// A broken workspace invariant.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One rule violation anchored to an exact source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column (in characters) of the offending token.
    pub col: u32,
    /// Rule identifier, e.g. `wall-clock`.
    pub rule: &'static str,
    /// Rule severity.
    pub severity: Severity,
    /// What went wrong and what to do instead.
    pub message: String,
    /// The trimmed source line the diagnostic points at.
    pub snippet: String,
}

impl Diagnostic {
    /// Sort key: path, then position, then rule.
    pub fn sort_key(&self) -> (String, u32, u32, &'static str) {
        (self.path.clone(), self.line, self.col, self.rule)
    }

    /// Two-line human rendering (`rustc`-style header plus snippet).
    pub fn render(&self) -> String {
        format!(
            "{}[{}]: {}\n  --> {}:{}:{}\n   | {}",
            self.severity, self.rule, self.message, self.path, self.line, self.col, self.snippet
        )
    }

    /// One-line JSON object for `--json` mode.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\"snippet\":\"{}\"}}",
            json_escape(&self.path),
            self.line,
            self.col,
            self.rule,
            self.severity,
            json_escape(&self.message),
            json_escape(&self.snippet)
        )
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_escapes_specials() {
        let d = Diagnostic {
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            rule: "raw-print",
            severity: Severity::Error,
            message: "say \"no\"".into(),
            snippet: "a\tb".into(),
        };
        let j = d.to_json();
        assert!(j.contains("\"line\":3"));
        assert!(j.contains("say \\\"no\\\""));
        assert!(j.contains("a\\tb"));
    }
}
