//! Pass 2 of the workspace analyzer: cross-file rules over the merged
//! item models, plus global waiver accounting.
//!
//! [`lint_files`] is the entry the binary drives. Per file it runs the
//! token-stream rules ([`crate::rules`]) and builds the item model
//! ([`crate::model`]); over the merged models it runs:
//!
//! * `lock-order` — the static acquisition graph. Nodes are lock
//!   classes (`TrackedMutex::new("<class>")`); edges come from guard
//!   nesting within fn bodies and from call-graph expansion (a call made
//!   with a guard held contributes edges to every class the callee's
//!   transitive summary acquires; callees are resolved by unique fn name,
//!   so ambiguous or std-prelude names never wire unrelated code
//!   together). Any cycle is an error — the same inversion the runtime
//!   lockdep ([`sim_rt::lockorder`]) would catch in a debug run, caught
//!   before one. A guard held across a `Pool::scope`/`submit` boundary
//!   is flagged too.
//! * `metric-name-drift` — every metric-name literal registered by
//!   library code must appear in the pin test's `PINNED_METRICS` table
//!   and vice versa (`DYNAMIC_METRICS` exempts runtime-assembled names).
//! * `stale-waiver` — a directive that suppressed nothing is dead and
//!   must go.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Diagnostic;
use crate::lexer::{lex, Directive};
use crate::model::{self, FileModel, Site};
use crate::rules::{rule, suggest, Config, LintResult};

/// Lints a set of Rust sources as one workspace: per-file rules, the
/// cross-file rules, then global waiver application. `files` pairs each
/// workspace-relative path with its source text.
pub fn lint_files(files: &[(&str, &str)], cfg: &Config) -> LintResult {
    let mut models: Vec<FileModel> = Vec::new();
    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut per_file: Vec<(Vec<Directive>, Vec<String>)> = Vec::new();

    for (rel, src) in files {
        let lx = lex(src);
        let model = model::build(rel, &lx);
        let lines: Vec<&str> = src.lines().collect();
        raw.extend(crate::rules::scan_source(rel, &lx, &model, cfg, &lines));
        per_file.push((
            lx.directives,
            lines.iter().map(|l| l.trim().to_string()).collect(),
        ));
        models.push(model);
    }

    let snippet = |path: &str, line: u32| -> String {
        files
            .iter()
            .position(|(rel, _)| *rel == path)
            .and_then(|i| per_file[i].1.get(line as usize - 1))
            .cloned()
            .unwrap_or_default()
    };

    for d in lock_order(&models) {
        raw.push(finish(d, &snippet));
    }
    for d in metric_drift(&models) {
        raw.push(finish(d, &snippet));
    }

    apply_waivers_globally(raw, files, &per_file, &snippet)
}

/// A diagnostic before its snippet is attached.
struct Pending {
    path: String,
    site: Site,
    rule: &'static str,
    message: String,
}

fn finish(p: Pending, snippet: &dyn Fn(&str, u32) -> String) -> Diagnostic {
    let info = rule(p.rule).expect("cross-file rules are registered");
    Diagnostic {
        snippet: snippet(&p.path, p.site.line),
        path: p.path,
        line: p.site.line,
        col: p.site.col,
        rule: info.id,
        severity: info.severity,
        message: p.message,
    }
}

/// Witness for one directed lock-order edge: where it was first seen and,
/// for call-expanded edges, through which callee.
struct Edge {
    path: String,
    site: Site,
    via: Option<String>,
}

/// Builds the static acquisition graph and reports cycles and
/// guard-across-pool boundaries.
fn lock_order(models: &[FileModel]) -> Vec<Pending> {
    // Fn summaries: name -> set of classes the fn (transitively)
    // acquires. Names defined more than once are ambiguous and excluded
    // from call expansion.
    let mut def_count: BTreeMap<&str, usize> = BTreeMap::new();
    for m in models {
        for f in &m.fns {
            *def_count.entry(f.name.as_str()).or_insert(0) += 1;
        }
    }
    let unique = |name: &str| def_count.get(name).copied() == Some(1);

    let mut summary: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    for m in models {
        for f in &m.fns {
            if !unique(&f.name) {
                continue;
            }
            summary.insert(
                f.name.as_str(),
                f.acquires.iter().map(|a| a.class.clone()).collect(),
            );
        }
    }
    // Propagate through call edges to a fixpoint (bounded by fn count).
    loop {
        let mut changed = false;
        for m in models {
            for f in &m.fns {
                if !unique(&f.name) {
                    continue;
                }
                let mut add: BTreeSet<String> = BTreeSet::new();
                for c in &f.calls {
                    if unique(&c.callee) && c.callee != f.name {
                        if let Some(s) = summary.get(c.callee.as_str()) {
                            add.extend(s.iter().cloned());
                        }
                    }
                }
                if let Some(s) = summary.get_mut(f.name.as_str()) {
                    let before = s.len();
                    s.extend(add);
                    changed |= s.len() != before;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = Vec::new();
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    let mut add_edge = |from: &str, to: &str, path: &str, site: Site, via: Option<String>| {
        edges
            .entry((from.to_string(), to.to_string()))
            .or_insert_with(|| Edge {
                path: path.to_string(),
                site,
                via,
            });
    };

    for m in models {
        for f in &m.fns {
            for a in &f.acquires {
                for h in &a.held {
                    add_edge(h, &a.class, &m.rel_path, a.site, None);
                }
            }
            for c in &f.calls {
                if c.held.is_empty() || !unique(&c.callee) {
                    continue;
                }
                if let Some(s) = summary.get(c.callee.as_str()) {
                    for cls in s {
                        for h in &c.held {
                            add_edge(h, cls, &m.rel_path, c.site, Some(c.callee.clone()));
                        }
                    }
                }
            }
            for x in &f.pool_crossings {
                out.push(Pending {
                    path: m.rel_path.clone(),
                    site: x.site,
                    rule: "lock-order",
                    message: format!(
                        "`{}` entered while holding lock class{} {}; blocking on the pool with a guard held can deadlock the farm",
                        x.method,
                        if x.held.len() == 1 { "" } else { "es" },
                        x.held
                            .iter()
                            .map(|c| format!("`{c}`"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
            }
        }
    }

    // Insert edges in deterministic order; an edge whose target already
    // reaches its source closes a cycle (exactly the runtime lockdep
    // check, run over the whole workspace at lint time).
    let mut graph: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for ((from, to), e) in &edges {
        if from == to || reaches(&graph, to, from) {
            let mut path_names = cycle_path(&graph, to, from);
            path_names.push(to.clone());
            let via = e
                .via
                .as_ref()
                .map(|v| format!(" (via `{v}()`)"))
                .unwrap_or_default();
            out.push(Pending {
                path: e.path.clone(),
                site: e.site,
                rule: "lock-order",
                message: format!(
                    "acquiring `{to}` while holding `{from}`{via} closes a lock-order cycle: {}",
                    path_names.join(" \u{2192} ")
                ),
            });
            continue;
        }
        graph.entry(from.clone()).or_default().insert(to.clone());
    }
    out
}

/// Is `to` reachable from `from` in the edge map?
fn reaches(graph: &BTreeMap<String, BTreeSet<String>>, from: &str, to: &str) -> bool {
    let mut seen = BTreeSet::new();
    let mut stack = vec![from.to_string()];
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !seen.insert(n.clone()) {
            continue;
        }
        if let Some(next) = graph.get(&n) {
            stack.extend(next.iter().cloned());
        }
    }
    false
}

/// The class chain `from → … → to` through the existing edges (BFS, so
/// the shortest witness), for the cycle message.
fn cycle_path(graph: &BTreeMap<String, BTreeSet<String>>, from: &str, to: &str) -> Vec<String> {
    let mut parent: BTreeMap<String, String> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([from.to_string()]);
    let mut seen: BTreeSet<String> = BTreeSet::from([from.to_string()]);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut path = vec![n];
            while let Some(p) = parent.get(path.last().map(String::as_str).unwrap_or_default()) {
                path.push(p.clone());
            }
            path.reverse();
            return path;
        }
        if let Some(next) = graph.get(&n) {
            for m in next {
                if seen.insert(m.clone()) {
                    parent.insert(m.clone(), n.clone());
                    queue.push_back(m.clone());
                }
            }
        }
    }
    vec![from.to_string(), to.to_string()]
}

/// Reconciles registered metric-name literals against the pin test.
fn metric_drift(models: &[FileModel]) -> Vec<Pending> {
    let Some(pin) = models.iter().find(|m| model::is_pin_file(&m.rel_path)) else {
        // No pin file in the lint set (explicit-path run on a source
        // tree); nothing to reconcile against.
        return Vec::new();
    };
    let pinned: BTreeSet<&str> = pin.pinned.iter().map(|l| l.name.as_str()).collect();
    let dynamic: BTreeSet<&str> = pin.dynamic.iter().map(String::as_str).collect();

    let mut out = Vec::new();
    // Code → pins: first registration site of each unpinned name.
    let mut reported: BTreeSet<&str> = BTreeSet::new();
    let mut registered: BTreeSet<&str> = BTreeSet::new();
    for m in models {
        for lit in &m.metrics {
            registered.insert(lit.name.as_str());
            if !pinned.contains(lit.name.as_str())
                && !dynamic.contains(lit.name.as_str())
                && reported.insert(lit.name.as_str())
            {
                out.push(Pending {
                    path: m.rel_path.clone(),
                    site: lit.site,
                    rule: "metric-name-drift",
                    message: format!(
                        "metric `{}` is registered here but missing from PINNED_METRICS in {}",
                        lit.name, pin.rel_path
                    ),
                });
            }
        }
    }
    // Pins → code: a pinned name no library literal registers anymore.
    for p in &pin.pinned {
        if !registered.contains(p.name.as_str()) {
            out.push(Pending {
                path: pin.rel_path.clone(),
                site: p.site,
                rule: "metric-name-drift",
                message: format!(
                    "pinned metric `{}` is registered nowhere in the workspace; drop the pin or restore the metric",
                    p.name
                ),
            });
        }
    }
    out
}

/// Applies waivers across the whole diagnostic set, emitting `bad-waiver`
/// for unknown rule names (with a nearest-rule suggestion) and
/// `stale-waiver` for directives that suppressed nothing.
fn apply_waivers_globally(
    raw: Vec<Diagnostic>,
    files: &[(&str, &str)],
    per_file: &[(Vec<Directive>, Vec<String>)],
    snippet: &dyn Fn(&str, u32) -> String,
) -> LintResult {
    let mut result = LintResult::default();
    // (file index, directive index, rule) -> suppressed count.
    let mut used: BTreeMap<(usize, usize, String), usize> = BTreeMap::new();

    'diags: for diag in raw {
        let file_idx = files.iter().position(|(rel, _)| *rel == diag.path);
        if let Some(fi) = file_idx {
            for (di, d) in per_file[fi].0.iter().enumerate() {
                if (d.line == diag.line || d.line + 1 == diag.line)
                    && d.rules.iter().any(|r| r == diag.rule)
                {
                    *used.entry((fi, di, diag.rule.to_string())).or_insert(0) += 1;
                    result.waived += 1;
                    continue 'diags;
                }
            }
        }
        result.diags.push(diag);
    }

    for (fi, (directives, _)) in per_file.iter().enumerate() {
        let rel = files[fi].0;
        for (di, d) in directives.iter().enumerate() {
            for r in &d.rules {
                if rule(r).is_none() {
                    let info = rule("bad-waiver").expect("bad-waiver is registered");
                    let message = match suggest(r) {
                        Some(near) => {
                            format!("waiver names unknown rule `{r}`; did you mean `{near}`?")
                        }
                        None => format!("waiver names unknown rule `{r}`"),
                    };
                    result.diags.push(Diagnostic {
                        path: rel.to_string(),
                        line: d.line,
                        col: d.col,
                        rule: info.id,
                        severity: info.severity,
                        message,
                        snippet: snippet(rel, d.line),
                    });
                } else if used.get(&(fi, di, r.clone())).copied().unwrap_or(0) == 0 {
                    let info = rule("stale-waiver").expect("stale-waiver is registered");
                    result.diags.push(Diagnostic {
                        path: rel.to_string(),
                        line: d.line,
                        col: d.col,
                        rule: info.id,
                        severity: info.severity,
                        message: format!("waiver for `{r}` suppresses no diagnostics; remove it"),
                        snippet: snippet(rel, d.line),
                    });
                }
            }
        }
    }

    result.diags.sort_by_key(Diagnostic::sort_key);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> LintResult {
        lint_files(files, &Config::workspace_default())
    }

    #[test]
    fn single_file_cycle_is_caught() {
        let src = "struct S { a: TrackedMutex<u32>, b: TrackedMutex<u32> }\n\
             impl S {\n\
             fn mk(&mut self) { self.a = TrackedMutex::new(\"w.a\", 0); self.b = TrackedMutex::new(\"w.b\", 0); }\n\
             fn ab(&self) { let _g = self.a.lock(); let _h = self.b.lock(); }\n\
             fn ba(&self) { let _g = self.b.lock(); let _h = self.a.lock(); }\n\
             }\n";
        let r = ws(&[("crates/demo/src/lib.rs", src)]);
        assert_eq!(r.diags.len(), 1, "{:?}", r.diags);
        assert_eq!(r.diags[0].rule, "lock-order");
        assert!(r.diags[0].message.contains("w.a \u{2192} w.b \u{2192} w.a"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "struct S { a: TrackedMutex<u32>, b: TrackedMutex<u32> }\n\
             impl S {\n\
             fn mk(&mut self) { self.a = TrackedMutex::new(\"c.a\", 0); self.b = TrackedMutex::new(\"c.b\", 0); }\n\
             fn ab(&self) { let _g = self.a.lock(); let _h = self.b.lock(); }\n\
             fn ab2(&self) { let _g = self.a.lock(); let _h = self.b.lock(); }\n\
             }\n";
        let r = ws(&[("crates/demo/src/lib.rs", src)]);
        assert!(r.diags.is_empty(), "{:?}", r.diags);
    }

    #[test]
    fn call_expansion_finds_indirect_cycle() {
        let a = "struct S { a: TrackedMutex<u32>, b: TrackedMutex<u32> }\n\
             impl S {\n\
             fn mk(&mut self) { self.a = TrackedMutex::new(\"i.a\", 0); self.b = TrackedMutex::new(\"i.b\", 0); }\n\
             fn holds_a_calls_helper(&self) { let _g = self.a.lock(); helper_grabs_b(self); }\n\
             }\n\
             fn helper_grabs_b(s: &S) { s.b.lock(); }\n";
        let b = "struct T { b: TrackedMutex<u32>, a: TrackedMutex<u32> }\n\
             impl T {\n\
             fn mk(&mut self) { self.b = TrackedMutex::new(\"i.b\", 0); self.a = TrackedMutex::new(\"i.a\", 0); }\n\
             fn ba(&self) { let _g = self.b.lock(); let _h = self.a.lock(); }\n\
             }\n";
        let r = ws(&[("crates/demo/src/a.rs", a), ("crates/demo/src/b.rs", b)]);
        assert_eq!(r.diags.len(), 1, "{:?}", r.diags);
        assert_eq!(r.diags[0].rule, "lock-order");
    }

    #[test]
    fn stale_waiver_fires_and_live_waiver_does_not() {
        let src = "// sim-lint: allow(raw-print)\n\
             pub fn quiet() {}\n\
             // sim-lint: allow(raw-print)\n\
             pub fn loud() { println!(\"x\"); }\n";
        let r = ws(&[("crates/demo/src/lib.rs", src)]);
        assert_eq!(r.waived, 1);
        assert_eq!(r.diags.len(), 1, "{:?}", r.diags);
        assert_eq!(r.diags[0].rule, "stale-waiver");
        assert_eq!(r.diags[0].line, 1);
    }

    #[test]
    fn metric_drift_needs_a_pin_file() {
        let code = "pub fn f() { obs::counter!(\"d.unpinned\").inc(); }\n";
        let r = ws(&[("crates/demo/src/lib.rs", code)]);
        assert!(r.diags.is_empty(), "{:?}", r.diags);

        let pins = "const PINNED_METRICS: &[&str] = &[\"d.ghost\"];\n\
             const DYNAMIC_METRICS: &[&str] = &[];\n";
        let r = ws(&[
            ("crates/demo/src/lib.rs", code),
            ("crates/demo/tests/metrics_names.rs", pins),
        ]);
        let rules: Vec<&str> = r.diags.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["metric-name-drift", "metric-name-drift"]);
    }

    #[test]
    fn bad_waiver_suggests_nearest_rule() {
        let r = ws(&[(
            "crates/demo/src/lib.rs",
            "// sim-lint: allow(wall-clok)\nfn f() {}\n",
        )]);
        assert_eq!(r.diags.len(), 1, "{:?}", r.diags);
        assert_eq!(r.diags[0].rule, "bad-waiver");
        assert!(
            r.diags[0].message.contains("did you mean `wall-clock`?"),
            "{}",
            r.diags[0].message
        );
    }
}
