//! A string/char/comment-aware Rust tokenizer with exact spans.
//!
//! This is not a full Rust lexer — it is exactly as much of one as the
//! rules need: identifiers and `::` path separators carry text and spans,
//! string/char/byte/raw-string literals and comments are recognized so
//! rule keywords inside them can never fire, and `// sim-lint:
//! allow(<rule>)` directives are extracted from comment bodies wherever
//! they appear.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// The `::` path separator.
    PathSep,
    /// Any other single punctuation character.
    Punct,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`). The
    /// token text is the literal's body (quotes and hash fences
    /// stripped, escape sequences kept verbatim) so rules can match
    /// lock-class and metric-name literals.
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One token with its (1-based) source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Token text (identifier name, punct character, literal lexeme).
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based character column.
    pub col: u32,
}

impl Tok {
    /// Is this a punct token for character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// A waiver directive (e.g. `sim-lint: allow(wall-clock)`) found in a
/// comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// Line of the comment holding the directive.
    pub line: u32,
    /// Column where `sim-lint:` starts.
    pub col: u32,
    /// Rule names listed inside `allow(...)`, verbatim.
    pub rules: Vec<String>,
}

/// Tokenizer output: the token stream plus every waiver directive.
#[derive(Debug, Default)]
pub struct LexOut {
    /// Tokens in source order.
    pub tokens: Vec<Tok>,
    /// Waiver directives in source order.
    pub directives: Vec<Directive>,
}

struct Cursor<'a> {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
    src: std::marker::PhantomData<&'a str>,
}

impl Cursor<'_> {
    fn new(src: &str) -> Cursor<'_> {
        Cursor {
            chars: src.chars().collect(),
            i: 0,
            line: 1,
            col: 1,
            src: std::marker::PhantomData,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenizes `src`.
pub fn lex(src: &str) -> LexOut {
    let mut cur = Cursor::new(src);
    let mut out = LexOut::default();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
        } else if c == '/' && cur.peek_at(1) == Some('/') {
            let mut text = String::new();
            while let Some(c) = cur.peek() {
                if c == '\n' {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            // Doc comments (`///`, `//!`) are prose *about* the linter, not
            // directives to it — documenting the waiver syntax must not
            // create a waiver (or a stale one).
            if !text.starts_with("///") && !text.starts_with("//!") {
                scan_directives(&text, line, col, &mut out.directives);
            }
        } else if c == '/' && cur.peek_at(1) == Some('*') {
            lex_block_comment(&mut cur, &mut out.directives);
        } else if is_ident_start(c) {
            lex_ident_or_prefixed_literal(&mut cur, line, col, &mut out.tokens);
        } else if c == '"' {
            let text = lex_string(&mut cur, 0);
            out.tokens.push(Tok {
                kind: TokKind::Str,
                text,
                line,
                col,
            });
        } else if c == '\'' {
            lex_quote(&mut cur, line, col, &mut out.tokens);
        } else if c.is_ascii_digit() {
            lex_number(&mut cur);
            out.tokens.push(Tok {
                kind: TokKind::Num,
                text: String::new(),
                line,
                col,
            });
        } else if c == ':' && cur.peek_at(1) == Some(':') {
            cur.bump();
            cur.bump();
            out.tokens.push(Tok {
                kind: TokKind::PathSep,
                text: "::".into(),
                line,
                col,
            });
        } else {
            cur.bump();
            out.tokens.push(Tok {
                kind: TokKind::Punct,
                text: c.to_string(),
                line,
                col,
            });
        }
    }
    out
}

fn lex_block_comment(cur: &mut Cursor<'_>, directives: &mut Vec<Directive>) {
    let (line, col) = (cur.line, cur.col);
    cur.bump();
    cur.bump();
    // `/**` (not the empty `/**/`) and `/*!` open doc comments; like line
    // doc comments they never carry directives.
    let doc =
        matches!(cur.peek(), Some('!')) || (cur.peek() == Some('*') && cur.peek_at(1) != Some('/'));
    let mut depth = 1usize;
    let mut text = String::new();
    while depth > 0 {
        match (cur.peek(), cur.peek_at(1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                cur.bump();
                cur.bump();
            }
            (Some('*'), Some('/')) => {
                depth -= 1;
                cur.bump();
                cur.bump();
            }
            (Some(c), _) => {
                text.push(c);
                cur.bump();
            }
            (None, _) => break,
        }
    }
    // A block-comment directive anchors to the comment's first line.
    if !doc {
        scan_directives(&text, line, col, directives);
    }
}

/// Lexes an identifier; if it is a raw/byte string prefix (`r`, `b`,
/// `br`) immediately followed by its literal, lexes the whole literal.
fn lex_ident_or_prefixed_literal(cur: &mut Cursor<'_>, line: u32, col: u32, tokens: &mut Vec<Tok>) {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    let next = cur.peek();
    let is_str_prefix = matches!(text.as_str(), "r" | "b" | "br" | "rb");
    if is_str_prefix && (next == Some('"') || next == Some('#')) {
        // Raw/byte string: count hashes, then consume the body.
        let mut hashes = 0usize;
        while cur.peek() == Some('#') {
            hashes += 1;
            cur.bump();
        }
        if cur.peek() == Some('"') {
            let body = lex_string(cur, hashes);
            tokens.push(Tok {
                kind: TokKind::Str,
                text: body,
                line,
                col,
            });
            return;
        }
        // `r#ident` raw identifier: fall through, emit what we have plus
        // the following identifier characters.
        while let Some(c) = cur.peek() {
            if is_ident_continue(c) {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
    } else if text == "b" && next == Some('\'') {
        cur.bump();
        lex_char_body(cur);
        tokens.push(Tok {
            kind: TokKind::Char,
            text: String::new(),
            line,
            col,
        });
        return;
    }
    tokens.push(Tok {
        kind: TokKind::Ident,
        text,
        line,
        col,
    });
}

/// Consumes a string literal starting at the opening quote, with `hashes`
/// trailing `#`s required to close (0 for cooked strings, which also honor
/// backslash escapes). Returns the literal body (escapes verbatim).
fn lex_string(cur: &mut Cursor<'_>, hashes: usize) -> String {
    let mut body = String::new();
    cur.bump();
    while let Some(c) = cur.peek() {
        if c == '\\' && hashes == 0 {
            body.push(c);
            cur.bump();
            if let Some(esc) = cur.bump() {
                body.push(esc);
            }
        } else if c == '"' {
            cur.bump();
            if hashes == 0 {
                return body;
            }
            let mut seen = 0usize;
            while seen < hashes && cur.peek() == Some('#') {
                seen += 1;
                cur.bump();
            }
            if seen == hashes {
                return body;
            }
            body.push('"');
            for _ in 0..seen {
                body.push('#');
            }
        } else {
            body.push(c);
            cur.bump();
        }
    }
    body
}

/// Consumes a char-literal body after the opening `'` has been consumed.
fn lex_char_body(cur: &mut Cursor<'_>) {
    if cur.peek() == Some('\\') {
        cur.bump();
        cur.bump();
    } else {
        cur.bump();
    }
    // `\u{…}` and similar leave extra chars before the closing quote.
    while let Some(c) = cur.peek() {
        cur.bump();
        if c == '\'' {
            break;
        }
    }
}

/// Disambiguates `'a'` (char) from `'a` / `'static` (lifetime) at a `'`.
fn lex_quote(cur: &mut Cursor<'_>, line: u32, col: u32, tokens: &mut Vec<Tok>) {
    cur.bump();
    match cur.peek() {
        Some('\\') => {
            lex_char_body(cur);
            tokens.push(Tok {
                kind: TokKind::Char,
                text: String::new(),
                line,
                col,
            });
        }
        Some(c) if is_ident_start(c) => {
            if cur.peek_at(1) == Some('\'') {
                cur.bump();
                cur.bump();
                tokens.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                    col,
                });
            } else {
                let mut text = String::from("'");
                while let Some(c) = cur.peek() {
                    if is_ident_continue(c) {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                tokens.push(Tok {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                    col,
                });
            }
        }
        Some(_) => {
            // Non-identifier char literal like '+' or '\u{1F980}' body.
            lex_char_body(cur);
            tokens.push(Tok {
                kind: TokKind::Char,
                text: String::new(),
                line,
                col,
            });
        }
        None => {}
    }
}

fn lex_number(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.peek() {
        let fraction_dot = c == '.' && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit());
        if is_ident_continue(c) || fraction_dot {
            cur.bump();
        } else {
            break;
        }
    }
}

/// Finds every `sim-lint: allow(wall-clock, raw-print)`-style directive
/// inside a comment body.
pub fn scan_directives(text: &str, line: u32, col: u32, out: &mut Vec<Directive>) {
    let mut rest = text;
    let mut offset = 0usize;
    while let Some(pos) = rest.find("sim-lint:") {
        let at = offset + pos;
        let after = &rest[pos + "sim-lint:".len()..];
        let trimmed = after.trim_start();
        if let Some(args) = trimmed.strip_prefix("allow") {
            let args = args.trim_start();
            if let Some(body) = args.strip_prefix('(') {
                if let Some(end) = body.find(')') {
                    let rules = body[..end]
                        .split(',')
                        .map(|r| r.trim().to_string())
                        .filter(|r| !r.is_empty())
                        .collect();
                    out.push(Directive {
                        line,
                        col: col + at as u32,
                        rules,
                    });
                }
            }
        }
        offset = at + "sim-lint:".len();
        rest = &rest[pos + "sim-lint:".len()..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn keywords_inside_strings_and_comments_do_not_tokenize() {
        let src = r####"
            let a = "std::time::Instant::now()";
            // println! is mentioned here only
            /* thread::spawn in a block comment */
            let b = r#"HashMap::new()"#;
            let c = 'I';
            let d: &'static str = "x";
        "####;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"println".to_string()));
        assert!(!ids.contains(&"spawn".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(ids.contains(&"static".to_string()) || !ids.contains(&"I".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_following_tokens() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'a str { x }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 3);
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
    }

    #[test]
    fn spans_are_exact() {
        let toks = lex("ab  cd\n  ef").tokens;
        let spans: Vec<_> = toks.iter().map(|t| (t.line, t.col)).collect();
        assert_eq!(spans, vec![(1, 1), (1, 5), (2, 3)]);
    }

    #[test]
    fn path_separator_is_one_token() {
        let toks = lex("std::time::Instant").tokens;
        let kinds: Vec<_> = toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::Ident,
                TokKind::PathSep,
                TokKind::Ident,
                TokKind::PathSep,
                TokKind::Ident
            ]
        );
    }

    #[test]
    fn directives_parse_with_columns() {
        let out = lex("let x = 1; // sim-lint: allow(wall-clock, raw-print)\n");
        assert_eq!(out.directives.len(), 1);
        let d = &out.directives[0];
        assert_eq!(d.line, 1);
        assert_eq!(d.rules, vec!["wall-clock", "raw-print"]);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let out = lex("/* outer /* inner */ still comment */ ident");
        let ids: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(ids, vec!["ident"]);
    }
}
