//! Workspace invariant checker for the AmpereBleed reproduction.
//!
//! The whole reproduction rests on invariants no compiler checks:
//! bit-exact traces at any thread count, zero registry dependencies, no
//! wall-clock or ambient randomness inside simulation paths, structured
//! observability instead of ad-hoc printing. `sim-lint` turns those
//! conventions into a CI-enforced contract with a hand-rolled,
//! string/char/comment-aware scanner — zero dependencies, like everything
//! else in the workspace.
//!
//! Analysis runs in two passes. Pass 1 lexes each file and lifts it into
//! an item-level model ([`model`]): fn bodies, `TrackedMutex::new("…")`
//! lock-class literals, metric-name literals, call edges, panic sites.
//! Pass 2 ([`workspace::lint_files`]) merges the models and runs the
//! cross-file rules over the whole workspace at once.
//!
//! Ten rules ship today (see [`rules::RULES`]): the per-file
//! `wall-clock`, `ambient-rng`, `nondet-iter`, `raw-print`,
//! `stray-spawn`, `registry-dep`, and `panic-path`, plus the cross-file
//! `lock-order`, `metric-name-drift`, and `stale-waiver`. Intentional
//! exceptions are waived inline:
//!
//! ```text
//! let started = Instant::now(); // sim-lint: allow(wall-clock)
//! ```
//!
//! A waiver covers its own line and the next one; a waiver naming a rule
//! that does not exist is itself a diagnostic (`bad-waiver`, which
//! suggests the nearest valid rule name), and in workspace runs a waiver
//! that suppresses nothing is one too (`stale-waiver`), so a typo can
//! never silently disable a rule and dead waivers cannot accrete.
//!
//! Run it with `cargo run -p sim-lint -- [--json] [paths…]`; with no paths
//! it scans every `crates/*/src/**.rs`, `crates/*/tests/**.rs` (skipping
//! fixture corpora), the root `tests/` and `examples/` trees, and every
//! workspace `Cargo.toml`.
//!
//! # Examples
//!
//! ```
//! use sim_lint::{lint_source, Config};
//!
//! let bad = "use std::time::Instant;\n";
//! let r = lint_source("crates/demo/src/lib.rs", bad, &Config::workspace_default());
//! assert_eq!(r.diags.len(), 1);
//! assert_eq!(r.diags[0].rule, "wall-clock");
//! assert_eq!((r.diags[0].line, r.diags[0].col), (1, 5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod manifest;
pub mod model;
pub mod resolve;
pub mod rules;
pub mod walk;
pub mod workspace;

pub use diag::{Diagnostic, Severity};
pub use manifest::{lint_manifest, workspace_edition};
pub use rules::{classify, lint_source, Config, FileKind, LintResult, RULES};
pub use workspace::lint_files;
