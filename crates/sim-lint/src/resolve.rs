//! `use`-path resolution: maps the names a file brings into scope back to
//! the full paths they came from, so a bare `Instant::now()` is traced to
//! `std::time::Instant::now` no matter how it was imported or aliased.

use std::collections::BTreeMap;

use crate::lexer::{Tok, TokKind};

/// Names in scope, keyed by local alias.
#[derive(Debug, Default)]
pub struct UseMap {
    aliases: BTreeMap<String, String>,
    globs: Vec<String>,
}

impl UseMap {
    /// Full path a local name resolves to, if a `use` introduced it.
    pub fn resolve(&self, name: &str) -> Option<&str> {
        self.aliases.get(name).map(String::as_str)
    }

    /// Prefixes imported via `use path::*`.
    pub fn globs(&self) -> &[String] {
        &self.globs
    }

    /// Every full path `segs` could denote: the alias-resolved spelling,
    /// plus one candidate per glob import for single-segment lookups.
    pub fn candidates(&self, segs: &[&str]) -> Vec<String> {
        let mut out = Vec::new();
        match self.resolve(segs[0]) {
            Some(full) => {
                let mut path = full.to_string();
                for s in &segs[1..] {
                    path.push_str("::");
                    path.push_str(s);
                }
                out.push(path);
            }
            None => {
                out.push(segs.join("::"));
                for glob in &self.globs {
                    out.push(format!("{glob}::{}", segs.join("::")));
                }
            }
        }
        out
    }

    fn record(&mut self, mut segs: Vec<String>) {
        if segs.last().is_some_and(|s| s == "self") {
            segs.pop();
        }
        if let Some(alias) = segs.last().cloned() {
            self.aliases.insert(alias, segs.join("::"));
        }
    }

    fn record_as(&mut self, segs: &[String], alias: String) {
        self.aliases.insert(alias, segs.join("::"));
    }
}

/// Collects every `use` declaration in the token stream.
pub fn collect_uses(tokens: &[Tok]) -> UseMap {
    let mut map = UseMap::default();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].kind == TokKind::Ident && tokens[i].text == "use" {
            i = parse_tree(tokens, i + 1, Vec::new(), &mut map);
            // Skip to the closing `;` in case the tree parse stopped early.
            while i < tokens.len() && !tokens[i].is_punct(';') {
                i += 1;
            }
        }
        i += 1;
    }
    map
}

/// Parses one use-tree starting at `i` with the accumulated `prefix`;
/// returns the index of the token that terminated the tree (`,`, `}`, or
/// `;`), which the caller consumes.
fn parse_tree(tokens: &[Tok], mut i: usize, prefix: Vec<String>, map: &mut UseMap) -> usize {
    let mut segs = prefix;
    while i < tokens.len() {
        let tok = &tokens[i];
        match tok.kind {
            TokKind::Ident if tok.text == "as" => {
                if let Some(alias) = tokens.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                    map.record_as(&segs, alias.text.clone());
                    return i + 2;
                }
                return i + 1;
            }
            TokKind::Ident => {
                segs.push(tok.text.clone());
                i += 1;
            }
            TokKind::PathSep => {
                i += 1;
                match tokens.get(i) {
                    Some(t) if t.is_punct('{') => {
                        i += 1;
                        loop {
                            i = parse_tree(tokens, i, segs.clone(), map);
                            match tokens.get(i) {
                                Some(t) if t.is_punct(',') => {
                                    i += 1;
                                    if tokens.get(i).is_some_and(|t| t.is_punct('}')) {
                                        i += 1;
                                        break;
                                    }
                                }
                                Some(t) if t.is_punct('}') => {
                                    i += 1;
                                    break;
                                }
                                _ => return i,
                            }
                        }
                        return i;
                    }
                    Some(t) if t.is_punct('*') => {
                        map.globs.push(segs.join("::"));
                        return i + 1;
                    }
                    _ => {}
                }
            }
            _ => break,
        }
    }
    map.record(segs);
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn uses(src: &str) -> UseMap {
        collect_uses(&lex(src).tokens)
    }

    #[test]
    fn plain_and_aliased_imports_resolve() {
        let m = uses("use std::time::Instant;\nuse std::time::SystemTime as Wall;");
        assert_eq!(m.resolve("Instant"), Some("std::time::Instant"));
        assert_eq!(m.resolve("Wall"), Some("std::time::SystemTime"));
        assert_eq!(m.resolve("SystemTime"), None);
    }

    #[test]
    fn nested_groups_and_self_resolve() {
        let m = uses("use std::{time::{self, Instant}, collections::HashMap};");
        assert_eq!(m.resolve("time"), Some("std::time"));
        assert_eq!(m.resolve("Instant"), Some("std::time::Instant"));
        assert_eq!(m.resolve("HashMap"), Some("std::collections::HashMap"));
    }

    #[test]
    fn globs_are_tracked_as_candidates() {
        let m = uses("use std::time::*;");
        assert_eq!(m.globs(), &["std::time".to_string()]);
        let cands = m.candidates(&["Instant", "now"]);
        assert!(cands.contains(&"std::time::Instant::now".to_string()));
    }

    #[test]
    fn chains_through_aliases_expand() {
        let m = uses("use std::time::Instant as Clock;");
        let cands = m.candidates(&["Clock", "now"]);
        assert_eq!(cands, vec!["std::time::Instant::now".to_string()]);
    }
}
