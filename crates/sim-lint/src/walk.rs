//! Deterministic discovery of the files a lint run covers.

use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into during the default workspace walk
/// (fixture corpora contain deliberately-bad code).
const SKIP_DIRS: &[&str] = &["fixtures", "target", ".git"];

/// The default scan set: every `crates/*/src/**.rs` and
/// `crates/*/tests/**.rs` (minus fixture corpora), the root `tests/` and
/// `examples/` trees, and every workspace manifest.
pub fn workspace_targets(root: &Path) -> io::Result<(Vec<PathBuf>, Vec<PathBuf>)> {
    let mut rs = Vec::new();
    let mut manifests = vec![root.join("Cargo.toml")];
    for crate_dir in sorted_dirs(&root.join("crates"))? {
        collect_rs(&crate_dir.join("src"), &mut rs)?;
        collect_rs(&crate_dir.join("tests"), &mut rs)?;
        let manifest = crate_dir.join("Cargo.toml");
        if manifest.is_file() {
            manifests.push(manifest);
        }
    }
    collect_rs(&root.join("tests"), &mut rs)?;
    collect_rs(&root.join("examples"), &mut rs)?;
    Ok((rs, manifests))
}

/// Expands explicitly-passed paths: directories are walked recursively
/// (without the fixture exclusion — pointing sim-lint at a fixture tree is
/// how CI self-tests the gate), `.rs` files lint as source and any
/// `*.toml` as a manifest.
pub fn expand_paths(paths: &[PathBuf]) -> io::Result<(Vec<PathBuf>, Vec<PathBuf>)> {
    let mut rs = Vec::new();
    let mut manifests = Vec::new();
    for p in paths {
        if p.is_dir() {
            collect_all(p, &mut rs, &mut manifests)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            rs.push(p.clone());
        } else if p.extension().is_some_and(|e| e == "toml") {
            manifests.push(p.clone());
        } else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{}: not a .rs file, .toml file, or directory", p.display()),
            ));
        }
    }
    Ok((rs, manifests))
}

fn sorted_dirs(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if !dir.is_dir() {
        return Ok(out);
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !SKIP_DIRS.contains(&name) {
                collect_rs(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn collect_all(dir: &Path, rs: &mut Vec<PathBuf>, manifests: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_all(&path, rs, manifests)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            rs.push(path);
        } else if path.extension().is_some_and(|e| e == "toml") {
            manifests.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative rendering of a path with forward slashes.
pub fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
