//! Pass 1 of the workspace analyzer: one file's token stream distilled
//! into an item-level model.
//!
//! The model is exactly what the cross-file rules need and nothing more:
//! `fn` items with their body token ranges, `TrackedMutex::new("<class>")`
//! lock-class bindings, guard nesting and call sites inside each body
//! (with the set of lock classes held at that point), `counter!` /
//! `gauge!` / `histogram(...)` metric-name literals, the pinned /
//! dynamic metric-name constants of the pin test, panic-capable
//! expressions, and `#[cfg(test)]` regions so test-only code never
//! counts against library invariants.

use crate::lexer::{LexOut, Tok, TokKind};
use crate::rules::{classify, FileKind};

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Site {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl Site {
    fn of(tok: &Tok) -> Site {
        Site {
            line: tok.line,
            col: tok.col,
        }
    }
}

/// One direct lock acquisition inside a fn body.
#[derive(Debug, Clone)]
pub struct Acquire {
    /// Lock class being acquired.
    pub class: String,
    /// Classes already held at this point (innermost last).
    pub held: Vec<String>,
    /// Position of the acquiring expression.
    pub site: Site,
}

/// One call site inside a fn body, for call-graph expansion.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee's simple name.
    pub callee: String,
    /// Classes held across the call (innermost last).
    pub held: Vec<String>,
    /// Position of the callee identifier.
    pub site: Site,
}

/// A `Pool::scope` / `submit` / `par_map` entered with a guard held.
#[derive(Debug, Clone)]
pub struct PoolCrossing {
    /// The pool-entry method name.
    pub method: String,
    /// Classes held at the boundary.
    pub held: Vec<String>,
    /// Position of the method identifier.
    pub site: Site,
}

/// Why an expression can panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(...)`.
    Expect,
    /// `panic!`, `todo!`, or `unimplemented!`.
    PanicMacro,
    /// `expr[...]` slice/array indexing.
    SliceIndex,
}

impl PanicKind {
    /// Human label used in diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            PanicKind::Unwrap => "`.unwrap()`",
            PanicKind::Expect => "`.expect(...)`",
            PanicKind::PanicMacro => "a panicking macro",
            PanicKind::SliceIndex => "slice indexing",
        }
    }
}

/// One panic-capable expression outside `#[cfg(test)]` code.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// What can panic.
    pub kind: PanicKind,
    /// Position of the offending token.
    pub site: Site,
}

/// A metric-name string literal and where it appears.
#[derive(Debug, Clone)]
pub struct MetricLit {
    /// The metric name.
    pub name: String,
    /// Position of the string literal.
    pub site: Site,
}

/// One `fn` item with everything the lock-order rule needs from its body.
#[derive(Debug, Clone)]
pub struct FnModel {
    /// Simple fn name (no path, no impl qualifier).
    pub name: String,
    /// Direct lock acquisitions in body order.
    pub acquires: Vec<Acquire>,
    /// Call sites in body order.
    pub calls: Vec<CallSite>,
    /// Pool boundaries crossed with a guard held.
    pub pool_crossings: Vec<PoolCrossing>,
}

/// The item-level model of one file.
#[derive(Debug, Clone, Default)]
pub struct FileModel {
    /// Workspace-relative path.
    pub rel_path: String,
    /// Library / test / example classification.
    pub kind: Option<FileKind>,
    /// Every `fn` item (library, non-`#[cfg(test)]` code only).
    pub fns: Vec<FnModel>,
    /// Lock classes declared in this file (class name, declaration site).
    pub classes: Vec<(String, Site)>,
    /// Metric-name literals registered by this file's library code.
    pub metrics: Vec<MetricLit>,
    /// `PINNED_METRICS` entries, when this is the pin-test file.
    pub pinned: Vec<MetricLit>,
    /// `DYNAMIC_METRICS` entries (runtime-assembled names the drift rule
    /// cannot see as literals and therefore exempts).
    pub dynamic: Vec<String>,
    /// Panic-capable expressions outside `#[cfg(test)]` code.
    pub panics: Vec<PanicSite>,
}

/// Is this file the metric pin test that `metric-name-drift` reconciles
/// the workspace against?
pub fn is_pin_file(rel_path: &str) -> bool {
    rel_path.ends_with("tests/metrics_names.rs")
}

/// Identifiers that read as calls everywhere (std prelude methods,
/// constructors) and would wire unrelated code together if one workspace
/// fn happened to share the name; never expanded through the call graph.
const CALL_BLACKLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "lock",
    "read",
    "write",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "filter",
    "collect",
    "into",
    "from",
    "drop",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "index",
    "deref",
    "as_ref",
    "as_mut",
    "to_string",
    "unwrap",
    "expect",
    "min",
    "max",
    "abs",
    "position",
    "contains",
    "extend",
    "join",
    "send",
    "recv",
    "wait",
    "take",
    "set",
    "with",
    "run",
    "call",
    "clamp",
    "get_or_init",
    "sort",
    "sort_by",
    "sort_by_key",
    "retain",
    "entry",
    "or_insert",
    "flatten",
    "copied",
    "cloned",
    "rev",
    "zip",
    "enumerate",
    "any",
    "all",
    "find",
    "fold",
    "sum",
    "count",
];

/// Keywords and value constructors that precede `(` without being calls.
const NOT_A_CALL: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "fn",
    "impl", "use", "pub", "mod", "struct", "enum", "const", "static", "move", "ref", "mut", "as",
    "in", "where", "unsafe", "dyn", "box", "crate", "self", "Self", "super", "type", "trait",
    "Some", "None", "Ok", "Err", "true", "false",
];

/// Is `name` worth recording as a call edge?
pub fn expandable_call(name: &str) -> bool {
    !CALL_BLACKLIST.contains(&name) && !NOT_A_CALL.contains(&name)
}

/// Token index ranges (half-open) covered by `#[cfg(test)]` items.
fn test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        // Match `# [ cfg ( test ) ]` token-exactly.
        let is_cfg_test = toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 2).is_some_and(|t| t.text == "cfg")
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 4).is_some_and(|t| t.text == "test")
            && toks.get(i + 5).is_some_and(|t| t.is_punct(')'))
            && toks.get(i + 6).is_some_and(|t| t.is_punct(']'));
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + 7;
        // Skip any further attributes on the same item.
        while toks.get(j).is_some_and(|t| t.is_punct('#'))
            && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            let mut depth = 0usize;
            j += 1;
            while let Some(t) = toks.get(j) {
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // The item body: everything to the matching `}` of its first
        // top-level brace, or to the `;` of a braceless item.
        let mut depth = 0usize;
        while let Some(t) = toks.get(j) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    j += 1;
                    break;
                }
            } else if t.is_punct(';') && depth == 0 {
                j += 1;
                break;
            }
            j += 1;
        }
        regions.push((start, j));
        i = j;
    }
    regions
}

fn in_regions(regions: &[(usize, usize)], idx: usize) -> bool {
    regions.iter().any(|&(s, e)| idx >= s && idx < e)
}

/// `(binding identifier, class name)` pairs from one file's
/// `TrackedMutex::new` declarations.
type ClassBindings = Vec<(String, String)>;

/// Collects `TrackedMutex::new("<class>", …)` declarations: the class
/// name plus the field/binding identifier it is assigned to, so
/// `binding.lock()` inside this file resolves to the class.
fn collect_classes(toks: &[Tok]) -> (Vec<(String, Site)>, ClassBindings) {
    let mut classes = Vec::new();
    let mut bindings = Vec::new();
    for i in 0..toks.len() {
        if toks[i].text != "TrackedMutex" || toks[i].kind != TokKind::Ident {
            continue;
        }
        // `TrackedMutex :: new ( "<class>"`.
        let lit = match (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3)) {
            (Some(sep), Some(new), Some(open))
                if sep.kind == TokKind::PathSep && new.text == "new" && open.is_punct('(') =>
            {
                match toks.get(i + 4) {
                    Some(s) if s.kind == TokKind::Str => s,
                    _ => continue,
                }
            }
            _ => continue,
        };
        classes.push((lit.text.clone(), Site::of(lit)));
        // Walk back over `Some(`, `=`, `:` wrappers to the binding ident:
        // `state: TrackedMutex::new(…)` or `self.ro = Some(TrackedMutex…)`.
        let mut j = i;
        while j > 0 {
            let prev = &toks[j - 1];
            if prev.is_punct('(') || prev.is_punct('=') || prev.text == "Some" {
                j -= 1;
            } else {
                break;
            }
        }
        if j > 0 && toks[j - 1].is_punct(':') {
            j -= 1;
        }
        if j > 0 && toks[j - 1].kind == TokKind::Ident {
            bindings.push((toks[j - 1].text.clone(), lit.text.clone()));
        }
    }
    (classes, bindings)
}

/// Finds `fn` items and their body token ranges (half-open, excluding the
/// braces). Nested closures stay part of the enclosing fn's body; that is
/// the right scope for guard lifetimes.
fn fn_items(toks: &[Tok], skip: &[(usize, usize)]) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if in_regions(skip, i) || toks[i].text != "fn" || toks[i].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = match toks.get(i + 1) {
            Some(t) if t.kind == TokKind::Ident => t.text.clone(),
            _ => {
                i += 1;
                continue;
            }
        };
        // The body opens at the first `{` outside parens/brackets; a `;`
        // first means a bodiless trait/extern declaration.
        let mut j = i + 2;
        let mut paren = 0i32;
        let mut open = None;
        while let Some(t) = toks.get(j) {
            if t.is_punct('(') || t.is_punct('[') {
                paren += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                paren -= 1;
            } else if paren == 0 && t.is_punct('{') {
                open = Some(j);
                break;
            } else if paren == 0 && t.is_punct(';') {
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j.max(i + 1);
            continue;
        };
        let mut depth = 0usize;
        let mut close = toks.len();
        let mut k = open;
        while let Some(t) = toks.get(k) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    close = k;
                    break;
                }
            }
            k += 1;
        }
        out.push((name, open + 1, close));
        i = close.max(i + 1);
    }
    out
}

/// A guard on the stack: its class, the binding it is held in (empty for
/// statement temporaries), brace depth at acquisition, and whether it is
/// `let`-bound (lives to end of block) or a temporary (end of statement).
struct Guard {
    class: String,
    binding: String,
    depth: i32,
    let_bound: bool,
}

/// Scans one fn body for acquisitions, calls, and pool crossings.
#[allow(clippy::too_many_lines)]
fn scan_body(
    toks: &[Tok],
    range: (usize, usize),
    bindings: &[(String, String)],
) -> (Vec<Acquire>, Vec<CallSite>, Vec<PoolCrossing>) {
    let class_of = |name: &str, aliases: &[(String, String)]| -> Option<String> {
        aliases
            .iter()
            .rev()
            .chain(bindings.iter())
            .find(|(b, _)| b == name)
            .map(|(_, c)| c.clone())
    };

    let mut acquires = Vec::new();
    let mut calls = Vec::new();
    let mut crossings = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut aliases: Vec<(String, String)> = Vec::new();
    let mut depth = 0i32;
    // Statement tracking for `let` aliases: `let x = …<class binding>…;`
    // without a `.lock()` aliases x to the class (the
    // `let bank = self.ro.as_ref().ok_or(…)?;` pattern).
    let mut stmt_let: Option<String> = None;
    let mut stmt_class: Option<String> = None;
    let mut stmt_locked = false;

    let (start, end) = range;
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.is_punct('{') {
            // Condition temporaries (`if x.lock().…  {`) drop before the
            // block runs.
            guards.retain(|g| g.let_bound || g.depth < depth);
            stmt_let = None;
            stmt_class = None;
            stmt_locked = false;
            depth += 1;
        } else if t.is_punct('}') {
            guards.retain(|g| g.depth < depth);
            stmt_let = None;
            stmt_class = None;
            stmt_locked = false;
            depth -= 1;
        } else if t.is_punct(';') {
            if let (Some(name), Some(class), false) = (&stmt_let, &stmt_class, stmt_locked) {
                aliases.push((name.clone(), class.clone()));
            }
            stmt_let = None;
            stmt_class = None;
            stmt_locked = false;
            guards.retain(|g| g.let_bound || g.depth < depth);
        } else if t.kind == TokKind::Ident {
            let next_open = toks.get(i + 1).filter(|n| n.is_punct('(')).is_some();
            if t.text == "let" {
                let mut j = i + 1;
                while toks.get(j).is_some_and(|n| n.text == "mut") {
                    j += 1;
                }
                if let Some(n) = toks.get(j).filter(|n| n.kind == TokKind::Ident) {
                    stmt_let = Some(n.text.clone());
                }
            } else if t.text == "lock"
                && next_open
                && i > start
                && toks[i - 1].kind == TokKind::PathSep
            {
                // `Mutex::lock` UFCS — too rare to model; ignore.
            } else if t.text == "drop" && next_open {
                if let Some(n) = toks.get(i + 2).filter(|n| n.kind == TokKind::Ident) {
                    let name = n.text.clone();
                    guards.retain(|g| g.binding != name);
                }
            } else if next_open
                && t.text == "lock"
                && i > start
                && toks[i - 1].is_punct('.')
                && i >= 2
                && toks[i - 2].kind == TokKind::Ident
            {
                // `X.lock()` where X resolves to a lock class.
                if let Some(class) = class_of(&toks[i - 2].text, &aliases) {
                    stmt_locked = true;
                    acquires.push(Acquire {
                        class: class.clone(),
                        held: guards.iter().map(|g| g.class.clone()).collect(),
                        site: Site::of(&toks[i - 2]),
                    });
                    let let_bound = stmt_let.is_some();
                    guards.push(Guard {
                        class,
                        binding: stmt_let.clone().unwrap_or_default(),
                        depth,
                        let_bound,
                    });
                }
            } else if next_open && !guards.is_empty() && POOL_ENTRIES.contains(&t.text.as_str()) {
                crossings.push(PoolCrossing {
                    method: t.text.clone(),
                    held: guards.iter().map(|g| g.class.clone()).collect(),
                    site: Site::of(t),
                });
            } else if next_open
                && expandable_call(&t.text)
                && !(i > start && toks[i - 1].text == "fn")
                && !toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                // Record the class binding mention for alias tracking.
                calls.push(CallSite {
                    callee: t.text.clone(),
                    held: guards.iter().map(|g| g.class.clone()).collect(),
                    site: Site::of(t),
                });
            }
            if stmt_let.is_some() && stmt_class.is_none() {
                if let Some(class) = class_of(&t.text, &aliases) {
                    stmt_class = Some(class);
                }
            }
        }
        i += 1;
    }
    (acquires, calls, crossings)
}

/// Method names that move work onto the deterministic pool; blocking on
/// them with a guard held can deadlock the whole farm.
pub const POOL_ENTRIES: &[&str] = &["scope", "submit", "par_map", "service_scope"];

/// Metric macro / registry-fn names.
const METRIC_FNS: &[&str] = &["counter", "gauge", "histogram"];

/// Collects literal metric registrations: `counter!("name")` /
/// `gauge!("name")` / `histogram!("name")` macro calls and direct
/// `metrics::counter("name")`-style registry calls. Method calls
/// (`snapshot.counter("name")` reads a metric, it does not register one)
/// and fn definitions are excluded.
fn collect_metrics(toks: &[Tok], skip: &[(usize, usize)]) -> Vec<MetricLit> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if in_regions(skip, i) || toks[i].kind != TokKind::Ident {
            continue;
        }
        if !METRIC_FNS.contains(&toks[i].text.as_str()) {
            continue;
        }
        let prev = i.checked_sub(1).map(|j| &toks[j]);
        if prev.is_some_and(|p| p.is_punct('.') || p.text == "fn") {
            continue;
        }
        // Macro form: `counter ! ( "name"` — direct form: `counter ( "name"`.
        let lit_idx = if toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            i + 3
        } else if toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            i + 2
        } else {
            continue;
        };
        if let Some(lit) = toks.get(lit_idx).filter(|t| t.kind == TokKind::Str) {
            out.push(MetricLit {
                name: lit.text.clone(),
                site: Site::of(lit),
            });
        }
    }
    out
}

/// Collects the string entries of `const <NAME>: … = &[…];`.
fn const_str_list(toks: &[Tok], name: &str) -> Vec<MetricLit> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].text != name || toks[i].kind != TokKind::Ident {
            continue;
        }
        if i == 0 || toks[i - 1].text != "const" {
            continue;
        }
        let mut j = i + 1;
        while let Some(t) = toks.get(j) {
            if t.is_punct(';') {
                break;
            }
            if t.kind == TokKind::Str {
                out.push(MetricLit {
                    name: t.text.clone(),
                    site: Site::of(t),
                });
            }
            j += 1;
        }
        break;
    }
    out
}

/// Panic-capable expressions outside `#[cfg(test)]` code.
fn collect_panics(toks: &[Tok], skip: &[(usize, usize)]) -> Vec<PanicSite> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if in_regions(skip, i) {
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            let method = i > 0 && toks[i - 1].is_punct('.');
            let called = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
            if method && called && (t.text == "unwrap" || t.text == "expect") {
                out.push(PanicSite {
                    kind: if t.text == "unwrap" {
                        PanicKind::Unwrap
                    } else {
                        PanicKind::Expect
                    },
                    site: Site::of(t),
                });
            } else if matches!(t.text.as_str(), "panic" | "todo" | "unimplemented")
                && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                out.push(PanicSite {
                    kind: PanicKind::PanicMacro,
                    site: Site::of(t),
                });
            }
        } else if t.is_punct('[') && i > 0 {
            // Expression-position indexing: `ident[…]`, `)[…]`, `][…]`.
            // Attribute (`#[`), pattern (`let [a, b]`), type and macro
            // positions never follow an expression tail.
            let prev = &toks[i - 1];
            let expr_tail = (prev.kind == TokKind::Ident
                && !NOT_A_CALL.contains(&prev.text.as_str()))
                || prev.is_punct(')')
                || prev.is_punct(']');
            if expr_tail {
                out.push(PanicSite {
                    kind: PanicKind::SliceIndex,
                    site: Site::of(t),
                });
            }
        }
    }
    out
}

/// Builds the item model of one file from its token stream.
pub fn build(rel_path: &str, lx: &LexOut) -> FileModel {
    let kind = classify(rel_path);
    let toks = &lx.tokens;
    let tests = test_regions(toks);

    let mut model = FileModel {
        rel_path: rel_path.to_string(),
        kind: Some(kind),
        ..FileModel::default()
    };

    if is_pin_file(rel_path) {
        model.pinned = const_str_list(toks, "PINNED_METRICS");
        model.dynamic = const_str_list(toks, "DYNAMIC_METRICS")
            .into_iter()
            .map(|m| m.name)
            .collect();
    }

    // Lock, metric, and panic facts are library invariants: fixture-bad
    // tests and `#[cfg(test)]` modules deliberately violate them (the
    // lockdep tests seed real cycles) and must not pollute the graph.
    if kind != FileKind::Library {
        return model;
    }

    let (classes, bindings) = collect_classes(toks);
    model.classes = classes;
    model.metrics = collect_metrics(toks, &tests);
    model.panics = collect_panics(toks, &tests);

    for (name, start, end) in fn_items(toks, &tests) {
        let (acquires, calls, pool_crossings) = scan_body(toks, (start, end), &bindings);
        model.fns.push(FnModel {
            name,
            acquires,
            calls,
            pool_crossings,
        });
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model(src: &str) -> FileModel {
        build("crates/demo/src/lib.rs", &lex(src))
    }

    #[test]
    fn classes_and_guard_nesting_are_extracted() {
        let m = model(
            "struct S { a: TrackedMutex<u32>, b: TrackedMutex<u32> }\n\
             impl S {\n\
             fn new() -> S { S { a: TrackedMutex::new(\"demo.a\", 0), b: TrackedMutex::new(\"demo.b\", 0) } }\n\
             fn ab(&self) { let _g = self.a.lock(); let _h = self.b.lock(); }\n\
             }\n",
        );
        assert_eq!(m.classes.len(), 2);
        let ab = m.fns.iter().find(|f| f.name == "ab").expect("fn ab");
        assert_eq!(ab.acquires.len(), 2);
        assert_eq!(ab.acquires[1].class, "demo.b");
        assert_eq!(ab.acquires[1].held, vec!["demo.a".to_string()]);
    }

    #[test]
    fn temporaries_release_at_statement_end() {
        let m = model(
            "struct S { a: TrackedMutex<u32>, b: TrackedMutex<u32> }\n\
             impl S {\n\
             fn mk(&mut self) { self.a = TrackedMutex::new(\"t.a\", 0); self.b = TrackedMutex::new(\"t.b\", 0); }\n\
             fn seq(&self) { self.a.lock().checked_add(1); self.b.lock().checked_add(1); }\n\
             }\n",
        );
        let seq = m.fns.iter().find(|f| f.name == "seq").expect("fn seq");
        assert_eq!(seq.acquires.len(), 2);
        assert!(seq.acquires[1].held.is_empty(), "{:?}", seq.acquires);
    }

    #[test]
    fn let_alias_resolves_to_class() {
        let m = model(
            "struct P { ro: Option<TrackedMutex<u32>> }\n\
             impl P {\n\
             fn init(&mut self) { self.ro = Some(TrackedMutex::new(\"p.ro\", 0)); }\n\
             fn sample(&self) -> u32 { let bank = self.ro.as_ref().unwrap(); *bank.lock() }\n\
             }\n",
        );
        let s = m.fns.iter().find(|f| f.name == "sample").expect("fn");
        assert_eq!(s.acquires.len(), 1);
        assert_eq!(s.acquires[0].class, "p.ro");
    }

    #[test]
    fn cfg_test_regions_are_invisible() {
        let m = model(
            "pub fn ok() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
             fn t() { let x: Vec<u32> = vec![]; x[0]; x.first().unwrap(); obs::counter!(\"t.m\").inc(); }\n\
             }\n",
        );
        assert!(m.panics.is_empty(), "{:?}", m.panics);
        assert!(m.metrics.is_empty(), "{:?}", m.metrics);
    }

    #[test]
    fn panic_sites_cover_all_four_shapes() {
        let m = model(
            "fn f(v: &[u32]) -> u32 {\n\
             let a = v.first().unwrap();\n\
             let b = v.first().expect(\"b\");\n\
             if v.len() > 9 { panic!(\"no\"); }\n\
             v[0] + a + b\n\
             }\n",
        );
        let kinds: Vec<PanicKind> = m.panics.iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![
                PanicKind::Unwrap,
                PanicKind::Expect,
                PanicKind::PanicMacro,
                PanicKind::SliceIndex
            ]
        );
    }

    #[test]
    fn metric_literals_macro_and_direct_forms() {
        let m = model(
            "fn f() { obs::counter!(\"m.one\").inc(); }\n\
             fn g() { crate::metrics::gauge(\"m.two\").set(1.0); }\n\
             fn h(s: &Snap) { s.counter(\"m.read\"); }\n\
             fn counter(name: &str) {}\n",
        );
        let names: Vec<&str> = m.metrics.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, vec!["m.one", "m.two"]);
    }

    #[test]
    fn pin_consts_parse() {
        let m = build(
            "crates/sim-serve/tests/metrics_names.rs",
            &lex("const PINNED_METRICS: &[&str] = &[\"a.b\", \"c.d\"];\n\
                 const DYNAMIC_METRICS: &[&str] = &[\"e.f\"];\n"),
        );
        let pins: Vec<&str> = m.pinned.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(pins, vec!["a.b", "c.d"]);
        assert_eq!(m.dynamic, vec!["e.f"]);
    }
}
