//! The rule engine: walks a file's token stream, resolves call-site
//! paths, applies the per-file source rules, and filters waived
//! diagnostics. (`registry-dep` lives in [`crate::manifest`]; the
//! cross-file rules — `lock-order`, `metric-name-drift`, `stale-waiver`
//! — live in [`crate::workspace`] and only run over a merged model.)

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{lex, Directive, LexOut, Tok, TokKind};
use crate::model::FileModel;
use crate::resolve::{collect_uses, UseMap};

/// Static description of one rule, for `--rules` and waiver validation.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule identifier as used in waivers and diagnostics.
    pub id: &'static str,
    /// Severity of its diagnostics.
    pub severity: Severity,
    /// One-line summary.
    pub summary: &'static str,
}

/// Every rule sim-lint knows about.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "wall-clock",
        severity: Severity::Error,
        summary: "std::time::{Instant, SystemTime} outside the bench/clock allowlist breaks trace determinism",
    },
    RuleInfo {
        id: "ambient-rng",
        severity: Severity::Error,
        summary: "ambient randomness (rand/getrandom/RandomState/DefaultHasher) outside sim-rt/src/rng.rs",
    },
    RuleInfo {
        id: "nondet-iter",
        severity: Severity::Error,
        summary: "default-hashed HashMap/HashSet in library code iterates nondeterministically; use BTreeMap/BTreeSet or a keyed hasher",
    },
    RuleInfo {
        id: "raw-print",
        severity: Severity::Error,
        summary: "println!/eprintln!/print!/eprint!/dbg! in library code; use obs macros or an explicit writer",
    },
    RuleInfo {
        id: "stray-spawn",
        severity: Severity::Error,
        summary: "std::thread::spawn outside sim-rt/src/pool.rs bypasses the deterministic pool",
    },
    RuleInfo {
        id: "net-use",
        severity: Severity::Error,
        summary: "std::net outside crates/sim-serve; the simulation itself must stay socket-free",
    },
    RuleInfo {
        id: "registry-dep",
        severity: Severity::Error,
        summary: "Cargo.toml dependency that is not path-only/workspace-inherited, or a diverging edition",
    },
    RuleInfo {
        id: "bad-waiver",
        severity: Severity::Warning,
        summary: "a sim-lint: allow(...) directive names a rule that does not exist",
    },
    RuleInfo {
        id: "lock-order",
        severity: Severity::Error,
        summary: "the static lock-acquisition graph has a cycle, or a guard is held across a Pool::scope/submit boundary",
    },
    RuleInfo {
        id: "panic-path",
        severity: Severity::Error,
        summary: "unwrap()/expect()/panic!/slice-index in request handling or a library hot path; return a typed error",
    },
    RuleInfo {
        id: "metric-name-drift",
        severity: Severity::Error,
        summary: "a metric-name literal and the metrics_names.rs pin test disagree (orphan on either side)",
    },
    RuleInfo {
        id: "stale-waiver",
        severity: Severity::Error,
        summary: "a sim-lint: allow(...) that suppresses zero diagnostics; remove it",
    },
];

/// The nearest rule id within edit distance 2 of `name`, for `bad-waiver`
/// typo suggestions.
pub fn suggest(name: &str) -> Option<&'static str> {
    RULES
        .iter()
        .map(|r| (edit_distance(name, r.id), r.id))
        .filter(|&(d, _)| d <= 2)
        .min_by_key(|&(d, _)| d)
        .map(|(_, id)| id)
}

/// Levenshtein distance, small-string DP.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// Looks up a rule by id.
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Per-rule path allowlists (prefix-matched on workspace-relative paths)
/// plus the `panic-path` zones (substring-matched, so fixture trees that
/// mirror a zone's layout exercise the rule).
#[derive(Debug, Default)]
pub struct Config {
    allow: Vec<(&'static str, &'static str)>,
    panic_zones: Vec<&'static str>,
}

impl Config {
    /// The allowlist this workspace has agreed on:
    ///
    /// * `wall-clock`: the bench harness and the observability clock are
    ///   the two sanctioned wall-clock sources.
    /// * `ambient-rng`: the seeded PRNG implementation itself.
    /// * `raw-print`: the bench harness and the experiment-reporting crate
    ///   exist to print tables.
    /// * `stray-spawn`: the deterministic pool owns thread creation.
    /// * `net-use`: the serving layer is the one networked component.
    ///
    /// The `panic-path` zones are the request-handling layer and the
    /// library hot paths a farm request rides through: the sim-serve
    /// sources, the result store, the sampler capture loop, the hwmon
    /// device read path, the operating-point cache, and the platform's
    /// rail solve.
    pub fn workspace_default() -> Config {
        Config {
            allow: vec![
                ("wall-clock", "crates/sim-rt/src/bench.rs"),
                ("wall-clock", "crates/sim-obs/src/clock.rs"),
                ("ambient-rng", "crates/sim-rt/src/rng.rs"),
                ("raw-print", "crates/sim-rt/src/bench.rs"),
                ("raw-print", "crates/bench/src/"),
                ("stray-spawn", "crates/sim-rt/src/pool.rs"),
                ("net-use", "crates/sim-serve/"),
            ],
            panic_zones: vec![
                "sim-serve/src/",
                "sim-store/src/",
                "core/src/sampler.rs",
                "core/src/platform.rs",
                "hwmon-sim/src/device.rs",
                "zynq-soc/src/oppoint.rs",
            ],
        }
    }

    /// An empty allowlist (used by the fixture tests).
    pub fn empty() -> Config {
        Config::default()
    }

    fn allowed(&self, rule: &str, rel_path: &str) -> bool {
        self.allow
            .iter()
            .any(|(r, prefix)| *r == rule && rel_path.starts_with(prefix))
    }

    /// Is `rel_path` inside a `panic-path` enforcement zone?
    pub fn panic_zone(&self, rel_path: &str) -> bool {
        self.panic_zones.iter().any(|z| rel_path.contains(z))
    }
}

/// What part of the workspace a file belongs to, which decides rule
/// applicability. Classified by the path's rightmost `src` / `tests` /
/// `examples` component so explicitly-passed fixture trees classify the
/// same way the real tree does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `crates/*/src/**` — full rule set.
    Library,
    /// Integration tests — determinism rules, but prints are fine.
    Test,
    /// Examples — user-facing binaries; prints are fine.
    Example,
}

/// Classifies a workspace-relative path.
pub fn classify(rel_path: &str) -> FileKind {
    for comp in rel_path.split('/').rev() {
        match comp {
            "src" => return FileKind::Library,
            "tests" => return FileKind::Test,
            "examples" => return FileKind::Example,
            _ => {}
        }
    }
    FileKind::Library
}

/// Outcome of linting one file.
#[derive(Debug, Default)]
pub struct LintResult {
    /// Non-waived diagnostics, in source order.
    pub diags: Vec<Diagnostic>,
    /// Diagnostics suppressed by an inline waiver.
    pub waived: usize,
}

const PRINT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// Lints one Rust source file. `rel_path` is the workspace-relative path
/// (forward slashes) and decides both the file kind and the allowlists.
///
/// This is the single-file entry: the per-file rules (including
/// `panic-path`) run and waivers apply, but the cross-file rules need
/// [`crate::workspace::lint_files`].
pub fn lint_source(rel_path: &str, src: &str, cfg: &Config) -> LintResult {
    let out = lex(src);
    let model = crate::model::build(rel_path, &out);
    let lines: Vec<&str> = src.lines().collect();
    let raw = scan_source(rel_path, &out, &model, cfg, &lines);
    apply_waivers(raw, &out.directives, rel_path, &lines)
}

/// Runs every per-file rule and returns the raw (pre-waiver) diagnostics.
/// The workspace analyzer calls this per file, merges in the cross-file
/// diagnostics, and applies waivers globally so `stale-waiver` sees the
/// complete picture.
pub(crate) fn scan_source(
    rel_path: &str,
    out: &LexOut,
    model: &FileModel,
    cfg: &Config,
    lines: &[&str],
) -> Vec<Diagnostic> {
    let uses = collect_uses(&out.tokens);
    let kind = classify(rel_path);
    let snippet = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };

    let mut raw = Vec::new();
    let mut emit = |rule_id: &'static str, tok: &Tok, message: String| {
        if cfg.allowed(rule_id, rel_path) {
            return;
        }
        let info = rule(rule_id).expect("emit uses known rule ids");
        raw.push(Diagnostic {
            path: rel_path.to_string(),
            line: tok.line,
            col: tok.col,
            rule: info.id,
            severity: info.severity,
            message,
            snippet: snippet(tok.line),
        });
    };

    let toks = &out.tokens;
    let mut i = 0usize;
    let mut in_use = false;
    while i < toks.len() {
        if toks[i].kind != TokKind::Ident {
            if toks[i].is_punct(';') {
                in_use = false;
            }
            i += 1;
            continue;
        }
        if toks[i].text == "use" {
            in_use = true;
        }
        // Macro invocation?
        if kind == FileKind::Library
            && PRINT_MACROS.contains(&toks[i].text.as_str())
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
        {
            emit(
                "raw-print",
                &toks[i],
                format!(
                    "`{}!` in library code; route output through `obs` events/metrics or an explicit writer",
                    toks[i].text
                ),
            );
            i += 2;
            continue;
        }
        // Collect the `a::b::c` chain starting here.
        let start = i;
        let mut segs: Vec<&str> = vec![&toks[i].text];
        let mut j = i + 1;
        while j + 1 < toks.len()
            && toks[j].kind == TokKind::PathSep
            && toks[j + 1].kind == TokKind::Ident
        {
            segs.push(&toks[j + 1].text);
            j += 2;
        }
        // A chain immediately after `.` is a method lookup, not a path; a
        // chain after `as` is the binder of a use-alias, not a reference.
        let after_dot = start > 0 && toks[start - 1].is_punct('.');
        let after_as =
            start > 0 && toks[start - 1].kind == TokKind::Ident && toks[start - 1].text == "as";
        if !after_dot && !after_as {
            check_paths(&toks[start], &segs, toks, j, kind, in_use, &uses, &mut emit);
        }
        i = j;
    }

    // `panic-path`: panic-capable expressions inside the request-handling
    // and hot-path zones, collected by the item model so `#[cfg(test)]`
    // code never counts.
    if cfg.panic_zone(rel_path) {
        for p in &model.panics {
            let info = rule("panic-path").expect("panic-path is registered");
            raw.push(Diagnostic {
                path: rel_path.to_string(),
                line: p.site.line,
                col: p.site.col,
                rule: info.id,
                severity: info.severity,
                message: format!(
                    "{} can panic in a request-handling/hot path; return a typed error (or waive a proven-unreachable site)",
                    p.kind.label()
                ),
                snippet: snippet(p.site.line),
            });
        }
    }
    raw
}

/// Runs the path-based rules on one resolved chain.
#[allow(clippy::too_many_arguments)]
fn check_paths(
    tok: &Tok,
    segs: &[&str],
    toks: &[Tok],
    after: usize,
    kind: FileKind,
    in_use: bool,
    uses: &UseMap,
    emit: &mut impl FnMut(&'static str, &Tok, String),
) {
    let candidates = uses.candidates(segs);

    for cand in &candidates {
        if cand.starts_with("std::time::Instant") || cand.starts_with("std::time::SystemTime") {
            emit(
                "wall-clock",
                tok,
                format!("`{cand}` reads the wall clock; simulation paths must stay deterministic (allowlisted: sim-rt/src/bench.rs, sim-obs/src/clock.rs)"),
            );
            break;
        }
    }

    for cand in &candidates {
        let segments: Vec<&str> = cand.split("::").collect();
        let ambient = (segments.len() > 1 && (segments[0] == "rand" || segments[0] == "getrandom"))
            || segments.iter().any(|s| {
                ["RandomState", "DefaultHasher", "thread_rng", "from_entropy"].contains(s)
            });
        if ambient {
            emit(
                "ambient-rng",
                tok,
                format!("`{cand}` is ambient randomness; derive a stream from the campaign seed via sim-rt/src/rng.rs"),
            );
            break;
        }
    }

    // Importing the type is not the crime — using it default-hashed is —
    // so `use` statements and explicit-hasher constructors are exempt.
    if kind == FileKind::Library && !in_use {
        let hashed = candidates
            .iter()
            .any(|cand| cand.split("::").any(|s| s == "HashMap" || s == "HashSet"));
        let keyed_ctor = segs
            .iter()
            .any(|s| *s == "with_hasher" || *s == "with_capacity_and_hasher");
        if hashed && !keyed_ctor && !has_custom_hasher(toks, after) {
            emit(
                "nondet-iter",
                tok,
                "default-hashed HashMap/HashSet iterates in nondeterministic order; use BTreeMap/BTreeSet or name an explicit hasher state".to_string(),
            );
        }
    }

    for cand in &candidates {
        if cand == "std::thread::spawn" || cand.starts_with("std::thread::Builder") {
            emit(
                "stray-spawn",
                tok,
                format!("`{cand}` creates an untracked OS thread; use sim_rt::pool::Pool for deterministic fan-out"),
            );
            break;
        }
    }

    for cand in &candidates {
        if cand.starts_with("std::net::") {
            emit(
                "net-use",
                tok,
                format!("`{cand}` opens real sockets; networking is confined to crates/sim-serve"),
            );
            break;
        }
    }
}

/// Does the generic-argument list following a chain (either `<…>` or the
/// turbofish `::<…>`) carry a third top-level parameter — i.e. an explicit
/// hasher state on a `HashMap<K, V, S>`?
fn has_custom_hasher(toks: &[Tok], after: usize) -> bool {
    let mut k = after;
    if toks.get(k).is_some_and(|t| t.kind == TokKind::PathSep) {
        k += 1;
    }
    if !toks.get(k).is_some_and(|t| t.is_punct('<')) {
        return false;
    }
    let mut depth = 0usize;
    let mut commas = 0usize;
    let mut prev_dash = false;
    for t in &toks[k..] {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" if prev_dash => {} // `->` in a fn-pointer type
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "," if depth == 1 => commas += 1,
                _ => {}
            }
            prev_dash = t.text == "-";
        } else {
            prev_dash = false;
        }
    }
    commas >= 2
}

/// Applies inline waivers: a directive suppresses matching diagnostics on
/// its own line and the following line. Unknown rule names become
/// `bad-waiver` diagnostics so typos cannot silently disable a rule.
fn apply_waivers(
    raw: Vec<Diagnostic>,
    directives: &[Directive],
    rel_path: &str,
    lines: &[&str],
) -> LintResult {
    let mut result = LintResult::default();
    for d in directives {
        for r in &d.rules {
            if rule(r).is_none() {
                let info = rule("bad-waiver").expect("bad-waiver is registered");
                let message = match suggest(r) {
                    Some(near) => {
                        format!("waiver names unknown rule `{r}`; did you mean `{near}`?")
                    }
                    None => format!("waiver names unknown rule `{r}`"),
                };
                result.diags.push(Diagnostic {
                    path: rel_path.to_string(),
                    line: d.line,
                    col: d.col,
                    rule: info.id,
                    severity: info.severity,
                    message,
                    snippet: lines
                        .get(d.line as usize - 1)
                        .map(|l| l.trim().to_string())
                        .unwrap_or_default(),
                });
            }
        }
    }
    for diag in raw {
        let waived = directives.iter().any(|d| {
            (d.line == diag.line || d.line + 1 == diag.line)
                && d.rules.iter().any(|r| r == diag.rule)
        });
        if waived {
            result.waived += 1;
        } else {
            result.diags.push(diag);
        }
    }
    result.diags.sort_by_key(|d| (d.line, d.col, d.rule));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_lib(src: &str) -> LintResult {
        lint_source("crates/demo/src/lib.rs", src, &Config::empty())
    }

    #[test]
    fn aliased_wall_clock_is_traced() {
        let r = lint_lib(
            "use std::time::Instant as Clock;\nfn f() -> u64 { let t = Clock::now(); 0 }\n",
        );
        assert_eq!(r.diags.len(), 2, "{:?}", r.diags);
        assert!(r.diags.iter().all(|d| d.rule == "wall-clock"));
        assert_eq!((r.diags[0].line, r.diags[0].col), (1, 5));
        assert_eq!((r.diags[1].line, r.diags[1].col), (2, 25));
    }

    #[test]
    fn method_named_iter_on_custom_type_is_fine() {
        let r = lint_lib("fn f(m: &MyMap) { for _ in m.iter() {} }\n");
        assert!(r.diags.is_empty(), "{:?}", r.diags);
    }

    #[test]
    fn custom_hasher_generic_is_allowed() {
        let r = lint_lib(
            "use std::collections::HashMap;\nfn f() { let _m: HashMap<u32, u32, DetState> = HashMap::with_hasher(DetState); }\n",
        );
        assert!(r.diags.is_empty(), "{:?}", r.diags);

        let bad = lint_lib(
            "use std::collections::HashMap;\nfn f() { let _m: HashMap<u32, u32> = HashMap::new(); }\n",
        );
        let rules: Vec<_> = bad.diags.iter().map(|d| (d.rule, d.line, d.col)).collect();
        assert_eq!(
            rules,
            vec![("nondet-iter", 2, 18), ("nondet-iter", 2, 38)],
            "declaration and default constructor both fire"
        );
    }

    #[test]
    fn tests_and_examples_may_print() {
        let src = "fn main() { println!(\"hi\"); }\n";
        assert!(lint_source("tests/t.rs", src, &Config::empty())
            .diags
            .is_empty());
        assert!(lint_source("examples/e.rs", src, &Config::empty())
            .diags
            .is_empty());
        assert_eq!(lint_lib(src).diags.len(), 1);
    }

    #[test]
    fn waiver_on_previous_line_suppresses() {
        let src = "// sim-lint: allow(raw-print)\nfn f() { println!(\"ok\"); }\n";
        let r = lint_lib(src);
        assert!(r.diags.is_empty(), "{:?}", r.diags);
        assert_eq!(r.waived, 1);
    }

    #[test]
    fn unknown_waiver_rule_is_flagged() {
        let r = lint_lib("// sim-lint: allow(no-such-rule)\nfn f() {}\n");
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].rule, "bad-waiver");
    }
}
