//! The `sim-lint` binary: `cargo run -p sim-lint -- [--json] [--rules]
//! [paths…]`.
//!
//! Exit codes: 0 — clean; 1 — at least one non-waived diagnostic; 2 —
//! usage or I/O error. Output goes through explicit writers (not the
//! print macros), so the linter lints itself clean.

use std::io::Write;
use std::path::PathBuf;

use sim_lint::walk::{expand_paths, rel_path, workspace_targets};
use sim_lint::{lint_files, lint_manifest, workspace_edition, Config, Diagnostic, RULES};

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut json = false;
    let mut list_rules = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--rules" => list_rules = true,
            "--help" | "-h" => {
                out(&usage());
                return 0;
            }
            other if other.starts_with('-') => {
                err(&format!("sim-lint: unknown flag `{other}`\n{}", usage()));
                return 2;
            }
            other => paths.push(PathBuf::from(other)),
        }
    }
    if list_rules {
        let mut text = String::from("rule            severity  summary\n");
        for r in RULES {
            text.push_str(&format!(
                "{:<15} {:<9} {}\n",
                r.id,
                r.severity.to_string(),
                r.summary
            ));
        }
        out(&text);
        return 0;
    }

    let root = match find_workspace_root() {
        Some(root) => root,
        None => {
            err("sim-lint: no workspace root (Cargo.toml with [workspace]) above the current directory\n");
            return 2;
        }
    };
    let root_manifest = match std::fs::read_to_string(root.join("Cargo.toml")) {
        Ok(s) => s,
        Err(e) => {
            err(&format!("sim-lint: reading root Cargo.toml: {e}\n"));
            return 2;
        }
    };
    let edition = workspace_edition(&root_manifest);

    let targets = if paths.is_empty() {
        workspace_targets(&root)
    } else {
        expand_paths(&paths)
    };
    let (rs_files, manifests) = match targets {
        Ok(t) => t,
        Err(e) => {
            err(&format!("sim-lint: {e}\n"));
            return 2;
        }
    };

    let cfg = Config::workspace_default();
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut waived = 0usize;
    let mut files = 0usize;
    for path in &manifests {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                err(&format!("sim-lint: reading {}: {e}\n", path.display()));
                return 2;
            }
        };
        let is_root = path == &root.join("Cargo.toml");
        let result = lint_manifest(&rel_path(&root, path), &src, edition.as_deref(), is_root);
        files += 1;
        waived += result.waived;
        diags.extend(result.diags);
    }

    // Rust sources go through the two-pass workspace analyzer together,
    // so the cross-file rules (lock-order, metric-name-drift,
    // stale-waiver) see the merged model.
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in &rs_files {
        match std::fs::read_to_string(path) {
            Ok(src) => sources.push((rel_path(&root, path), src)),
            Err(e) => {
                err(&format!("sim-lint: reading {}: {e}\n", path.display()));
                return 2;
            }
        }
    }
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(rel, src)| (rel.as_str(), src.as_str()))
        .collect();
    let result = lint_files(&refs, &cfg);
    files += refs.len();
    waived += result.waived;
    diags.extend(result.diags);
    diags.sort_by_key(|d| d.sort_key());

    if json {
        let mut text = String::new();
        for d in &diags {
            text.push_str(&d.to_json());
            text.push('\n');
        }
        out(&text);
    } else {
        let mut text = String::new();
        for d in &diags {
            text.push_str(&d.render());
            text.push_str("\n\n");
        }
        text.push_str(&format!(
            "sim-lint: {} diagnostic(s), {waived} waived, {files} file(s) scanned\n",
            diags.len()
        ));
        out(&text);
    }
    if diags.is_empty() {
        0
    } else {
        1
    }
}

fn usage() -> String {
    "usage: sim-lint [--json] [--rules] [paths…]\n\
     \n\
     With no paths, scans the whole workspace (crates/*/src, crates/*/tests,\n\
     tests/, examples/, and every Cargo.toml). Paths may be files or\n\
     directories; fixture exclusions do not apply to explicit paths.\n"
        .to_string()
}

/// Nearest ancestor of the current directory whose Cargo.toml declares
/// `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(src) = std::fs::read_to_string(&manifest) {
                if src.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn out(text: &str) {
    let stdout = std::io::stdout();
    let _ = stdout.lock().write_all(text.as_bytes());
}

fn err(text: &str) {
    let stderr = std::io::stderr();
    let _ = stderr.lock().write_all(text.as_bytes());
}
