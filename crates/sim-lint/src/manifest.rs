//! `registry-dep`: Cargo.toml auditing for the offline guarantee.
//!
//! The workspace builds with `--offline` and zero registry dependencies.
//! This module parses every manifest with a purpose-built line scanner (no
//! TOML crate — that would itself be a registry dependency) and fails on:
//!
//! * any dependency that is not `path`-only or `workspace = true`
//!   (version strings, `git = …`, `registry = …`);
//! * a crate whose `edition` diverges from the workspace edition, with a
//!   readable `-`/`+` diff in the message;
//! * a crate that declares no edition at all (Cargo would silently default
//!   to 2015).

use crate::diag::Diagnostic;
use crate::lexer::{scan_directives, Directive};
use crate::rules::{rule, LintResult};

/// Extracts `edition = "…"` from the root manifest's `[workspace.package]`
/// table.
pub fn workspace_edition(root_src: &str) -> Option<String> {
    let mut section = String::new();
    for line in root_src.lines() {
        let line = strip_comment(line).trim().to_string();
        if let Some(name) = header(&line) {
            section = name;
        } else if section == "workspace.package" {
            if let Some((key, value)) = key_value(&line) {
                if key == "edition" {
                    return Some(unquote(&value));
                }
            }
        }
    }
    None
}

/// Lints one manifest. `is_root` selects workspace-root checks (the
/// `[workspace.dependencies]` table) over crate checks (edition).
pub fn lint_manifest(
    rel_path: &str,
    src: &str,
    workspace_edition: Option<&str>,
    is_root: bool,
) -> LintResult {
    let mut directives: Vec<Directive> = Vec::new();
    let mut raw: Vec<Diagnostic> = Vec::new();
    let info = rule("registry-dep").expect("registry-dep is registered");
    let mut emit = |line_no: u32, col: u32, message: String, snippet: &str| {
        raw.push(Diagnostic {
            path: rel_path.to_string(),
            line: line_no,
            col,
            rule: info.id,
            severity: info.severity,
            message,
            snippet: snippet.trim().to_string(),
        });
    };

    let mut section = String::new();
    // `[dependencies.foo]` table tracking: (header line, snippet, satisfied).
    let mut dep_table: Option<(u32, String, bool)> = None;
    let mut package_header: Option<u32> = None;
    let mut edition_seen = false;

    let lines: Vec<&str> = src.lines().collect();
    for (idx, raw_line) in lines.iter().enumerate() {
        let line_no = idx as u32 + 1;
        let (code, comment) = split_comment(raw_line);
        if let Some((text, col)) = comment {
            scan_directives(text, line_no, col, &mut directives);
        }
        let line = code.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = header(line) {
            if let Some((hl, hs, ok)) = dep_table.take() {
                if !ok {
                    emit(
                        hl,
                        1,
                        "dependency table declares neither `path` nor `workspace = true`; registry and git dependencies are forbidden".to_string(),
                        &hs,
                    );
                }
            }
            if name == "package" {
                package_header = Some(line_no);
            }
            if is_dep_table(&name) {
                dep_table = Some((line_no, line.to_string(), false));
            }
            section = name;
            continue;
        }
        let Some((key, value)) = key_value(line) else {
            continue;
        };
        if let Some((_, _, ok)) = dep_table.as_mut() {
            if key == "path" || (key == "workspace" && value.trim() == "true") {
                *ok = true;
            }
            continue;
        }
        if is_dep_section(&section) {
            if !dep_value_is_offline(&key, &value) {
                let col = raw_line.find(&key).map(|p| p as u32 + 1).unwrap_or(1);
                emit(
                    line_no,
                    col,
                    format!("dependency `{key}` must be `path`-only or `workspace = true` to keep the workspace offline"),
                    raw_line,
                );
            }
            continue;
        }
        if section == "package" && !is_root {
            if key == "edition.workspace" && value.trim() == "true" {
                edition_seen = true;
            } else if key == "edition" {
                edition_seen = true;
                if inline_table_has(&value, "workspace", "true") {
                    continue;
                }
                let found = unquote(&value);
                if let Some(want) = workspace_edition {
                    if found != want {
                        let col = raw_line.find("edition").map(|p| p as u32 + 1).unwrap_or(1);
                        emit(
                            line_no,
                            col,
                            format!(
                                "edition diverges from the workspace\n   - edition = \"{found}\" (this crate)\n   + edition = \"{want}\" (workspace)"
                            ),
                            raw_line,
                        );
                    }
                }
            }
        }
    }
    if let Some((hl, hs, ok)) = dep_table.take() {
        if !ok {
            emit(
                hl,
                1,
                "dependency table declares neither `path` nor `workspace = true`; registry and git dependencies are forbidden".to_string(),
                &hs,
            );
        }
    }
    if !is_root && !edition_seen {
        if let Some(hl) = package_header {
            emit(
                hl,
                1,
                "crate declares no edition (Cargo defaults to 2015); add `edition.workspace = true`".to_string(),
                lines.get(hl as usize - 1).unwrap_or(&"[package]"),
            );
        }
    }

    // Waiver filtering, same semantics as source files.
    let mut result = LintResult::default();
    for diag in raw {
        let waived = directives.iter().any(|d| {
            (d.line == diag.line || d.line + 1 == diag.line)
                && d.rules.iter().any(|r| r == diag.rule)
        });
        if waived {
            result.waived += 1;
        } else {
            result.diags.push(diag);
        }
    }
    result
}

/// `[section.name]` header → `section.name` (quotes stripped).
fn header(line: &str) -> Option<String> {
    let line = line.strip_prefix('[')?;
    let line = line.strip_suffix(']')?;
    Some(line.replace('"', ""))
}

/// Is `section` a table whose *entries* are dependencies?
fn is_dep_section(section: &str) -> bool {
    matches!(
        section,
        "dependencies" | "dev-dependencies" | "build-dependencies" | "workspace.dependencies"
    ) || section.ends_with(".dependencies")
        || section.ends_with(".dev-dependencies")
        || section.ends_with(".build-dependencies")
}

/// Is `section` a single-dependency table like `[dependencies.foo]`?
fn is_dep_table(section: &str) -> bool {
    for parent in [
        "dependencies.",
        "dev-dependencies.",
        "build-dependencies.",
        "workspace.dependencies.",
    ] {
        if let Some(rest) = section.strip_prefix(parent) {
            if !rest.contains('.') {
                return true;
            }
        }
    }
    false
}

/// Does a `name = value` dependency line keep the workspace offline?
fn dep_value_is_offline(key: &str, value: &str) -> bool {
    if key.ends_with(".workspace") {
        return value.trim() == "true";
    }
    let value = value.trim();
    if value.starts_with('{') {
        return inline_table_has(value, "workspace", "true")
            || inline_table_key(value, "path").is_some();
    }
    // Bare string (`foo = "1.0"`) is a registry version requirement.
    false
}

/// Looks up `key` in an inline table literal, returning its raw value.
fn inline_table_key<'a>(table: &'a str, key: &str) -> Option<&'a str> {
    let inner = table.trim().strip_prefix('{')?.strip_suffix('}')?;
    for part in inner.split(',') {
        if let Some((k, v)) = part.split_once('=') {
            if k.trim() == key {
                return Some(v.trim());
            }
        }
    }
    None
}

fn inline_table_has(table: &str, key: &str, want: &str) -> bool {
    inline_table_key(table, key) == Some(want)
}

/// Splits a line into code and an optional `#` comment (respecting
/// quotes); returns the comment body and its 1-based column.
fn split_comment(line: &str) -> (&str, Option<(&str, u32)>) {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => {
                let col = line[..i].chars().count() as u32 + 2;
                return (&line[..i], Some((&line[i + 1..], col)));
            }
            _ => {}
        }
    }
    (line, None)
}

fn strip_comment(line: &str) -> &str {
    split_comment(line).0
}

fn key_value(line: &str) -> Option<(String, String)> {
    let (key, value) = line.split_once('=')?;
    let key = key.trim().replace('"', "");
    if key.is_empty() || key.contains('[') {
        return None;
    }
    Some((key, value.trim().to_string()))
}

fn unquote(v: &str) -> String {
    v.trim().trim_matches('"').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_edition_parses() {
        let src =
            "[workspace]\nmembers = [\"crates/*\"]\n[workspace.package]\nedition = \"2021\"\n";
        assert_eq!(workspace_edition(src).as_deref(), Some("2021"));
    }

    #[test]
    fn path_and_workspace_deps_pass() {
        let src = "[package]\nname = \"x\"\nedition.workspace = true\n[dependencies]\nsim-rt.workspace = true\nother = { path = \"../other\" }\n";
        let r = lint_manifest("crates/x/Cargo.toml", src, Some("2021"), false);
        assert!(r.diags.is_empty(), "{:?}", r.diags);
    }

    #[test]
    fn version_and_git_deps_fail() {
        let src = "[package]\nname = \"x\"\nedition = \"2021\"\n[dependencies]\nserde = \"1.0\"\nrand = { git = \"https://example.com/rand\" }\n";
        let r = lint_manifest("crates/x/Cargo.toml", src, Some("2021"), false);
        let keys: Vec<_> = r.diags.iter().map(|d| (d.line, d.rule)).collect();
        assert_eq!(keys, vec![(5, "registry-dep"), (6, "registry-dep")]);
    }

    #[test]
    fn edition_mismatch_renders_a_diff() {
        let src = "[package]\nname = \"x\"\nedition = \"2018\"\n";
        let r = lint_manifest("crates/x/Cargo.toml", src, Some("2021"), false);
        assert_eq!(r.diags.len(), 1);
        assert!(r.diags[0].message.contains("- edition = \"2018\""));
        assert!(r.diags[0].message.contains("+ edition = \"2021\""));
    }

    #[test]
    fn missing_edition_is_flagged_at_package_header() {
        let src = "[package]\nname = \"x\"\n";
        let r = lint_manifest("crates/x/Cargo.toml", src, Some("2021"), false);
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].line, 1);
    }

    #[test]
    fn dep_table_without_path_is_flagged_once() {
        let src = "[package]\nname = \"x\"\nedition.workspace = true\n[dependencies.remote]\nversion = \"1\"\n[dependencies.local]\npath = \"../local\"\n";
        let r = lint_manifest("crates/x/Cargo.toml", src, Some("2021"), false);
        assert_eq!(r.diags.len(), 1, "{:?}", r.diags);
        assert_eq!(r.diags[0].line, 4);
    }

    #[test]
    fn waiver_comment_suppresses() {
        let src = "[package]\nname = \"x\"\nedition.workspace = true\n[dependencies]\n# sim-lint: allow(registry-dep)\nserde = \"1.0\"\n";
        let r = lint_manifest("crates/x/Cargo.toml", src, Some("2021"), false);
        assert!(r.diags.is_empty(), "{:?}", r.diags);
        assert_eq!(r.waived, 1);
    }
}
