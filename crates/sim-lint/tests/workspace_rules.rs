//! Integration coverage for the cross-file workspace rules: each new
//! rule against its known-bad fixture with exact `file:line:col` span
//! assertions, plus the two-file lock-order cycle neither file exhibits
//! alone.

use sim_lint::{lint_files, lint_source, Config, Diagnostic};

const CYCLE_A: &str = include_str!("fixtures/lock_cycle/a/src/lib.rs");
const CYCLE_B: &str = include_str!("fixtures/lock_cycle/b/src/lib.rs");
const PANIC_PATH: &str = include_str!("fixtures/panic_path/sim-serve/src/handler.rs");
const DRIFT_CODE: &str = include_str!("fixtures/metric_drift/demo/src/code.rs");
const DRIFT_PINS: &str = include_str!("fixtures/metric_drift/demo/tests/metrics_names.rs");
const STALE: &str = include_str!("fixtures/stale_waiver/src/lib.rs");

fn spans(diags: &[Diagnostic]) -> Vec<(&str, u32, u32, &'static str)> {
    diags
        .iter()
        .map(|d| (d.path.as_str(), d.line, d.col, d.rule))
        .collect()
}

#[test]
fn two_file_lock_cycle_fires_only_when_merged() {
    let cfg = Config::workspace_default();
    // Each file alone orders its own two acquisitions consistently.
    for (rel, src) in [
        ("crates/demo-a/src/lib.rs", CYCLE_A),
        ("crates/demo-b/src/lib.rs", CYCLE_B),
    ] {
        let r = lint_files(&[(rel, src)], &cfg);
        assert!(r.diags.is_empty(), "{rel} alone: {:?}", r.diags);
    }
    // Merged, B's beta→alpha closes the cycle A opened.
    let r = lint_files(
        &[
            ("crates/demo-a/src/lib.rs", CYCLE_A),
            ("crates/demo-b/src/lib.rs", CYCLE_B),
        ],
        &cfg,
    );
    assert_eq!(
        spans(&r.diags),
        vec![("crates/demo-b/src/lib.rs", 20, 22, "lock-order")],
        "{:?}",
        r.diags
    );
    assert!(
        r.diags[0]
            .message
            .contains("demo.alpha \u{2192} demo.beta \u{2192} demo.alpha"),
        "{}",
        r.diags[0].message
    );
}

#[test]
fn panic_path_flags_all_four_shapes_with_exact_spans() {
    // Single-file rule: `lint_source` is enough, and the `#[cfg(test)]`
    // module at the bottom of the fixture must stay invisible.
    let r = lint_source(
        "crates/sim-serve/src/handler.rs",
        PANIC_PATH,
        &Config::workspace_default(),
    );
    assert_eq!(
        spans(&r.diags),
        vec![
            ("crates/sim-serve/src/handler.rs", 6, 24, "panic-path"),
            ("crates/sim-serve/src/handler.rs", 7, 25, "panic-path"),
            ("crates/sim-serve/src/handler.rs", 9, 9, "panic-path"),
            ("crates/sim-serve/src/handler.rs", 11, 26, "panic-path"),
        ],
        "{:?}",
        r.diags
    );
}

#[test]
fn panic_path_is_silent_outside_the_zones() {
    let r = lint_source(
        "crates/rforest/src/lib.rs",
        PANIC_PATH,
        &Config::workspace_default(),
    );
    assert!(r.diags.is_empty(), "{:?}", r.diags);
}

#[test]
fn metric_drift_flags_orphans_in_both_directions() {
    let r = lint_files(
        &[
            ("crates/demo/src/code.rs", DRIFT_CODE),
            ("crates/demo/tests/metrics_names.rs", DRIFT_PINS),
        ],
        &Config::workspace_default(),
    );
    assert_eq!(
        spans(&r.diags),
        vec![
            ("crates/demo/src/code.rs", 7, 19, "metric-name-drift"),
            (
                "crates/demo/tests/metrics_names.rs",
                4,
                35,
                "metric-name-drift"
            ),
        ],
        "{:?}",
        r.diags
    );
    assert!(r.diags[0].message.contains("drift.unpinned"));
    assert!(r.diags[1].message.contains("drift.ghost"));
}

#[test]
fn metric_drift_is_inert_without_a_pin_file() {
    let r = lint_files(
        &[("crates/demo/src/code.rs", DRIFT_CODE)],
        &Config::workspace_default(),
    );
    assert!(r.diags.is_empty(), "{:?}", r.diags);
}

#[test]
fn stale_and_bad_waivers_fire_with_exact_spans() {
    let r = lint_files(
        &[("crates/demo/src/lib.rs", STALE)],
        &Config::workspace_default(),
    );
    assert_eq!(
        spans(&r.diags),
        vec![
            ("crates/demo/src/lib.rs", 7, 22, "stale-waiver"),
            ("crates/demo/src/lib.rs", 9, 21, "bad-waiver"),
        ],
        "{:?}",
        r.diags
    );
    assert!(
        r.diags[1].message.contains("did you mean `wall-clock`?"),
        "{}",
        r.diags[1].message
    );
    // The three genuine wall-clock hits stay waived by the live waivers.
    assert_eq!(r.waived, 3);
}

#[test]
fn real_workspace_sources_pass_the_cross_file_rules() {
    // The crate's own sources through the workspace entry: no cycles, no
    // panic sites, no stale waivers hiding in the analyzer itself.
    let files = [
        ("crates/sim-lint/src/lib.rs", include_str!("../src/lib.rs")),
        (
            "crates/sim-lint/src/lexer.rs",
            include_str!("../src/lexer.rs"),
        ),
        (
            "crates/sim-lint/src/model.rs",
            include_str!("../src/model.rs"),
        ),
        (
            "crates/sim-lint/src/rules.rs",
            include_str!("../src/rules.rs"),
        ),
        (
            "crates/sim-lint/src/workspace.rs",
            include_str!("../src/workspace.rs"),
        ),
    ];
    let r = lint_files(&files, &Config::workspace_default());
    assert!(r.diags.is_empty(), "{:?}", r.diags);
}
