//! Panic-path fixture: one site per panic shape the rule recognizes,
//! inside a path the zone list covers (`sim-serve/src/`).

pub fn handle(line: &str, jobs: &[u32]) -> u32 {
    let parsed: Option<u32> = line.parse().ok();
    let first = parsed.unwrap();
    let second = parsed.expect("parsed above");
    if jobs.is_empty() {
        panic!("no jobs");
    }
    first + second + jobs[0]
}

#[cfg(test)]
mod tests {
    // Test code may panic freely; none of these count.
    #[test]
    fn harness_asserts() {
        let v = [1u32];
        assert_eq!(v[0], Some(1).unwrap());
    }
}
