fn fan_out() -> u32 {
    let h = std::thread::spawn(|| 1u32);
    let _b = std::thread::Builder::new();
    h.join().unwrap()
}
