fn waived() {
    // sim-lint: allow(raw-print)
    println!("sanctioned");
    let t = std::time::Instant::now(); // sim-lint: allow(wall-clock)
    let _ = t;
    // sim-lint: allow(raw-pront)
    let x = 1;
    let _ = x;
}
