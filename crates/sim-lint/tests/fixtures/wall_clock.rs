use std::time::Instant;

fn elapsed() -> u64 {
    let start = Instant::now();
    let _ = std::time::SystemTime::now();
    start.elapsed().as_nanos() as u64
}
