use std::net::TcpListener;

fn serve() {
    let l = TcpListener::bind("127.0.0.1:0");
    let _s = std::net::TcpStream::connect("127.0.0.1:1");
    let _u = std::net::UdpSocket::bind("127.0.0.1:0"); // sim-lint: allow(net-use)
    let _ = l;
}
