//! Lock-order fixture, file B: acquires `demo.beta` then `demo.alpha` —
//! the reverse of file A, closing an A→B / B→A cycle neither file
//! exhibits alone.

pub struct Beta {
    beta: TrackedMutex<u32>,
    alpha: TrackedMutex<u32>,
}

impl Beta {
    pub fn new() -> Beta {
        Beta {
            beta: TrackedMutex::new("demo.beta", 0),
            alpha: TrackedMutex::new("demo.alpha", 0),
        }
    }

    pub fn beta_then_alpha(&self) -> u32 {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        *b + *a
    }
}
