//! Lock-order fixture, file A: acquires `demo.alpha` then `demo.beta`.
//! Clean on its own — the cycle only exists together with file B.

pub struct Alpha {
    alpha: TrackedMutex<u32>,
    beta: TrackedMutex<u32>,
}

impl Alpha {
    pub fn new() -> Alpha {
        Alpha {
            alpha: TrackedMutex::new("demo.alpha", 0),
            beta: TrackedMutex::new("demo.beta", 0),
        }
    }

    pub fn alpha_then_beta(&self) -> u32 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *a + *b
    }
}
