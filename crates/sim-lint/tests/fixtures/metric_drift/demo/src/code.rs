//! Metric-drift fixture, code side: registers one pinned name (clean),
//! one name missing from the pin table (code-side orphan), and one
//! dynamic name the table exempts.

pub fn observe(status: &str) {
    obs::counter!("drift.pinned.ok").inc();
    obs::counter!("drift.unpinned").inc();
    obs::metrics::counter(format!("drift.dynamic.{status}")).inc();
}
