//! Metric-drift fixture, pin side: pins the clean name, pins one ghost
//! name no code registers (pin-side orphan), and exempts a dynamic name.

const PINNED_METRICS: &[&str] = &["drift.ghost", "drift.pinned.ok"];

const DYNAMIC_METRICS: &[&str] = &["drift.dynamic.sent"];

#[test]
fn tables_exist() {
    assert!(!PINNED_METRICS.is_empty());
    assert!(!DYNAMIC_METRICS.is_empty());
}
