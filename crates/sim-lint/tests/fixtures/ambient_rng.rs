use std::collections::hash_map::RandomState;

fn seed() -> u64 {
    let _state = RandomState::new();
    let v = rand::random::<u64>();
    v
}
