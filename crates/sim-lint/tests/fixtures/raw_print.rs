fn report(v: u64) {
    println!("value = {v}");
    eprintln!("warn");
    dbg!(v);
}
