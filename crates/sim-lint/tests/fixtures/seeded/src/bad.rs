//! Deliberately-bad file: ci.sh points sim-lint here and asserts the
//! gate exits non-zero. Never compiled.

use std::time::Instant;

fn noisy() -> u64 {
    let t = Instant::now();
    println!("elapsed so far: {:?}", t.elapsed());
    0
}
