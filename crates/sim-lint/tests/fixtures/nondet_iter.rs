use std::collections::HashMap;
use std::collections::HashSet;

fn build() -> usize {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    let s: HashSet<u32> = HashSet::new();
    m.len() + s.len()
}
