//! Stale-waiver fixture: a live waiver (suppresses a real diagnostic), a
//! stale one (suppresses nothing), and a typo'd one (bad-waiver, with a
//! nearest-rule suggestion).

use std::time::Instant; // sim-lint: allow(wall-clock)

pub fn quiet() {} // sim-lint: allow(raw-print)

pub fn typo() {} // sim-lint: allow(wall-clok)

// sim-lint: allow(wall-clock)
pub fn tick() -> Instant {
    Instant::now() // sim-lint: allow(wall-clock)
}
