//! Mentions of println! and std::time::Instant in doc comments are text,
//! not code, and must never fire.

// Same for plain comments naming std::thread::spawn or HashMap::new().

/* Block comments too: rand::random, SystemTime::now().
   /* even nested ones: dbg!(RandomState) */ eprintln!("x") */

fn lookalikes() -> String {
    let s = "std::time::Instant::now() println!(\"hi\")";
    let r = r#"rand::random and RandomState in a raw "string""#;
    let b = b"std::thread::spawn";
    let c = 'H'; // a char, not the start of a lifetime
    let lt: &'static str = "HashSet::new()";
    let _ = (s, r, &b[..], c);
    lt.to_string()
}
