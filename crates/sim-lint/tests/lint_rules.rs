//! Fixture-corpus tests: one known-bad file per rule with exact
//! diagnostic spans, waiver cases, and false-positive (lookalike) cases.
//!
//! Fixtures live under `tests/fixtures/` — a directory the default
//! workspace walk skips, so the deliberately-bad code never trips the
//! real gate. Each fixture is linted under a *virtual* workspace path,
//! which is what decides file kind and allowlists.

use sim_lint::{lint_manifest, lint_source, Config, Diagnostic};

const WALL_CLOCK: &str = include_str!("fixtures/wall_clock.rs");
const AMBIENT_RNG: &str = include_str!("fixtures/ambient_rng.rs");
const NONDET_ITER: &str = include_str!("fixtures/nondet_iter.rs");
const RAW_PRINT: &str = include_str!("fixtures/raw_print.rs");
const STRAY_SPAWN: &str = include_str!("fixtures/stray_spawn.rs");
const NET_USE: &str = include_str!("fixtures/net_use.rs");
const WAIVERS: &str = include_str!("fixtures/waivers.rs");
const LOOKALIKE: &str = include_str!("fixtures/lookalike.rs");
const REGISTRY_BAD: &str = include_str!("fixtures/registry_bad.toml");
const REGISTRY_OK: &str = include_str!("fixtures/registry_ok.toml");
const SEEDED: &str = include_str!("fixtures/seeded/src/bad.rs");

fn spans(diags: &[Diagnostic]) -> Vec<(u32, u32, &str)> {
    diags.iter().map(|d| (d.line, d.col, d.rule)).collect()
}

fn lint_lib(src: &str) -> sim_lint::LintResult {
    lint_source("crates/demo/src/lib.rs", src, &Config::workspace_default())
}

#[test]
fn wall_clock_fixture_spans() {
    let r = lint_lib(WALL_CLOCK);
    assert_eq!(
        spans(&r.diags),
        vec![
            (1, 5, "wall-clock"),
            (4, 17, "wall-clock"),
            (5, 13, "wall-clock"),
        ],
        "{:?}",
        r.diags
    );
    assert_eq!(r.waived, 0);
}

#[test]
fn wall_clock_allowlisted_paths_are_clean() {
    for path in ["crates/sim-rt/src/bench.rs", "crates/sim-obs/src/clock.rs"] {
        let r = lint_source(path, WALL_CLOCK, &Config::workspace_default());
        assert!(r.diags.is_empty(), "{path}: {:?}", r.diags);
    }
}

#[test]
fn ambient_rng_fixture_spans() {
    let r = lint_lib(AMBIENT_RNG);
    assert_eq!(
        spans(&r.diags),
        vec![
            (1, 5, "ambient-rng"),
            (4, 18, "ambient-rng"),
            (5, 13, "ambient-rng"),
        ],
        "{:?}",
        r.diags
    );
}

#[test]
fn ambient_rng_allowed_in_rng_module() {
    let r = lint_source(
        "crates/sim-rt/src/rng.rs",
        AMBIENT_RNG,
        &Config::workspace_default(),
    );
    assert!(r.diags.is_empty(), "{:?}", r.diags);
}

#[test]
fn nondet_iter_fixture_spans() {
    let r = lint_lib(NONDET_ITER);
    assert_eq!(
        spans(&r.diags),
        vec![
            (5, 16, "nondet-iter"),
            (5, 36, "nondet-iter"),
            (7, 12, "nondet-iter"),
            (7, 27, "nondet-iter"),
        ],
        "{:?}",
        r.diags
    );
}

#[test]
fn nondet_iter_only_applies_to_library_code() {
    let r = lint_source(
        "tests/fixture.rs",
        NONDET_ITER,
        &Config::workspace_default(),
    );
    assert!(r.diags.is_empty(), "{:?}", r.diags);
}

#[test]
fn raw_print_fixture_spans() {
    let r = lint_lib(RAW_PRINT);
    assert_eq!(
        spans(&r.diags),
        vec![
            (2, 5, "raw-print"),
            (3, 5, "raw-print"),
            (4, 5, "raw-print")
        ],
        "{:?}",
        r.diags
    );
}

#[test]
fn raw_print_fine_in_tests_examples_and_bench_crate() {
    for path in [
        "tests/demo.rs",
        "examples/demo.rs",
        "crates/bench/src/report.rs",
    ] {
        let r = lint_source(path, RAW_PRINT, &Config::workspace_default());
        assert!(r.diags.is_empty(), "{path}: {:?}", r.diags);
    }
}

#[test]
fn stray_spawn_fixture_spans() {
    let r = lint_lib(STRAY_SPAWN);
    assert_eq!(
        spans(&r.diags),
        vec![(2, 13, "stray-spawn"), (3, 14, "stray-spawn")],
        "{:?}",
        r.diags
    );
}

#[test]
fn stray_spawn_allowed_in_the_pool() {
    let r = lint_source(
        "crates/sim-rt/src/pool.rs",
        STRAY_SPAWN,
        &Config::workspace_default(),
    );
    assert!(r.diags.is_empty(), "{:?}", r.diags);
}

#[test]
fn net_use_fixture_spans() {
    let r = lint_lib(NET_USE);
    assert_eq!(
        spans(&r.diags),
        vec![(1, 5, "net-use"), (4, 13, "net-use"), (5, 14, "net-use")],
        "{:?}",
        r.diags
    );
    // The UdpSocket line carries an inline waiver.
    assert_eq!(r.waived, 1);
}

#[test]
fn net_use_fires_in_test_code_too() {
    // Unlike raw-print, sockets are banned everywhere outside sim-serve:
    // a test opening a port is as nondeterministic as a library doing it.
    let r = lint_source("tests/demo.rs", NET_USE, &Config::workspace_default());
    assert_eq!(r.diags.len(), 3, "{:?}", r.diags);
    assert!(r.diags.iter().all(|d| d.rule == "net-use"));
}

#[test]
fn net_use_allowed_throughout_sim_serve() {
    for path in [
        "crates/sim-serve/src/server.rs",
        "crates/sim-serve/src/bin/serve.rs",
        "crates/sim-serve/tests/serve.rs",
    ] {
        let r = lint_source(path, NET_USE, &Config::workspace_default());
        assert!(r.diags.is_empty(), "{path}: {:?}", r.diags);
    }
}

#[test]
fn net_lookalikes_do_not_fire() {
    // A local `net` module or a `std::net`-like suffix in another crate
    // must not trip the rule.
    let src = "mod net { pub struct TcpListener; }\n\
               fn f() { let _l = net::TcpListener; my::std::net::thing(); }\n";
    let r = lint_lib(src);
    assert!(r.diags.is_empty(), "{:?}", r.diags);
}

#[test]
fn waivers_suppress_and_typos_are_flagged() {
    let r = lint_lib(WAIVERS);
    // The println! and the Instant::now() are waived; the misspelled
    // `raw-pront` waiver is itself a diagnostic.
    assert_eq!(spans(&r.diags), vec![(6, 8, "bad-waiver")], "{:?}", r.diags);
    assert_eq!(r.waived, 2);
    assert!(r.diags[0].message.contains("raw-pront"));
}

#[test]
fn lookalikes_in_strings_and_comments_never_fire() {
    let r = lint_lib(LOOKALIKE);
    assert!(r.diags.is_empty(), "{:?}", r.diags);
    assert_eq!(r.waived, 0);
}

#[test]
fn registry_bad_manifest_spans() {
    let r = lint_manifest(
        "crates/fixture/Cargo.toml",
        REGISTRY_BAD,
        Some("2021"),
        false,
    );
    assert_eq!(
        spans(&r.diags),
        vec![
            (3, 1, "registry-dep"),
            (6, 1, "registry-dep"),
            (7, 1, "registry-dep"),
            (10, 1, "registry-dep"),
        ],
        "{:?}",
        r.diags
    );
    assert_eq!(r.waived, 1, "the commented-out waiver covers waived-dep");
    let diff = &r.diags[0].message;
    assert!(diff.contains("- edition = \"2018\""), "{diff}");
    assert!(diff.contains("+ edition = \"2021\""), "{diff}");
}

#[test]
fn registry_ok_manifest_is_clean() {
    let r = lint_manifest(
        "crates/fixture/Cargo.toml",
        REGISTRY_OK,
        Some("2021"),
        false,
    );
    assert!(r.diags.is_empty(), "{:?}", r.diags);
    assert_eq!(r.waived, 0);
}

#[test]
fn seeded_fixture_fails_as_library_code() {
    // ci.sh points the binary at fixtures/seeded and expects exit 1;
    // this pins the library-level behavior behind that self-test.
    let r = lint_source(
        "crates/sim-lint/tests/fixtures/seeded/src/bad.rs",
        SEEDED,
        &Config::workspace_default(),
    );
    let rules: Vec<&str> = r.diags.iter().map(|d| d.rule).collect();
    assert!(rules.contains(&"wall-clock"), "{:?}", r.diags);
    assert!(rules.contains(&"raw-print"), "{:?}", r.diags);
}

#[test]
fn sim_defend_sources_pass_every_rule() {
    // The defense-layer crate sits on the hot sensing path and must obey
    // the full workspace discipline: seeded randomness only, BTreeMap
    // iteration, no raw printing, no stray threads, no wall clock. Lint
    // the real sources under their real paths, and the manifest too.
    let cfg = Config::workspace_default();
    for (path, src) in [
        (
            "crates/sim-defend/src/lib.rs",
            include_str!("../../sim-defend/src/lib.rs"),
        ),
        (
            "crates/sim-defend/src/layers.rs",
            include_str!("../../sim-defend/src/layers.rs"),
        ),
    ] {
        let r = lint_source(path, src, &cfg);
        assert!(r.diags.is_empty(), "{path}: {:?}", r.diags);
        assert_eq!(r.waived, 0, "{path} needs no waivers");
    }
    let r = lint_manifest(
        "crates/sim-defend/Cargo.toml",
        include_str!("../../sim-defend/Cargo.toml"),
        Some("2021"),
        false,
    );
    assert!(r.diags.is_empty(), "{:?}", r.diags);
}

#[test]
fn sim_store_sources_pass_every_rule() {
    // The content-addressed store is a panic-path zone (a lookup rides
    // inside every farm request) and persists results to disk: no
    // unwrap/expect/indexing outside tests, ordered iteration only, no
    // wall clock, no printing, no stray threads. Lint the real sources
    // under their real paths, waiver-free, and the manifest too.
    let cfg = Config::workspace_default();
    for (path, src) in [
        (
            "crates/sim-store/src/lib.rs",
            include_str!("../../sim-store/src/lib.rs"),
        ),
        (
            "crates/sim-store/src/digest.rs",
            include_str!("../../sim-store/src/digest.rs"),
        ),
        (
            "crates/sim-store/src/hot.rs",
            include_str!("../../sim-store/src/hot.rs"),
        ),
        (
            "crates/sim-store/src/segment.rs",
            include_str!("../../sim-store/src/segment.rs"),
        ),
        (
            "crates/sim-store/src/checkpoint.rs",
            include_str!("../../sim-store/src/checkpoint.rs"),
        ),
    ] {
        let r = lint_source(path, src, &cfg);
        assert!(r.diags.is_empty(), "{path}: {:?}", r.diags);
        assert_eq!(r.waived, 0, "{path} needs no waivers");
    }
    let r = lint_manifest(
        "crates/sim-store/Cargo.toml",
        include_str!("../../sim-store/Cargo.toml"),
        Some("2021"),
        false,
    );
    assert!(r.diags.is_empty(), "{:?}", r.diags);
}

#[test]
fn trace_and_flight_sources_pass_every_rule() {
    // The tracing and flight-recorder modules run inside every service
    // and worker thread: wall-clock reads must go through obs::clock,
    // iteration must be ordered, and nothing may print or spawn. Lint
    // the real sources under their real paths, waiver-free.
    let cfg = Config::workspace_default();
    for (path, src) in [
        (
            "crates/sim-obs/src/trace.rs",
            include_str!("../../sim-obs/src/trace.rs"),
        ),
        (
            "crates/sim-obs/src/flight.rs",
            include_str!("../../sim-obs/src/flight.rs"),
        ),
    ] {
        let r = lint_source(path, src, &cfg);
        assert!(r.diags.is_empty(), "{path}: {:?}", r.diags);
        assert_eq!(r.waived, 0, "{path} needs no waivers");
    }
}
