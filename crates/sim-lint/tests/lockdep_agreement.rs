//! Acceptance gate: the static `lock-order` graph agrees with the
//! runtime lockdep watchdog. The same A→B / B→A inversion is seeded
//! twice — once as source text through the workspace analyzer, once as
//! live `TrackedMutex` acquisitions — and both sides must report a
//! cycle (the runtime side only in debug builds, where lockdep is
//! compiled in; sim-lint catches it in every build, which is the point).

use sim_lint::{lint_files, Config};
use sim_rt::lockorder::TrackedMutex;

const CYCLE_A: &str = include_str!("fixtures/lock_cycle/a/src/lib.rs");
const CYCLE_B: &str = include_str!("fixtures/lock_cycle/b/src/lib.rs");

#[test]
fn static_and_runtime_lockdep_agree_on_a_seeded_cycle() {
    // Static half: the analyzer sees the cycle in the fixture pair.
    let r = lint_files(
        &[
            ("crates/demo-a/src/lib.rs", CYCLE_A),
            ("crates/demo-b/src/lib.rs", CYCLE_B),
        ],
        &Config::workspace_default(),
    );
    let static_cycles = r.diags.iter().filter(|d| d.rule == "lock-order").count();
    assert_eq!(static_cycles, 1, "{:?}", r.diags);

    // Runtime half: perform the same acquisitions the fixtures describe,
    // on lock classes of our own (the watchdog state is process-global).
    let alpha = TrackedMutex::new("lint.agree.alpha", ());
    let beta = TrackedMutex::new("lint.agree.beta", ());
    let before = sim_rt::lockorder::cycles_detected();
    {
        let _a = alpha.lock();
        let _b = beta.lock();
    }
    {
        let _b = beta.lock();
        let _a = alpha.lock();
    }
    let runtime_cycles = sim_rt::lockorder::cycles_detected() - before;

    #[cfg(debug_assertions)]
    {
        assert!(runtime_cycles >= 1, "runtime lockdep missed the inversion");
        // And the watchdog's verdict surfaces through the lockorder.*
        // gauges the ops side scrapes.
        let snap = obs::metrics::snapshot();
        let gauge = snap
            .gauge("lockorder.cycles_detected")
            .expect("lockorder.cycles_detected gauge missing");
        assert!(gauge >= 1.0, "gauge = {gauge}");
    }
    #[cfg(not(debug_assertions))]
    {
        // Release builds compile lockdep out — exactly why the static
        // rule must carry the same verdict on its own.
        assert_eq!(runtime_cycles, 0);
    }
}
