//! Integration tests for the lock-order watchdog: a deliberate A→B /
//! B→A acquisition must be reported as a cycle, a consistent nesting
//! must stay silent, and release builds must compile the wrapper down to
//! a plain `Mutex`.
//!
//! The order graph is process-global and the harness runs tests in
//! parallel, so every test uses its own lock-class names and asserts on
//! counter *deltas* or name-filtered reports, never on absolute state.

use sim_rt::lockorder::{self, TrackedMutex};

#[cfg(debug_assertions)]
#[test]
fn inverted_acquisition_order_is_reported() {
    let a = TrackedMutex::new("itest.cycle.a", 0u32);
    let b = TrackedMutex::new("itest.cycle.b", 0u32);

    // Establish a → b.
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    let before = lockorder::cycles_detected();

    // Acquire the other way round: the b → a edge closes the cycle.
    {
        let _gb = b.lock();
        let _ga = a.lock();
    }
    assert!(
        lockorder::cycles_detected() > before,
        "inverted order did not raise lockorder.cycles_detected"
    );
    let report = lockorder::cycle_reports()
        .into_iter()
        .find(|r| r.contains("itest.cycle.a") && r.contains("itest.cycle.b"))
        .expect("no cycle report names both locks");
    assert!(report.starts_with("lock-order cycle:"), "{report}");
}

#[cfg(debug_assertions)]
#[test]
fn consistent_nesting_stays_silent() {
    let outer = TrackedMutex::new("itest.clean.outer", ());
    let inner = TrackedMutex::new("itest.clean.inner", ());
    for _ in 0..4 {
        let _o = outer.lock();
        let _i = inner.lock();
    }
    assert!(
        lockorder::cycle_reports()
            .iter()
            .all(|r| !r.contains("itest.clean.")),
        "consistent nesting produced a cycle report"
    );
}

#[cfg(debug_assertions)]
#[test]
fn counters_move_with_acquisitions() {
    let m = TrackedMutex::new("itest.counters.m", 5u64);
    let before = lockorder::acquisitions();
    {
        let mut g = m.lock();
        *g += 1;
    }
    assert!(lockorder::acquisitions() > before);
    assert_eq!(m.into_inner(), 6);
}

#[cfg(not(debug_assertions))]
#[test]
fn release_build_is_zero_cost_passthrough() {
    use std::sync::Mutex;

    // No extra fields: the wrapper is size-identical to a bare Mutex…
    assert_eq!(
        std::mem::size_of::<TrackedMutex<u64>>(),
        std::mem::size_of::<Mutex<u64>>()
    );
    assert_eq!(
        std::mem::size_of::<TrackedMutex<Vec<u8>>>(),
        std::mem::size_of::<Mutex<Vec<u8>>>()
    );
    // …and nothing is recorded.
    let a = TrackedMutex::new("itest.release.a", ());
    let b = TrackedMutex::new("itest.release.b", ());
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    {
        let _gb = b.lock();
        let _ga = a.lock();
    }
    assert_eq!(lockorder::acquisitions(), 0);
    assert_eq!(lockorder::edges_tracked(), 0);
    assert_eq!(lockorder::cycles_detected(), 0);
    assert!(lockorder::cycle_reports().is_empty());
}
