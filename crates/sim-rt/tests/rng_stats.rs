//! Statistical sanity of the runtime PRNG: distribution moments and
//! stream independence.
//!
//! These are not strict randomness tests (dieharder territory) — they pin
//! down the properties the simulation relies on: uniform doubles with the
//! right mean and variance, Box-Muller normals with the requested
//! moments, unbiased bounded integers, and negligible correlation between
//! derived streams so per-job seeds behave like independent generators.

use sim_rt::{derive_seed, Rng, SimRng};

const N: usize = 100_000;

fn moments(samples: &[f64]) -> (f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var)
}

/// Pearson correlation of two equal-length sequences.
fn correlation(a: &[f64], b: &[f64]) -> f64 {
    let (ma, va) = moments(a);
    let (mb, vb) = moments(b);
    let cov = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - ma) * (y - mb))
        .sum::<f64>()
        / a.len() as f64;
    cov / (va.sqrt() * vb.sqrt())
}

#[test]
fn uniform_f64_has_uniform_moments() {
    let mut rng = SimRng::seed_from_u64(0xA11CE);
    let xs: Vec<f64> = (0..N).map(|_| rng.next_f64()).collect();
    let (mean, var) = moments(&xs);
    // Exact values 1/2 and 1/12; standard error of the mean at N=1e5 is
    // ~0.0009, so a 0.005 band is > 5 sigma.
    assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    assert!((var - 1.0 / 12.0).abs() < 0.005, "variance {var}");
    assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
}

#[test]
fn normal_matches_requested_moments() {
    let mut rng = SimRng::seed_from_u64(0xB0B);
    let xs: Vec<f64> = (0..N).map(|_| rng.normal(3.0, 2.0)).collect();
    let (mean, var) = moments(&xs);
    assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    assert!((var.sqrt() - 2.0).abs() < 0.05, "std dev {}", var.sqrt());
    // Rough shape check: ~68% within one sigma.
    let within = xs.iter().filter(|&&x| (1.0..5.0).contains(&x)).count();
    let frac = within as f64 / N as f64;
    assert!((frac - 0.6827).abs() < 0.02, "1-sigma mass {frac}");
}

#[test]
fn bounded_integers_fill_buckets_evenly() {
    let mut rng = SimRng::seed_from_u64(0xC0DE);
    let buckets = 16u64;
    let mut counts = [0usize; 16];
    for _ in 0..N {
        counts[rng.gen_below(buckets) as usize] += 1;
    }
    let expected = N as f64 / buckets as f64;
    for (i, &c) in counts.iter().enumerate() {
        // Poisson-ish std dev is ~79 at 6250/bucket; allow ~5 sigma.
        assert!(
            (c as f64 - expected).abs() < 400.0,
            "bucket {i} holds {c}, expected ~{expected}"
        );
    }
}

#[test]
fn derived_streams_are_uncorrelated() {
    let master = 0xDEAD_BEEF;
    let mut a = SimRng::seed_from_u64(derive_seed(master, 0));
    let mut b = SimRng::seed_from_u64(derive_seed(master, 1));
    let xs: Vec<f64> = (0..N).map(|_| a.next_f64()).collect();
    let ys: Vec<f64> = (0..N).map(|_| b.next_f64()).collect();
    let r = correlation(&xs, &ys);
    // Independent uniforms at N=1e5: |r| beyond 0.02 is > 6 sigma.
    assert!(r.abs() < 0.02, "stream correlation {r}");
    // And the streams must actually differ.
    assert_ne!(xs[..10], ys[..10]);
}

#[test]
fn split_generator_is_uncorrelated_with_parent() {
    let mut parent = SimRng::seed_from_u64(42);
    let mut child = parent.split();
    let xs: Vec<f64> = (0..N).map(|_| parent.next_f64()).collect();
    let ys: Vec<f64> = (0..N).map(|_| child.next_f64()).collect();
    let r = correlation(&xs, &ys);
    assert!(r.abs() < 0.02, "parent/child correlation {r}");
}

#[test]
fn lagged_self_correlation_is_negligible() {
    let mut rng = SimRng::seed_from_u64(7);
    let xs: Vec<f64> = (0..N + 1).map(|_| rng.next_f64()).collect();
    let r = correlation(&xs[..N], &xs[1..]);
    assert!(r.abs() < 0.02, "lag-1 autocorrelation {r}");
}
