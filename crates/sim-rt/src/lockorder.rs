//! Debug-build lock-order watchdog.
//!
//! The sampling fast path holds several mutexes in a fixed nested order
//! (hwmon clock → sensor → operating-point cache); nothing in the type
//! system stops a future change from taking them the other way round and
//! deadlocking under load. [`TrackedMutex`] is a drop-in `Mutex` wrapper
//! that, in debug builds, records every *acquired-while-holding* pair in a
//! process-global order graph and detects cycles (the classic lockdep
//! check): an `A → B` edge followed by a `B → A` acquisition anywhere in
//! the process increments [`cycles_detected`] and stores a readable report.
//!
//! Locks are grouped into **classes by name** (like lockdep), so every
//! `"hwmon.sensor"` instance shares one graph node and ordering is checked
//! per role, not per object.
//!
//! In release builds the wrapper compiles to a zero-cost passthrough: no
//! extra fields (`size_of::<TrackedMutex<T>>() == size_of::<Mutex<T>>()`),
//! no guard `Drop` impl, and every counter reads zero.
//!
//! # Examples
//!
//! ```
//! use sim_rt::lockorder::TrackedMutex;
//!
//! let m = TrackedMutex::new("doc.example", 7u32);
//! assert_eq!(*m.lock(), 7);
//! ```

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

#[cfg(debug_assertions)]
use std::cell::RefCell;
#[cfg(debug_assertions)]
use std::collections::{BTreeMap, BTreeSet};
#[cfg(debug_assertions)]
use std::sync::OnceLock;

/// Total `TrackedMutex::lock` acquisitions recorded (debug builds only).
static ACQUISITIONS: AtomicU64 = AtomicU64::new(0);
/// Distinct held-before edges added to the order graph.
static EDGES: AtomicU64 = AtomicU64::new(0);
/// Lock-order cycles detected (each offending edge counted once).
static CYCLES: AtomicU64 = AtomicU64::new(0);

/// A `Mutex` whose acquisitions feed the lock-order watchdog in debug
/// builds and that is a zero-cost passthrough in release builds.
pub struct TrackedMutex<T> {
    inner: Mutex<T>,
    /// Graph node for this lock's name; all same-named locks share it.
    #[cfg(debug_assertions)]
    class: usize,
}

impl<T> TrackedMutex<T> {
    /// Wraps `value` in a mutex belonging to the lock class `name`.
    pub fn new(name: &'static str, value: T) -> TrackedMutex<T> {
        #[cfg(not(debug_assertions))]
        let _ = name;
        TrackedMutex {
            inner: Mutex::new(value),
            #[cfg(debug_assertions)]
            class: graph::intern(name),
        }
    }

    /// Acquires the lock, blocking the current thread.
    ///
    /// # Panics
    ///
    /// Panics if the mutex is poisoned — the simulation never recovers
    /// from a panicked critical section.
    pub fn lock(&self) -> TrackedGuard<'_, T> {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(|_| panic!("tracked mutex poisoned"));
        #[cfg(debug_assertions)]
        graph::on_acquire(self.class);
        TrackedGuard {
            inner,
            #[cfg(debug_assertions)]
            class: self.class,
        }
    }

    /// Consumes the mutex, returning the inner value.
    ///
    /// # Panics
    ///
    /// Panics if the mutex is poisoned.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|_| panic!("tracked mutex poisoned"))
    }
}

impl<T: Default> Default for TrackedMutex<T> {
    fn default() -> TrackedMutex<T> {
        TrackedMutex::new("tracked.default", T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`TrackedMutex::lock`].
pub struct TrackedGuard<'a, T> {
    inner: MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    class: usize,
}

impl<T> Deref for TrackedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for TrackedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(debug_assertions)]
impl<T> Drop for TrackedGuard<'_, T> {
    fn drop(&mut self) {
        graph::on_release(self.class);
    }
}

/// Acquisitions recorded so far (0 in release builds).
pub fn acquisitions() -> u64 {
    ACQUISITIONS.load(Ordering::Relaxed)
}

/// Distinct held-before edges in the order graph (0 in release builds).
pub fn edges_tracked() -> u64 {
    EDGES.load(Ordering::Relaxed)
}

/// Lock-order cycles detected so far (0 in release builds).
pub fn cycles_detected() -> u64 {
    CYCLES.load(Ordering::Relaxed)
}

/// Human-readable reports of every detected cycle, oldest first. Empty in
/// release builds.
pub fn cycle_reports() -> Vec<String> {
    #[cfg(debug_assertions)]
    {
        graph::cycle_reports()
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

#[cfg(debug_assertions)]
mod graph {
    use super::*;

    struct Graph {
        names: Vec<&'static str>,
        ids: BTreeMap<&'static str, usize>,
        /// `(a, b)` means some thread held class `a` while acquiring `b`.
        edges: BTreeSet<(usize, usize)>,
        cycles: Vec<String>,
    }

    fn state() -> &'static Mutex<Graph> {
        static STATE: OnceLock<Mutex<Graph>> = OnceLock::new();
        STATE.get_or_init(|| {
            Mutex::new(Graph {
                names: Vec::new(),
                ids: BTreeMap::new(),
                edges: BTreeSet::new(),
                cycles: Vec::new(),
            })
        })
    }

    thread_local! {
        /// Classes of the locks this thread currently holds, oldest first.
        static HELD: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn intern(name: &'static str) -> usize {
        let mut g = state().lock().expect("lockorder graph poisoned");
        if let Some(&id) = g.ids.get(name) {
            return id;
        }
        let id = g.names.len();
        g.names.push(name);
        g.ids.insert(name, id);
        id
    }

    /// Is there a path `from → … → to` over the recorded edges?
    fn reachable(g: &Graph, from: usize, to: usize) -> Option<Vec<usize>> {
        let mut stack = vec![vec![from]];
        let mut seen = BTreeSet::new();
        while let Some(path) = stack.pop() {
            let node = *path.last().expect("path never empty");
            if node == to {
                return Some(path);
            }
            if !seen.insert(node) {
                continue;
            }
            for &(a, b) in g.edges.range((node, 0)..(node + 1, 0)) {
                debug_assert_eq!(a, node);
                let mut next = path.clone();
                next.push(b);
                stack.push(next);
            }
        }
        None
    }

    pub(super) fn on_acquire(class: usize) {
        ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            let holders: Vec<usize> = held.iter().copied().filter(|&h| h != class).collect();
            if !holders.is_empty() {
                let mut g = state().lock().expect("lockorder graph poisoned");
                for h in holders {
                    if !g.edges.insert((h, class)) {
                        continue;
                    }
                    EDGES.fetch_add(1, Ordering::Relaxed);
                    // The new edge `h → class` closes a cycle iff `h` was
                    // already reachable from `class`.
                    if let Some(path) = reachable(&g, class, h) {
                        CYCLES.fetch_add(1, Ordering::Relaxed);
                        let mut names: Vec<&str> = path.iter().map(|&id| g.names[id]).collect();
                        names.push(g.names[class]);
                        let report = format!("lock-order cycle: {}", names.join(" -> "));
                        g.cycles.push(report);
                    }
                }
            }
            held.push(class);
        });
    }

    pub(super) fn on_release(class: usize) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            // Guards may drop out of LIFO order; release the most recent
            // acquisition of this class.
            if let Some(pos) = held.iter().rposition(|&h| h == class) {
                held.remove(pos);
            }
        });
    }

    pub(super) fn cycle_reports() -> Vec<String> {
        state()
            .lock()
            .expect("lockorder graph poisoned")
            .cycles
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_lock_records_edge_and_no_cycle() {
        let outer = TrackedMutex::new("lockorder.unit.outer", ());
        let inner = TrackedMutex::new("lockorder.unit.inner", ());
        let before = cycles_detected();
        for _ in 0..3 {
            let _o = outer.lock();
            let _i = inner.lock();
        }
        assert_eq!(cycles_detected(), before);
        assert!(acquisitions() >= 6);
    }

    #[test]
    fn release_build_is_size_transparent() {
        #[cfg(not(debug_assertions))]
        assert_eq!(
            std::mem::size_of::<TrackedMutex<u64>>(),
            std::mem::size_of::<Mutex<u64>>()
        );
        #[cfg(debug_assertions)]
        assert!(std::mem::size_of::<TrackedMutex<u64>>() >= std::mem::size_of::<Mutex<u64>>());
    }

    #[test]
    fn into_inner_returns_value() {
        let m = TrackedMutex::new("lockorder.unit.into", 41u32);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }
}
