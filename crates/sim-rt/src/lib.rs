//! Zero-dependency deterministic simulation runtime.
//!
//! Every crate in the AmpereBleed reproduction runs offline and must
//! produce bit-identical results from a campaign seed — on one thread or
//! sixteen, on any machine. This crate is the substrate that makes that
//! possible without reaching for the crates.io registry:
//!
//! * [`rng`] — seeded xoshiro256++ generation with uniform/normal
//!   sampling, Fisher-Yates shuffling, and stream splitting
//!   ([`rng::derive_seed`]) so one master seed fans out into independent
//!   per-job child streams.
//! * [`pool`] — a work-stealing scoped thread pool whose
//!   [`pool::Pool::par_map`] writes result `i` into slot `i`; combined
//!   with per-job derived seeds, parallel campaigns are byte-identical to
//!   their serial runs at any thread count.
//! * [`ser`] — a tiny value model ([`ser::Value`], [`ser::Record`],
//!   [`ser::ToRecord`]) rendering results as compact JSON, JSON Lines, or
//!   CSV with no derive machinery.
//! * [`json`] — the decode half: a strict recursive-descent JSON parser
//!   ([`json::parse`]) producing the same [`ser::Value`] model, so wire
//!   protocols round-trip through one representation.
//! * [`check`] — seeded randomized property tests via
//!   [`prop_check!`], reproducible from the test name alone.
//! * [`bench`] — a wall-clock micro-benchmark harness with a `--quick`
//!   smoke mode that lets the bench suite run inside `cargo test`.
//! * [`lockorder`] — a debug-build lock-order watchdog
//!   ([`lockorder::TrackedMutex`]) that records held-before edges per lock
//!   class and detects cycles; release builds compile it to a plain
//!   `Mutex`.
//!
//! # Examples
//!
//! ```
//! use sim_rt::pool::Pool;
//! use sim_rt::rng::{Rng, SimRng};
//!
//! // A seeded campaign: each job gets its own derived stream, so the
//! // output is independent of thread count and scheduling order.
//! let jobs: Vec<u32> = (0..64).collect();
//! let pool = Pool::new(4);
//! let out = pool.par_map_seeded(42, &jobs, |seed, _, &level| {
//!     let mut rng = SimRng::seed_from_u64(seed);
//!     level as f64 + rng.normal(0.0, 0.1)
//! });
//! assert_eq!(out, Pool::serial().par_map_seeded(42, &jobs, |seed, _, &level| {
//!     let mut rng = SimRng::seed_from_u64(seed);
//!     level as f64 + rng.normal(0.0, 0.1)
//! }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod check;
pub mod json;
pub mod lockorder;
pub mod pool;
pub mod rng;
pub mod ser;

pub use json::parse as parse_json;
pub use lockorder::TrackedMutex;
pub use pool::Pool;
pub use rng::{derive_seed, Rng, SimRng, SliceShuffle};
pub use ser::{to_csv, to_jsonl, Record, ToRecord, Value};
