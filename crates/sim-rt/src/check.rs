//! Seeded randomized property checking — the runtime's replacement for
//! external property-testing frameworks.
//!
//! [`prop_check!`](crate::prop_check) expands each `fn name(arg in
//! strategy, ...) { body }` item into a `#[test]` that samples every
//! strategy `cases` times from a generator seeded by the test's name, so
//! failures reproduce exactly across runs and machines. On failure the
//! harness prints the sampled inputs before re-raising the panic.
//!
//! Strategies are plain values implementing [`Strategy`]: numeric
//! half-open ranges, tuples of strategies, and the [`vec_of`] /
//! [`btree_set_of`] collection combinators.
//!
//! # Examples
//!
//! ```
//! sim_rt::prop_check! {
//!     cases = 64;
//!
//!     fn abs_is_non_negative(x in -1e6f64..1e6) {
//!         assert!(x.abs() >= 0.0);
//!     }
//! }
//! # fn main() {}
//! ```

use std::collections::BTreeSet;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::rng::{Rng, SimRng, UniformRange};

/// Default number of cases per property when `cases = N;` is not given.
pub const DEFAULT_CASES: usize = 64;

/// Number of cases to run: the explicit request, overridable globally via
/// the `SIM_RT_CHECK_CASES` env var (useful for a quick CI smoke or a
/// deep overnight soak).
pub fn cases(requested: usize) -> usize {
    std::env::var("SIM_RT_CHECK_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(requested)
}

/// Deterministic per-test seed: FNV-1a over the test name, xored with the
/// optional `SIM_RT_CHECK_SEED` env override for exploring new corners.
pub fn seed_from_name(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let offset = std::env::var("SIM_RT_CHECK_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    hash ^ offset
}

/// A source of random values for one property argument.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;
    /// Draws one value.
    fn sample<R: Rng>(&self, rng: &mut R) -> Self::Value;
}

impl<T> Strategy for Range<T>
where
    T: Copy + Debug,
    Range<T>: UniformRange<Output = T>,
{
    type Value = T;
    fn sample<R: Rng>(&self, rng: &mut R) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: Copy + Debug,
    RangeInclusive<T>: UniformRange<Output = T> + Clone,
{
    type Value = T;
    fn sample<R: Rng>(&self, rng: &mut R) -> T {
        rng.gen_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample<R: Rng>(&self, rng: &mut R) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample<R: Rng>(&self, rng: &mut R) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// A length specification for collection strategies: a fixed `usize` or a
/// half-open `Range<usize>`.
pub trait LenSpec {
    /// Draws the collection length.
    fn sample_len<R: Rng>(&self, rng: &mut R) -> usize;
}

impl LenSpec for usize {
    fn sample_len<R: Rng>(&self, _rng: &mut R) -> usize {
        *self
    }
}

impl LenSpec for Range<usize> {
    fn sample_len<R: Rng>(&self, rng: &mut R) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy producing a `Vec` of `len` elements drawn from `elem`.
pub fn vec_of<S: Strategy, L: LenSpec>(elem: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { elem, len }
}

/// See [`vec_of`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S, L> {
    elem: S,
    len: L,
}

impl<S: Strategy, L: LenSpec> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;
    fn sample<R: Rng>(&self, rng: &mut R) -> Vec<S::Value> {
        let n = self.len.sample_len(rng);
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }
}

/// Strategy producing a `BTreeSet` from up to `len` draws of `elem`
/// (duplicates collapse, so the set may be smaller than requested).
pub fn btree_set_of<S, L>(elem: S, len: L) -> BTreeSetStrategy<S, L>
where
    S: Strategy,
    S::Value: Ord,
    L: LenSpec,
{
    BTreeSetStrategy { elem, len }
}

/// See [`btree_set_of`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S, L> {
    elem: S,
    len: L,
}

impl<S, L> Strategy for BTreeSetStrategy<S, L>
where
    S: Strategy,
    S::Value: Ord,
    L: LenSpec,
{
    type Value = BTreeSet<S::Value>;
    fn sample<R: Rng>(&self, rng: &mut R) -> BTreeSet<S::Value> {
        let n = self.len.sample_len(rng);
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }
}

/// Strategy returning a fixed value (the `Just` combinator).
pub fn just<T: Clone + Debug>(value: T) -> Just<T> {
    Just(value)
}

/// See [`just`].
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample<R: Rng>(&self, _rng: &mut R) -> T {
        self.0.clone()
    }
}

/// Defines seeded randomized property tests; see the [module docs](crate::check).
#[macro_export]
macro_rules! prop_check {
    (cases = $cases:expr; $($rest:tt)*) => {
        $crate::__prop_check_items! { $cases; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__prop_check_items! { $crate::check::DEFAULT_CASES; $($rest)* }
    };
}

/// Implementation detail of [`prop_check!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_check_items {
    ($cases:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let cases = $crate::check::cases($cases);
            let mut rng = $crate::rng::SimRng::seed_from_u64(
                $crate::check::seed_from_name(stringify!($name)),
            );
            for case in 0..cases {
                $(let $arg = $crate::check::Strategy::sample(&($strategy), &mut rng);)+
                let inputs = {
                    let mut s = String::new();
                    $(s.push_str(&format!("  {} = {:?}\n", stringify!($arg), &$arg));)+
                    s
                };
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(payload) = outcome {
                    // Carry the failing inputs in the panic itself so the
                    // test harness reports them without a stray stderr line.
                    let detail = match payload.downcast_ref::<&str>() {
                        Some(s) => (*s).to_owned(),
                        None => payload
                            .downcast_ref::<String>()
                            .cloned()
                            .unwrap_or_else(|| "non-string panic payload".to_owned()),
                    };
                    panic!(
                        "property `{}` failed on case {}/{} with inputs:\n{}caused by: {}",
                        stringify!($name), case + 1, cases, inputs, detail,
                    );
                }
            }
        }
    )*};
}

/// Self-check: one deterministic sampling pass over every strategy kind.
#[doc(hidden)]
pub fn strategy_smoke(seed: u64) -> (Vec<f64>, BTreeSet<usize>, (u32, i8)) {
    let mut rng = SimRng::seed_from_u64(seed);
    (
        vec_of(-1.0f64..1.0, 3usize).sample(&mut rng),
        btree_set_of(0usize..100, 0..16).sample(&mut rng),
        (0u32..9, -4i8..5).sample(&mut rng),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_per_test_name() {
        assert_ne!(seed_from_name("alpha"), seed_from_name("beta"));
        assert_eq!(seed_from_name("alpha"), seed_from_name("alpha"));
    }

    #[test]
    fn strategies_are_deterministic() {
        assert_eq!(strategy_smoke(5), strategy_smoke(5));
    }

    #[test]
    fn vec_of_fixed_and_ranged_lengths() {
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(vec_of(0u32..10, 7usize).sample(&mut rng).len(), 7);
        for _ in 0..50 {
            let v = vec_of(0u32..10, 2..5usize).sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_respects_bounds() {
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..50 {
            let s = btree_set_of(0usize..1024, 0..64usize).sample(&mut rng);
            assert!(s.len() < 64);
            assert!(s.iter().all(|&x| x < 1024));
        }
    }

    #[test]
    fn just_returns_its_value() {
        let mut rng = SimRng::seed_from_u64(3);
        assert_eq!(just(42u8).sample(&mut rng), 42);
    }

    crate::prop_check! {
        cases = 32;

        fn tuple_strategy_samples_both_sides(pair in (0u32..10, -5i32..5)) {
            assert!(pair.0 < 10);
            assert!((-5..5).contains(&pair.1));
        }

        fn vec_elements_respect_range(xs in vec_of(-100.0f64..100.0, 1..20usize)) {
            assert!(!xs.is_empty() && xs.len() < 20);
            assert!(xs.iter().all(|x| (-100.0..100.0).contains(x)));
        }
    }

    #[test]
    fn failing_property_reports_and_panics() {
        // Expand the macro by hand to keep the failing test out of the
        // harness: the inner body must panic and the panic must carry
        // through resume_unwind.
        let result = std::panic::catch_unwind(|| {
            let mut rng = SimRng::seed_from_u64(seed_from_name("always_fails"));
            let x = Strategy::sample(&(0u32..10), &mut rng);
            assert!(x >= 10, "forced failure");
        });
        assert!(result.is_err());
    }
}
