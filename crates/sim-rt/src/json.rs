//! Recursive-descent JSON parsing into the [`ser::Value`](crate::ser::Value)
//! model — the decode half of the runtime's serialization story.
//!
//! [`ser`](crate::ser) renders results *out* as compact JSON; this module
//! reads JSON *in*, so wire protocols (the `sim-serve` newline-delimited
//! request stream) can round-trip through the same value model without a
//! registry dependency. The parser is strict RFC 8259: no comments, no
//! trailing commas, no bare NaN/Infinity — exactly the subset the encoder
//! emits.
//!
//! Numbers decode as [`Value::Int`] when they are integral and fit `i64`
//! (no fraction, no exponent), and as [`Value::Float`] otherwise, matching
//! the encoder's split. Object keys keep their input order, so
//! `parse(v.to_json()) == v` for any encoder-produced value.
//!
//! # Examples
//!
//! ```
//! use sim_rt::json::parse;
//! use sim_rt::Value;
//!
//! let v = parse(r#"{"verb":"characterize","levels":[0,80,160]}"#).unwrap();
//! assert_eq!(v.get("verb").and_then(Value::as_str), Some("characterize"));
//! assert_eq!(v.get("levels").and_then(Value::as_array).map(<[Value]>::len), Some(3));
//! // Round trip through the encoder is the identity.
//! assert_eq!(parse(&v.to_json()).unwrap(), v);
//! ```

use std::fmt;

use crate::ser::Value;

/// A parse failure with the 1-based line/column of the offending byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line of the error.
    pub line: u32,
    /// 1-based column (in bytes) of the error.
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document.
///
/// Trailing whitespace is allowed; any other trailing content is an
/// error — for newline-delimited streams, parse each line separately.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(v)
}

/// Nesting ceiling: recursive descent means parser depth is stack depth,
/// and hostile input must not be able to overflow it.
const MAX_DEPTH: u32 = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        let (mut line, mut col) = (1u32, 1u32);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    /// Consumes `word` if it is next (used for `true`/`false`/`null`).
    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn descend(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than 128 levels"));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.descend()?;
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
        self.depth -= 1;
        Ok(Value::Object(fields))
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.descend()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => break,
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
        self.depth -= 1;
        Ok(Value::Array(items))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => out.push(self.unicode_escape()?),
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a') as u32 + 10,
                Some(b @ b'A'..=b'F') => (b - b'A') as u32 + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v << 4 | d;
        }
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return Err(self.err("high surrogate without low surrogate"));
            }
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("lone surrogate in \\u escape"))
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one zero, or a nonzero digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("number out of range"))
    }
}

fn utf8_len(lead: u8) -> Option<usize> {
    match lead {
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

impl Value {
    /// Looks up a field of an object by name (first match wins).
    pub fn get(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(n, _)| n == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is a [`Value::Int`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The integer payload as `u64`, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The numeric payload widened to `f64` (ints convert losslessly up to
    /// 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is a [`Value::Array`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is a [`Value::Object`].
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-42").unwrap(), Value::Int(-42));
        assert_eq!(parse("0").unwrap(), Value::Int(0));
        assert_eq!(parse("0.25").unwrap(), Value::Float(0.25));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::from("hi"));
    }

    #[test]
    fn int_float_split_matches_encoder() {
        // Integral and in i64 range: Int. Everything else: Float.
        assert_eq!(parse("9223372036854775807").unwrap(), Value::Int(i64::MAX));
        assert!(matches!(
            parse("9223372036854775808").unwrap(),
            Value::Float(_)
        ));
        assert!(matches!(parse("1.0").unwrap(), Value::Float(_)));
    }

    #[test]
    fn nested_structures_keep_order() {
        let v = parse(r#"{"b":[1,{"x":null}],"a":"z"}"#).unwrap();
        let fields = v.as_object().unwrap();
        assert_eq!(fields[0].0, "b");
        assert_eq!(fields[1].0, "a");
        assert_eq!(v.get("a").and_then(Value::as_str), Some("z"));
        let arr = v.get("b").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0], Value::Int(1));
        assert_eq!(arr[1].get("x"), Some(&Value::Null));
    }

    #[test]
    fn string_escapes_decode() {
        assert_eq!(
            parse(r#""a\"b\\c\nd\u0041\t""#).unwrap(),
            Value::from("a\"b\\c\ndA\t")
        );
        // Surrogate pair for U+1F600.
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Value::from("\u{1f600}")
        );
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(parse("\"µs\"").unwrap(), Value::from("µs"));
    }

    #[test]
    fn round_trip_is_identity() {
        let original = Value::Object(vec![
            ("name".into(), Value::from("trace,with\"stuff\n")),
            ("xs".into(), Value::from(vec![1, 2, 3])),
            ("score".into(), Value::Float(0.125)),
            ("none".into(), Value::Null),
            ("flag".into(), Value::Bool(false)),
            ("big".into(), Value::Int(i64::MIN)),
        ]);
        assert_eq!(parse(&original.to_json()).unwrap(), original);
    }

    #[test]
    fn errors_carry_position() {
        let e = parse("{\"a\": 1,\n \"b\": }").unwrap_err();
        assert_eq!((e.line, e.col), (2, 7), "{e}");
        assert!(e.to_string().contains("2:7"));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1.",
            "1e",
            "nul",
            "\"abc",
            "\"\\q\"",
            "\"\\ud83d\"",
            "{} {}",
            "[1] trailing",
            "+1",
            "NaN",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn control_chars_must_be_escaped() {
        assert!(parse("\"a\u{1}b\"").is_err());
        assert_eq!(parse(r#""a\u0001b""#).unwrap(), Value::from("a\u{1}b"));
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep: String = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok: String = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn accessors_on_wrong_types_return_none() {
        let v = parse("{\"n\": 3}").unwrap();
        assert_eq!(v.get("n").and_then(Value::as_i64), Some(3));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(3.0));
        assert!(v.get("n").and_then(Value::as_str).is_none());
        assert!(v.get("missing").is_none());
        assert!(Value::Null.get("x").is_none());
        assert_eq!(Value::Int(-1).as_u64(), None);
        assert!(Value::Bool(true).as_f64().is_none());
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
    }

    /// An arbitrary encoder-producible value (finite floats only — the
    /// encoder maps non-finite floats to null, which decode cannot undo).
    fn random_value(rng: &mut crate::rng::SimRng, depth: u32) -> Value {
        use crate::rng::Rng;
        let top = if depth >= 3 { 4 } else { 6 };
        match rng.next_u64() % (top + 1) {
            0 => Value::Null,
            1 => Value::Bool(rng.next_u64().is_multiple_of(2)),
            2 => Value::Int(rng.next_u64() as i64),
            3 => Value::Float((rng.next_u64() % 1_000_000) as f64 / 256.0),
            4 => {
                let len = rng.next_u64() % 8;
                Value::Str(
                    (0..len)
                        .map(|_| char::from_u32(rng.next_u64() as u32 % 0xD7FF).unwrap_or('x'))
                        .collect(),
                )
            }
            5 => Value::Array(
                (0..rng.next_u64() % 4)
                    .map(|_| random_value(rng, depth + 1))
                    .collect(),
            ),
            _ => Value::Object(
                (0..rng.next_u64() % 4)
                    .map(|i| (format!("k{i}"), random_value(rng, depth + 1)))
                    .collect(),
            ),
        }
    }

    crate::prop_check! {
        /// Any encoder-producible value survives a decode byte-exactly.
        fn random_values_round_trip(seed in 0u64..1_000_000) {
            use crate::rng::SimRng;
            let mut rng = SimRng::seed_from_u64(seed);
            let v = random_value(&mut rng, 0);
            let json = v.to_json();
            let back = parse(&json).expect("encoder output parses");
            assert_eq!(back, v, "{json}");
        }
    }
}
