//! Minimal self-describing value model with JSON, JSON Lines and CSV
//! rendering — the runtime's replacement for derive-based serialization
//! frameworks in trace/result export.
//!
//! Result types implement [`ToRecord`], flattening themselves into an
//! ordered field list; the same [`Record`] then renders as a JSON object,
//! a JSONL stream row, or a CSV row without any per-format code at the
//! call site.
//!
//! # Examples
//!
//! ```
//! use sim_rt::ser::{Record, ToRecord};
//!
//! struct Cell { duration_s: f64, top1: f64 }
//! impl ToRecord for Cell {
//!     fn to_record(&self) -> Record {
//!         let mut r = Record::new();
//!         r.push("duration_s", self.duration_s);
//!         r.push("top1", self.top1);
//!         r
//!     }
//! }
//!
//! let cell = Cell { duration_s: 5.0, top1: 0.997 };
//! assert_eq!(cell.to_record().to_json(), r#"{"duration_s":5,"top1":0.997}"#);
//! ```

use std::fmt::Write as _;

/// A dynamically-typed serializable value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// IEEE-754 double.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered array.
    Array(Vec<Value>),
    /// Ordered key/value object.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Renders the value as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(x) => write_f64_json(*x, out),
            Value::Str(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (k, (name, value)) in fields.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    write_json_string(name, out);
                    out.push(':');
                    value.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Renders the value as canonical JSON for content addressing:
    /// object keys sorted bytewise at every depth, `-0.0` normalized to
    /// `0`, NaN/Infinity mapped to `null`. Two values describing the
    /// same configuration — regardless of field insertion order or the
    /// sign of a zero — render to identical bytes, so digests built over
    /// this form are stable.
    ///
    /// This is a digest preimage, not a wire format: responses still use
    /// [`Value::to_json`], which preserves caller field order.
    pub fn to_canonical_json(&self) -> String {
        let mut out = String::new();
        self.write_canonical_json(&mut out);
        out
    }

    fn write_canonical_json(&self, out: &mut String) {
        match self {
            Value::Float(x) => {
                // `{x}` formats -0.0 as "-0", which would split one
                // logical config into two digests.
                let x = if *x == 0.0 { 0.0 } else { *x };
                write_f64_json(x, out);
            }
            Value::Array(items) => {
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    item.write_canonical_json(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                let mut order: Vec<usize> = (0..fields.len()).collect();
                order.sort_by(|&a, &b| fields[a].0.cmp(&fields[b].0));
                out.push('{');
                for (k, idx) in order.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let (name, value) = &fields[*idx];
                    write_json_string(name, out);
                    out.push(':');
                    value.write_canonical_json(out);
                }
                out.push('}');
            }
            scalar => scalar.write_json(out),
        }
    }

    /// Renders the value as a CSV cell (strings quoted when needed,
    /// nested values as JSON inside a quoted cell).
    fn write_csv(&self, out: &mut String) {
        match self {
            Value::Null => {}
            // NaN/Infinity have no numeric text; an empty cell (the CSV
            // null) beats the literal word "null" in a numeric column.
            Value::Float(x) if !x.is_finite() => {}
            Value::Bool(_) | Value::Int(_) | Value::Float(_) => {
                let json = self.to_json();
                out.push_str(&json);
            }
            Value::Str(s) => write_csv_escaped(s, out),
            Value::Array(_) | Value::Object(_) => write_csv_escaped(&self.to_json(), out),
        }
    }

    /// Renders the value as indented multi-line JSON (two-space indent),
    /// for human consumption — `farm_client --pretty` and friends. The
    /// compact form ([`Value::to_json`]) remains the wire format.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_json_pretty(&mut out, 0);
        out
    }

    fn write_json_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_json_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (k, (name, value)) in fields.iter().enumerate() {
                    if k > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_json_string(name, out);
                    out.push_str(": ");
                    value.write_json_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            // Scalars and empty containers render in compact form.
            other => other.write_json(out),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_f64_json(x: f64, out: &mut String) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        // JSON has no NaN/Infinity; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_csv_escaped(s: &str, out: &mut String) {
    if s.contains([',', '"', '\n', '\r']) {
        out.push('"');
        out.push_str(&s.replace('"', "\"\""));
        out.push('"');
    } else {
        out.push_str(s);
    }
}

macro_rules! impl_value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Int(v as i64)
            }
        }
    )*};
}
impl_value_from_int!(i8, i16, i32, i64, u8, u16, u32, usize);

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        // Preserve values beyond i64::MAX through the float path.
        i64::try_from(v).map_or(Value::Float(v as f64), Value::Int)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Float(v as f64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// An ordered list of named fields — one exported row.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Record {
    fields: Vec<(String, Value)>,
}

impl Record {
    /// An empty record.
    pub fn new() -> Self {
        Record::default()
    }

    /// Appends a field.
    pub fn push(&mut self, name: impl Into<String>, value: impl Into<Value>) -> &mut Self {
        self.fields.push((name.into(), value.into()));
        self
    }

    /// Field names in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|(n, _)| n.as_str())
    }

    /// Consumes the record, yielding its `(name, value)` pairs in order —
    /// for splicing one record's fields into another.
    pub fn into_fields(self) -> Vec<(String, Value)> {
        self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the record has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The record as a JSON object string.
    pub fn to_json(&self) -> String {
        Value::Object(self.fields.clone()).to_json()
    }

    fn csv_row(&self, out: &mut String) {
        for (k, (_, value)) in self.fields.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            value.write_csv(out);
        }
        out.push('\n');
    }
}

/// Conversion of a result type into its export [`Record`].
pub trait ToRecord {
    /// Flattens `self` into an ordered field list.
    fn to_record(&self) -> Record;
}

impl ToRecord for Record {
    fn to_record(&self) -> Record {
        self.clone()
    }
}

/// Renders items as JSON Lines: one compact JSON object per row.
pub fn to_jsonl<'a, T, I>(items: I) -> String
where
    T: ToRecord + 'a,
    I: IntoIterator<Item = &'a T>,
{
    let mut out = String::new();
    for item in items {
        out.push_str(&item.to_record().to_json());
        out.push('\n');
    }
    out
}

/// Renders items as CSV with a header row taken from the first record.
///
/// # Panics
///
/// Panics if a subsequent record's field names differ from the header —
/// heterogenous rows are a bug in the exporter, not an I/O condition.
pub fn to_csv<'a, T, I>(items: I) -> String
where
    T: ToRecord + 'a,
    I: IntoIterator<Item = &'a T>,
{
    let mut out = String::new();
    let mut header: Option<Vec<String>> = None;
    for item in items {
        let record = item.to_record();
        match &header {
            None => {
                let names: Vec<String> = record.names().map(str::to_string).collect();
                for (k, name) in names.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    write_csv_escaped(name, &mut out);
                }
                out.push('\n');
                header = Some(names);
            }
            Some(names) => {
                assert!(
                    record.names().eq(names.iter().map(String::as_str)),
                    "CSV rows must share one schema"
                );
            }
        }
        record.csv_row(&mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_json_rendering() {
        assert_eq!(Value::Null.to_json(), "null");
        assert_eq!(Value::Bool(true).to_json(), "true");
        assert_eq!(Value::Int(-3).to_json(), "-3");
        assert_eq!(Value::Float(0.25).to_json(), "0.25");
        assert_eq!(Value::Float(f64::NAN).to_json(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(Value::from("a\"b\\c\nd").to_json(), r#""a\"b\\c\nd""#);
        assert_eq!(Value::from("\u{1}").to_json(), "\"\\u0001\"");
    }

    #[test]
    fn nested_values_render() {
        let v = Value::Object(vec![
            ("xs".into(), Value::from(vec![1, 2, 3])),
            ("name".into(), Value::from("trace")),
            ("extra".into(), Value::from(None::<f64>)),
        ]);
        assert_eq!(v.to_json(), r#"{"xs":[1,2,3],"name":"trace","extra":null}"#);
    }

    #[test]
    fn canonical_json_sorts_keys_and_normalizes_zero() {
        let a = Value::Object(vec![
            ("zeta".into(), Value::Float(-0.0)),
            (
                "alpha".into(),
                Value::Object(vec![
                    ("b".into(), Value::Int(2)),
                    ("a".into(), Value::Float(f64::NAN)),
                ]),
            ),
        ]);
        let b = Value::Object(vec![
            (
                "alpha".into(),
                Value::Object(vec![
                    ("a".into(), Value::Float(f64::INFINITY)),
                    ("b".into(), Value::Int(2)),
                ]),
            ),
            ("zeta".into(), Value::Float(0.0)),
        ]);
        let canon = r#"{"alpha":{"a":null,"b":2},"zeta":0}"#;
        assert_eq!(a.to_canonical_json(), canon);
        assert_eq!(b.to_canonical_json(), canon);
        // The wire emitter still preserves caller field order (and the
        // sign of a negative zero — it is only the digest that must not
        // distinguish them).
        assert_ne!(a.to_json(), b.to_json());
    }

    #[test]
    fn canonical_json_recurses_through_arrays() {
        let v = Value::Array(vec![
            Value::Object(vec![
                ("y".into(), Value::Int(1)),
                ("x".into(), Value::Float(-0.0)),
            ]),
            Value::Str("s".into()),
        ]);
        assert_eq!(v.to_canonical_json(), r#"[{"x":0,"y":1},"s"]"#);
        assert_eq!(Value::Int(5).to_canonical_json(), "5");
    }

    #[test]
    fn u64_beyond_i64_survives() {
        let v = Value::from(u64::MAX);
        assert!(matches!(v, Value::Float(_)));
        assert_eq!(Value::from(7u64), Value::Int(7));
    }

    struct Row {
        id: usize,
        score: f64,
        tag: &'static str,
    }

    impl ToRecord for Row {
        fn to_record(&self) -> Record {
            let mut r = Record::new();
            r.push("id", self.id)
                .push("score", self.score)
                .push("tag", self.tag);
            r
        }
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let rows = [
            Row {
                id: 0,
                score: 0.5,
                tag: "a",
            },
            Row {
                id: 1,
                score: 1.5,
                tag: "b",
            },
        ];
        let jsonl = to_jsonl(rows.iter());
        assert_eq!(
            jsonl,
            "{\"id\":0,\"score\":0.5,\"tag\":\"a\"}\n{\"id\":1,\"score\":1.5,\"tag\":\"b\"}\n"
        );
    }

    #[test]
    fn csv_has_header_and_escaped_cells() {
        let rows = [
            Row {
                id: 0,
                score: 0.5,
                tag: "plain",
            },
            Row {
                id: 1,
                score: 1.5,
                tag: "with,comma",
            },
        ];
        let csv = to_csv(rows.iter());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "id,score,tag");
        assert_eq!(lines[1], "0,0.5,plain");
        assert_eq!(lines[2], "1,1.5,\"with,comma\"");
    }

    #[test]
    fn non_finite_floats_render_as_empty_csv_cells() {
        let mut r = Record::new();
        r.push("name", "empty,hist\"q")
            .push("p50", f64::NAN)
            .push("p99", f64::NEG_INFINITY)
            .push("count", 0u64);
        let csv = to_csv([r].iter());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,p50,p99,count");
        // NaN/Inf become empty cells, never the literal word "null"; the
        // comma+quote name round-trips through doubled-quote escaping.
        assert_eq!(lines[1], "\"empty,hist\"\"q\",,,0");
    }

    #[test]
    fn pretty_json_indents_and_keeps_scalars_compact() {
        let v = Value::Object(vec![
            ("name".into(), Value::from("x")),
            ("xs".into(), Value::from(vec![1, 2])),
            ("empty".into(), Value::Array(vec![])),
            (
                "nested".into(),
                Value::Object(vec![("k".into(), Value::Null)]),
            ),
        ]);
        assert_eq!(
            v.to_json_pretty(),
            "{\n  \"name\": \"x\",\n  \"xs\": [\n    1,\n    2\n  ],\n  \
             \"empty\": [],\n  \"nested\": {\n    \"k\": null\n  }\n}"
        );
        assert_eq!(Value::Int(5).to_json_pretty(), "5");
        assert_eq!(Value::Object(vec![]).to_json_pretty(), "{}");
    }

    #[test]
    fn empty_iterator_yields_empty_strings() {
        let rows: [Row; 0] = [];
        assert!(to_jsonl(rows.iter()).is_empty());
        assert!(to_csv(rows.iter()).is_empty());
    }

    #[test]
    #[should_panic(expected = "one schema")]
    fn mismatched_schema_panics() {
        let mut a = Record::new();
        a.push("x", 1);
        let mut b = Record::new();
        b.push("y", 2);
        let _ = to_csv([a, b].iter());
    }
}
