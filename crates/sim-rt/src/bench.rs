//! Wall-clock micro-benchmark harness — the runtime's replacement for
//! external bench frameworks.
//!
//! Each [`Harness::bench`] call warms the closure up, picks an iteration
//! count that fills a fixed measurement window, then reports mean
//! nanoseconds per iteration. *Quick mode* (`--quick` argv flag or
//! `SIM_RT_BENCH_QUICK=1`) collapses the schedule to a handful of
//! iterations so the whole suite doubles as a smoke test inside
//! `cargo test`.
//!
//! # Examples
//!
//! ```
//! use sim_rt::bench::Harness;
//!
//! let mut h = Harness::quick("demo");
//! h.bench("sum", || (0..1000u64).sum::<u64>());
//! h.finish();
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target measurement window per benchmark in full mode.
const FULL_WINDOW: Duration = Duration::from_millis(500);
/// Warmup window in full mode.
const FULL_WARMUP: Duration = Duration::from_millis(100);
/// Iterations per benchmark in quick (smoke) mode.
const QUICK_ITERS: u64 = 3;

/// One benchmark's measured result.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Benchmark name.
    pub name: String,
    /// Iterations measured.
    pub iters: u64,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
}

impl Measurement {
    /// Mean iterations per second.
    pub fn per_sec(&self) -> f64 {
        if self.ns_per_iter <= 0.0 {
            return 0.0;
        }
        1e9 / self.ns_per_iter
    }
}

/// Whether quick (smoke) mode is requested via argv or environment.
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("SIM_RT_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// A named group of wall-clock benchmarks.
#[derive(Debug)]
pub struct Harness {
    group: String,
    quick: bool,
    results: Vec<Measurement>,
}

impl Harness {
    /// A harness honouring `--quick` / `SIM_RT_BENCH_QUICK`.
    pub fn from_env(group: impl Into<String>) -> Self {
        Harness {
            group: group.into(),
            quick: quick_requested(),
            results: Vec::new(),
        }
    }

    /// A harness pinned to quick (smoke) mode, for use inside tests.
    pub fn quick(group: impl Into<String>) -> Self {
        Harness {
            group: group.into(),
            quick: true,
            results: Vec::new(),
        }
    }

    /// Whether this harness runs the abbreviated quick schedule.
    pub fn is_quick(&self) -> bool {
        self.quick
    }

    /// Times `f`, printing and recording the result. Returns the
    /// measurement for callers that want to compare (e.g. serial vs
    /// parallel speedup).
    pub fn bench<R, F: FnMut() -> R>(&mut self, name: &str, mut f: F) -> Measurement {
        let iters = if self.quick {
            QUICK_ITERS
        } else {
            // Warm up, then size the run so it fills the window.
            let warm_start = Instant::now();
            let mut warm_iters = 0u64;
            while warm_start.elapsed() < FULL_WARMUP || warm_iters == 0 {
                black_box(f());
                warm_iters += 1;
            }
            let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
            ((FULL_WINDOW.as_secs_f64() / per_iter) as u64).max(1)
        };

        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();

        let m = Measurement {
            name: name.to_string(),
            iters,
            ns_per_iter: elapsed.as_nanos() as f64 / iters as f64,
        };
        println!(
            "{}/{:<40} {:>14.1} ns/iter  ({} iters)",
            self.group, m.name, m.ns_per_iter, m.iters
        );
        self.results.push(m.clone());
        m
    }

    /// Times `f` over fresh per-iteration inputs built by `setup`; only
    /// the `f` portion is measured. Use when each iteration consumes its
    /// input (e.g. training on an owned dataset).
    pub fn bench_with_setup<I, R, S, F>(
        &mut self,
        name: &str,
        mut setup: S,
        mut f: F,
    ) -> Measurement
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let iters = if self.quick {
            QUICK_ITERS
        } else {
            let warm_start = Instant::now();
            let mut warm_iters = 0u64;
            let mut measured = Duration::ZERO;
            while warm_start.elapsed() < FULL_WARMUP || warm_iters == 0 {
                let input = setup();
                let t = Instant::now();
                black_box(f(input));
                measured += t.elapsed();
                warm_iters += 1;
            }
            let per_iter = (measured.as_secs_f64() / warm_iters as f64).max(1e-9);
            ((FULL_WINDOW.as_secs_f64() / per_iter) as u64).max(1)
        };

        let mut measured = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t = Instant::now();
            black_box(f(input));
            measured += t.elapsed();
        }

        let m = Measurement {
            name: name.to_string(),
            iters,
            ns_per_iter: measured.as_nanos() as f64 / iters as f64,
        };
        println!(
            "{}/{:<40} {:>14.1} ns/iter  ({} iters)",
            self.group, m.name, m.ns_per_iter, m.iters
        );
        self.results.push(m.clone());
        m
    }

    /// All measurements recorded so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Prints a closing summary line.
    pub fn finish(&self) {
        println!(
            "{}: {} benchmark(s){}",
            self.group,
            self.results.len(),
            if self.quick { " [quick mode]" } else { "" }
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_harness_runs_few_iters() {
        let mut h = Harness::quick("t");
        let m = h.bench("noop", || 1u32 + 1);
        assert_eq!(m.iters, QUICK_ITERS);
        assert!(m.ns_per_iter >= 0.0);
        assert_eq!(h.results().len(), 1);
    }

    #[test]
    fn setup_cost_is_excluded() {
        let mut h = Harness::quick("t");
        let m = h.bench_with_setup("consume", || vec![1u64; 64], |v| v.into_iter().sum::<u64>());
        assert_eq!(m.iters, QUICK_ITERS);
        assert!(m.per_sec() > 0.0);
    }

    #[test]
    fn measurements_accumulate_in_order() {
        let mut h = Harness::quick("t");
        h.bench("a", || 0u8);
        h.bench("b", || 0u8);
        let names: Vec<&str> = h.results().iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        h.finish();
    }
}
