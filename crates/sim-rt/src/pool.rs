//! Crossbeam-free work-stealing thread pool with a deterministic
//! `par_map` API.
//!
//! Jobs are distributed round-robin into per-worker deques; an idle worker
//! pops from its own queue front and steals from the back of its
//! neighbours'. Results land in their input slot, so the output order (and
//! therefore every downstream computation) is **identical at any thread
//! count** as long as each job is a pure function of its input — which is
//! what [`Pool::par_map_seeded`] guarantees by deriving per-job child
//! seeds from a master seed with [`derive_seed`].
//!
//! A panicking job is retried once (transient-failure capture); a second
//! panic is re-raised on the calling thread after every worker has
//! drained, so no result is silently dropped.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Mutex, OnceLock};
// Wall-clock here only feeds the `busy_nanos` throughput stat; it is never
// visible to simulation results.
use std::time::Instant; // sim-lint: allow(wall-clock)

use crate::rng::derive_seed;

/// Snapshot of a pool's cumulative progress counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Total jobs completed across all `par_map` calls.
    pub jobs_completed: u64,
    /// Jobs that panicked once and were retried.
    pub jobs_retried: u64,
    /// Jobs executed by a worker other than the one they were dealt to.
    pub jobs_stolen: u64,
    /// `par_map` invocations served.
    pub maps_run: u64,
    /// Wall-clock nanoseconds spent inside `par_map` calls.
    pub busy_nanos: u64,
}

impl PoolStats {
    /// Mean throughput in jobs per second over the pool's lifetime.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.busy_nanos == 0 {
            return 0.0;
        }
        self.jobs_completed as f64 / (self.busy_nanos as f64 / 1e9)
    }
}

/// A fixed-width scoped thread pool.
///
/// The pool holds no threads between calls — each `par_map` spawns scoped
/// workers (`std::thread::scope`), which keeps borrows of the input slice
/// safe without `'static` bounds and leaves nothing running between
/// campaigns.
///
/// # Examples
///
/// ```
/// use sim_rt::pool::Pool;
///
/// let pool = Pool::new(4);
/// let squares = pool.par_map(&[1, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
#[derive(Debug)]
pub struct Pool {
    threads: usize,
    jobs_completed: AtomicU64,
    jobs_retried: AtomicU64,
    jobs_stolen: AtomicU64,
    maps_run: AtomicU64,
    busy_nanos: AtomicU64,
}

impl Pool {
    /// Creates a pool with `threads` workers; `0` means one worker per
    /// available CPU (overridable with the `SIM_RT_THREADS` env var).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            default_threads()
        } else {
            threads
        };
        Pool {
            threads,
            jobs_completed: AtomicU64::new(0),
            jobs_retried: AtomicU64::new(0),
            jobs_stolen: AtomicU64::new(0),
            maps_run: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
        }
    }

    /// A single-threaded pool: `par_map` degenerates to an in-order loop.
    pub const fn serial() -> Self {
        Pool {
            threads: 1,
            jobs_completed: AtomicU64::new(0),
            jobs_retried: AtomicU64::new(0),
            jobs_stolen: AtomicU64::new(0),
            maps_run: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
        }
    }

    /// The process-wide shared pool, sized by `SIM_RT_THREADS` or the
    /// available CPU count.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::new(0))
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Cumulative progress counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            jobs_retried: self.jobs_retried.load(Ordering::Relaxed),
            jobs_stolen: self.jobs_stolen.load(Ordering::Relaxed),
            maps_run: self.maps_run.load(Ordering::Relaxed),
            busy_nanos: self.busy_nanos.load(Ordering::Relaxed),
        }
    }

    /// Maps `f` over `items` in parallel; `out[i] == f(i, &items[i])`.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of any job that fails twice.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let started = Instant::now(); // sim-lint: allow(wall-clock)
        self.maps_run.fetch_add(1, Ordering::Relaxed);
        let workers = self.threads.min(items.len()).max(1);
        let out = if workers == 1 {
            self.serial_map(items, &f)
        } else {
            self.stealing_map(items, &f, workers)
        };
        self.busy_nanos
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out
    }

    /// [`par_map`](Pool::par_map) with a per-job child seed derived from
    /// `master_seed` and the job index — the deterministic fan-out used by
    /// the campaign, fingerprinting, and characterization sweeps.
    pub fn par_map_seeded<T, R, F>(&self, master_seed: u64, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(u64, usize, &T) -> R + Sync,
    {
        self.par_map(items, |i, item| {
            f(derive_seed(master_seed, i as u64), i, item)
        })
    }

    fn serial_map<T, R, F>(&self, items: &[T], f: &F) -> Vec<R>
    where
        F: Fn(usize, &T) -> R,
    {
        let profiling = profile::enabled();
        let mut prof_run = 0u64;
        let mut prof_jobs = 0u64;
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let started = profiling.then(Instant::now); // sim-lint: allow(wall-clock)
            let r = self.run_job(i, item, f);
            if let Some(t) = started {
                prof_run += t.elapsed().as_nanos() as u64;
                prof_jobs += 1;
            }
            self.jobs_completed.fetch_add(1, Ordering::Relaxed);
            out.push(r);
        }
        if prof_jobs > 0 {
            profile::record_lane("serial", prof_run, 0, prof_jobs);
        }
        out
    }

    fn stealing_map<T, R, F>(&self, items: &[T], f: &F, workers: usize) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        // Round-robin deal into per-worker deques.
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w..items.len()).step_by(workers).collect()))
            .collect();
        let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<R>)>();

        std::thread::scope(|scope| {
            for w in 0..workers {
                let tx = tx.clone();
                let queues = &queues;
                scope.spawn(move || {
                    let profiling = profile::enabled();
                    let mut prof_run = 0u64;
                    let mut prof_steal = 0u64;
                    let mut prof_jobs = 0u64;
                    while let Some((i, stolen)) = next_job(queues, w) {
                        if stolen {
                            self.jobs_stolen.fetch_add(1, Ordering::Relaxed);
                        }
                        let started = profiling.then(Instant::now); // sim-lint: allow(wall-clock)
                        let result =
                            catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))).or_else(|_| {
                                // One retry per job before giving up.
                                self.jobs_retried.fetch_add(1, Ordering::Relaxed);
                                catch_unwind(AssertUnwindSafe(|| f(i, &items[i])))
                            });
                        if let Some(t) = started {
                            let ns = t.elapsed().as_nanos() as u64;
                            if stolen {
                                prof_steal += ns;
                            } else {
                                prof_run += ns;
                            }
                            prof_jobs += 1;
                        }
                        if tx.send((i, result)).is_err() {
                            return; // collector gone: a sibling job failed
                        }
                    }
                    if prof_jobs > 0 {
                        profile::record_worker(w, prof_run, prof_steal, prof_jobs);
                    }
                });
            }
            drop(tx);

            let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
            let mut failure: Option<Box<dyn std::any::Any + Send>> = None;
            for (i, result) in rx {
                match result {
                    Ok(r) => {
                        slots[i] = Some(r);
                        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(payload) => failure = Some(payload),
                }
            }
            if let Some(payload) = failure {
                std::panic::resume_unwind(payload);
            }
            slots
                .into_iter()
                .map(|s| s.expect("every job sends exactly one result"))
                .collect()
        })
    }

    fn run_job<T, R, F>(&self, i: usize, item: &T, f: &F) -> R
    where
        F: Fn(usize, &T) -> R,
    {
        match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
            Ok(r) => r,
            Err(_) => {
                self.jobs_retried.fetch_add(1, Ordering::Relaxed);
                f(i, item)
            }
        }
    }
}

/// A structured scope for long-lived named service threads — accept
/// loops, connection readers, executor workers.
///
/// The workspace invariant (enforced by sim-lint's `stray-spawn` rule) is
/// that all thread creation lives in this module; `par_map` covers
/// fork-join data parallelism, and this covers everything that must
/// outlive a single map: a server's threads run until the scope closure
/// returns, and [`service_scope`] joins them all before returning, so no
/// service thread ever outlives the state it borrows.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicU32, Ordering};
///
/// let hits = AtomicU32::new(0);
/// sim_rt::pool::service_scope(|scope| {
///     for _ in 0..3 {
///         scope.spawn("worker", || {
///             hits.fetch_add(1, Ordering::SeqCst);
///         });
///     }
/// });
/// assert_eq!(hits.load(Ordering::SeqCst), 3);
/// ```
#[derive(Debug)]
pub struct ServiceScope<'scope, 'env> {
    scope: &'scope std::thread::Scope<'scope, 'env>,
    spawned: AtomicU64,
}

impl<'scope, 'env> ServiceScope<'scope, 'env> {
    /// Spawns a named service thread; the handle can be joined early, and
    /// any thread still running when the scope closure returns is joined
    /// by [`service_scope`] itself.
    pub fn spawn<F, T>(&self, name: &str, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.spawned.fetch_add(1, Ordering::Relaxed);
        std::thread::Builder::new()
            .name(name.to_string())
            .spawn_scoped(self.scope, f)
            .expect("service thread spawn failed")
    }

    /// Number of threads spawned through this scope so far.
    pub fn spawned(&self) -> u64 {
        self.spawned.load(Ordering::Relaxed)
    }
}

/// Runs `f` with a [`ServiceScope`]; returns once `f` and every thread it
/// spawned have finished. Panics from service threads surface here, like
/// [`std::thread::scope`].
pub fn service_scope<'env, T>(f: impl for<'scope> FnOnce(&ServiceScope<'scope, 'env>) -> T) -> T {
    std::thread::scope(|scope| {
        let svc = ServiceScope {
            scope,
            spawned: AtomicU64::new(0),
        };
        f(&svc)
    })
}

/// Pops a job index: own queue front first, then steal from the back of
/// the busiest sibling. The flag says whether the job was stolen.
fn next_job(queues: &[Mutex<VecDeque<usize>>], me: usize) -> Option<(usize, bool)> {
    if let Some(i) = queues[me].lock().expect("queue lock poisoned").pop_front() {
        return Some((i, false));
    }
    for off in 1..queues.len() {
        let victim = (me + off) % queues.len();
        if let Some(i) = queues[victim]
            .lock()
            .expect("queue lock poisoned")
            .pop_back()
        {
            return Some((i, true));
        }
    }
    None
}

/// Opt-in pool self-profiling: per-worker run/steal phase timers folded
/// into a flamegraph-compatible stack table.
///
/// Enabled by setting `AMPEREBLEED_PROFILE` (any non-empty value other
/// than `0`); when enabled, every job executed by [`Pool::par_map`] is
/// timed and attributed to its worker lane, split by whether the job ran
/// on its dealt worker (`run`) or was stolen (`steal`). The job bodies
/// this pool runs (board captures, campaign phases) dwarf one `Instant`
/// read, so the sample rate is 1 — every job is a sample.
///
/// [`folded`] renders the table in folded-stack format
/// (`pool;worker3;steal 120400` per line), directly consumable by
/// standard flamegraph tooling. The aggregate totals surface as
/// `pool.profile.*` gauges in every metrics snapshot.
pub mod profile {
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
    use std::sync::{Mutex, OnceLock};

    /// Environment variable enabling the profiler. A value that is not
    /// `1`, `true`, or `stdout` names the folded-stack output file.
    pub const PROFILE_ENV: &str = "AMPEREBLEED_PROFILE";

    /// Runtime override of the env-var gate: 0 = follow env, 1 = on,
    /// 2 = off.
    static FORCE: AtomicU8 = AtomicU8::new(0);

    fn env_value() -> &'static Option<String> {
        static VALUE: OnceLock<Option<String>> = OnceLock::new();
        VALUE.get_or_init(|| std::env::var(PROFILE_ENV).ok().filter(|v| !v.is_empty()))
    }

    /// Whether job timing is currently live.
    pub fn enabled() -> bool {
        match FORCE.load(Ordering::Relaxed) {
            1 => true,
            2 => false,
            _ => env_value().as_deref().is_some_and(|v| v != "0"),
        }
    }

    /// Overrides the `AMPEREBLEED_PROFILE` gate at runtime: `Some(true)`
    /// forces profiling on, `Some(false)` off, `None` defers to the env.
    pub fn force(on: Option<bool>) {
        let v = match on {
            Some(true) => 1,
            Some(false) => 2,
            None => 0,
        };
        FORCE.store(v, Ordering::Relaxed);
    }

    /// Where the serve binary writes the folded table on exit: a file
    /// path when `AMPEREBLEED_PROFILE` names one, `None` (stdout) when
    /// the variable just toggles (`1`, `true`, `stdout`).
    pub fn output_path() -> Option<String> {
        env_value()
            .as_deref()
            .filter(|v| !matches!(*v, "0" | "1" | "true" | "stdout"))
            .map(str::to_string)
    }

    static SAMPLES: AtomicU64 = AtomicU64::new(0);
    static RUN_NS: AtomicU64 = AtomicU64::new(0);
    static STEAL_NS: AtomicU64 = AtomicU64::new(0);

    fn table() -> &'static Mutex<BTreeMap<String, u64>> {
        static TABLE: OnceLock<Mutex<BTreeMap<String, u64>>> = OnceLock::new();
        TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
    }

    /// Aggregate profiler totals, mirrored as `pool.profile.*` gauges.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct ProfileStats {
        /// Whether timing is currently live.
        pub enabled: bool,
        /// Jobs timed (sample rate is 1: every job is a sample).
        pub samples: u64,
        /// Nanoseconds spent in jobs run on their dealt worker.
        pub run_ns: u64,
        /// Nanoseconds spent in stolen jobs.
        pub steal_ns: u64,
    }

    /// Current aggregate totals.
    pub fn stats() -> ProfileStats {
        ProfileStats {
            enabled: enabled(),
            samples: SAMPLES.load(Ordering::Relaxed),
            run_ns: RUN_NS.load(Ordering::Relaxed),
            steal_ns: STEAL_NS.load(Ordering::Relaxed),
        }
    }

    /// Folds one lane's accumulated phase times into the table. Called
    /// once per worker per map, so the table mutex is far off the
    /// per-job hot path.
    pub(super) fn record_lane(lane: &str, run_ns: u64, steal_ns: u64, samples: u64) {
        SAMPLES.fetch_add(samples, Ordering::Relaxed);
        RUN_NS.fetch_add(run_ns, Ordering::Relaxed);
        STEAL_NS.fetch_add(steal_ns, Ordering::Relaxed);
        let mut table = table()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if run_ns > 0 {
            *table.entry(format!("pool;{lane};run")).or_insert(0) += run_ns;
        }
        if steal_ns > 0 {
            *table.entry(format!("pool;{lane};steal")).or_insert(0) += steal_ns;
        }
    }

    /// [`record_lane`] keyed by a stealing worker's index.
    pub(super) fn record_worker(worker: usize, run_ns: u64, steal_ns: u64, samples: u64) {
        record_lane(&format!("worker{worker}"), run_ns, steal_ns, samples);
    }

    /// Renders the accumulated table in folded-stack format, one
    /// `stack;frames value` line per entry, sorted by stack name —
    /// ready for flamegraph tooling.
    pub fn folded() -> String {
        let table = table()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = String::new();
        for (stack, ns) in table.iter() {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&ns.to_string());
            out.push('\n');
        }
        out
    }

    /// Clears the table and totals (tests, between-campaign baselines).
    pub fn reset() {
        SAMPLES.store(0, Ordering::Relaxed);
        RUN_NS.store(0, Ordering::Relaxed);
        STEAL_NS.store(0, Ordering::Relaxed);
        table()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("SIM_RT_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, SimRng};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_input_order() {
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..1_000).collect();
        let out = pool.par_map(&items, |_, &x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn identical_at_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let reference = Pool::serial().par_map_seeded(99, &items, |seed, _, &x| {
            let mut rng = SimRng::seed_from_u64(seed ^ x);
            rng.next_u64()
        });
        for threads in [2, 3, 8] {
            let out = Pool::new(threads).par_map_seeded(99, &items, |seed, _, &x| {
                let mut rng = SimRng::seed_from_u64(seed ^ x);
                rng.next_u64()
            });
            assert_eq!(out, reference, "thread count {threads} changed results");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let pool = Pool::new(4);
        let out: Vec<u32> = pool.par_map(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn transient_panic_is_retried_once() {
        let pool = Pool::new(2);
        let flaky = AtomicUsize::new(0);
        let items = [0u32; 16];
        let out = pool.par_map(&items, |i, _| {
            // Job 5 fails on its first attempt only.
            if i == 5 && flaky.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient");
            }
            i
        });
        assert_eq!(out[5], 5);
        assert_eq!(pool.stats().jobs_retried, 1);
        assert_eq!(pool.stats().jobs_completed, 16);
    }

    #[test]
    fn persistent_panic_propagates() {
        let pool = Pool::new(2);
        let items = [0u32; 8];
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(&items, |i, _| {
                assert!(i != 3, "job 3 always fails");
                i
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn progress_counters_accumulate() {
        let pool = Pool::new(2);
        pool.par_map(&[0u8; 10], |i, _| i);
        pool.par_map(&[0u8; 5], |i, _| i);
        let stats = pool.stats();
        assert_eq!(stats.jobs_completed, 15);
        assert_eq!(stats.maps_run, 2);
        assert!(stats.jobs_per_sec() > 0.0);
        // Steals are scheduling-dependent, but can never exceed the work.
        assert!(stats.jobs_stolen <= stats.jobs_completed);
    }

    #[test]
    fn serial_pool_never_steals() {
        let pool = Pool::serial();
        pool.par_map(&[0u8; 64], |i, _| i);
        assert_eq!(pool.stats().jobs_stolen, 0);
    }

    #[test]
    fn serial_pool_has_one_thread() {
        assert_eq!(Pool::serial().threads(), 1);
        assert!(Pool::global().threads() >= 1);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let pool = Pool::new(64);
        let out = pool.par_map(&[1u32, 2], |_, &x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn service_scope_joins_and_counts() {
        let total = AtomicUsize::new(0);
        let spawned = service_scope(|scope| {
            for i in 0..4 {
                let total = &total;
                scope.spawn("svc-test", move || {
                    total.fetch_add(i + 1, Ordering::SeqCst);
                });
            }
            scope.spawned()
        });
        assert_eq!(spawned, 4);
        assert_eq!(total.load(Ordering::SeqCst), 1 + 2 + 3 + 4);
    }

    #[test]
    fn service_scope_threads_are_named() {
        service_scope(|scope| {
            let h = scope.spawn("svc-named", || {
                std::thread::current().name().map(str::to_string)
            });
            assert_eq!(h.join().unwrap().as_deref(), Some("svc-named"));
        });
    }

    /// The profiler's force switch and totals are process-global;
    /// serialize the tests that toggle them.
    fn profile_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn profiler_folds_run_and_steal_lanes() {
        let _guard = profile_guard();
        profile::force(Some(true));
        let work = |i: usize, _: &u8| (0..200usize).fold(i, |a, b| a ^ b.wrapping_mul(31));
        Pool::new(2).par_map(&[0u8; 64], work);
        Pool::serial().par_map(&[0u8; 8], work);
        profile::force(Some(false));
        let stats = profile::stats();
        assert!(!stats.enabled, "force(Some(false)) wins over the env");
        assert!(stats.samples >= 72, "every job is a sample");
        assert!(stats.run_ns + stats.steal_ns > 0);
        let folded = profile::folded();
        assert!(folded.contains("pool;serial;run "));
        assert!(
            folded.contains("pool;worker0;") || folded.contains("pool;worker1;"),
            "stealing lanes present: {folded}"
        );
        for line in folded.lines() {
            let (stack, value) = line.rsplit_once(' ').expect("folded line shape");
            assert!(stack.starts_with("pool;"), "{line}");
            value.parse::<u64>().expect("folded value is integer ns");
        }
    }

    #[test]
    fn profiler_off_by_default_records_nothing_new() {
        let _guard = profile_guard();
        profile::force(Some(false));
        let before = profile::stats().samples;
        Pool::new(2).par_map(&[0u8; 32], |i, _| i);
        assert_eq!(profile::stats().samples, before);
        profile::force(None);
    }

    #[test]
    fn service_scope_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            service_scope(|scope| {
                scope.spawn("svc-doomed", || panic!("boom"));
            })
        });
        assert!(result.is_err());
    }
}
