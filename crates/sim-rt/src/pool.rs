//! Crossbeam-free work-stealing thread pool with a deterministic
//! `par_map` API.
//!
//! Jobs are distributed round-robin into per-worker deques; an idle worker
//! pops from its own queue front and steals from the back of its
//! neighbours'. Results land in their input slot, so the output order (and
//! therefore every downstream computation) is **identical at any thread
//! count** as long as each job is a pure function of its input — which is
//! what [`Pool::par_map_seeded`] guarantees by deriving per-job child
//! seeds from a master seed with [`derive_seed`].
//!
//! A panicking job is retried once (transient-failure capture); a second
//! panic is re-raised on the calling thread after every worker has
//! drained, so no result is silently dropped.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Mutex, OnceLock};
// Wall-clock here only feeds the `busy_nanos` throughput stat; it is never
// visible to simulation results.
use std::time::Instant; // sim-lint: allow(wall-clock)

use crate::rng::derive_seed;

/// Snapshot of a pool's cumulative progress counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Total jobs completed across all `par_map` calls.
    pub jobs_completed: u64,
    /// Jobs that panicked once and were retried.
    pub jobs_retried: u64,
    /// Jobs executed by a worker other than the one they were dealt to.
    pub jobs_stolen: u64,
    /// `par_map` invocations served.
    pub maps_run: u64,
    /// Wall-clock nanoseconds spent inside `par_map` calls.
    pub busy_nanos: u64,
}

impl PoolStats {
    /// Mean throughput in jobs per second over the pool's lifetime.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.busy_nanos == 0 {
            return 0.0;
        }
        self.jobs_completed as f64 / (self.busy_nanos as f64 / 1e9)
    }
}

/// A fixed-width scoped thread pool.
///
/// The pool holds no threads between calls — each `par_map` spawns scoped
/// workers (`std::thread::scope`), which keeps borrows of the input slice
/// safe without `'static` bounds and leaves nothing running between
/// campaigns.
///
/// # Examples
///
/// ```
/// use sim_rt::pool::Pool;
///
/// let pool = Pool::new(4);
/// let squares = pool.par_map(&[1, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
#[derive(Debug)]
pub struct Pool {
    threads: usize,
    jobs_completed: AtomicU64,
    jobs_retried: AtomicU64,
    jobs_stolen: AtomicU64,
    maps_run: AtomicU64,
    busy_nanos: AtomicU64,
}

impl Pool {
    /// Creates a pool with `threads` workers; `0` means one worker per
    /// available CPU (overridable with the `SIM_RT_THREADS` env var).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            default_threads()
        } else {
            threads
        };
        Pool {
            threads,
            jobs_completed: AtomicU64::new(0),
            jobs_retried: AtomicU64::new(0),
            jobs_stolen: AtomicU64::new(0),
            maps_run: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
        }
    }

    /// A single-threaded pool: `par_map` degenerates to an in-order loop.
    pub const fn serial() -> Self {
        Pool {
            threads: 1,
            jobs_completed: AtomicU64::new(0),
            jobs_retried: AtomicU64::new(0),
            jobs_stolen: AtomicU64::new(0),
            maps_run: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
        }
    }

    /// The process-wide shared pool, sized by `SIM_RT_THREADS` or the
    /// available CPU count.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::new(0))
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Cumulative progress counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            jobs_retried: self.jobs_retried.load(Ordering::Relaxed),
            jobs_stolen: self.jobs_stolen.load(Ordering::Relaxed),
            maps_run: self.maps_run.load(Ordering::Relaxed),
            busy_nanos: self.busy_nanos.load(Ordering::Relaxed),
        }
    }

    /// Maps `f` over `items` in parallel; `out[i] == f(i, &items[i])`.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of any job that fails twice.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let started = Instant::now(); // sim-lint: allow(wall-clock)
        self.maps_run.fetch_add(1, Ordering::Relaxed);
        let workers = self.threads.min(items.len()).max(1);
        let out = if workers == 1 {
            self.serial_map(items, &f)
        } else {
            self.stealing_map(items, &f, workers)
        };
        self.busy_nanos
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out
    }

    /// [`par_map`](Pool::par_map) with a per-job child seed derived from
    /// `master_seed` and the job index — the deterministic fan-out used by
    /// the campaign, fingerprinting, and characterization sweeps.
    pub fn par_map_seeded<T, R, F>(&self, master_seed: u64, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(u64, usize, &T) -> R + Sync,
    {
        self.par_map(items, |i, item| {
            f(derive_seed(master_seed, i as u64), i, item)
        })
    }

    fn serial_map<T, R, F>(&self, items: &[T], f: &F) -> Vec<R>
    where
        F: Fn(usize, &T) -> R,
    {
        items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let r = self.run_job(i, item, f);
                self.jobs_completed.fetch_add(1, Ordering::Relaxed);
                r
            })
            .collect()
    }

    fn stealing_map<T, R, F>(&self, items: &[T], f: &F, workers: usize) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        // Round-robin deal into per-worker deques.
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w..items.len()).step_by(workers).collect()))
            .collect();
        let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<R>)>();

        std::thread::scope(|scope| {
            for w in 0..workers {
                let tx = tx.clone();
                let queues = &queues;
                scope.spawn(move || {
                    while let Some((i, stolen)) = next_job(queues, w) {
                        if stolen {
                            self.jobs_stolen.fetch_add(1, Ordering::Relaxed);
                        }
                        let result =
                            catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))).or_else(|_| {
                                // One retry per job before giving up.
                                self.jobs_retried.fetch_add(1, Ordering::Relaxed);
                                catch_unwind(AssertUnwindSafe(|| f(i, &items[i])))
                            });
                        if tx.send((i, result)).is_err() {
                            return; // collector gone: a sibling job failed
                        }
                    }
                });
            }
            drop(tx);

            let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
            let mut failure: Option<Box<dyn std::any::Any + Send>> = None;
            for (i, result) in rx {
                match result {
                    Ok(r) => {
                        slots[i] = Some(r);
                        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(payload) => failure = Some(payload),
                }
            }
            if let Some(payload) = failure {
                std::panic::resume_unwind(payload);
            }
            slots
                .into_iter()
                .map(|s| s.expect("every job sends exactly one result"))
                .collect()
        })
    }

    fn run_job<T, R, F>(&self, i: usize, item: &T, f: &F) -> R
    where
        F: Fn(usize, &T) -> R,
    {
        match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
            Ok(r) => r,
            Err(_) => {
                self.jobs_retried.fetch_add(1, Ordering::Relaxed);
                f(i, item)
            }
        }
    }
}

/// A structured scope for long-lived named service threads — accept
/// loops, connection readers, executor workers.
///
/// The workspace invariant (enforced by sim-lint's `stray-spawn` rule) is
/// that all thread creation lives in this module; `par_map` covers
/// fork-join data parallelism, and this covers everything that must
/// outlive a single map: a server's threads run until the scope closure
/// returns, and [`service_scope`] joins them all before returning, so no
/// service thread ever outlives the state it borrows.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicU32, Ordering};
///
/// let hits = AtomicU32::new(0);
/// sim_rt::pool::service_scope(|scope| {
///     for _ in 0..3 {
///         scope.spawn("worker", || {
///             hits.fetch_add(1, Ordering::SeqCst);
///         });
///     }
/// });
/// assert_eq!(hits.load(Ordering::SeqCst), 3);
/// ```
#[derive(Debug)]
pub struct ServiceScope<'scope, 'env> {
    scope: &'scope std::thread::Scope<'scope, 'env>,
    spawned: AtomicU64,
}

impl<'scope, 'env> ServiceScope<'scope, 'env> {
    /// Spawns a named service thread; the handle can be joined early, and
    /// any thread still running when the scope closure returns is joined
    /// by [`service_scope`] itself.
    pub fn spawn<F, T>(&self, name: &str, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.spawned.fetch_add(1, Ordering::Relaxed);
        std::thread::Builder::new()
            .name(name.to_string())
            .spawn_scoped(self.scope, f)
            .expect("service thread spawn failed")
    }

    /// Number of threads spawned through this scope so far.
    pub fn spawned(&self) -> u64 {
        self.spawned.load(Ordering::Relaxed)
    }
}

/// Runs `f` with a [`ServiceScope`]; returns once `f` and every thread it
/// spawned have finished. Panics from service threads surface here, like
/// [`std::thread::scope`].
pub fn service_scope<'env, T>(f: impl for<'scope> FnOnce(&ServiceScope<'scope, 'env>) -> T) -> T {
    std::thread::scope(|scope| {
        let svc = ServiceScope {
            scope,
            spawned: AtomicU64::new(0),
        };
        f(&svc)
    })
}

/// Pops a job index: own queue front first, then steal from the back of
/// the busiest sibling. The flag says whether the job was stolen.
fn next_job(queues: &[Mutex<VecDeque<usize>>], me: usize) -> Option<(usize, bool)> {
    if let Some(i) = queues[me].lock().expect("queue lock poisoned").pop_front() {
        return Some((i, false));
    }
    for off in 1..queues.len() {
        let victim = (me + off) % queues.len();
        if let Some(i) = queues[victim]
            .lock()
            .expect("queue lock poisoned")
            .pop_back()
        {
            return Some((i, true));
        }
    }
    None
}

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("SIM_RT_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, SimRng};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_input_order() {
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..1_000).collect();
        let out = pool.par_map(&items, |_, &x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn identical_at_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let reference = Pool::serial().par_map_seeded(99, &items, |seed, _, &x| {
            let mut rng = SimRng::seed_from_u64(seed ^ x);
            rng.next_u64()
        });
        for threads in [2, 3, 8] {
            let out = Pool::new(threads).par_map_seeded(99, &items, |seed, _, &x| {
                let mut rng = SimRng::seed_from_u64(seed ^ x);
                rng.next_u64()
            });
            assert_eq!(out, reference, "thread count {threads} changed results");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let pool = Pool::new(4);
        let out: Vec<u32> = pool.par_map(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn transient_panic_is_retried_once() {
        let pool = Pool::new(2);
        let flaky = AtomicUsize::new(0);
        let items = [0u32; 16];
        let out = pool.par_map(&items, |i, _| {
            // Job 5 fails on its first attempt only.
            if i == 5 && flaky.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient");
            }
            i
        });
        assert_eq!(out[5], 5);
        assert_eq!(pool.stats().jobs_retried, 1);
        assert_eq!(pool.stats().jobs_completed, 16);
    }

    #[test]
    fn persistent_panic_propagates() {
        let pool = Pool::new(2);
        let items = [0u32; 8];
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(&items, |i, _| {
                assert!(i != 3, "job 3 always fails");
                i
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn progress_counters_accumulate() {
        let pool = Pool::new(2);
        pool.par_map(&[0u8; 10], |i, _| i);
        pool.par_map(&[0u8; 5], |i, _| i);
        let stats = pool.stats();
        assert_eq!(stats.jobs_completed, 15);
        assert_eq!(stats.maps_run, 2);
        assert!(stats.jobs_per_sec() > 0.0);
        // Steals are scheduling-dependent, but can never exceed the work.
        assert!(stats.jobs_stolen <= stats.jobs_completed);
    }

    #[test]
    fn serial_pool_never_steals() {
        let pool = Pool::serial();
        pool.par_map(&[0u8; 64], |i, _| i);
        assert_eq!(pool.stats().jobs_stolen, 0);
    }

    #[test]
    fn serial_pool_has_one_thread() {
        assert_eq!(Pool::serial().threads(), 1);
        assert!(Pool::global().threads() >= 1);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let pool = Pool::new(64);
        let out = pool.par_map(&[1u32, 2], |_, &x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn service_scope_joins_and_counts() {
        let total = AtomicUsize::new(0);
        let spawned = service_scope(|scope| {
            for i in 0..4 {
                let total = &total;
                scope.spawn("svc-test", move || {
                    total.fetch_add(i + 1, Ordering::SeqCst);
                });
            }
            scope.spawned()
        });
        assert_eq!(spawned, 4);
        assert_eq!(total.load(Ordering::SeqCst), 1 + 2 + 3 + 4);
    }

    #[test]
    fn service_scope_threads_are_named() {
        service_scope(|scope| {
            let h = scope.spawn("svc-named", || {
                std::thread::current().name().map(str::to_string)
            });
            assert_eq!(h.join().unwrap().as_deref(), Some("svc-named"));
        });
    }

    #[test]
    fn service_scope_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            service_scope(|scope| {
                scope.spawn("svc-doomed", || panic!("boom"));
            })
        });
        assert!(result.is_err());
    }
}
