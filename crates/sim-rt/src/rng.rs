//! Seeded, splittable pseudo-random number generation.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, high
//! quality for simulation workloads, and fully deterministic from a `u64`
//! seed. Streams can be *split* ([`SimRng::split`], [`derive_seed`]) so a
//! campaign seed fans out into statistically independent per-job child
//! seeds; this is what makes [`crate::pool::Pool::par_map_seeded`] results
//! bit-identical at any thread count.

use std::ops::{Range, RangeInclusive};

/// One step of the SplitMix64 sequence; used for seeding and for stateless
/// seed derivation.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from a master seed and a stream index.
///
/// The map is a pure function, so job `i` of a campaign always receives
/// the same seed no matter which worker thread runs it, in which order.
///
/// # Examples
///
/// ```
/// use sim_rt::rng::derive_seed;
///
/// assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
/// assert_ne!(derive_seed(42, 7), derive_seed(42, 8));
/// assert_ne!(derive_seed(42, 7), derive_seed(43, 7));
/// ```
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut state = master ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
    let a = splitmix64(&mut state);
    let b = splitmix64(&mut state);
    a ^ b.rotate_left(32)
}

/// Minimal random-source trait: everything derives from `next_u64`.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.next_f64() < p
    }

    /// An unbiased uniform integer in `[0, n)` (Lemire's method).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_below needs a non-empty range");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform draw from a half-open range, e.g. `0..10usize` or
    /// `0.0f64..1.0`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<U: UniformRange>(&mut self, range: U) -> U::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// One draw from `N(mean, std_dev^2)` via the Box-Muller transform
    /// (the second transform output is discarded; stateless by design).
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    fn normal(&mut self, mean: f64, std_dev: f64) -> f64
    where
        Self: Sized,
    {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        let u1 = self.gen_range(f64::MIN_POSITIVE..1.0);
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * r * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// The runtime's concrete generator: xoshiro256++.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator whose full 256-bit state is expanded from
    /// `seed` through SplitMix64 (never all-zero).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        SimRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }

    /// Splits off an independent child generator, advancing `self`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sim_rt::rng::{Rng, SimRng};
    ///
    /// let mut parent = SimRng::seed_from_u64(1);
    /// let mut a = parent.split();
    /// let mut b = parent.split();
    /// assert_ne!(a.next_u64(), b.next_u64());
    /// ```
    pub fn split(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64() ^ 0x6C62_272E_07BB_0142)
    }
}

impl Rng for SimRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A type a uniform sample can be drawn from (half-open numeric ranges).
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.gen_below(span) as $t
            }
        }
    )*};
}
impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.gen_below(span) as $t)
            }
        }
    )*};
}
impl_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_uniform_unsigned_inclusive {
    ($($t:ty),*) => {$(
        impl UniformRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.gen_below(span + 1) as $t
            }
        }
    )*};
}
impl_uniform_unsigned_inclusive!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed_inclusive {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.gen_below(span + 1) as $t)
            }
        }
    )*};
}
impl_uniform_signed_inclusive!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl UniformRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let x = self.start + (self.end - self.start) * rng.next_f64() as $t;
                // Guard against rounding up to the excluded endpoint.
                if x < self.end { x } else { self.start }
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Fisher-Yates shuffle as a slice extension, mirroring the call shape of
/// `rand::seq::SliceRandom`.
///
/// # Examples
///
/// ```
/// use sim_rt::rng::{SimRng, SliceShuffle};
///
/// let mut xs: Vec<u32> = (0..100).collect();
/// let mut rng = SimRng::seed_from_u64(3);
/// xs.shuffle(&mut rng);
/// assert_ne!(xs, (0..100).collect::<Vec<u32>>());
/// ```
pub trait SliceShuffle {
    /// Uniformly permutes the slice in place.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceShuffle for [T] {
    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_below(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_below_is_unbiased_over_small_modulus() {
        let mut rng = SimRng::seed_from_u64(4);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.gen_below(3) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn gen_range_respects_bounds_for_every_numeric_kind() {
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..1_000 {
            assert!((3..17u8).contains(&rng.gen_range(3..17u8)));
            assert!((0..9usize).contains(&rng.gen_range(0..9usize)));
            let i = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&i));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn signed_range_spanning_zero_hits_both_signs() {
        let mut rng = SimRng::seed_from_u64(6);
        let draws: Vec<i64> = (0..200).map(|_| rng.gen_range(-100..100i64)).collect();
        assert!(draws.iter().any(|&x| x < 0));
        assert!(draws.iter().any(|&x| x >= 0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SimRng::seed_from_u64(0);
        let _ = rng.gen_range(5..5u32);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SimRng::seed_from_u64(8);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut xs: Vec<u32> = (0..50).collect();
        let mut rng = SimRng::seed_from_u64(9);
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn split_streams_are_reproducible() {
        let mut p1 = SimRng::seed_from_u64(11);
        let mut p2 = SimRng::seed_from_u64(11);
        assert_eq!(p1.split(), p2.split());
        assert_eq!(p1.split(), p2.split());
    }

    #[test]
    fn derive_seed_differs_from_identity() {
        assert_ne!(derive_seed(0, 0), 0);
        assert_ne!(derive_seed(1, 0), derive_seed(0, 1));
    }
}
