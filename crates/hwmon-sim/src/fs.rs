use zynq_soc::SimTime;

use crate::{HwmonDevice, HwmonError, Result};

/// The privilege level of the process performing a sysfs access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Privilege {
    /// An unprivileged user process — the AmpereBleed attacker.
    User,
    /// Root.
    Root,
}

/// A hwmon attribute file, the typed counterpart of the path tail
/// (`curr1_input`, `in1_input`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Attribute {
    /// The device `name` attribute (the only non-numeric file).
    Name,
    /// Latched current in mA.
    Curr1Input,
    /// Latched shunt voltage in mV.
    In0Input,
    /// Latched bus voltage in mV.
    In1Input,
    /// Latched power in µW.
    Power1Input,
    /// The conversion update interval in ms.
    UpdateInterval,
}

impl Attribute {
    /// Every attribute a device exposes, in `ls` order.
    pub const ALL: [Attribute; 6] = [
        Attribute::Name,
        Attribute::Curr1Input,
        Attribute::In0Input,
        Attribute::In1Input,
        Attribute::Power1Input,
        Attribute::UpdateInterval,
    ];

    /// The sysfs file name of this attribute.
    pub fn file_name(self) -> &'static str {
        match self {
            Attribute::Name => "name",
            Attribute::Curr1Input => "curr1_input",
            Attribute::In0Input => "in0_input",
            Attribute::In1Input => "in1_input",
            Attribute::Power1Input => "power1_input",
            Attribute::UpdateInterval => "update_interval",
        }
    }

    /// Parses a sysfs file name.
    pub fn from_file_name(name: &str) -> Option<Attribute> {
        Attribute::ALL.into_iter().find(|a| a.file_name() == name)
    }

    /// Whether this is a measurement attribute (the ones the Section V
    /// mitigation locks down to root).
    pub fn is_measurement(self) -> bool {
        matches!(
            self,
            Attribute::Curr1Input
                | Attribute::In0Input
                | Attribute::In1Input
                | Attribute::Power1Input
        )
    }
}

/// A pre-resolved `(device, attribute)` pair: the typed fast path's file
/// descriptor.
///
/// Resolving a path with [`HwmonFs::resolve`] once and reading through the
/// handle with [`HwmonFs::read_value`] skips the per-read path `format!`,
/// prefix strip and integer parse of the string API — the AmpereBleed
/// sampling loop on real hardware likewise opens the sysfs node once and
/// re-reads the open descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SensorHandle {
    index: usize,
    attr: Attribute,
}

impl SensorHandle {
    /// Builds a handle from a device index and attribute. The index is
    /// validated at read time, like a stale file descriptor would be.
    pub fn new(index: usize, attr: Attribute) -> Self {
        SensorHandle { index, attr }
    }

    /// The `hwmon{index}` device index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The attribute file this handle reads.
    pub fn attribute(&self) -> Attribute {
        self.attr
    }

    /// The sysfs path this handle stands for (allocates; error paths and
    /// diagnostics only).
    pub fn path(&self) -> String {
        format!(
            "/sys/class/hwmon/hwmon{}/{}",
            self.index,
            self.attr.file_name()
        )
    }
}

/// The simulated `/sys/class/hwmon` tree.
///
/// Devices register in order and appear as `hwmon0`, `hwmon1`, ....
/// Reads carry an explicit simulation timestamp (there is no hidden global
/// clock); each read triggers the device's lazy conversion clocking.
///
/// # Examples
///
/// See the [crate-level documentation](crate) for a complete example.
#[derive(Debug, Default)]
pub struct HwmonFs {
    devices: Vec<HwmonDevice>,
    /// Mitigation mode (Section V), indexed like `devices`: `true` means
    /// the device's measurement attributes require root.
    restricted: Vec<bool>,
}

impl HwmonFs {
    /// Creates an empty tree.
    pub fn new() -> Self {
        HwmonFs::default()
    }

    /// Registers a device; returns its index (`hwmon{index}`).
    pub fn register(&mut self, device: HwmonDevice) -> usize {
        self.devices.push(device);
        self.restricted.push(false);
        self.devices.len() - 1
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the tree has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The device at `index`, if registered.
    pub fn device(&self, index: usize) -> Option<&HwmonDevice> {
        self.devices.get(index)
    }

    /// Finds a device index by its `name` attribute.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.devices.iter().position(|d| d.name() == name)
    }

    /// Lists all attribute paths, as `ls /sys/class/hwmon/hwmon*/` would.
    pub fn list(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (i, _) in self.devices.iter().enumerate() {
            for attr in Attribute::ALL {
                out.push(format!("/sys/class/hwmon/hwmon{i}/{}", attr.file_name()));
            }
        }
        out
    }

    /// Enables the Section V mitigation for a device: its measurement
    /// attributes become readable by root only.
    ///
    /// # Errors
    ///
    /// Returns [`HwmonError::NoSuchFile`] if no device has that name.
    pub fn restrict_reads_to_root(&mut self, name: &str) -> Result<()> {
        let index = self
            .index_of(name)
            .ok_or_else(|| HwmonError::NoSuchFile(format!("device {name}")))?;
        self.restricted[index] = true;
        Ok(())
    }

    /// Lifts the read restriction from a device.
    pub fn unrestrict_reads(&mut self, name: &str) {
        if let Some(index) = self.index_of(name) {
            self.restricted[index] = false;
        }
    }

    /// Installs one [`crate::SensorDefense`] on every registered device
    /// (devices registered later are unaffected). Each device's latched
    /// conversion is invalidated so the next read goes through the hooks.
    pub fn install_defense(&mut self, defense: std::sync::Arc<dyn crate::SensorDefense>) {
        for dev in &mut self.devices {
            dev.set_defense(Some(std::sync::Arc::clone(&defense)));
        }
    }

    /// Removes any installed defense from every registered device.
    pub fn clear_defense(&mut self) {
        for dev in &mut self.devices {
            dev.set_defense(None);
        }
    }

    fn parse(path: &str) -> Result<(usize, &str)> {
        let rest = path
            .strip_prefix("/sys/class/hwmon/hwmon")
            .ok_or_else(|| HwmonError::NoSuchFile(path.to_owned()))?;
        let slash = rest
            .find('/')
            .ok_or_else(|| HwmonError::NoSuchFile(path.to_owned()))?;
        let index: usize = rest[..slash]
            .parse()
            .map_err(|_| HwmonError::NoSuchFile(path.to_owned()))?;
        Ok((index, &rest[slash + 1..]))
    }

    /// Resolves a sysfs path to a [`SensorHandle`], the typed path's
    /// analogue of `open(2)`.
    ///
    /// # Errors
    ///
    /// Returns [`HwmonError::NoSuchFile`] for paths outside the tree,
    /// unknown attribute names, or unregistered device indices.
    pub fn resolve(&self, path: &str) -> Result<SensorHandle> {
        let (index, attr) = Self::parse(path)?;
        if index >= self.devices.len() {
            return Err(HwmonError::NoSuchFile(path.to_owned()));
        }
        let attr = Attribute::from_file_name(attr)
            .ok_or_else(|| HwmonError::NoSuchFile(path.to_owned()))?;
        Ok(SensorHandle::new(index, attr))
    }

    /// The permission check and raw attribute fetch shared by the typed
    /// and string read paths. Does not count or trace the read itself.
    fn read_numeric(
        &self,
        handle: SensorHandle,
        now: SimTime,
        privilege: Privilege,
    ) -> Result<i64> {
        let dev = self
            .devices
            .get(handle.index)
            .ok_or_else(|| HwmonError::NoSuchFile(handle.path()))?;
        if self.restricted[handle.index]
            && handle.attr.is_measurement()
            && privilege != Privilege::Root
        {
            obs::counter!("hwmon.fs.reads_denied").inc();
            obs::warn!(
                "hwmon.fs",
                sim = now.as_nanos(),
                "unprivileged read denied by mitigation";
                "hwmon" => handle.index as u64,
                "attr" => handle.attr.file_name()
            );
            return Err(HwmonError::PermissionDenied(handle.path()));
        }
        match handle.attr {
            Attribute::Name => Err(HwmonError::NotNumeric(handle.path())),
            Attribute::Curr1Input => Ok(dev.curr1_input(now)),
            Attribute::In0Input => Ok(dev.in0_input(now)),
            Attribute::In1Input => Ok(dev.in1_input(now)),
            Attribute::Power1Input => Ok(dev.power1_input(now)),
            Attribute::UpdateInterval => Ok(dev.update_interval_ms() as i64),
        }
    }

    /// Reads a numeric attribute through a pre-resolved handle — the
    /// allocation-free sampling fast path. Returns the value in native
    /// hwmon units (mA, mV, µW, ms) with no string round-trip.
    ///
    /// # Errors
    ///
    /// * [`HwmonError::NoSuchFile`] if the handle's device index is stale.
    /// * [`HwmonError::PermissionDenied`] when the mitigation restricts
    ///   the device and the caller is not root.
    /// * [`HwmonError::NotNumeric`] for the `name` attribute.
    pub fn read_value(
        &self,
        handle: SensorHandle,
        now: SimTime,
        privilege: Privilege,
    ) -> Result<i64> {
        obs::counter!("hwmon.fs.reads").inc();
        obs::trace!(
            "hwmon.fs",
            sim = now.as_nanos(),
            "sysfs read";
            "hwmon" => handle.index as u64,
            "attr" => handle.attr.file_name()
        );
        self.read_numeric(handle, now, privilege)
    }

    /// Resolves `path` and reads it as a number: `read_raw` is
    /// `resolve` + [`read_value`](Self::read_value) for one-shot callers.
    /// Loops should resolve once and hold the handle.
    ///
    /// # Errors
    ///
    /// Union of [`resolve`](Self::resolve) and
    /// [`read_value`](Self::read_value).
    pub fn read_raw(&self, path: &str, now: SimTime, privilege: Privilege) -> Result<i64> {
        self.read_value(self.resolve(path)?, now, privilege)
    }

    /// Reads an attribute at simulation time `now`, returning the
    /// newline-terminated string a real sysfs read yields. Thin wrapper
    /// over the typed path; per-sample loops should prefer
    /// [`read_value`](Self::read_value).
    ///
    /// # Errors
    ///
    /// * [`HwmonError::NoSuchFile`] for unknown paths.
    /// * [`HwmonError::PermissionDenied`] when the mitigation restricts
    ///   the device and the caller is not root.
    pub fn read(&self, path: &str, now: SimTime, privilege: Privilege) -> Result<String> {
        obs::counter!("hwmon.fs.reads").inc();
        let handle = self.resolve(path)?;
        obs::trace!(
            "hwmon.fs",
            sim = now.as_nanos(),
            "sysfs read";
            "path" => path
        );
        if handle.attr == Attribute::Name {
            let dev = &self.devices[handle.index];
            return Ok(format!("{}\n", dev.name()));
        }
        let v = self.read_numeric(handle, now, privilege)?;
        Ok(format!("{v}\n"))
    }

    /// Writes an attribute. Only `update_interval` is writable, and only
    /// by root (Section III-C: "modifying it requires root privileges").
    ///
    /// # Errors
    ///
    /// * [`HwmonError::NoSuchFile`] for unknown paths.
    /// * [`HwmonError::PermissionDenied`] for non-root writers.
    /// * [`HwmonError::ReadOnly`] for measurement attributes.
    /// * [`HwmonError::InvalidInput`] for unparseable values.
    pub fn write(&self, path: &str, value: &str, privilege: Privilege) -> Result<()> {
        obs::counter!("hwmon.fs.writes").inc();
        let (index, attr) = Self::parse(path)?;
        let dev = self
            .devices
            .get(index)
            .ok_or_else(|| HwmonError::NoSuchFile(path.to_owned()))?;
        match attr {
            "update_interval" => {
                if privilege != Privilege::Root {
                    return Err(HwmonError::PermissionDenied(path.to_owned()));
                }
                let ms: u64 = value
                    .trim()
                    .parse()
                    .map_err(|_| HwmonError::InvalidInput(value.to_owned()))?;
                dev.set_update_interval_ms(ms);
                Ok(())
            }
            "name" | "curr1_input" | "in0_input" | "in1_input" | "power1_input" => {
                Err(HwmonError::ReadOnly(path.to_owned()))
            }
            _ => Err(HwmonError::NoSuchFile(path.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RailProbe;
    use std::sync::Arc;

    fn fs_with_two() -> HwmonFs {
        let probe: Arc<dyn RailProbe> = Arc::new(|_t: SimTime| (1.0, 0.85));
        let mut fs = HwmonFs::new();
        fs.register(HwmonDevice::new(
            "ina226_u76",
            0.002,
            0.0005,
            Arc::clone(&probe),
            1,
        ));
        fs.register(HwmonDevice::new("ina226_u79", 0.0005, 0.0005, probe, 2));
        fs
    }

    #[test]
    fn registration_and_lookup() {
        let fs = fs_with_two();
        assert_eq!(fs.len(), 2);
        assert!(!fs.is_empty());
        assert_eq!(fs.index_of("ina226_u79"), Some(1));
        assert_eq!(fs.index_of("nope"), None);
        assert!(fs.device(0).is_some());
        assert!(fs.device(7).is_none());
    }

    #[test]
    fn list_enumerates_all_attributes() {
        let fs = fs_with_two();
        let paths = fs.list();
        assert_eq!(paths.len(), 12);
        assert!(paths.contains(&"/sys/class/hwmon/hwmon0/in0_input".to_owned()));
        assert!(paths.contains(&"/sys/class/hwmon/hwmon1/curr1_input".to_owned()));
    }

    #[test]
    fn read_returns_newline_terminated_integers() {
        let fs = fs_with_two();
        let t = SimTime::from_ms(40);
        let s = fs
            .read("/sys/class/hwmon/hwmon0/curr1_input", t, Privilege::User)
            .unwrap();
        assert!(s.ends_with('\n'));
        let ma: i64 = s.trim().parse().unwrap();
        assert!((ma - 1000).abs() < 30, "{ma}");
        let name = fs
            .read("/sys/class/hwmon/hwmon1/name", t, Privilege::User)
            .unwrap();
        assert_eq!(name, "ina226_u79\n");
    }

    #[test]
    fn unknown_paths_rejected() {
        let fs = fs_with_two();
        let t = SimTime::ZERO;
        for path in [
            "/sys/class/hwmon/hwmon9/curr1_input",
            "/sys/class/hwmon/hwmon0/bogus",
            "/proc/cpuinfo",
            "/sys/class/hwmon/hwmonX/name",
        ] {
            assert!(matches!(
                fs.read(path, t, Privilege::User),
                Err(HwmonError::NoSuchFile(_))
            ));
        }
    }

    #[test]
    fn update_interval_is_root_only() {
        let fs = fs_with_two();
        let path = "/sys/class/hwmon/hwmon0/update_interval";
        assert!(matches!(
            fs.write(path, "2", Privilege::User),
            Err(HwmonError::PermissionDenied(_))
        ));
        fs.write(path, "2", Privilege::Root).unwrap();
        let s = fs.read(path, SimTime::ZERO, Privilege::User).unwrap();
        assert_eq!(s.trim(), "2");
    }

    #[test]
    fn measurement_attributes_read_only() {
        let fs = fs_with_two();
        assert!(matches!(
            fs.write("/sys/class/hwmon/hwmon0/curr1_input", "0", Privilege::Root),
            Err(HwmonError::ReadOnly(_))
        ));
    }

    #[test]
    fn invalid_interval_rejected() {
        let fs = fs_with_two();
        assert!(matches!(
            fs.write(
                "/sys/class/hwmon/hwmon0/update_interval",
                "soon",
                Privilege::Root
            ),
            Err(HwmonError::InvalidInput(_))
        ));
    }

    #[test]
    fn mitigation_blocks_unprivileged_reads() {
        let mut fs = fs_with_two();
        fs.restrict_reads_to_root("ina226_u79").unwrap();
        let t = SimTime::from_ms(40);
        let path = "/sys/class/hwmon/hwmon1/curr1_input";
        assert!(matches!(
            fs.read(path, t, Privilege::User),
            Err(HwmonError::PermissionDenied(_))
        ));
        // Root still reads; `name` stays world-readable; the other device
        // is unaffected.
        assert!(fs.read(path, t, Privilege::Root).is_ok());
        assert!(fs
            .read("/sys/class/hwmon/hwmon1/name", t, Privilege::User)
            .is_ok());
        assert!(fs
            .read("/sys/class/hwmon/hwmon0/curr1_input", t, Privilege::User)
            .is_ok());
        // And it can be lifted again.
        fs.unrestrict_reads("ina226_u79");
        assert!(fs.read(path, t, Privilege::User).is_ok());
    }

    #[test]
    fn restricting_unknown_device_fails() {
        let mut fs = fs_with_two();
        assert!(fs.restrict_reads_to_root("ina226_u99").is_err());
    }

    #[test]
    fn attribute_round_trips_file_names() {
        for attr in Attribute::ALL {
            assert_eq!(Attribute::from_file_name(attr.file_name()), Some(attr));
        }
        assert_eq!(Attribute::from_file_name("temp1_input"), None);
    }

    #[test]
    fn resolve_maps_paths_to_handles() {
        let fs = fs_with_two();
        let h = fs.resolve("/sys/class/hwmon/hwmon1/curr1_input").unwrap();
        assert_eq!(h.index(), 1);
        assert_eq!(h.attribute(), Attribute::Curr1Input);
        assert_eq!(h.path(), "/sys/class/hwmon/hwmon1/curr1_input");
        for bad in [
            "/sys/class/hwmon/hwmon9/curr1_input",
            "/sys/class/hwmon/hwmon0/bogus",
            "/proc/cpuinfo",
        ] {
            assert!(matches!(fs.resolve(bad), Err(HwmonError::NoSuchFile(_))));
        }
    }

    #[test]
    fn typed_read_matches_string_read() {
        // The typed path and the string path must agree byte-for-byte:
        // use two identically seeded trees so both see fresh sensor RNG.
        let a = fs_with_two();
        let b = fs_with_two();
        let t = SimTime::from_ms(40);
        for path in [
            "/sys/class/hwmon/hwmon0/curr1_input",
            "/sys/class/hwmon/hwmon0/in0_input",
            "/sys/class/hwmon/hwmon1/in1_input",
            "/sys/class/hwmon/hwmon1/power1_input",
            "/sys/class/hwmon/hwmon0/update_interval",
        ] {
            let s: i64 = a
                .read(path, t, Privilege::User)
                .unwrap()
                .trim()
                .parse()
                .unwrap();
            let v = b.read_raw(path, t, Privilege::User).unwrap();
            assert_eq!(s, v, "{path}");
        }
    }

    #[test]
    fn typed_read_of_name_is_not_numeric() {
        let fs = fs_with_two();
        assert!(matches!(
            fs.read_raw(
                "/sys/class/hwmon/hwmon0/name",
                SimTime::ZERO,
                Privilege::User
            ),
            Err(HwmonError::NotNumeric(_))
        ));
    }

    #[test]
    fn typed_read_respects_mitigation() {
        let mut fs = fs_with_two();
        fs.restrict_reads_to_root("ina226_u79").unwrap();
        let h = fs.resolve("/sys/class/hwmon/hwmon1/curr1_input").unwrap();
        let t = SimTime::from_ms(40);
        assert!(matches!(
            fs.read_value(h, t, Privilege::User),
            Err(HwmonError::PermissionDenied(_))
        ));
        assert!(fs.read_value(h, t, Privilege::Root).is_ok());
        // update_interval stays world-readable under the mitigation.
        let ui = fs
            .resolve("/sys/class/hwmon/hwmon1/update_interval")
            .unwrap();
        assert!(fs.read_value(ui, t, Privilege::User).is_ok());
    }

    #[test]
    fn stale_handle_index_is_no_such_file() {
        let fs = fs_with_two();
        let h = SensorHandle::new(9, Attribute::Curr1Input);
        assert!(matches!(
            fs.read_value(h, SimTime::ZERO, Privilege::User),
            Err(HwmonError::NoSuchFile(_))
        ));
    }
}
