use std::collections::BTreeSet;

use zynq_soc::SimTime;

use crate::{HwmonDevice, HwmonError, Result};

/// The privilege level of the process performing a sysfs access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Privilege {
    /// An unprivileged user process — the AmpereBleed attacker.
    User,
    /// Root.
    Root,
}

/// The simulated `/sys/class/hwmon` tree.
///
/// Devices register in order and appear as `hwmon0`, `hwmon1`, ....
/// Reads carry an explicit simulation timestamp (there is no hidden global
/// clock); each read triggers the device's lazy conversion clocking.
///
/// # Examples
///
/// See the [crate-level documentation](crate) for a complete example.
#[derive(Debug, Default)]
pub struct HwmonFs {
    devices: Vec<HwmonDevice>,
    /// Mitigation mode (Section V): designators whose attribute reads
    /// require root.
    root_only_reads: BTreeSet<String>,
}

impl HwmonFs {
    /// Creates an empty tree.
    pub fn new() -> Self {
        HwmonFs::default()
    }

    /// Registers a device; returns its index (`hwmon{index}`).
    pub fn register(&mut self, device: HwmonDevice) -> usize {
        self.devices.push(device);
        self.devices.len() - 1
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the tree has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The device at `index`, if registered.
    pub fn device(&self, index: usize) -> Option<&HwmonDevice> {
        self.devices.get(index)
    }

    /// Finds a device index by its `name` attribute.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.devices.iter().position(|d| d.name() == name)
    }

    /// Lists all attribute paths, as `ls /sys/class/hwmon/hwmon*/` would.
    pub fn list(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (i, _) in self.devices.iter().enumerate() {
            for attr in [
                "name",
                "curr1_input",
                "in0_input",
                "in1_input",
                "power1_input",
                "update_interval",
            ] {
                out.push(format!("/sys/class/hwmon/hwmon{i}/{attr}"));
            }
        }
        out
    }

    /// Enables the Section V mitigation for a device: its measurement
    /// attributes become readable by root only.
    ///
    /// # Errors
    ///
    /// Returns [`HwmonError::NoSuchFile`] if no device has that name.
    pub fn restrict_reads_to_root(&mut self, name: &str) -> Result<()> {
        if self.index_of(name).is_none() {
            return Err(HwmonError::NoSuchFile(format!("device {name}")));
        }
        self.root_only_reads.insert(name.to_owned());
        Ok(())
    }

    /// Lifts the read restriction from a device.
    pub fn unrestrict_reads(&mut self, name: &str) {
        self.root_only_reads.remove(name);
    }

    fn parse(path: &str) -> Result<(usize, &str)> {
        let rest = path
            .strip_prefix("/sys/class/hwmon/hwmon")
            .ok_or_else(|| HwmonError::NoSuchFile(path.to_owned()))?;
        let slash = rest
            .find('/')
            .ok_or_else(|| HwmonError::NoSuchFile(path.to_owned()))?;
        let index: usize = rest[..slash]
            .parse()
            .map_err(|_| HwmonError::NoSuchFile(path.to_owned()))?;
        Ok((index, &rest[slash + 1..]))
    }

    /// Reads an attribute at simulation time `now`.
    ///
    /// # Errors
    ///
    /// * [`HwmonError::NoSuchFile`] for unknown paths.
    /// * [`HwmonError::PermissionDenied`] when the mitigation restricts
    ///   the device and the caller is not root.
    pub fn read(&self, path: &str, now: SimTime, privilege: Privilege) -> Result<String> {
        obs::counter!("hwmon.fs.reads").inc();
        let (index, attr) = Self::parse(path)?;
        let dev = self
            .devices
            .get(index)
            .ok_or_else(|| HwmonError::NoSuchFile(path.to_owned()))?;
        let restricted = self.root_only_reads.contains(dev.name());
        let measurement = matches!(
            attr,
            "curr1_input" | "in0_input" | "in1_input" | "power1_input"
        );
        if restricted && measurement && privilege != Privilege::Root {
            obs::counter!("hwmon.fs.reads_denied").inc();
            obs::warn!(
                "hwmon.fs",
                sim = now.as_nanos(),
                "unprivileged read denied by mitigation";
                "path" => path
            );
            return Err(HwmonError::PermissionDenied(path.to_owned()));
        }
        obs::trace!(
            "hwmon.fs",
            sim = now.as_nanos(),
            "sysfs read";
            "path" => path
        );
        match attr {
            "name" => Ok(format!("{}\n", dev.name())),
            "curr1_input" => Ok(format!("{}\n", dev.curr1_input(now))),
            "in0_input" => Ok(format!("{}\n", dev.in0_input(now))),
            "in1_input" => Ok(format!("{}\n", dev.in1_input(now))),
            "power1_input" => Ok(format!("{}\n", dev.power1_input(now))),
            "update_interval" => Ok(format!("{}\n", dev.update_interval_ms())),
            _ => Err(HwmonError::NoSuchFile(path.to_owned())),
        }
    }

    /// Writes an attribute. Only `update_interval` is writable, and only
    /// by root (Section III-C: "modifying it requires root privileges").
    ///
    /// # Errors
    ///
    /// * [`HwmonError::NoSuchFile`] for unknown paths.
    /// * [`HwmonError::PermissionDenied`] for non-root writers.
    /// * [`HwmonError::ReadOnly`] for measurement attributes.
    /// * [`HwmonError::InvalidInput`] for unparseable values.
    pub fn write(&self, path: &str, value: &str, privilege: Privilege) -> Result<()> {
        obs::counter!("hwmon.fs.writes").inc();
        let (index, attr) = Self::parse(path)?;
        let dev = self
            .devices
            .get(index)
            .ok_or_else(|| HwmonError::NoSuchFile(path.to_owned()))?;
        match attr {
            "update_interval" => {
                if privilege != Privilege::Root {
                    return Err(HwmonError::PermissionDenied(path.to_owned()));
                }
                let ms: u64 = value
                    .trim()
                    .parse()
                    .map_err(|_| HwmonError::InvalidInput(value.to_owned()))?;
                dev.set_update_interval_ms(ms);
                Ok(())
            }
            "name" | "curr1_input" | "in0_input" | "in1_input" | "power1_input" => {
                Err(HwmonError::ReadOnly(path.to_owned()))
            }
            _ => Err(HwmonError::NoSuchFile(path.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RailProbe;
    use std::sync::Arc;

    fn fs_with_two() -> HwmonFs {
        let probe: Arc<dyn RailProbe> = Arc::new(|_t: SimTime| (1.0, 0.85));
        let mut fs = HwmonFs::new();
        fs.register(HwmonDevice::new(
            "ina226_u76",
            0.002,
            0.0005,
            Arc::clone(&probe),
            1,
        ));
        fs.register(HwmonDevice::new("ina226_u79", 0.0005, 0.0005, probe, 2));
        fs
    }

    #[test]
    fn registration_and_lookup() {
        let fs = fs_with_two();
        assert_eq!(fs.len(), 2);
        assert!(!fs.is_empty());
        assert_eq!(fs.index_of("ina226_u79"), Some(1));
        assert_eq!(fs.index_of("nope"), None);
        assert!(fs.device(0).is_some());
        assert!(fs.device(7).is_none());
    }

    #[test]
    fn list_enumerates_all_attributes() {
        let fs = fs_with_two();
        let paths = fs.list();
        assert_eq!(paths.len(), 12);
        assert!(paths.contains(&"/sys/class/hwmon/hwmon0/in0_input".to_owned()));
        assert!(paths.contains(&"/sys/class/hwmon/hwmon1/curr1_input".to_owned()));
    }

    #[test]
    fn read_returns_newline_terminated_integers() {
        let fs = fs_with_two();
        let t = SimTime::from_ms(40);
        let s = fs
            .read("/sys/class/hwmon/hwmon0/curr1_input", t, Privilege::User)
            .unwrap();
        assert!(s.ends_with('\n'));
        let ma: i64 = s.trim().parse().unwrap();
        assert!((ma - 1000).abs() < 30, "{ma}");
        let name = fs
            .read("/sys/class/hwmon/hwmon1/name", t, Privilege::User)
            .unwrap();
        assert_eq!(name, "ina226_u79\n");
    }

    #[test]
    fn unknown_paths_rejected() {
        let fs = fs_with_two();
        let t = SimTime::ZERO;
        for path in [
            "/sys/class/hwmon/hwmon9/curr1_input",
            "/sys/class/hwmon/hwmon0/bogus",
            "/proc/cpuinfo",
            "/sys/class/hwmon/hwmonX/name",
        ] {
            assert!(matches!(
                fs.read(path, t, Privilege::User),
                Err(HwmonError::NoSuchFile(_))
            ));
        }
    }

    #[test]
    fn update_interval_is_root_only() {
        let fs = fs_with_two();
        let path = "/sys/class/hwmon/hwmon0/update_interval";
        assert!(matches!(
            fs.write(path, "2", Privilege::User),
            Err(HwmonError::PermissionDenied(_))
        ));
        fs.write(path, "2", Privilege::Root).unwrap();
        let s = fs.read(path, SimTime::ZERO, Privilege::User).unwrap();
        assert_eq!(s.trim(), "2");
    }

    #[test]
    fn measurement_attributes_read_only() {
        let fs = fs_with_two();
        assert!(matches!(
            fs.write("/sys/class/hwmon/hwmon0/curr1_input", "0", Privilege::Root),
            Err(HwmonError::ReadOnly(_))
        ));
    }

    #[test]
    fn invalid_interval_rejected() {
        let fs = fs_with_two();
        assert!(matches!(
            fs.write(
                "/sys/class/hwmon/hwmon0/update_interval",
                "soon",
                Privilege::Root
            ),
            Err(HwmonError::InvalidInput(_))
        ));
    }

    #[test]
    fn mitigation_blocks_unprivileged_reads() {
        let mut fs = fs_with_two();
        fs.restrict_reads_to_root("ina226_u79").unwrap();
        let t = SimTime::from_ms(40);
        let path = "/sys/class/hwmon/hwmon1/curr1_input";
        assert!(matches!(
            fs.read(path, t, Privilege::User),
            Err(HwmonError::PermissionDenied(_))
        ));
        // Root still reads; `name` stays world-readable; the other device
        // is unaffected.
        assert!(fs.read(path, t, Privilege::Root).is_ok());
        assert!(fs
            .read("/sys/class/hwmon/hwmon1/name", t, Privilege::User)
            .is_ok());
        assert!(fs
            .read("/sys/class/hwmon/hwmon0/curr1_input", t, Privilege::User)
            .is_ok());
        // And it can be lifted again.
        fs.unrestrict_reads("ina226_u79");
        assert!(fs.read(path, t, Privilege::User).is_ok());
    }

    #[test]
    fn restricting_unknown_device_fails() {
        let mut fs = fs_with_two();
        assert!(fs.restrict_reads_to_root("ina226_u99").is_err());
    }
}
