//! Simulated Linux `hwmon` sysfs interface backed by INA226 sensor models.
//!
//! AmpereBleed's entire attacker interface is this subsystem: an
//! unprivileged process reads
//! `/sys/class/hwmon/hwmon[0-*]/curr1_input` (Section III-C) and obtains
//! milliamp-resolution current measurements of the FPGA, CPU and DRAM
//! rails. This crate reproduces the interface's semantics:
//!
//! * **Paths and units** — `curr1_input` (mA), `in1_input` (bus mV),
//!   `power1_input` (µW), `name`, and `update_interval` (ms), matching the
//!   Linux ina226 driver.
//! * **Value-hold timing** — the sensor converts on its own 2-35 ms update
//!   clock (default 35 ms); reads between conversions return the latched
//!   value, so sampling at 1 kHz (as the RSA attack does) sees repeated
//!   values between updates.
//! * **Privilege model** — reads are unprivileged; writing
//!   `update_interval` requires root (which is why the paper's attacker
//!   stays at the 35 ms default). The mitigation of Section V
//!   (root-only read access) is available via
//!   [`HwmonFs::restrict_reads_to_root`].
//!
//! # Examples
//!
//! ```
//! use hwmon_sim::{HwmonDevice, HwmonFs, Privilege, RailProbe};
//! use zynq_soc::SimTime;
//!
//! struct FixedRail;
//! impl RailProbe for FixedRail {
//!     fn operating_point(&self, _t: SimTime) -> (f64, f64) {
//!         (1.5, 0.85) // 1.5 A at 0.85 V
//!     }
//! }
//!
//! let mut fs = HwmonFs::new();
//! fs.register(HwmonDevice::new(
//!     "ina226_u79",
//!     0.0005,
//!     0.0005,
//!     std::sync::Arc::new(FixedRail),
//!     1,
//! ));
//! let t = SimTime::from_ms(40);
//! let ma: i64 = fs
//!     .read("/sys/class/hwmon/hwmon0/curr1_input", t, Privilege::User)?
//!     .trim()
//!     .parse()
//!     .unwrap();
//! assert!((ma - 1500).abs() < 20);
//! # Ok::<(), hwmon_sim::HwmonError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod error;
mod fs;

pub use device::{HwmonDevice, RailProbe, SensorDefense};
pub use error::HwmonError;
pub use fs::{Attribute, HwmonFs, Privilege, SensorHandle};
pub use ina226::Readouts;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, HwmonError>;
