use sim_rt::lockorder::TrackedMutex;
use std::sync::Arc;

use ina226::{Config, Ina226, Readouts};
use zynq_soc::SimTime;

/// Source of the true electrical operating point of a monitored rail.
///
/// The platform wires each hwmon device to the rail its INA226 sits on;
/// `operating_point` returns `(current_amps, bus_volts)` at a simulation
/// instant. Implementations must be cheap — the sensor calls this once per
/// averaging step of every conversion.
pub trait RailProbe: Send + Sync {
    /// True rail current (A) and bus voltage (V) at time `t`.
    fn operating_point(&self, t: SimTime) -> (f64, f64);

    /// The operating points of every instant in `times` — the batched
    /// form a conversion uses to evaluate all of its averaging steps in
    /// one call, letting implementations hoist per-call work (locks,
    /// table lookups) out of the step loop.
    ///
    /// Implementations must return exactly what mapping
    /// [`operating_point`](Self::operating_point) over `times` would —
    /// bit-for-bit, element for element.
    fn operating_points(&self, times: &[SimTime]) -> Vec<(f64, f64)> {
        times.iter().map(|&t| self.operating_point(t)).collect()
    }
}

impl<F> RailProbe for F
where
    F: Fn(SimTime) -> (f64, f64) + Send + Sync,
{
    fn operating_point(&self, t: SimTime) -> (f64, f64) {
        self(t)
    }
}

/// One `hwmonN` device: an INA226 plus the Linux driver's conversion
/// clocking and unit formatting.
///
/// The device latches a new conversion at every multiple of its update
/// interval; reads between updates return the held value, exactly like the
/// real driver's cached register reads.
pub struct HwmonDevice {
    name: String,
    sensor: TrackedMutex<Ina226>,
    rail: Arc<dyn RailProbe>,
    state: TrackedMutex<ClockState>,
}

impl std::fmt::Debug for HwmonDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HwmonDevice")
            .field("name", &self.name)
            .field("state", &*self.state.lock())
            .finish_non_exhaustive()
    }
}

#[derive(Debug, Clone, Copy)]
struct ClockState {
    update_interval_ms: u64,
    /// The update interval in nanoseconds, precomputed so the per-read
    /// boundary schedule is two integer ops with no unit conversion.
    interval_ns: u64,
    /// Update boundary of the most recent conversion.
    last_boundary: Option<SimTime>,
    /// Integer hwmon readouts latched at `last_boundary`. Value-hold reads
    /// are served from this copy under the (cheap, uncontended) clock lock
    /// without ever touching the sensor mutex.
    latched: Readouts,
}

/// Default hwmon update interval (Section III-C: "the default updating
/// interval is set to 35 ms").
pub const DEFAULT_UPDATE_INTERVAL_MS: u64 = 35;

/// Smallest / largest configurable update interval (Section III-C: "a
/// configurable updating interval between 2 and 35 ms"; the driver accepts
/// larger values too, we cap at 1 s for sanity).
pub const MIN_UPDATE_INTERVAL_MS: u64 = 2;

impl HwmonDevice {
    /// Creates a device named `name` monitoring `rail` through a shunt of
    /// `shunt_ohm` with the given current LSB.
    ///
    /// # Panics
    ///
    /// Panics on invalid shunt/LSB values (see [`Ina226::new`]).
    pub fn new(
        name: impl Into<String>,
        shunt_ohm: f64,
        current_lsb_a: f64,
        rail: Arc<dyn RailProbe>,
        seed: u64,
    ) -> Self {
        let mut sensor = Ina226::new(shunt_ohm, current_lsb_a, seed);
        sensor.set_config(Config::for_update_interval_ms(DEFAULT_UPDATE_INTERVAL_MS));
        HwmonDevice {
            name: name.into(),
            sensor: TrackedMutex::new("hwmon.sensor", sensor),
            rail,
            state: TrackedMutex::new(
                "hwmon.clock",
                ClockState {
                    update_interval_ms: DEFAULT_UPDATE_INTERVAL_MS,
                    interval_ns: SimTime::from_ms(DEFAULT_UPDATE_INTERVAL_MS).as_nanos(),
                    last_boundary: None,
                    latched: Readouts::default(),
                },
            ),
        }
    }

    /// Device name (the `name` attribute, e.g. "ina226_u79").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current update interval in milliseconds.
    pub fn update_interval_ms(&self) -> u64 {
        self.state.lock().update_interval_ms
    }

    /// Sets the update interval (the root-only `update_interval` write).
    /// Values are clamped to the supported range; the sensor's averaging
    /// configuration is re-derived like the Linux driver does.
    pub fn set_update_interval_ms(&self, ms: u64) {
        let ms = ms.clamp(MIN_UPDATE_INTERVAL_MS, 1_000);
        let mut state = self.state.lock();
        state.update_interval_ms = ms;
        state.interval_ns = SimTime::from_ms(ms).as_nanos();
        state.last_boundary = None;
        self.sensor
            .lock()
            .set_config(Config::for_update_interval_ms(ms));
    }

    /// Ensures the latched readouts reflect the conversion whose window
    /// ends at the last update boundary before `now`, and returns them.
    ///
    /// The value-hold path (a read inside the window of the latest
    /// conversion) is a single short clock-lock hold: boundary arithmetic
    /// on the precomputed interval, one comparison, and a copy of the
    /// latched integers — the sensor mutex is never taken. Only a read
    /// that crosses into a new window pays for a conversion.
    fn refresh(&self, now: SimTime) -> Readouts {
        let mut state = self.state.lock();
        let boundary = SimTime::from_nanos(now.as_nanos() / state.interval_ns * state.interval_ns);
        if state.last_boundary == Some(boundary) {
            // The driver's cached-register path: the read waits on no new
            // conversion and returns the held value.
            obs::counter!("hwmon.reads.held").inc();
            obs::counter!("sampler.reads.held_fastpath").inc();
            return state.latched;
        }
        obs::counter!("hwmon.reads.fresh").inc();
        let mut sensor = self.sensor.lock();
        let n = sensor.config().avg.samples() as u64;
        let cycle = SimTime::from_us(sensor.config().cycle_micros());
        let start = boundary.saturating_sub(cycle);
        let step_ns = cycle.as_nanos().max(1) / n.max(1);
        let times: Vec<SimTime> = (0..n)
            .map(|k| start + SimTime::from_nanos(k * step_ns))
            .collect();
        sensor.convert(self.rail.operating_points(&times));
        state.latched = sensor.readouts();
        state.last_boundary = Some(boundary);
        state.latched
    }

    /// `curr1_input`: latched current in mA (driver rounds to mA — the
    /// paper's "resolution of +/-1 mA").
    pub fn curr1_input(&self, now: SimTime) -> i64 {
        self.refresh(now).curr1_ma
    }

    /// `in0_input`: latched shunt voltage in mV (2.5 µV register LSB, so
    /// typically a small single-digit value — the Linux driver rounds to
    /// mV here too).
    pub fn in0_input(&self, now: SimTime) -> i64 {
        self.refresh(now).in0_mv
    }

    /// `in1_input`: latched bus voltage in mV (1.25 mV register LSB).
    pub fn in1_input(&self, now: SimTime) -> i64 {
        self.refresh(now).in1_mv
    }

    /// `power1_input`: latched power in µW (25 x current LSB register).
    pub fn power1_input(&self, now: SimTime) -> i64 {
        self.refresh(now).power1_uw
    }

    /// All four measurement attributes of the window containing `now`, from
    /// a single conversion — the batched read used by
    /// three-channel captures. On real hardware all hwmon attributes expose
    /// registers latched by the *same* conversion, so one conversion per
    /// window is also the faithful behaviour.
    pub fn readouts(&self, now: SimTime) -> Readouts {
        self.refresh(now)
    }

    /// Direct access to the sensor model (tests and calibration).
    pub fn with_sensor<R>(&self, f: impl FnOnce(&mut Ina226) -> R) -> R {
        f(&mut self.sensor.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Ramp;
    impl RailProbe for Ramp {
        fn operating_point(&self, t: SimTime) -> (f64, f64) {
            // 1 A + 0.1 A per second.
            (1.0 + 0.1 * t.as_secs_f64(), 0.85)
        }
    }

    fn quiet_device(rail: Arc<dyn RailProbe>) -> HwmonDevice {
        let dev = HwmonDevice::new("ina226_test", 0.0005, 0.0005, rail, 0);
        dev.with_sensor(|s| s.set_adc_noise(0.0, 0.0));
        dev
    }

    #[test]
    fn units_are_hwmon_units() {
        let dev = quiet_device(Arc::new(|_t: SimTime| (2.0, 0.85)));
        let t = SimTime::from_ms(40);
        assert!((dev.curr1_input(t) - 2_000).abs() <= 2);
        assert!((dev.in1_input(t) - 850).abs() <= 1);
        let uw = dev.power1_input(t);
        assert!((uw - 1_700_000).abs() < 30_000, "{uw} uW");
    }

    #[test]
    fn value_holds_between_updates() {
        let dev = quiet_device(Arc::new(Ramp));
        // Two reads within the same 35 ms window latch the same value...
        let a = dev.curr1_input(SimTime::from_ms(36));
        let b = dev.curr1_input(SimTime::from_ms(69));
        assert_eq!(a, b);
        // ...a read after the boundary sees a fresh conversion.
        let c = dev.curr1_input(SimTime::from_secs(10));
        assert!(c > a);
    }

    #[test]
    fn faster_interval_updates_more_often() {
        let dev = quiet_device(Arc::new(Ramp));
        dev.set_update_interval_ms(2);
        assert_eq!(dev.update_interval_ms(), 2);
        let a = dev.curr1_input(SimTime::from_ms(10));
        let b = dev.curr1_input(SimTime::from_ms(12));
        // At 0.1 A/s the 2 ms step is 0.2 mA; conversions happen but may
        // quantize to the same mA. Advance far enough to see a step.
        let c = dev.curr1_input(SimTime::from_ms(200));
        assert!(c > a);
        let _ = b;
    }

    #[test]
    fn interval_is_clamped() {
        let dev = quiet_device(Arc::new(Ramp));
        dev.set_update_interval_ms(0);
        assert_eq!(dev.update_interval_ms(), MIN_UPDATE_INTERVAL_MS);
        dev.set_update_interval_ms(100_000);
        assert_eq!(dev.update_interval_ms(), 1_000);
    }

    #[test]
    fn conversion_count_tracks_boundaries() {
        let dev = quiet_device(Arc::new(Ramp));
        for ms in [36u64, 37, 38, 71, 106] {
            let _ = dev.curr1_input(SimTime::from_ms(ms));
        }
        // Boundaries hit: 35, (35), (35), 70, 105 -> 3 conversions.
        assert_eq!(dev.with_sensor(|s| s.conversions()), 3);
    }

    #[test]
    fn averaging_window_spans_the_cycle() {
        // A rail that steps mid-window: the conversion must average, not
        // sample a single point.
        let probe = |t: SimTime| {
            if t.as_millis() < 18 {
                (1.0, 0.85)
            } else {
                (3.0, 0.85)
            }
        };
        let dev = quiet_device(Arc::new(probe));
        let ma = dev.curr1_input(SimTime::from_ms(35));
        assert!(
            ma > 1_100 && ma < 2_900,
            "averaged value expected between the two levels, got {ma}"
        );
    }

    #[test]
    fn name_attribute() {
        let dev = quiet_device(Arc::new(Ramp));
        assert_eq!(dev.name(), "ina226_test");
    }

    mod properties {
        use super::*;

        sim_rt::prop_check! {
            /// Value-hold invariant: any two reads whose timestamps fall in
            /// the same update window return the same latched value,
            /// regardless of read order or spacing.
            fn reads_within_a_window_are_identical(
                window in 1u64..500,
                a_off in 0u64..35_000,
                b_off in 0u64..35_000
            ) {
                let dev = quiet_device(Arc::new(Ramp));
                let base = window * 35_000; // us
                let ta = SimTime::from_us(base + a_off);
                let tb = SimTime::from_us(base + b_off);
                assert_eq!(dev.curr1_input(ta), dev.curr1_input(tb));
            }

            /// Monotone source, monotone windows: later windows never read
            /// lower on a strictly increasing rail.
            fn later_windows_read_higher_on_a_ramp(w1 in 1u64..200, gap in 5u64..200) {
                let dev = quiet_device(Arc::new(Ramp));
                let t1 = SimTime::from_ms(w1 * 35 + 1);
                let t2 = SimTime::from_ms((w1 + gap) * 35 + 1);
                let a = dev.curr1_input(t1);
                let b = dev.curr1_input(t2);
                assert!(b >= a, "{a} then {b}");
            }
        }
    }
}
