use sim_rt::lockorder::TrackedMutex;
use std::sync::Arc;

use ina226::{Config, Ina226, Readouts};
use zynq_soc::SimTime;

/// Source of the true electrical operating point of a monitored rail.
///
/// The platform wires each hwmon device to the rail its INA226 sits on;
/// `operating_point` returns `(current_amps, bus_volts)` at a simulation
/// instant. Implementations must be cheap — the sensor calls this once per
/// averaging step of every conversion.
pub trait RailProbe: Send + Sync {
    /// True rail current (A) and bus voltage (V) at time `t`.
    fn operating_point(&self, t: SimTime) -> (f64, f64);

    /// The operating points of every instant in `times` — the batched
    /// form a conversion uses to evaluate all of its averaging steps in
    /// one call, letting implementations hoist per-call work (locks,
    /// table lookups) out of the step loop.
    ///
    /// Implementations must return exactly what mapping
    /// [`operating_point`](Self::operating_point) over `times` would —
    /// bit-for-bit, element for element.
    fn operating_points(&self, times: &[SimTime]) -> Vec<(f64, f64)> {
        times.iter().map(|&t| self.operating_point(t)).collect()
    }
}

impl<F> RailProbe for F
where
    F: Fn(SimTime) -> (f64, f64) + Send + Sync,
{
    fn operating_point(&self, t: SimTime) -> (f64, f64) {
        self(t)
    }
}

/// A countermeasure installed on a device's sensing path.
///
/// Defense layers (see the `sim-defend` crate) hook the three stages of a
/// conversion: *when* the update boundary falls, the *analog* operating
/// points the sensor averages, and the *digital* readouts it latches. Every
/// hook has an identity default, must be deterministic (a pure function of
/// its arguments plus any state the implementation seeds itself), and sees
/// the conversion's window index so stateless implementations can derive
/// per-window randomness.
///
/// A device without a defense installed pays only an `Option` check on the
/// value-hold fast path.
pub trait SensorDefense: Send + Sync {
    /// Shifts the update boundary of window `window` forward by up to one
    /// interval (returned nanoseconds are clamped to `interval_ns - 1`),
    /// dithering the driver's otherwise perfectly periodic update clock.
    fn boundary_offset_ns(&self, _device: &str, _window: u64, _interval_ns: u64) -> u64 {
        0
    }

    /// Perturbs the `(current_amps, bus_volts)` averaging steps of a
    /// conversion before the sensor sees them — analog-domain injection.
    fn perturb_steps(&self, _device: &str, _window: u64, _steps: &mut [(f64, f64)]) {}

    /// Rewrites the integer readouts latched by a conversion — digital
    /// post-processing (quantization widening, throttling). Value-hold
    /// reads serve the transformed copy.
    fn transform(&self, _device: &str, _window: u64, readouts: Readouts) -> Readouts {
        readouts
    }
}

/// One `hwmonN` device: an INA226 plus the Linux driver's conversion
/// clocking and unit formatting.
///
/// The device latches a new conversion at every multiple of its update
/// interval; reads between updates return the held value, exactly like the
/// real driver's cached register reads.
pub struct HwmonDevice {
    name: String,
    sensor: TrackedMutex<Ina226>,
    rail: Arc<dyn RailProbe>,
    state: TrackedMutex<ClockState>,
    /// Installed countermeasure, if any. Plain data set through `&mut`
    /// (no lock): defenses are installed while the platform is being
    /// hardened, before any concurrent sampling.
    defense: Option<Arc<dyn SensorDefense>>,
}

impl std::fmt::Debug for HwmonDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HwmonDevice")
            .field("name", &self.name)
            .field("state", &*self.state.lock())
            .finish_non_exhaustive()
    }
}

#[derive(Debug, Clone, Copy)]
struct ClockState {
    update_interval_ms: u64,
    /// The update interval in nanoseconds, precomputed so the per-read
    /// boundary schedule is two integer ops with no unit conversion.
    interval_ns: u64,
    /// Update boundary of the most recent conversion.
    last_boundary: Option<SimTime>,
    /// Integer hwmon readouts latched at `last_boundary`. Value-hold reads
    /// are served from this copy under the (cheap, uncontended) clock lock
    /// without ever touching the sensor mutex.
    latched: Readouts,
}

/// Default hwmon update interval (Section III-C: "the default updating
/// interval is set to 35 ms").
pub const DEFAULT_UPDATE_INTERVAL_MS: u64 = 35;

/// Smallest / largest configurable update interval (Section III-C: "a
/// configurable updating interval between 2 and 35 ms"; the driver accepts
/// larger values too, we cap at 1 s for sanity).
pub const MIN_UPDATE_INTERVAL_MS: u64 = 2;

impl HwmonDevice {
    /// Creates a device named `name` monitoring `rail` through a shunt of
    /// `shunt_ohm` with the given current LSB.
    ///
    /// # Panics
    ///
    /// Panics on invalid shunt/LSB values (see [`Ina226::new`]).
    pub fn new(
        name: impl Into<String>,
        shunt_ohm: f64,
        current_lsb_a: f64,
        rail: Arc<dyn RailProbe>,
        seed: u64,
    ) -> Self {
        let mut sensor = Ina226::new(shunt_ohm, current_lsb_a, seed);
        sensor.set_config(Config::for_update_interval_ms(DEFAULT_UPDATE_INTERVAL_MS));
        HwmonDevice {
            name: name.into(),
            sensor: TrackedMutex::new("hwmon.sensor", sensor),
            rail,
            state: TrackedMutex::new(
                "hwmon.clock",
                ClockState {
                    update_interval_ms: DEFAULT_UPDATE_INTERVAL_MS,
                    interval_ns: SimTime::from_ms(DEFAULT_UPDATE_INTERVAL_MS).as_nanos(),
                    last_boundary: None,
                    latched: Readouts::default(),
                },
            ),
            defense: None,
        }
    }

    /// Installs (or with `None` removes) a [`SensorDefense`] on this
    /// device's sensing path and invalidates the latched conversion so the
    /// next read goes through the new hooks.
    pub fn set_defense(&mut self, defense: Option<Arc<dyn SensorDefense>>) {
        self.defense = defense;
        self.state.lock().last_boundary = None;
    }

    /// Device name (the `name` attribute, e.g. "ina226_u79").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current update interval in milliseconds.
    pub fn update_interval_ms(&self) -> u64 {
        self.state.lock().update_interval_ms
    }

    /// Sets the update interval (the root-only `update_interval` write).
    /// Values are clamped to the supported range; the sensor's averaging
    /// configuration is re-derived like the Linux driver does.
    pub fn set_update_interval_ms(&self, ms: u64) {
        let ms = ms.clamp(MIN_UPDATE_INTERVAL_MS, 1_000);
        let mut state = self.state.lock();
        state.update_interval_ms = ms;
        state.interval_ns = SimTime::from_ms(ms).as_nanos();
        state.last_boundary = None;
        self.sensor
            .lock()
            .set_config(Config::for_update_interval_ms(ms));
    }

    /// Ensures the latched readouts reflect the conversion whose window
    /// ends at the last update boundary before `now`, and returns them.
    ///
    /// The value-hold path (a read inside the window of the latest
    /// conversion) is a single short clock-lock hold: boundary arithmetic
    /// on the precomputed interval, one comparison, and a copy of the
    /// latched integers — the sensor mutex is never taken. Only a read
    /// that crosses into a new window pays for a conversion.
    fn refresh(&self, now: SimTime) -> Readouts {
        let mut state = self.state.lock();
        let interval = state.interval_ns;
        let boundary = match &self.defense {
            None => SimTime::from_nanos(now.as_nanos() / interval * interval),
            Some(d) => {
                // Jittered update clock: the boundary of window `w` moves
                // forward by the defense's per-window offset. A read that
                // lands before its own window's (shifted) boundary still
                // sees the previous window's conversion.
                let shifted = |w: u64| {
                    let off = d
                        .boundary_offset_ns(&self.name, w, interval)
                        .min(interval.saturating_sub(1));
                    w * interval + off
                };
                let w = now.as_nanos() / interval;
                let candidate = shifted(w);
                if now.as_nanos() >= candidate {
                    SimTime::from_nanos(candidate)
                } else if w == 0 {
                    SimTime::ZERO
                } else {
                    SimTime::from_nanos(shifted(w - 1))
                }
            }
        };
        if state.last_boundary == Some(boundary) {
            // The driver's cached-register path: the read waits on no new
            // conversion and returns the held value.
            obs::counter!("hwmon.reads.held").inc();
            obs::counter!("sampler.reads.held_fastpath").inc();
            return state.latched;
        }
        obs::counter!("hwmon.reads.fresh").inc();
        let mut sensor = self.sensor.lock();
        let n = sensor.config().avg.samples() as u64;
        let cycle = SimTime::from_us(sensor.config().cycle_micros());
        let start = boundary.saturating_sub(cycle);
        let step_ns = cycle.as_nanos().max(1) / n.max(1);
        let times: Vec<SimTime> = (0..n)
            .map(|k| start + SimTime::from_nanos(k * step_ns))
            .collect();
        let mut points = self.rail.operating_points(&times);
        if let Some(d) = &self.defense {
            let window = boundary.as_nanos() / interval;
            d.perturb_steps(&self.name, window, &mut points);
            sensor.convert(points);
            state.latched = d.transform(&self.name, window, sensor.readouts());
        } else {
            sensor.convert(points);
            state.latched = sensor.readouts();
        }
        state.last_boundary = Some(boundary);
        state.latched
    }

    /// `curr1_input`: latched current in mA (driver rounds to mA — the
    /// paper's "resolution of +/-1 mA").
    pub fn curr1_input(&self, now: SimTime) -> i64 {
        self.refresh(now).curr1_ma
    }

    /// `in0_input`: latched shunt voltage in mV (2.5 µV register LSB, so
    /// typically a small single-digit value — the Linux driver rounds to
    /// mV here too).
    pub fn in0_input(&self, now: SimTime) -> i64 {
        self.refresh(now).in0_mv
    }

    /// `in1_input`: latched bus voltage in mV (1.25 mV register LSB).
    pub fn in1_input(&self, now: SimTime) -> i64 {
        self.refresh(now).in1_mv
    }

    /// `power1_input`: latched power in µW (25 x current LSB register).
    pub fn power1_input(&self, now: SimTime) -> i64 {
        self.refresh(now).power1_uw
    }

    /// All four measurement attributes of the window containing `now`, from
    /// a single conversion — the batched read used by
    /// three-channel captures. On real hardware all hwmon attributes expose
    /// registers latched by the *same* conversion, so one conversion per
    /// window is also the faithful behaviour.
    pub fn readouts(&self, now: SimTime) -> Readouts {
        self.refresh(now)
    }

    /// Direct access to the sensor model (tests and calibration).
    pub fn with_sensor<R>(&self, f: impl FnOnce(&mut Ina226) -> R) -> R {
        f(&mut self.sensor.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Ramp;
    impl RailProbe for Ramp {
        fn operating_point(&self, t: SimTime) -> (f64, f64) {
            // 1 A + 0.1 A per second.
            (1.0 + 0.1 * t.as_secs_f64(), 0.85)
        }
    }

    fn quiet_device(rail: Arc<dyn RailProbe>) -> HwmonDevice {
        let dev = HwmonDevice::new("ina226_test", 0.0005, 0.0005, rail, 0);
        dev.with_sensor(|s| s.set_adc_noise(0.0, 0.0));
        dev
    }

    #[test]
    fn units_are_hwmon_units() {
        let dev = quiet_device(Arc::new(|_t: SimTime| (2.0, 0.85)));
        let t = SimTime::from_ms(40);
        assert!((dev.curr1_input(t) - 2_000).abs() <= 2);
        assert!((dev.in1_input(t) - 850).abs() <= 1);
        let uw = dev.power1_input(t);
        assert!((uw - 1_700_000).abs() < 30_000, "{uw} uW");
    }

    #[test]
    fn value_holds_between_updates() {
        let dev = quiet_device(Arc::new(Ramp));
        // Two reads within the same 35 ms window latch the same value...
        let a = dev.curr1_input(SimTime::from_ms(36));
        let b = dev.curr1_input(SimTime::from_ms(69));
        assert_eq!(a, b);
        // ...a read after the boundary sees a fresh conversion.
        let c = dev.curr1_input(SimTime::from_secs(10));
        assert!(c > a);
    }

    #[test]
    fn faster_interval_updates_more_often() {
        let dev = quiet_device(Arc::new(Ramp));
        dev.set_update_interval_ms(2);
        assert_eq!(dev.update_interval_ms(), 2);
        let a = dev.curr1_input(SimTime::from_ms(10));
        let b = dev.curr1_input(SimTime::from_ms(12));
        // At 0.1 A/s the 2 ms step is 0.2 mA; conversions happen but may
        // quantize to the same mA. Advance far enough to see a step.
        let c = dev.curr1_input(SimTime::from_ms(200));
        assert!(c > a);
        let _ = b;
    }

    #[test]
    fn interval_is_clamped() {
        let dev = quiet_device(Arc::new(Ramp));
        dev.set_update_interval_ms(0);
        assert_eq!(dev.update_interval_ms(), MIN_UPDATE_INTERVAL_MS);
        dev.set_update_interval_ms(100_000);
        assert_eq!(dev.update_interval_ms(), 1_000);
    }

    #[test]
    fn conversion_count_tracks_boundaries() {
        let dev = quiet_device(Arc::new(Ramp));
        for ms in [36u64, 37, 38, 71, 106] {
            let _ = dev.curr1_input(SimTime::from_ms(ms));
        }
        // Boundaries hit: 35, (35), (35), 70, 105 -> 3 conversions.
        assert_eq!(dev.with_sensor(|s| s.conversions()), 3);
    }

    #[test]
    fn averaging_window_spans_the_cycle() {
        // A rail that steps mid-window: the conversion must average, not
        // sample a single point.
        let probe = |t: SimTime| {
            if t.as_millis() < 18 {
                (1.0, 0.85)
            } else {
                (3.0, 0.85)
            }
        };
        let dev = quiet_device(Arc::new(probe));
        let ma = dev.curr1_input(SimTime::from_ms(35));
        assert!(
            ma > 1_100 && ma < 2_900,
            "averaged value expected between the two levels, got {ma}"
        );
    }

    #[test]
    fn name_attribute() {
        let dev = quiet_device(Arc::new(Ramp));
        assert_eq!(dev.name(), "ina226_test");
    }

    /// A defense that applies all three hooks with fixed effects.
    struct FixedDefense {
        offset_ns: u64,
        add_amps: f64,
        add_ma: i64,
    }
    impl SensorDefense for FixedDefense {
        fn boundary_offset_ns(&self, _d: &str, _w: u64, interval_ns: u64) -> u64 {
            self.offset_ns.min(interval_ns)
        }
        fn perturb_steps(&self, _d: &str, _w: u64, steps: &mut [(f64, f64)]) {
            for s in steps {
                s.0 += self.add_amps;
            }
        }
        fn transform(&self, _d: &str, _w: u64, mut r: Readouts) -> Readouts {
            r.curr1_ma += self.add_ma;
            r
        }
    }

    #[test]
    fn defense_hooks_apply_in_order() {
        let make = || quiet_device(Arc::new(|_t: SimTime| (1.0, 0.85)));
        let plain = make().curr1_input(SimTime::from_ms(40));
        let mut dev = make();
        dev.set_defense(Some(Arc::new(FixedDefense {
            offset_ns: 0,
            add_amps: 0.5,
            add_ma: 7,
        })));
        let defended = dev.curr1_input(SimTime::from_ms(40));
        // 0.5 A analog injection + 7 mA digital rewrite.
        assert_eq!(defended, plain + 500 + 7);
        // Removing the defense restores the undefended reading.
        dev.set_defense(None);
        assert_eq!(dev.curr1_input(SimTime::from_ms(40)), plain);
    }

    #[test]
    fn jittered_boundary_delays_the_update() {
        let mut dev = quiet_device(Arc::new(Ramp));
        // Shift every boundary 10 ms into its window.
        dev.set_defense(Some(Arc::new(FixedDefense {
            offset_ns: SimTime::from_ms(10).as_nanos(),
            add_amps: 0.0,
            add_ma: 0,
        })));
        // A read at 36 ms precedes window 1's shifted boundary (45 ms), so
        // it latches window 0's conversion; a read at 46 ms crosses it.
        let early = dev.curr1_input(SimTime::from_ms(36));
        let late = dev.curr1_input(SimTime::from_ms(46));
        assert!(late > early, "{early} then {late}");
        // Held-value reads inside the shifted window stay identical.
        assert_eq!(dev.curr1_input(SimTime::from_ms(47)), late);
        assert_eq!(dev.curr1_input(SimTime::from_ms(79)), late);
    }

    #[test]
    fn identity_defense_matches_undefended_readouts() {
        struct Identity;
        impl SensorDefense for Identity {}
        let make = || quiet_device(Arc::new(Ramp));
        let plain = make();
        let mut defended = make();
        defended.set_defense(Some(Arc::new(Identity)));
        for ms in [36u64, 50, 71, 200, 1_000] {
            let t = SimTime::from_ms(ms);
            assert_eq!(plain.readouts(t), defended.readouts(t));
        }
    }

    mod properties {
        use super::*;

        sim_rt::prop_check! {
            /// Value-hold invariant: any two reads whose timestamps fall in
            /// the same update window return the same latched value,
            /// regardless of read order or spacing.
            fn reads_within_a_window_are_identical(
                window in 1u64..500,
                a_off in 0u64..35_000,
                b_off in 0u64..35_000
            ) {
                let dev = quiet_device(Arc::new(Ramp));
                let base = window * 35_000; // us
                let ta = SimTime::from_us(base + a_off);
                let tb = SimTime::from_us(base + b_off);
                assert_eq!(dev.curr1_input(ta), dev.curr1_input(tb));
            }

            /// Monotone source, monotone windows: later windows never read
            /// lower on a strictly increasing rail.
            fn later_windows_read_higher_on_a_ramp(w1 in 1u64..200, gap in 5u64..200) {
                let dev = quiet_device(Arc::new(Ramp));
                let t1 = SimTime::from_ms(w1 * 35 + 1);
                let t2 = SimTime::from_ms((w1 + gap) * 35 + 1);
                let a = dev.curr1_input(t1);
                let b = dev.curr1_input(t2);
                assert!(b >= a, "{a} then {b}");
            }
        }
    }
}
