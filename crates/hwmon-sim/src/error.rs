use std::fmt;

/// Error type for simulated sysfs operations, mirroring the errno a real
/// hwmon node would return.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HwmonError {
    /// `ENOENT` — the path does not name a device or attribute.
    NoSuchFile(String),
    /// `EACCES` — the caller lacks the privilege for this operation.
    PermissionDenied(String),
    /// `EINVAL` — the written value could not be parsed or is out of range.
    InvalidInput(String),
    /// The attribute exists but is read-only (write to e.g. `curr1_input`).
    ReadOnly(String),
    /// The attribute exists but holds text, not a number (a typed read of
    /// `name`).
    NotNumeric(String),
}

impl fmt::Display for HwmonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwmonError::NoSuchFile(p) => write!(f, "no such file or directory: {p}"),
            HwmonError::PermissionDenied(p) => write!(f, "permission denied: {p}"),
            HwmonError::InvalidInput(what) => write!(f, "invalid input: {what}"),
            HwmonError::ReadOnly(p) => write!(f, "attribute is read-only: {p}"),
            HwmonError::NotNumeric(p) => write!(f, "attribute is not numeric: {p}"),
        }
    }
}

impl std::error::Error for HwmonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_path() {
        let e = HwmonError::NoSuchFile("/sys/class/hwmon/hwmon9/name".into());
        assert!(e.to_string().contains("hwmon9"));
        assert!(HwmonError::PermissionDenied("x".into())
            .to_string()
            .contains("permission denied"));
    }
}
