//! Structured events and the sinks that consume them.

use std::io::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

use sim_rt::ser::{Record, ToRecord, Value};

use crate::level::Level;
use crate::{clock, metrics};

/// One structured event: severity, dotted target, message, dual
/// timestamps, and an ordered field list.
///
/// Build events with the [`crate::event!`] macro (which performs the level
/// check first) or directly through this builder API when the call site
/// needs the simulation timestamp:
///
/// ```
/// use obs::{Event, Level};
///
/// Event::new(Level::Debug, "demo.sensor", "conversion latched")
///     .sim_time_ns(35_000_000)
///     .field("channel", "current")
///     .emit();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Severity.
    pub level: Level,
    /// Dotted origin, e.g. `core.sampler`.
    pub target: String,
    /// Human-readable message.
    pub message: String,
    /// Monotonic wall-clock nanoseconds since runtime start.
    pub wall_ns: u64,
    /// Simulation timestamp in nanoseconds, when the site knows it.
    pub sim_ns: Option<u64>,
    /// Ordered structured fields.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Starts an event stamped with the current wall clock.
    pub fn new(level: Level, target: impl Into<String>, message: impl Into<String>) -> Event {
        Event {
            level,
            target: target.into(),
            message: message.into(),
            wall_ns: clock::monotonic_ns(),
            sim_ns: None,
            fields: Vec::new(),
        }
    }

    /// Attaches the simulation timestamp (dual-clock events).
    #[must_use]
    pub fn sim_time_ns(mut self, ns: u64) -> Event {
        self.sim_ns = Some(ns);
        self
    }

    /// Appends a structured field.
    #[must_use]
    pub fn field(mut self, name: impl Into<String>, value: impl Into<Value>) -> Event {
        self.fields.push((name.into(), value.into()));
        self
    }

    /// Sends the event to the installed sinks (no level check — the
    /// macros check before building).
    pub fn emit(self) {
        crate::emit(self);
    }
}

impl ToRecord for Event {
    fn to_record(&self) -> Record {
        let mut r = Record::new();
        r.push("wall_ns", self.wall_ns)
            .push("sim_ns", self.sim_ns)
            .push("level", self.level.as_str())
            .push("target", self.target.as_str())
            .push("message", self.message.as_str());
        for (name, value) in &self.fields {
            r.push(name.clone(), value.clone());
        }
        r
    }
}

/// A consumer of emitted events. Implementations must be `Send + Sync`;
/// `record` may be called concurrently from pool workers.
pub trait Sink: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &Event);

    /// Flushes any buffering. Default: no-op.
    fn flush(&self) {}
}

/// Increments the per-level event counters (`obs.events.error`, …) —
/// called once per dispatched event, so "no error events fired" is an
/// assertable metric.
pub(crate) fn count_event(level: Level) {
    static COUNTERS: OnceLock<[Arc<metrics::Counter>; 5]> = OnceLock::new();
    let counters = COUNTERS.get_or_init(|| {
        crate::level::ALL_LEVELS.map(|l| metrics::counter(format!("obs.events.{}", l.as_str())))
    });
    counters[(level.as_u8() - 1) as usize].force_inc();
}

/// Human-oriented pretty-printer writing one line per event to stderr.
///
/// Format: `[   12.345ms WARN  core.sampler] message key=value (sim 40.000ms)`.
#[derive(Debug, Default)]
pub struct StderrSink {}

impl StderrSink {
    /// Creates the sink.
    pub fn new() -> StderrSink {
        StderrSink {}
    }

    /// Renders an event the way the sink prints it (exposed for tests).
    pub fn render(event: &Event) -> String {
        let mut line = format!(
            "[{:>12.3}ms {:<5} {}] {}",
            event.wall_ns as f64 / 1e6,
            event.level.as_str(),
            event.target,
            event.message
        );
        for (name, value) in &event.fields {
            line.push(' ');
            line.push_str(name);
            line.push('=');
            line.push_str(&value.to_json());
        }
        if let Some(sim) = event.sim_ns {
            line.push_str(&format!(" (sim {:.3}ms)", sim as f64 / 1e6));
        }
        line
    }
}

impl Sink for StderrSink {
    fn record(&self, event: &Event) {
        let mut line = Self::render(event);
        line.push('\n');
        // Diagnostics must never take the process down with them.
        let _ = std::io::stderr().lock().write_all(line.as_bytes());
    }

    fn flush(&self) {
        let _ = std::io::stderr().lock().flush();
    }
}

/// JSON Lines file sink: every event becomes one [`sim_rt::ser`] record
/// row, replayable by anything that reads the workspace's JSONL exports.
#[derive(Debug)]
pub struct JsonlSink {
    file: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn create(path: &str) -> std::io::Result<JsonlSink> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink {
            file: Mutex::new(std::io::BufWriter::new(file)),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut row = event.to_record().to_json();
        row.push('\n');
        let mut file = self.file.lock().expect("jsonl sink poisoned");
        let _ = file.write_all(row.as_bytes());
        // Keep the file inspectable while a campaign is still running.
        let _ = file.flush();
    }

    fn flush(&self) {
        let _ = self.file.lock().expect("jsonl sink poisoned").flush();
    }
}

/// In-memory sink for tests: captures every event it sees.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A copy of everything captured so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink poisoned").len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_record_schema() {
        let e = Event::new(Level::Info, "t.sub", "msg")
            .sim_time_ns(42)
            .field("x", 1.5);
        let json = e.to_record().to_json();
        assert!(json.contains("\"level\":\"info\""));
        assert!(json.contains("\"target\":\"t.sub\""));
        assert!(json.contains("\"sim_ns\":42"));
        assert!(json.contains("\"x\":1.5"));
    }

    #[test]
    fn stderr_rendering() {
        let mut e = Event::new(Level::Warn, "core.pdn", "clip").field("uv", 12);
        e.wall_ns = 1_500_000;
        e.sim_ns = Some(35_000_000);
        let line = StderrSink::render(&e);
        assert!(line.contains("warn"));
        assert!(line.contains("core.pdn"));
        assert!(line.contains("uv=12"));
        assert!(line.contains("(sim 35.000ms)"));
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join(format!("obs-test-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(path.to_str().unwrap()).unwrap();
        sink.record(&Event::new(Level::Info, "t", "a"));
        sink.record(&Event::new(Level::Info, "t", "b").field("n", 2));
        sink.flush();
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn memory_sink_accumulates() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.record(&Event::new(Level::Debug, "t", "one"));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.events()[0].message, "one");
    }
}
