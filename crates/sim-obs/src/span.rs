//! Timed spans around multi-step operations (campaign phases, captures).
//!
//! A [`Span`] measures wall-clock time between `enter` and `close`. Closing
//! (explicitly or on drop) emits a [`crate::Level::Debug`] event carrying
//! the elapsed time and records the duration into the histogram named
//! `span.{target}.{name}.ns`, so phase latencies show up in
//! [`crate::metrics::snapshot`] with p50/p95/p99 attached.
//!
//! # Examples
//!
//! ```
//! let span = obs::span!("demo.campaign", "warmup");
//! // ... do the phase work ...
//! let elapsed = span.close();
//! assert!(elapsed.as_nanos() > 0);
//!
//! let snap = obs::metrics::snapshot();
//! assert_eq!(snap.histogram("span.demo.campaign.warmup.ns").unwrap().count, 1);
//! ```

use std::time::Duration;

use crate::level::Level;
use crate::{clock, metrics};

/// An in-flight timed region. Create with [`Span::enter`] or the
/// [`crate::span!`] macro; finish with [`Span::close`] (or let it drop).
#[derive(Debug)]
pub struct Span {
    target: &'static str,
    name: &'static str,
    start_ns: u64,
    sim_start_ns: Option<u64>,
    closed: bool,
}

impl Span {
    /// Starts timing a region identified by `target` (dotted origin) and
    /// `name` (the operation).
    pub fn enter(target: &'static str, name: &'static str) -> Span {
        if !crate::COMPILED_OUT && crate::enabled(Level::Trace, target) {
            crate::Event::new(Level::Trace, target, format!("enter {name}")).emit();
        }
        Span {
            target,
            name,
            start_ns: clock::monotonic_ns(),
            sim_start_ns: None,
            closed: false,
        }
    }

    /// Attaches the simulation timestamp at span start, so the closing
    /// event carries a dual timestamp.
    #[must_use]
    pub fn with_sim_time_ns(mut self, ns: u64) -> Span {
        self.sim_start_ns = Some(ns);
        self
    }

    /// Elapsed wall-clock time so far, without closing the span.
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(clock::monotonic_ns().saturating_sub(self.start_ns))
    }

    /// Closes the span: emits the debug event, records the latency
    /// histogram, and returns the elapsed wall-clock time.
    pub fn close(mut self) -> Duration {
        self.finish()
    }

    fn finish(&mut self) -> Duration {
        let elapsed = self.elapsed();
        if self.closed || crate::COMPILED_OUT {
            return elapsed;
        }
        self.closed = true;
        let ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        metrics::histogram(format!("span.{}.{}.ns", self.target, self.name)).observe(ns);
        if crate::enabled(Level::Debug, self.target) {
            let mut event =
                crate::Event::new(Level::Debug, self.target, format!("{} done", self.name))
                    .field("elapsed_ms", ns as f64 / 1e6);
            if let Some(sim) = self.sim_start_ns {
                event = event.sim_time_ns(sim);
            }
            event.emit();
        }
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_records_histogram_and_returns_elapsed() {
        let span = Span::enter("obs.spantest", "close");
        std::thread::sleep(Duration::from_millis(1));
        let elapsed = span.close();
        assert!(elapsed >= Duration::from_millis(1));
        let h = metrics::histogram("span.obs.spantest.close.ns");
        assert!(h.count() >= 1);
        assert!(h.percentile(0.5) >= 1e6);
    }

    #[test]
    fn drop_closes_exactly_once() {
        {
            let span = Span::enter("obs.spantest", "drop");
            assert!(span.elapsed() <= span.elapsed());
        }
        let before = metrics::histogram("span.obs.spantest.drop.ns").count();
        {
            let _span = Span::enter("obs.spantest", "drop");
        }
        let after = metrics::histogram("span.obs.spantest.drop.ns").count();
        assert_eq!(after, before + 1);
    }
}
