//! Deterministic request tracing: trace contexts, span trees, and a
//! structural JSONL export that is byte-identical across pool widths.
//!
//! # Identity derivation
//!
//! A [`TraceContext`] is minted per serve request from
//! `(tenant, seed, request counter)` via [`sim_rt::rng::derive_seed`]
//! chained over an FNV-1a hash of the tenant name, so replaying the same
//! request stream reproduces the same trace ids bit-for-bit. Child span
//! ids derive from `(parent span id XOR trace id, child sequence)` — also
//! deterministic, and independent of which pool worker runs the span.
//!
//! # Propagation
//!
//! The context travels *by value* across threads (it is `Copy`): the
//! scheduler carries it inside each queued job and re-installs it on the
//! executing worker with [`scoped`]. Within a thread, [`span`] reads the
//! ambient context from a thread-local stack, mints a child, and pushes
//! itself, so nested library code (board execution, campaign phases)
//! parents correctly without plumbing arguments.
//!
//! # Reconstruction and export
//!
//! Finished spans append to a process-global log (when recording is
//! enabled via [`set_recording`]); [`take`] drains it, [`build_forest`]
//! reconstructs parent/child trees, and [`forest_to_jsonl`] renders a
//! *structural* export — ids, depth, sequence, names, and batch links,
//! deliberately excluding wall-clock timestamps and notes — which is the
//! byte-identical-across-pool-widths artifact the determinism gate pins.
//! Timestamped per-span records are available via [`SpanRecord`]'s
//! [`sim_rt::ser::ToRecord`] impl for latency analysis.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use sim_rt::rng::derive_seed;
use sim_rt::ser::{Record, ToRecord, Value};

use crate::flight;

/// Hard cap on the in-memory span log; spans beyond it are counted in
/// `trace.log.dropped` instead of growing without bound.
const LOG_CAP: usize = 65_536;

/// FNV-1a 64-bit hash of a byte string — the tenant-name mixer feeding
/// [`TraceContext::root`]. Stable across platforms and runs.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The identity of one span within one trace, carried by value through
/// queues and across pool workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Identity of the whole request trace.
    pub trace_id: u64,
    /// Identity of the current span.
    pub span_id: u64,
    /// Span id of the parent span, if any.
    pub parent: Option<u64>,
}

impl TraceContext {
    /// Mints the root context for a serve request, deterministically from
    /// `(tenant, seed, request counter)`.
    pub fn root(tenant: &str, seed: u64, counter: u64) -> TraceContext {
        let trace_id = derive_seed(derive_seed(fnv1a64(tenant.as_bytes()), seed), counter);
        TraceContext {
            trace_id,
            span_id: derive_seed(trace_id, 0),
            parent: None,
        }
    }

    /// Derives the context of this span's `seq`-th child. Deterministic:
    /// depends only on the parent identity and the child's sequence
    /// number, never on the executing thread.
    pub fn child(&self, seq: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: derive_seed(self.span_id ^ self.trace_id, seq.wrapping_add(1)),
            parent: Some(self.span_id),
        }
    }
}

/// One frame of the ambient per-thread context stack.
struct Frame {
    ctx: TraceContext,
    /// Sequence number the next child span of this frame will take.
    next_child: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Whether finished spans are appended to the global log. Off by default:
/// metric counters always tick, but the log only grows when a consumer
/// (the serve layer, a test) asked for reconstruction.
static RECORDING: AtomicBool = AtomicBool::new(false);

/// Enables or disables span-log recording.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// Whether span-log recording is currently on.
pub fn recording() -> bool {
    !crate::COMPILED_OUT && RECORDING.load(Ordering::Relaxed)
}

fn log() -> &'static Mutex<Vec<SpanRecord>> {
    static LOG: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(Vec::new()))
}

/// The ambient context on this thread, if any span or scope is open.
pub fn current() -> Option<TraceContext> {
    STACK.with(|s| s.borrow().last().map(|f| f.ctx))
}

/// Pops the scope frame even when `f` unwinds, so a panicking job cannot
/// corrupt the ambient stack of a reused pool worker.
struct PopGuard;

impl Drop for PopGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Runs `f` with `ctx` installed as the ambient context, restoring the
/// previous context afterwards (panic-safe). This is how a pool worker
/// adopts the trace of the job it pulled off the queue.
pub fn scoped<T>(ctx: TraceContext, f: impl FnOnce() -> T) -> T {
    if crate::COMPILED_OUT {
        return f();
    }
    STACK.with(|s| s.borrow_mut().push(Frame { ctx, next_child: 0 }));
    let _pop = PopGuard;
    f()
}

/// Opens a traced span as a child of the ambient context. A no-op guard
/// when no context is installed (library code outside a traced request
/// costs one thread-local read). Close explicitly with
/// [`TraceSpan::close`] or implicitly on drop.
pub fn span(target: &'static str, name: &'static str) -> TraceSpan {
    if crate::COMPILED_OUT {
        return TraceSpan { active: None };
    }
    let ctx = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = match stack.last_mut() {
            Some(frame) => frame,
            None => return None,
        };
        let seq = parent.next_child;
        parent.next_child += 1;
        let ctx = parent.ctx.child(seq);
        stack.push(Frame { ctx, next_child: 0 });
        Some((ctx, seq))
    });
    let Some((ctx, seq)) = ctx else {
        return TraceSpan { active: None };
    };
    TraceSpan {
        active: Some(ActiveSpan {
            ctx,
            seq,
            target,
            name,
            start_ns: crate::clock::monotonic_ns(),
            links: Vec::new(),
            notes: Vec::new(),
        }),
    }
}

/// The live state behind an open [`TraceSpan`].
struct ActiveSpan {
    ctx: TraceContext,
    seq: u64,
    target: &'static str,
    name: &'static str,
    start_ns: u64,
    links: Vec<u64>,
    notes: Vec<(&'static str, i64)>,
}

/// Guard for an open span; records the span when closed or dropped.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct TraceSpan {
    active: Option<ActiveSpan>,
}

impl TraceSpan {
    /// Links another trace to this span — how a batch span references
    /// every member request it serves. Ignored on a disabled span.
    pub fn link(&mut self, trace_id: u64) {
        if let Some(a) = self.active.as_mut() {
            a.links.push(trace_id);
        }
    }

    /// Attaches a small integer annotation (board id, batch size, …).
    /// Notes ride on the timestamped record only, never the structural
    /// export. Ignored on a disabled span.
    pub fn note(&mut self, key: &'static str, value: i64) {
        if let Some(a) = self.active.as_mut() {
            a.notes.push((key, value));
        }
    }

    /// Closes the span now instead of at end of scope.
    pub fn close(self) {}
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else {
            return;
        };
        // Pop our own frame — but only if it is really ours. A caller
        // that leaks span guards out of order must not pop someone
        // else's frame.
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.last().map(|f| f.ctx.span_id) == Some(a.ctx.span_id) {
                stack.pop();
            }
        });
        let end_ns = crate::clock::monotonic_ns();
        record(SpanRecord {
            trace_id: a.ctx.trace_id,
            span_id: a.ctx.span_id,
            parent: a.ctx.parent,
            seq: a.seq,
            target: a.target,
            name: a.name,
            start_ns: a.start_ns,
            end_ns,
            links: a.links,
            notes: a.notes,
        });
    }
}

/// A finished span, ready for reconstruction or export.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Identity of the trace this span belongs to.
    pub trace_id: u64,
    /// Identity of this span.
    pub span_id: u64,
    /// Parent span id, `None` for a trace root.
    pub parent: Option<u64>,
    /// This span's sequence number among its siblings.
    pub seq: u64,
    /// Dotted subsystem target (`"serve.sched"`, `"core.campaign"`, …).
    pub target: &'static str,
    /// Span name within the target.
    pub name: &'static str,
    /// Monotonic start, nanoseconds since process start.
    pub start_ns: u64,
    /// Monotonic end, nanoseconds since process start.
    pub end_ns: u64,
    /// Trace ids of linked traces (batch membership).
    pub links: Vec<u64>,
    /// Small integer annotations (board id, …).
    pub notes: Vec<(&'static str, i64)>,
}

/// Renders a span/trace id as fixed-width lowercase hex.
pub fn hex(id: u64) -> String {
    format!("{id:016x}")
}

impl ToRecord for SpanRecord {
    /// The *timestamped* per-span row (durations, notes included). For
    /// the deterministic structural export use [`forest_to_jsonl`].
    fn to_record(&self) -> Record {
        let mut r = Record::new();
        r.push("trace", hex(self.trace_id))
            .push("span", hex(self.span_id))
            .push("parent", self.parent.map(hex))
            .push("seq", self.seq)
            .push("target", self.target)
            .push("name", self.name)
            .push("start_ns", self.start_ns)
            .push("dur_ns", self.end_ns.saturating_sub(self.start_ns));
        for (key, value) in &self.notes {
            r.push(*key, *value);
        }
        r
    }
}

/// Appends a finished span to the log and ticks the `trace.*` counters.
/// Public so the scheduler can record request roots directly (their
/// lifetime spans queueing plus execution, which no single scope covers).
pub fn record(rec: SpanRecord) {
    if crate::COMPILED_OUT {
        return;
    }
    crate::metrics::counter("trace.spans").inc();
    let roots = crate::metrics::counter("trace.roots");
    if rec.parent.is_none() {
        roots.inc();
    }
    // Register the overflow counter eagerly so it always exports.
    let dropped = crate::metrics::counter("trace.log.dropped");
    flight::record(
        "span",
        rec.trace_id,
        rec.span_id,
        rec.end_ns.saturating_sub(rec.start_ns) as i64,
        rec.seq as i64,
        rec.name,
    );
    if !recording() {
        return;
    }
    let mut log = log()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if log.len() >= LOG_CAP {
        dropped.inc();
        return;
    }
    log.push(rec);
}

/// Records a request-root span explicitly (sequence 0, no links/notes).
/// Used by the scheduler, whose request roots span admission through
/// response and therefore cannot be a lexical [`span`] scope.
pub fn record_root(
    ctx: TraceContext,
    target: &'static str,
    name: &'static str,
    start_ns: u64,
    end_ns: u64,
) {
    record(SpanRecord {
        trace_id: ctx.trace_id,
        span_id: ctx.span_id,
        parent: ctx.parent,
        seq: 0,
        target,
        name,
        start_ns,
        end_ns,
        links: Vec::new(),
        notes: Vec::new(),
    });
}

/// Drains and returns every recorded span.
pub fn take() -> Vec<SpanRecord> {
    std::mem::take(
        &mut *log()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    )
}

/// One node of a reconstructed span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// The span at this node.
    pub record: SpanRecord,
    /// Child spans, ordered by `(seq, span_id)`.
    pub children: Vec<SpanNode>,
}

/// Reconstructs span trees from an unordered batch of records.
///
/// Roots are spans without a parent, with a parent that never finished
/// (orphans surface rather than vanish), or that claim themselves as
/// parent. Trees are ordered by `(trace_id, span_id)` and siblings by
/// `(seq, span_id)`, so the forest is a pure function of the record
/// *set* — the order spans were recorded in (which varies with pool
/// width) cannot influence it.
pub fn build_forest(records: &[SpanRecord]) -> Vec<SpanNode> {
    let ids: std::collections::BTreeSet<u64> = records.iter().map(|r| r.span_id).collect();
    // parent span id -> children records
    let mut children: BTreeMap<u64, Vec<SpanRecord>> = BTreeMap::new();
    let mut roots: Vec<SpanRecord> = Vec::new();
    for rec in records {
        match rec.parent {
            Some(p) if ids.contains(&p) && p != rec.span_id => {
                children.entry(p).or_default().push(rec.clone());
            }
            _ => roots.push(rec.clone()),
        }
    }
    roots.sort_by_key(|r| (r.trace_id, r.span_id));
    roots
        .into_iter()
        .map(|r| attach(r, &mut children))
        .collect()
}

/// Builds the subtree under `rec`, consuming entries from `children` so a
/// (malformed) parent cycle cannot recurse forever.
fn attach(rec: SpanRecord, children: &mut BTreeMap<u64, Vec<SpanRecord>>) -> SpanNode {
    let mut kids = children.remove(&rec.span_id).unwrap_or_default();
    kids.sort_by_key(|r| (r.seq, r.span_id));
    SpanNode {
        record: rec,
        children: kids.into_iter().map(|k| attach(k, children)).collect(),
    }
}

/// Renders a forest as structural JSONL: one row per span in pre-order,
/// carrying ids, depth, sequence, target/name, and sorted batch links —
/// and deliberately *no* timestamps or notes, so the output depends only
/// on what executed, not when or where. This is the byte-identical
/// artifact the pool-width determinism gates compare.
pub fn forest_to_jsonl(forest: &[SpanNode]) -> String {
    let mut rows: Vec<Record> = Vec::new();
    for node in forest {
        structural_rows(node, 0, &mut rows);
    }
    sim_rt::to_jsonl(&rows)
}

fn structural_rows(node: &SpanNode, depth: u64, rows: &mut Vec<Record>) {
    let r = &node.record;
    let mut links: Vec<u64> = r.links.clone();
    links.sort_unstable();
    links.dedup();
    let mut row = Record::new();
    row.push("trace", hex(r.trace_id))
        .push("span", hex(r.span_id))
        .push("parent", r.parent.map(hex))
        .push("depth", depth)
        .push("seq", r.seq)
        .push("target", r.target)
        .push("name", r.name)
        .push(
            "links",
            Value::Array(links.into_iter().map(|l| Value::Str(hex(l))).collect()),
        );
    rows.push(row);
    for child in &node.children {
        structural_rows(child, depth + 1, rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The span log and recording flag are process-global; serialize.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn context_derivation_is_deterministic_and_distinct() {
        let a = TraceContext::root("alice", 7, 0);
        assert_eq!(a, TraceContext::root("alice", 7, 0));
        assert_ne!(a.trace_id, TraceContext::root("alice", 7, 1).trace_id);
        assert_ne!(a.trace_id, TraceContext::root("alice", 8, 0).trace_id);
        assert_ne!(a.trace_id, TraceContext::root("bob", 7, 0).trace_id);
        let c0 = a.child(0);
        let c1 = a.child(1);
        assert_eq!(c0.trace_id, a.trace_id);
        assert_eq!(c0.parent, Some(a.span_id));
        assert_ne!(c0.span_id, c1.span_id);
        assert_eq!(c0, a.child(0), "child derivation is pure");
    }

    #[test]
    fn spans_nest_and_reconstruct() {
        let _guard = guard();
        set_recording(true);
        let _ = take();
        let ctx = TraceContext::root("t", 1, 0);
        scoped(ctx, || {
            let outer = span("test.trace", "outer");
            {
                let _inner_a = span("test.trace", "a");
            }
            {
                let _inner_b = span("test.trace", "b");
            }
            outer.close();
        });
        record_root(ctx, "test.trace", "request", 0, 0);
        let records = take();
        set_recording(false);
        assert_eq!(records.len(), 4);
        let forest = build_forest(&records);
        assert_eq!(forest.len(), 1);
        let root = &forest[0];
        assert_eq!(root.record.name, "request");
        assert_eq!(root.children.len(), 1);
        let outer = &root.children[0];
        assert_eq!(outer.record.name, "outer");
        let kids: Vec<&str> = outer.children.iter().map(|c| c.record.name).collect();
        assert_eq!(kids, ["a", "b"], "siblings ordered by seq");
    }

    #[test]
    fn span_without_ambient_context_is_a_noop() {
        let _guard = guard();
        set_recording(true);
        let _ = take();
        {
            let _s = span("test.trace", "orphan");
        }
        assert!(take().is_empty());
        set_recording(false);
        assert!(current().is_none());
    }

    #[test]
    fn scoped_restores_context_on_panic() {
        let _guard = guard();
        let ctx = TraceContext::root("p", 1, 0);
        let result = std::panic::catch_unwind(|| {
            scoped(ctx, || panic!("boom"));
        });
        assert!(result.is_err());
        assert!(current().is_none(), "frame popped despite panic");
    }

    #[test]
    fn orphan_spans_surface_as_roots() {
        let rec = |span_id: u64, parent: Option<u64>| SpanRecord {
            trace_id: 9,
            span_id,
            parent,
            seq: 0,
            target: "t",
            name: "n",
            start_ns: 0,
            end_ns: 0,
            links: vec![],
            notes: vec![],
        };
        // Parent 99 never finished; 5 claims itself.
        let forest = build_forest(&[rec(1, Some(99)), rec(5, Some(5))]);
        assert_eq!(forest.len(), 2);
    }

    #[test]
    fn structural_export_excludes_timing_and_dedups_links() {
        let mut rec = SpanRecord {
            trace_id: 0xAB,
            span_id: 0xCD,
            parent: None,
            seq: 0,
            target: "t",
            name: "batch",
            start_ns: 123,
            end_ns: 456,
            links: vec![7, 3, 7],
            notes: vec![("board", 2)],
        };
        let jsonl = forest_to_jsonl(&build_forest(std::slice::from_ref(&rec)));
        assert!(!jsonl.contains("123"), "no timestamps in structural rows");
        assert!(!jsonl.contains("board"), "no notes in structural rows");
        assert!(jsonl.contains(&hex(3)) && jsonl.contains(&hex(7)));
        assert_eq!(jsonl.matches(&hex(7)).count(), 1, "links deduped");
        // The timestamped record does carry both.
        rec.links.clear();
        let timed = rec.to_record().to_json();
        assert!(timed.contains("\"start_ns\":123"));
        assert!(timed.contains("\"board\":2"));
    }
}
