//! Process-global metrics: counters, gauges, and fixed-bucket latency
//! histograms behind cheap atomic handles.
//!
//! Handles are `Arc`s into a global registry; the [`crate::counter!`],
//! [`crate::gauge!`], and [`crate::histogram!`] macros cache the registry
//! lookup in a per-call-site static so a hot-path update is one atomic
//! read-modify-write. [`snapshot`] freezes every metric into plain data
//! that exports through [`sim_rt::ser`] — the same JSONL/CSV pipeline the
//! attack results use.
//!
//! # Examples
//!
//! ```
//! let c = obs::metrics::counter("doc.reads");
//! c.add(3);
//! let h = obs::metrics::histogram("doc.latency_ns");
//! h.observe(900);
//! h.observe(1_800);
//!
//! let snap = obs::metrics::snapshot();
//! assert_eq!(snap.counter("doc.reads"), Some(3));
//! let s = snap.histogram("doc.latency_ns").unwrap();
//! assert_eq!(s.count, 2);
//! assert!(s.p50 >= 900.0 && s.p99 <= 2_048.0);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use sim_rt::ser::{Record, ToRecord};

/// Runtime kill-switch: when `false`, every counter/gauge/histogram
/// update is a no-op (one relaxed load). Used by the overhead bench to
/// compare instrumented and uninstrumented hot paths in one binary; the
/// `compile-off` feature removes updates entirely.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables all metric updates at runtime.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether metric updates are currently live.
pub fn enabled() -> bool {
    !crate::COMPILED_OUT && ENABLED.load(Ordering::Relaxed)
}

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one even when metrics are disabled — for bookkeeping the
    /// observability layer itself relies on (per-level event counts).
    pub(crate) fn force_inc(&self) {
        if !crate::COMPILED_OUT {
            self.value.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins instantaneous value (stored as `f64` bits).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        if enabled() {
            self.bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// Bucket count: values 0–15 exactly, then four linear sub-buckets per
/// power of two up to `u64::MAX` (HDR-style, ≤ 25 % relative bucket
/// width).
const BUCKETS: usize = 16 + 60 * 4;

/// Fixed-bucket histogram of non-negative integer samples (typically
/// latency nanoseconds).
///
/// Small values (0–15) are recorded exactly; larger values land in one of
/// four linear sub-buckets per power of two, bounding the relative
/// quantization error of any percentile estimate at ~25 %. `min`, `max`,
/// `sum`, and `count` are tracked exactly.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Index of the bucket holding `v`.
fn bucket_index(v: u64) -> usize {
    if v < 16 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // >= 4
    let sub = ((v >> (msb - 2)) & 3) as usize;
    16 + (msb - 4) * 4 + sub
}

/// Inclusive lower bound of bucket `i`.
fn bucket_lo(i: usize) -> u64 {
    if i < 16 {
        return i as u64;
    }
    let msb = (i - 16) / 4 + 4;
    let sub = ((i - 16) % 4) as u64;
    (1u64 << msb) + sub * (1u64 << (msb - 2))
}

/// Exclusive upper bound of bucket `i` (saturating at `u64::MAX`).
fn bucket_hi(i: usize) -> u64 {
    if i < 16 {
        return i as u64 + 1;
    }
    let msb = (i - 16) / 4 + 4;
    bucket_lo(i).saturating_add(1u64 << (msb - 2))
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// inside the covering bucket, clamped to the observed min/max.
    /// Returns `NaN` for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let count = self.count();
        if count == 0 {
            return f64::NAN;
        }
        let rank = (q * count as f64).ceil().max(1.0);
        let mut cum = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            if (cum + n) as f64 >= rank {
                let lo = bucket_lo(i) as f64;
                let hi = bucket_hi(i) as f64;
                // Rank r of the bucket's n samples sits at fraction
                // (r-1)/n through [lo, hi): rank 1 of 1 is lo, not hi.
                let within = (rank - cum as f64 - 1.0) / n as f64;
                let est = lo + (hi - lo) * within;
                let min = self.min.load(Ordering::Relaxed) as f64;
                let max = self.max.load(Ordering::Relaxed) as f64;
                return est.clamp(min, max);
            }
            cum += n;
        }
        self.max.load(Ordering::Relaxed) as f64
    }

    /// Freezes the histogram into plain summary data.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        let sum = self.sum.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            sum,
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            mean: if count == 0 {
                f64::NAN
            } else {
                sum as f64 / count as f64
            },
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
        }
    }

    fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Plain-data summary of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Exact mean (`NaN` when empty).
    pub mean: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Registers (or retrieves) the counter named `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn counter(name: impl Into<String>) -> Arc<Counter> {
    let name = name.into();
    let mut map = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let metric = map
        .entry(name.clone())
        .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())));
    match metric {
        Metric::Counter(c) => Arc::clone(c),
        other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
    }
}

/// Registers (or retrieves) the gauge named `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn gauge(name: impl Into<String>) -> Arc<Gauge> {
    let name = name.into();
    let mut map = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let metric = map
        .entry(name.clone())
        .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())));
    match metric {
        Metric::Gauge(g) => Arc::clone(g),
        other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
    }
}

/// Registers (or retrieves) the histogram named `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn histogram(name: impl Into<String>) -> Arc<Histogram> {
    let name = name.into();
    let mut map = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let metric = map
        .entry(name.clone())
        .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())));
    match metric {
        Metric::Histogram(h) => Arc::clone(h),
        other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
    }
}

/// Zeroes every registered metric in place (handles cached at call sites
/// stay valid). For tests and between-campaign baselines.
pub fn reset() {
    let map = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for metric in map.values() {
        match metric {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
}

/// One frozen counter value.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// One frozen gauge value.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: f64,
}

/// One frozen histogram summary.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Percentile summary at snapshot time.
    pub summary: HistogramSummary,
}

/// A frozen copy of the whole registry, ordered by metric name within
/// each kind.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// All counters.
    pub counters: Vec<CounterSample>,
    /// All gauges.
    pub gauges: Vec<GaugeSample>,
    /// All histograms.
    pub histograms: Vec<HistogramSample>,
}

/// Mirrors the [`sim_rt::lockorder`] watchdog counters into the registry
/// as gauges (`lockorder.acquisitions`, `lockorder.edges_tracked`,
/// `lockorder.cycles_detected`). Called by every [`snapshot`], so exports
/// always carry fresh values; in release builds all three read zero.
pub fn sync_lockorder() {
    gauge("lockorder.acquisitions").set(sim_rt::lockorder::acquisitions() as f64);
    gauge("lockorder.edges_tracked").set(sim_rt::lockorder::edges_tracked() as f64);
    gauge("lockorder.cycles_detected").set(sim_rt::lockorder::cycles_detected() as f64);
}

/// Mirrors the [`sim_rt::pool::profile`] aggregate totals into the
/// registry as gauges (`pool.profile.enabled`, `.samples`, `.run_ns`,
/// `.steal_ns`). Called by every [`snapshot`]; with profiling disabled
/// the totals read zero but the names still export, so dashboards can
/// pin them unconditionally.
pub fn sync_pool_profile() {
    let stats = sim_rt::pool::profile::stats();
    gauge("pool.profile.enabled").set(if stats.enabled { 1.0 } else { 0.0 });
    gauge("pool.profile.samples").set(stats.samples as f64);
    gauge("pool.profile.run_ns").set(stats.run_ns as f64);
    gauge("pool.profile.steal_ns").set(stats.steal_ns as f64);
}

/// Freezes every registered metric.
pub fn snapshot() -> MetricsSnapshot {
    sync_lockorder();
    sync_pool_profile();
    let map = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut snap = MetricsSnapshot::default();
    for (name, metric) in map.iter() {
        match metric {
            Metric::Counter(c) => snap.counters.push(CounterSample {
                name: name.clone(),
                value: c.get(),
            }),
            Metric::Gauge(g) => snap.gauges.push(GaugeSample {
                name: name.clone(),
                value: g.get(),
            }),
            Metric::Histogram(h) => snap.histograms.push(HistogramSample {
                name: name.clone(),
                summary: h.summary(),
            }),
        }
    }
    snap
}

/// The shared export schema: one row per metric, uniform field set across
/// kinds so mixed snapshots render as a single CSV table.
fn metric_record(
    name: &str,
    kind: &str,
    value: Option<f64>,
    summary: Option<&HistogramSummary>,
) -> Record {
    let mut r = Record::new();
    r.push("name", name).push("kind", kind).push("value", value);
    match summary {
        Some(s) => {
            r.push("count", s.count)
                .push("sum", s.sum)
                .push("min", s.min)
                .push("max", s.max)
                .push("mean", s.mean)
                .push("p50", s.p50)
                .push("p95", s.p95)
                .push("p99", s.p99);
        }
        None => {
            r.push("count", None::<u64>)
                .push("sum", None::<u64>)
                .push("min", None::<u64>)
                .push("max", None::<u64>)
                .push("mean", None::<f64>)
                .push("p50", None::<f64>)
                .push("p95", None::<f64>)
                .push("p99", None::<f64>);
        }
    }
    r
}

impl ToRecord for CounterSample {
    fn to_record(&self) -> Record {
        metric_record(&self.name, "counter", Some(self.value as f64), None)
    }
}

impl ToRecord for GaugeSample {
    fn to_record(&self) -> Record {
        metric_record(&self.name, "gauge", Some(self.value), None)
    }
}

impl ToRecord for HistogramSample {
    fn to_record(&self) -> Record {
        metric_record(&self.name, "histogram", None, Some(&self.summary))
    }
}

impl MetricsSnapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| &h.summary)
    }

    /// Total number of metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Whether the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One export record per metric, counters first, uniform schema.
    pub fn to_records(&self) -> Vec<Record> {
        let mut out: Vec<Record> = Vec::with_capacity(self.len());
        out.extend(self.counters.iter().map(ToRecord::to_record));
        out.extend(self.gauges.iter().map(ToRecord::to_record));
        out.extend(self.histograms.iter().map(ToRecord::to_record));
        out
    }

    /// Renders the snapshot as JSON Lines, one object per metric with a
    /// uniform schema across counters, gauges, and histograms.
    pub fn to_jsonl(&self) -> String {
        sim_rt::to_jsonl(&self.to_records())
    }

    /// Renders the snapshot as CSV, one row per metric (same rows as
    /// [`MetricsSnapshot::to_jsonl`]).
    pub fn to_csv(&self) -> String {
        sim_rt::to_csv(self.to_records().iter())
    }

    /// Renders an aligned human-readable table (the `--profile` view).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for c in &self.counters {
                out.push_str(&format!("  {:<44} {:>14}\n", c.name, c.value));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for g in &self.gauges {
                out.push_str(&format!("  {:<44} {:>14.3}\n", g.name, g.value));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (ns):\n");
            out.push_str(&format!(
                "  {:<44} {:>10} {:>12} {:>12} {:>12}\n",
                "name", "count", "p50", "p95", "p99"
            ));
            for h in &self.histograms {
                out.push_str(&format!(
                    "  {:<44} {:>10} {:>12.0} {:>12.0} {:>12.0}\n",
                    h.name, h.summary.count, h.summary.p50, h.summary.p95, h.summary.p99
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_maths_is_consistent() {
        // Every value lands in a bucket whose [lo, hi) range contains it.
        for v in (0..2_000u64).chain([
            4_095,
            4_096,
            1 << 20,
            (1 << 40) + 12_345,
            u64::MAX - 1,
            u64::MAX,
        ]) {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "{v}");
            assert!(
                bucket_lo(i) <= v && (v < bucket_hi(i) || bucket_hi(i) == u64::MAX),
                "v={v} bucket={i} lo={} hi={}",
                bucket_lo(i),
                bucket_hi(i)
            );
        }
        // Buckets tile the axis: each hi is the next bucket's lo.
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_hi(i), bucket_lo(i + 1), "bucket {i}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::default();
        for v in 0..16u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 16);
        // p-quantiles of 0..15 interpolate inside exact one-wide buckets.
        assert!(
            (h.percentile(0.5) - 8.0).abs() <= 1.0,
            "{}",
            h.percentile(0.5)
        );
        assert_eq!(h.percentile(1.0), 15.0);
        assert_eq!(h.percentile(0.0), 0.0);
    }

    #[test]
    fn percentiles_of_uniform_range_are_within_bucket_error() {
        let h = Histogram::default();
        for v in 1..=10_000u64 {
            h.observe(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10_000);
        assert!((s.mean - 5_000.5).abs() < 1e-9);
        // ≤ 25 % relative bucket width bounds each estimate.
        assert!((s.p50 - 5_000.0).abs() / 5_000.0 < 0.25, "p50 {}", s.p50);
        assert!((s.p95 - 9_500.0).abs() / 9_500.0 < 0.25, "p95 {}", s.p95);
        assert!((s.p99 - 9_900.0).abs() / 9_900.0 < 0.25, "p99 {}", s.p99);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
    }

    #[test]
    fn empty_histogram_summary() {
        let h = Histogram::default();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert!(s.mean.is_nan());
        assert!(s.p50.is_nan());
    }

    #[test]
    #[should_panic(expected = "[0, 1]")]
    fn quantile_out_of_range_panics() {
        Histogram::default().percentile(1.5);
    }

    #[test]
    fn registry_roundtrip_and_snapshot() {
        counter("test.reg.counter").add(5);
        gauge("test.reg.gauge").set(2.5);
        histogram("test.reg.hist").observe(100);
        let snap = snapshot();
        assert_eq!(snap.counter("test.reg.counter"), Some(5));
        assert_eq!(snap.gauge("test.reg.gauge"), Some(2.5));
        assert_eq!(snap.histogram("test.reg.hist").unwrap().count, 1);
        assert!(snap.counter("test.reg.missing").is_none());
        assert!(!snap.is_empty());

        // Same-name lookups return the same underlying metric.
        counter("test.reg.counter").add(1);
        assert_eq!(snapshot().counter("test.reg.counter"), Some(6));
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        counter("test.reg.kind-clash").inc();
        let _ = gauge("test.reg.kind-clash");
    }

    #[test]
    fn snapshot_records_share_one_schema() {
        counter("test.schema.c").inc();
        gauge("test.schema.g").set(1.0);
        histogram("test.schema.h").observe(10);
        let records = snapshot().to_records();
        assert!(records.len() >= 3);
        let names: Vec<Vec<String>> = records
            .iter()
            .map(|r| r.names().map(str::to_string).collect())
            .collect();
        assert!(names.iter().all(|n| n == &names[0]), "uniform CSV schema");
        // And the whole snapshot renders as one CSV table.
        let csv = sim_rt::ser::to_csv(records.iter());
        assert!(csv.starts_with("name,kind,value,count,"));
    }

    #[test]
    fn disabled_metrics_do_not_record() {
        let c = counter("test.disabled.counter");
        set_enabled(false);
        c.inc();
        set_enabled(true);
        let before = c.get();
        c.inc();
        assert_eq!(c.get(), before + 1);
    }

    #[test]
    fn render_table_lists_every_metric() {
        counter("test.table.c").add(2);
        histogram("test.table.h").observe(50);
        let table = snapshot().render_table();
        assert!(table.contains("test.table.c"));
        assert!(table.contains("test.table.h"));
        assert!(table.contains("p95"));
    }
}
