//! Flight recorder: a fixed-capacity, allocation-free ring buffer of
//! recent events per service thread, dumped to JSONL on anomalies.
//!
//! Every service thread that records an event gets its own
//! [`RING_CAP`]-slot ring registered in a process-global table. Pushing
//! an event after registration copies one [`FlightEvent`] (all fields
//! `Copy`, tags are `&'static str`) into a preallocated slot — no heap
//! traffic on the hot path. When the ring is full the oldest event is
//! overwritten and `flight.dropped` ticks.
//!
//! Dumps happen three ways: automatically via [`auto_dump`] when the
//! serve layer hits `deadline_exceeded`, sheds on a full queue, or
//! panics (appending reason-stamped rows to the file named by
//! `AMPEREBLEED_FLIGHT_FILE`); on demand through the `stats` serve verb
//! (which embeds [`dump_jsonl`] in its response); and directly from
//! tests via [`snapshot_records`]. Rings of exited threads stay
//! registered on purpose — a post-mortem dump can still explain what a
//! dead worker saw last.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use sim_rt::ser::Record;

/// Events retained per thread; older events are overwritten.
pub const RING_CAP: usize = 256;

/// Runtime switch for the recorder (the overhead bench's "off" arm).
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables flight-event recording at runtime.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether flight-event recording is currently live.
pub fn enabled() -> bool {
    !crate::COMPILED_OUT && ENABLED.load(Ordering::Relaxed)
}

/// One recorded event. Every field is `Copy`, so a ring slot is filled
/// without allocating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotonic nanoseconds since process start.
    pub wall_ns: u64,
    /// Event kind (`"span"`, `"timeout"`, `"shed"`, …).
    pub kind: &'static str,
    /// Trace this event belongs to (0 when untraced).
    pub trace_id: u64,
    /// Span this event belongs to (0 when untraced).
    pub span_id: u64,
    /// First kind-specific payload (e.g. span duration in ns).
    pub a: i64,
    /// Second kind-specific payload (e.g. child sequence number).
    pub b: i64,
    /// Short static label (span name, shed kind, …).
    pub tag: &'static str,
}

/// Fixed-capacity overwrite-oldest event buffer.
struct Ring {
    slots: Vec<FlightEvent>,
    /// Index the next event will be written to.
    next: usize,
}

impl Ring {
    fn new() -> Ring {
        Ring {
            slots: Vec::with_capacity(RING_CAP),
            next: 0,
        }
    }

    /// Appends one event; returns `true` when an older event was
    /// overwritten.
    fn push(&mut self, ev: FlightEvent) -> bool {
        if self.slots.len() < RING_CAP {
            self.slots.push(ev);
            self.next = self.slots.len() % RING_CAP;
            false
        } else {
            self.slots[self.next] = ev;
            self.next = (self.next + 1) % RING_CAP;
            true
        }
    }

    /// Events oldest-first.
    fn in_order(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        if self.slots.len() == RING_CAP {
            out.extend_from_slice(&self.slots[self.next..]);
            out.extend_from_slice(&self.slots[..self.next]);
        } else {
            out.extend_from_slice(&self.slots);
        }
        out
    }
}

/// A ring shared between its owning thread and the dump paths.
type SharedRing = Arc<Mutex<Ring>>;

/// Global table of per-thread rings, keyed by thread name.
fn registry() -> &'static Mutex<Vec<(String, SharedRing)>> {
    static REGISTRY: OnceLock<Mutex<Vec<(String, SharedRing)>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    /// This thread's ring, registered on first use.
    static RING: RefCell<Option<Arc<Mutex<Ring>>>> = const { RefCell::new(None) };
}

/// Records one event into the calling thread's ring. One mutex op and a
/// slot copy after the thread's first event (which registers the ring).
pub fn record(kind: &'static str, trace_id: u64, span_id: u64, a: i64, b: i64, tag: &'static str) {
    if !enabled() {
        return;
    }
    crate::metrics::counter("flight.events").inc();
    // Register eagerly so the overflow and dump counters always export,
    // even before the first overwrite or dump.
    let dropped = crate::metrics::counter("flight.dropped");
    let _ = crate::metrics::counter("flight.dumps");
    let ev = FlightEvent {
        wall_ns: crate::clock::monotonic_ns(),
        kind,
        trace_id,
        span_id,
        a,
        b,
        tag,
    };
    let overwrote = RING.with(|cell| {
        let mut slot = cell.borrow_mut();
        let ring = slot.get_or_insert_with(|| {
            let ring = Arc::new(Mutex::new(Ring::new()));
            let name = std::thread::current()
                .name()
                .unwrap_or("unnamed")
                .to_string();
            registry()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push((name, Arc::clone(&ring)));
            ring
        });
        let overwrote = ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(ev);
        overwrote
    });
    if overwrote {
        dropped.inc();
    }
}

/// Freezes every ring into export records, ordered by `(wall_ns, thread)`
/// so interleaved thread activity reads chronologically.
pub fn snapshot_records() -> Vec<Record> {
    let mut rows: Vec<(u64, String, FlightEvent)> = Vec::new();
    let rings = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for (name, ring) in rings.iter() {
        let events = ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .in_order();
        for ev in events {
            rows.push((ev.wall_ns, name.clone(), ev));
        }
    }
    drop(rings);
    rows.sort_by(|x, y| (x.0, x.1.as_str()).cmp(&(y.0, y.1.as_str())));
    rows.into_iter()
        .map(|(_, thread, ev)| event_record(&thread, &ev))
        .collect()
}

fn event_record(thread: &str, ev: &FlightEvent) -> Record {
    let mut r = Record::new();
    r.push("thread", thread)
        .push("wall_ns", ev.wall_ns)
        .push("kind", ev.kind)
        .push("trace", crate::trace::hex(ev.trace_id))
        .push("span", crate::trace::hex(ev.span_id))
        .push("a", ev.a)
        .push("b", ev.b)
        .push("tag", ev.tag);
    r
}

/// Renders every ring as JSONL (the `stats` verb's on-demand dump).
/// Counts one `flight.dumps`.
pub fn dump_jsonl() -> String {
    crate::metrics::counter("flight.dumps").inc();
    sim_rt::to_jsonl(&snapshot_records())
}

/// Where [`auto_dump`] appends, initialized from `AMPEREBLEED_FLIGHT_FILE`.
fn dump_path_slot() -> &'static Mutex<Option<String>> {
    static PATH: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    PATH.get_or_init(|| Mutex::new(std::env::var(crate::FLIGHT_FILE_ENV).ok()))
}

/// The current automatic-dump path, if any.
pub fn dump_path() -> Option<String> {
    dump_path_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Overrides the automatic-dump path (`None` disables automatic dumps).
/// Primarily for tests; production configures `AMPEREBLEED_FLIGHT_FILE`.
pub fn set_dump_path(path: Option<String>) {
    *dump_path_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = path;
}

/// Dumps every ring to the configured file, stamping each row with
/// `reason` (`"deadline_exceeded"`, `"queue_full"`, `"panic"`). Appends,
/// so successive anomalies accumulate in one file. A no-op without a
/// configured path; counts `flight.dumps` when it writes.
pub fn auto_dump(reason: &'static str) {
    if crate::COMPILED_OUT {
        return;
    }
    let Some(path) = dump_path() else {
        return;
    };
    let mut rows = snapshot_records();
    for row in &mut rows {
        row.push("reason", reason);
    }
    let text = sim_rt::to_jsonl(&rows);
    use std::io::Write as _;
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(text.as_bytes()));
    match written {
        Ok(()) => crate::metrics::counter("flight.dumps").inc(),
        Err(e) => crate::warn!("obs.flight", "flight dump failed";
            "path" => path, "reason" => reason, "error" => e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_reads_in_order() {
        let mut ring = Ring::new();
        let ev = |n: i64| FlightEvent {
            wall_ns: n as u64,
            kind: "t",
            trace_id: 0,
            span_id: 0,
            a: n,
            b: 0,
            tag: "t",
        };
        for n in 0..RING_CAP as i64 {
            assert!(!ring.push(ev(n)), "no overwrite before capacity");
        }
        assert!(ring.push(ev(RING_CAP as i64)), "capacity + 1 overwrites");
        let events = ring.in_order();
        assert_eq!(events.len(), RING_CAP);
        assert_eq!(events[0].a, 1, "oldest surviving event first");
        assert_eq!(events[RING_CAP - 1].a, RING_CAP as i64);
    }

    #[test]
    fn record_registers_ring_and_snapshot_sees_it() {
        record("test", 7, 8, 1, 2, "unit");
        let rows = snapshot_records();
        let jsonl = sim_rt::to_jsonl(&rows);
        assert!(jsonl.contains("\"kind\":\"test\""));
        assert!(jsonl.contains("\"tag\":\"unit\""));
        assert!(jsonl.contains(&crate::trace::hex(7)));
    }

    #[test]
    fn disabled_recorder_drops_events() {
        set_enabled(false);
        record("test-disabled", 0, 0, 0, 0, "gone");
        set_enabled(true);
        let jsonl = sim_rt::to_jsonl(&snapshot_records());
        assert!(!jsonl.contains("test-disabled"));
    }
}
