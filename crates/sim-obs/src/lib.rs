//! Zero-dependency observability for the AmpereBleed reproduction:
//! leveled structured events, spans, pluggable sinks, and a process-global
//! metrics registry — std-only, consistent with the workspace's offline
//! constraint.
//!
//! # Events and filtering
//!
//! Library code emits [`event!`] (or the leveled shorthands [`trace!`],
//! [`debug!`], [`info!`], [`warn!`], [`error!`]) against a dotted target
//! such as `"core.sampler"`. The active filter comes from the
//! `AMPEREBLEED_LOG` environment variable on first use —
//! `AMPEREBLEED_LOG=debug` or `AMPEREBLEED_LOG=info,core.sampler=trace` —
//! and defaults to `warn`. Events below the filter cost one atomic load.
//!
//! Every event carries *dual timestamps*: monotonic wall-clock nanoseconds
//! since process start, and (when the emitting site knows it) the
//! simulation timestamp in nanoseconds, so a trace can be replayed against
//! either clock.
//!
//! # Sinks
//!
//! Enabled events fan out to every installed [`Sink`]. A stderr
//! pretty-printer is always installed; setting `AMPEREBLEED_TRACE_FILE`
//! adds a JSON Lines file sink whose rows reuse [`sim_rt::ser`], so traces
//! land in the same JSONL/CSV pipeline as exported results. Tests install
//! a [`MemorySink`] and assert on the captured events.
//!
//! # Metrics
//!
//! [`metrics`] hosts process-global counters, gauges, and fixed-bucket
//! latency histograms behind cheap atomic handles; [`metrics::snapshot`]
//! freezes them into records for the same export pipeline. The
//! [`counter!`], [`gauge!`], and [`histogram!`] macros cache the registry
//! lookup in a per-call-site static, so hot paths pay one atomic add.
//!
//! # Tracing and the flight recorder
//!
//! [`trace`] adds deterministic request tracing on top of events: a
//! [`TraceContext`] minted from `(tenant, seed, request counter)`
//! propagates by value across pool workers, spans reconstruct into trees,
//! and the structural JSONL export is byte-identical at any pool width.
//! [`flight`] keeps a fixed-capacity ring of recent events per service
//! thread and dumps it to the file named by [`FLIGHT_FILE_ENV`] on
//! deadline misses, queue shedding, or panic.
//!
//! # Examples
//!
//! ```
//! obs::info!("demo.module", "work unit done"; "items" => 3, "ok" => true);
//!
//! let reads = obs::counter!("demo.reads");
//! reads.inc();
//! let lat = obs::histogram!("demo.latency_ns");
//! lat.observe(1_250);
//!
//! let snap = obs::metrics::snapshot();
//! assert!(snap.counter("demo.reads").unwrap() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod flight;
pub mod level;
pub mod metrics;
pub mod span;
pub mod trace;

mod macros;

pub use event::{Event, JsonlSink, MemorySink, Sink, StderrSink};
pub use flight::FlightEvent;
pub use level::Level;
pub use metrics::{Counter, Gauge, Histogram, MetricsSnapshot};
pub use span::Span;
pub use trace::{SpanNode, SpanRecord, TraceContext, TraceSpan};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// `true` when the `compile-off` feature removed all instrumentation.
///
/// The macros branch on this constant, so with the feature enabled every
/// event, span, and metric update folds away at compile time.
pub const COMPILED_OUT: bool = cfg!(feature = "compile-off");

/// Environment variable holding the level filter (e.g. `debug` or
/// `info,core.sampler=trace`).
pub const LOG_ENV: &str = "AMPEREBLEED_LOG";

/// Environment variable naming a JSONL trace file to append events to.
pub const TRACE_FILE_ENV: &str = "AMPEREBLEED_TRACE_FILE";

/// Environment variable naming the JSONL file [`flight::auto_dump`]
/// appends to when the serve layer hits a deadline, sheds, or panics.
pub const FLIGHT_FILE_ENV: &str = "AMPEREBLEED_FLIGHT_FILE";

/// The process-global observability runtime: filter plus sink list.
struct Runtime {
    /// Default level for targets without an override (0 = off).
    default_level: AtomicU8,
    /// Per-target-prefix overrides, most specific match wins.
    overrides: RwLock<Vec<(String, u8)>>,
    /// Cached maximum of default and all overrides — the fast-path gate.
    max_level: AtomicU8,
    sinks: RwLock<Vec<Arc<dyn Sink>>>,
}

static RUNTIME: OnceLock<Runtime> = OnceLock::new();

fn runtime() -> &'static Runtime {
    RUNTIME.get_or_init(Runtime::from_env)
}

impl Runtime {
    fn from_env() -> Runtime {
        clock::init();
        let spec = std::env::var(LOG_ENV).unwrap_or_default();
        let (default_level, overrides) = parse_filter(&spec);
        let max = overrides
            .iter()
            .map(|&(_, l)| l)
            .fold(default_level, u8::max);
        let mut sinks: Vec<Arc<dyn Sink>> = vec![Arc::new(StderrSink::new())];
        let mut open_error = None;
        if let Ok(path) = std::env::var(TRACE_FILE_ENV) {
            match JsonlSink::create(&path) {
                Ok(sink) => sinks.push(Arc::new(sink)),
                Err(e) => open_error = Some((path, e)),
            }
        }
        let rt = Runtime {
            default_level: AtomicU8::new(default_level),
            overrides: RwLock::new(overrides),
            max_level: AtomicU8::new(max),
            sinks: RwLock::new(sinks),
        };
        if let Some((path, e)) = open_error {
            // The stderr sink is installed, so the failure is visible.
            rt.dispatch(
                Event::new(Level::Error, "obs", "failed to open trace file")
                    .field("path", path)
                    .field("error", e.to_string()),
            );
        }
        rt
    }

    fn dispatch(&self, event: Event) {
        event::count_event(event.level);
        let sinks = self.sinks.read().expect("sink list poisoned");
        for sink in sinks.iter() {
            sink.record(&event);
        }
    }

    fn recompute_max(&self) {
        let overrides = self.overrides.read().expect("override list poisoned");
        let max = overrides
            .iter()
            .map(|&(_, l)| l)
            .fold(self.default_level.load(Ordering::Relaxed), u8::max);
        self.max_level.store(max, Ordering::Relaxed);
    }
}

/// Parses an `AMPEREBLEED_LOG`-style spec into `(default, overrides)`.
///
/// Unrecognized tokens are ignored; an empty spec yields the `warn`
/// default.
fn parse_filter(spec: &str) -> (u8, Vec<(String, u8)>) {
    let mut default = Level::Warn.as_u8();
    let mut overrides = Vec::new();
    for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        match token.split_once('=') {
            Some((target, level)) => {
                if let Some(l) = level::parse_filter_level(level.trim()) {
                    overrides.push((target.trim().to_owned(), l));
                }
            }
            None => {
                if let Some(l) = level::parse_filter_level(token) {
                    default = l;
                }
            }
        }
    }
    (default, overrides)
}

/// Forces runtime initialization (env parsing, sink installation, clock
/// start). Optional — every entry point initializes lazily — but calling
/// it first thing pins the wall-clock zero to process start.
pub fn init() {
    let _ = runtime();
}

/// Whether an event at `level` for `target` would reach the sinks.
///
/// This is the macro fast path: one relaxed atomic load when the level is
/// globally disabled.
pub fn enabled(level: Level, target: &str) -> bool {
    if COMPILED_OUT {
        return false;
    }
    let rt = runtime();
    let n = level.as_u8();
    if n > rt.max_level.load(Ordering::Relaxed) {
        return false;
    }
    let overrides = rt.overrides.read().expect("override list poisoned");
    let mut best: Option<(usize, u8)> = None;
    for (prefix, l) in overrides.iter() {
        // A prefix matches itself and dotted descendants, never substrings.
        let hit = target == prefix
            || (target.starts_with(prefix.as_str())
                && target.as_bytes().get(prefix.len()) == Some(&b'.'));
        if hit {
            match best {
                Some((len, _)) if len >= prefix.len() => {}
                _ => best = Some((prefix.len(), *l)),
            }
        }
    }
    let effective = best.map_or(rt.default_level.load(Ordering::Relaxed), |(_, l)| l);
    n <= effective
}

/// Replaces the filter with a single global level (clears per-target
/// overrides). `None` disables all events.
pub fn set_level(level: Option<Level>) {
    let rt = runtime();
    let n = level.map_or(0, Level::as_u8);
    rt.default_level.store(n, Ordering::Relaxed);
    rt.overrides
        .write()
        .expect("override list poisoned")
        .clear();
    rt.recompute_max();
}

/// Adds a per-target-prefix override (`target` matches itself and any
/// dotted descendant).
pub fn set_target_level(target: impl Into<String>, level: Level) {
    let rt = runtime();
    rt.overrides
        .write()
        .expect("override list poisoned")
        .push((target.into(), level.as_u8()));
    rt.recompute_max();
}

/// Installs an additional sink.
pub fn install_sink(sink: Arc<dyn Sink>) {
    runtime()
        .sinks
        .write()
        .expect("sink list poisoned")
        .push(sink);
}

/// Removes every installed sink (including the default stderr sink).
/// Mostly for tests that want full control of the sink set.
pub fn clear_sinks() {
    runtime().sinks.write().expect("sink list poisoned").clear();
}

/// Flushes every installed sink.
pub fn flush() {
    let sinks = runtime().sinks.read().expect("sink list poisoned");
    for sink in sinks.iter() {
        sink.flush();
    }
}

/// Sends a fully-built event to the sinks. Prefer the [`event!`] macro,
/// which performs the level check before constructing anything.
pub fn emit(event: Event) {
    if COMPILED_OUT {
        return;
    }
    runtime().dispatch(event);
}

/// Mirrors a [`sim_rt::pool::PoolStats`] snapshot into gauges named
/// `{prefix}.jobs_completed`, `.jobs_retried`, `.jobs_stolen`,
/// `.maps_run`, `.busy_nanos`, and `.jobs_per_sec`, so pool telemetry
/// lands in the same metrics snapshot as everything else.
pub fn record_pool_stats(prefix: &str, stats: &sim_rt::pool::PoolStats) {
    metrics::gauge(format!("{prefix}.jobs_completed")).set(stats.jobs_completed as f64);
    metrics::gauge(format!("{prefix}.jobs_retried")).set(stats.jobs_retried as f64);
    metrics::gauge(format!("{prefix}.jobs_stolen")).set(stats.jobs_stolen as f64);
    metrics::gauge(format!("{prefix}.maps_run")).set(stats.maps_run as f64);
    metrics::gauge(format!("{prefix}.busy_nanos")).set(stats.busy_nanos as f64);
    metrics::gauge(format!("{prefix}.jobs_per_sec")).set(stats.jobs_per_sec());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests here mutate the process-global filter; serialize them.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn filter_spec_parsing() {
        assert_eq!(parse_filter(""), (Level::Warn.as_u8(), vec![]));
        assert_eq!(parse_filter("debug").0, Level::Debug.as_u8());
        assert_eq!(parse_filter("off").0, 0);
        let (d, o) = parse_filter("info, core.sampler=trace ,bogus, x=nope");
        assert_eq!(d, Level::Info.as_u8());
        assert_eq!(o, vec![("core.sampler".to_owned(), Level::Trace.as_u8())]);
    }

    #[test]
    fn level_filtering_with_overrides() {
        let _guard = guard();
        set_level(Some(Level::Info));
        assert!(enabled(Level::Info, "core.campaign"));
        assert!(!enabled(Level::Debug, "core.campaign"));

        set_target_level("core.sampler", Level::Trace);
        assert!(enabled(Level::Trace, "core.sampler"));
        assert!(enabled(Level::Trace, "core.sampler.reads"));
        assert!(
            !enabled(Level::Trace, "core.samplerish"),
            "prefix must end at a dot"
        );
        assert!(
            !enabled(Level::Debug, "core.campaign"),
            "override is scoped"
        );

        set_level(None);
        assert!(!enabled(Level::Error, "core.campaign"));
        set_level(Some(Level::Warn));
    }

    #[test]
    fn memory_sink_captures_events_and_counts_levels() {
        let _guard = guard();
        set_level(Some(Level::Debug));
        let sink = Arc::new(MemorySink::new());
        install_sink(Arc::clone(&sink) as Arc<dyn Sink>);
        crate::event!(Level::Debug, "obs.test", "hello"; "k" => 7);
        crate::event!(Level::Trace, "obs.test", "filtered out");
        let events = sink.events();
        let ours: Vec<_> = events.iter().filter(|e| e.target == "obs.test").collect();
        assert_eq!(ours.len(), 1);
        assert_eq!(ours[0].message, "hello");
        assert_eq!(ours[0].fields.len(), 1);
        set_level(Some(Level::Warn));
    }
}
