//! Event severity levels and filter-spec parsing.

use std::fmt;
use std::str::FromStr;

/// Event severity, ordered from most to least severe.
///
/// Filter semantics follow the usual convention: a filter of
/// [`Level::Info`] passes `error`, `warn`, and `info` events and drops
/// `debug` and `trace`.
///
/// # Examples
///
/// ```
/// use obs::Level;
///
/// assert!(Level::Error.as_u8() < Level::Trace.as_u8());
/// assert_eq!("debug".parse::<Level>().unwrap(), Level::Debug);
/// assert_eq!(Level::Warn.to_string(), "warn");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or contract-violating conditions.
    Error = 1,
    /// Suspicious conditions the run survives (clipping, retries).
    Warn = 2,
    /// Coarse progress: campaign stages, deployments.
    Info = 3,
    /// Per-operation detail: span closures, conversions.
    Debug = 4,
    /// Hot-path detail: individual sensor reads.
    Trace = 5,
}

/// Every level, most severe first.
pub const ALL_LEVELS: [Level; 5] = [
    Level::Error,
    Level::Warn,
    Level::Info,
    Level::Debug,
    Level::Trace,
];

impl Level {
    /// Numeric verbosity (1 = error … 5 = trace); filters store 0 for
    /// "off".
    pub const fn as_u8(self) -> u8 {
        self as u8
    }

    /// Lower-case name, as it appears in `AMPEREBLEED_LOG` and sink
    /// output.
    pub const fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Level {
    type Err = ParseLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            _ => Err(ParseLevelError(s.to_owned())),
        }
    }
}

/// Error returned when a string names no [`Level`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLevelError(String);

impl fmt::Display for ParseLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown level {:?}", self.0)
    }
}

impl std::error::Error for ParseLevelError {}

/// Parses one filter token into a numeric level: a level name, or
/// `off`/`none` for 0. `None` for unrecognized tokens.
pub(crate) fn parse_filter_level(s: &str) -> Option<u8> {
    match s.to_ascii_lowercase().as_str() {
        "off" | "none" => Some(0),
        _ => s.parse::<Level>().ok().map(Level::as_u8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_by_verbosity() {
        for pair in ALL_LEVELS.windows(2) {
            assert!(pair[0] < pair[1]);
            assert!(pair[0].as_u8() < pair[1].as_u8());
        }
    }

    #[test]
    fn round_trips_through_strings() {
        for level in ALL_LEVELS {
            assert_eq!(level.as_str().parse::<Level>().unwrap(), level);
            assert_eq!(level.to_string(), level.as_str());
        }
        assert_eq!("WARNING".parse::<Level>().unwrap(), Level::Warn);
        assert!("verbose".parse::<Level>().is_err());
        let err = "verbose".parse::<Level>().unwrap_err();
        assert!(err.to_string().contains("verbose"));
    }

    #[test]
    fn filter_tokens() {
        assert_eq!(parse_filter_level("off"), Some(0));
        assert_eq!(parse_filter_level("none"), Some(0));
        assert_eq!(parse_filter_level("TRACE"), Some(5));
        assert_eq!(parse_filter_level("loud"), None);
    }
}
