//! The user-facing instrumentation macros.
//!
//! All macros are `#[macro_export]`, so they live at the crate root
//! (`obs::event!`, `obs::counter!`, …). Each one checks
//! [`crate::COMPILED_OUT`] first — a `const`, so the `compile-off` feature
//! folds the whole call site away — and the event macros check
//! [`crate::enabled`] *before* building the event, keeping disabled levels
//! at one atomic load.

/// Emits a structured event if `level` is enabled for `target`.
///
/// Forms:
///
/// ```
/// use obs::Level;
///
/// obs::event!(Level::Info, "demo.ev", "plain message");
/// obs::event!(Level::Info, "demo.ev", "with fields"; "n" => 3, "ok" => true);
/// obs::event!(Level::Info, "demo.ev", sim = 1_000, "dual timestamp"; "n" => 3);
/// ```
///
/// Field values may be anything convertible into a
/// [`sim_rt::ser::Value`] (integers, floats, bools, strings).
#[macro_export]
macro_rules! event {
    ($level:expr, $target:expr, sim = $sim:expr, $msg:expr $(; $($k:expr => $v:expr),+ $(,)?)?) => {{
        if !$crate::COMPILED_OUT {
            let __lvl = $level;
            let __target = $target;
            if $crate::enabled(__lvl, __target) {
                let __e = $crate::Event::new(__lvl, __target, $msg).sim_time_ns($sim);
                $(let __e = __e $(.field($k, $v))+;)?
                __e.emit();
            }
        }
    }};
    ($level:expr, $target:expr, $msg:expr $(; $($k:expr => $v:expr),+ $(,)?)?) => {{
        if !$crate::COMPILED_OUT {
            let __lvl = $level;
            let __target = $target;
            if $crate::enabled(__lvl, __target) {
                let __e = $crate::Event::new(__lvl, __target, $msg);
                $(let __e = __e $(.field($k, $v))+;)?
                __e.emit();
            }
        }
    }};
}

/// [`crate::event!`] at [`crate::Level::Error`].
#[macro_export]
macro_rules! error {
    ($($rest:tt)*) => { $crate::event!($crate::Level::Error, $($rest)*) };
}

/// [`crate::event!`] at [`crate::Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($rest:tt)*) => { $crate::event!($crate::Level::Warn, $($rest)*) };
}

/// [`crate::event!`] at [`crate::Level::Info`].
#[macro_export]
macro_rules! info {
    ($($rest:tt)*) => { $crate::event!($crate::Level::Info, $($rest)*) };
}

/// [`crate::event!`] at [`crate::Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($rest:tt)*) => { $crate::event!($crate::Level::Debug, $($rest)*) };
}

/// [`crate::event!`] at [`crate::Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($($rest:tt)*) => { $crate::event!($crate::Level::Trace, $($rest)*) };
}

/// Starts a [`crate::Span`] over `target`/`name`. Bind it — the span
/// closes (and records its latency) when the binding drops.
///
/// ```
/// let _span = obs::span!("demo.mac", "phase");
/// ```
#[macro_export]
macro_rules! span {
    ($target:expr, $name:expr $(,)?) => {
        $crate::Span::enter($target, $name)
    };
}

/// Returns the `&'static` [`crate::Counter`] named `$name`, caching the
/// registry lookup in a per-call-site static.
///
/// ```
/// obs::counter!("demo.mac.reads").inc();
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Counter>> =
            ::std::sync::OnceLock::new();
        &**__HANDLE.get_or_init(|| $crate::metrics::counter($name))
    }};
}

/// Returns the `&'static` [`crate::Gauge`] named `$name`, caching the
/// registry lookup in a per-call-site static.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Gauge>> =
            ::std::sync::OnceLock::new();
        &**__HANDLE.get_or_init(|| $crate::metrics::gauge($name))
    }};
}

/// Returns the `&'static` [`crate::Histogram`] named `$name`, caching the
/// registry lookup in a per-call-site static.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Histogram>> =
            ::std::sync::OnceLock::new();
        &**__HANDLE.get_or_init(|| $crate::metrics::histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use crate::Level;

    #[test]
    fn metric_macros_cache_per_site() {
        let a = crate::counter!("obs.mac.counter");
        let b = crate::counter!("obs.mac.counter");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        crate::gauge!("obs.mac.gauge").set(4.0);
        crate::histogram!("obs.mac.hist").observe(7);
        let snap = crate::metrics::snapshot();
        assert_eq!(snap.counter("obs.mac.counter"), Some(3));
        assert_eq!(snap.gauge("obs.mac.gauge"), Some(4.0));
    }

    #[test]
    fn event_macro_forms_compile_and_filter() {
        // All forms must compile; disabled levels must not panic or emit.
        crate::event!(Level::Trace, "obs.mac.ev", "plain");
        crate::event!(Level::Trace, "obs.mac.ev", "fields"; "a" => 1, "b" => "two",);
        crate::event!(Level::Trace, "obs.mac.ev", sim = 5u64, "sim stamped"; "a" => 1.5);
        crate::trace!("obs.mac.ev", "shorthand");
        crate::debug!("obs.mac.ev", "shorthand"; "k" => true);
        crate::info!("obs.mac.ev", sim = 9u64, "shorthand");
    }

    #[test]
    fn span_macro_times_a_region() {
        let span = crate::span!("obs.mac", "region");
        let d = span.close();
        assert!(d.as_nanos() > 0);
    }
}
