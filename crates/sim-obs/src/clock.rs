//! Monotonic wall-clock for event timestamps.
//!
//! Simulation code keeps its own `SimTime` nanosecond clock; this module
//! supplies the *other* half of every event's dual timestamp — real
//! elapsed nanoseconds since the observability runtime started. Using a
//! process-relative monotonic origin (instead of Unix time) keeps
//! timestamps meaningful for latency arithmetic and avoids any dependency
//! on the system calendar.
//!
//! # Examples
//!
//! ```
//! let a = obs::clock::monotonic_ns();
//! let b = obs::clock::monotonic_ns();
//! assert!(b >= a);
//! ```

use std::sync::OnceLock;
use std::time::Instant;

static START: OnceLock<Instant> = OnceLock::new();

/// Pins the clock origin to "now" if it is not already pinned. Called by
/// runtime initialization; safe to call repeatedly.
pub fn init() {
    let _ = START.get_or_init(Instant::now);
}

/// Monotonic nanoseconds elapsed since the clock origin (first
/// observability activity in the process).
pub fn monotonic_ns() -> u64 {
    START.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        init();
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a);
    }
}
