//! Span nesting across pool workers: the structural span forest of a
//! fixed job mix must be byte-identical at any pool width, because span
//! identity derives from each job's own trace context — never from
//! which worker ran it or in what order.

use sim_rt::pool::Pool;

/// Runs 32 traced jobs across `threads` workers and returns the
/// structural JSONL export of the resulting span forest.
fn forest_at(threads: usize) -> String {
    let ctxs: Vec<obs::TraceContext> = (0..32)
        .map(|i| obs::trace::TraceContext::root("worker-test", 7, i))
        .collect();
    let _ = obs::trace::take();
    let pool = Pool::new(threads);
    pool.par_map(&ctxs, |_, ctx| {
        obs::trace::scoped(*ctx, || {
            let mut outer = obs::trace::span("test.pool", "outer");
            outer.note("jobs", 1);
            let inner_a = obs::trace::span("test.pool", "inner-a");
            inner_a.close();
            let inner_b = obs::trace::span("test.pool", "inner-b");
            inner_b.close();
            outer.close();
        });
        obs::trace::record_root(*ctx, "test.pool", "job", 0, 0);
    });
    let records = obs::trace::take();
    obs::trace::forest_to_jsonl(&obs::trace::build_forest(&records))
}

#[test]
fn span_forest_is_identical_across_pool_widths() {
    obs::trace::set_recording(true);
    let serial = forest_at(1);
    assert_eq!(
        serial.lines().filter(|l| l.contains("\"depth\":0")).count(),
        32,
        "every job surfaces as its own root"
    );
    for name in ["\"job\"", "\"outer\"", "\"inner-a\"", "\"inner-b\""] {
        assert!(serial.contains(name), "forest misses {name}");
    }
    for threads in [2, 8] {
        assert_eq!(
            serial,
            forest_at(threads),
            "span forest must not depend on pool width ({threads} threads)"
        );
    }
}
