//! The lock-order watchdog's counters must surface through the metrics
//! registry: `snapshot()` refreshes the `lockorder.*` gauges from
//! `sim_rt::lockorder` before freezing.

use obs::metrics;
use sim_rt::lockorder::TrackedMutex;

#[test]
fn snapshot_exports_lockorder_gauges() {
    let a = TrackedMutex::new("obs.itest.a", ());
    let b = TrackedMutex::new("obs.itest.b", ());
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    {
        let _gb = b.lock();
        let _ga = a.lock();
    }

    let snap = metrics::snapshot();
    let acquisitions = snap
        .gauge("lockorder.acquisitions")
        .expect("lockorder.acquisitions gauge missing from snapshot");
    let edges = snap
        .gauge("lockorder.edges_tracked")
        .expect("lockorder.edges_tracked gauge missing from snapshot");
    let cycles = snap
        .gauge("lockorder.cycles_detected")
        .expect("lockorder.cycles_detected gauge missing from snapshot");

    #[cfg(debug_assertions)]
    {
        assert!(acquisitions >= 4.0, "acquisitions = {acquisitions}");
        assert!(edges >= 2.0, "edges = {edges}");
        assert!(cycles >= 1.0, "the deliberate b→a inversion must count");
    }
    #[cfg(not(debug_assertions))]
    {
        assert_eq!(acquisitions, 0.0);
        assert_eq!(edges, 0.0);
        assert_eq!(cycles, 0.0);
    }
}
