//! Statistics and signal-processing utilities for side-channel traces.
//!
//! This crate is the numerical foundation of the AmpereBleed reproduction.
//! It provides the descriptive statistics, correlation measures, linear
//! regression, histograms, group-separability analysis and trace feature
//! extraction that the paper's evaluation relies on:
//!
//! * [`Summary`] / [`OnlineStats`] — descriptive statistics over sample sets,
//!   used for every "mean of 10 k samples" step in the paper.
//! * [`pearson`] / [`spearman`] — the correlation coefficients reported in
//!   Figure 2 (current r = 0.999, voltage r = 0.958, RO r = -0.996).
//! * [`LinearFit`] — ordinary-least-squares fits, used for the
//!   "LSBs per setting" slopes in Figure 2.
//! * [`Histogram`] — distribution views used for Figure 4.
//! * [`separability`] — decides how many Hamming-weight groups a channel can
//!   distinguish (current: 17, power: ~5 in Figure 4).
//! * [`features`] — fixed-length resampling and feature vectors feeding the
//!   random-forest fingerprinting classifier (Table III).
//!
//! # Examples
//!
//! ```
//! use trace_stats::{pearson, Summary};
//!
//! let xs = [0.0, 1.0, 2.0, 3.0];
//! let ys = [1.0, 3.0, 5.0, 7.0];
//! let r = pearson(&xs, &ys).unwrap();
//! assert!((r - 1.0).abs() < 1e-12);
//!
//! let s = Summary::from_samples(&ys).unwrap();
//! assert_eq!(s.mean, 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod correlation;
mod error;
pub mod features;
mod histogram;
pub mod hypothesis;
pub mod periodicity;
mod regression;
pub mod roc;
pub mod separability;
pub mod spectrum;
mod summary;

pub use correlation::{pearson, spearman};
pub use error::StatsError;
pub use histogram::Histogram;
pub use regression::LinearFit;
pub use summary::{quantile, OnlineStats, Summary};

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, StatsError>;
