use std::fmt;

/// Error type for statistical computations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StatsError {
    /// The input slice was empty where at least one sample is required.
    Empty,
    /// The two inputs must have the same length but did not.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// A computation requires non-zero variance but the input is constant.
    ZeroVariance,
    /// A parameter was outside its valid domain.
    InvalidParameter(&'static str),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::Empty => write!(f, "input sample set is empty"),
            StatsError::LengthMismatch { left, right } => {
                write!(f, "input lengths differ: {left} vs {right}")
            }
            StatsError::ZeroVariance => write!(f, "input has zero variance"),
            StatsError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        assert_eq!(StatsError::Empty.to_string(), "input sample set is empty");
        assert_eq!(
            StatsError::LengthMismatch { left: 3, right: 5 }.to_string(),
            "input lengths differ: 3 vs 5"
        );
        assert_eq!(
            StatsError::ZeroVariance.to_string(),
            "input has zero variance"
        );
        assert_eq!(
            StatsError::InvalidParameter("bins").to_string(),
            "invalid parameter: bins"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
