//! Feature extraction for side-channel trace classification.
//!
//! The fingerprinting attack (Table III) feeds fixed-length feature vectors
//! to a random forest. Raw hwmon traces have data-dependent lengths (the
//! victim duration varies from 1 s to 5 s), so they are resampled onto a
//! fixed grid and augmented with summary statistics before classification.

use crate::{Result, StatsError, Summary};

/// Resamples `trace` onto `len` points by linear interpolation.
///
/// The output spans the full input; for `len == 1` the mean is returned.
///
/// # Errors
///
/// * [`StatsError::Empty`] if `trace` is empty.
/// * [`StatsError::InvalidParameter`] if `len == 0`.
///
/// # Examples
///
/// ```
/// let up = trace_stats::features::resample(&[0.0, 2.0], 3).unwrap();
/// assert_eq!(up, vec![0.0, 1.0, 2.0]);
/// ```
pub fn resample(trace: &[f64], len: usize) -> Result<Vec<f64>> {
    if trace.is_empty() {
        return Err(StatsError::Empty);
    }
    if len == 0 {
        return Err(StatsError::InvalidParameter(
            "resample length must be non-zero",
        ));
    }
    if len == 1 {
        return Ok(vec![trace.iter().sum::<f64>() / trace.len() as f64]);
    }
    if trace.len() == 1 {
        return Ok(vec![trace[0]; len]);
    }
    let step = (trace.len() - 1) as f64 / (len - 1) as f64;
    Ok((0..len)
        .map(|i| {
            let pos = i as f64 * step;
            let lo = pos.floor() as usize;
            let hi = (lo + 1).min(trace.len() - 1);
            let frac = pos - lo as f64;
            trace[lo] * (1.0 - frac) + trace[hi] * frac
        })
        .collect())
}

/// Normalizes a vector to zero mean and unit variance in place.
///
/// Constant vectors are centered but left with zero spread; this mirrors
/// what a classifier sees from a flat (information-free) voltage trace.
pub fn standardize(values: &mut [f64]) {
    if values.is_empty() {
        return;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let std = var.sqrt();
    for v in values.iter_mut() {
        *v -= mean;
        if std > 0.0 {
            *v /= std;
        }
    }
}

/// Builds the classification feature vector used by the fingerprinting
/// attack: a fixed-length resampled trace plus global summary statistics
/// (mean, std, min, max, median, peak-to-peak), mean absolute first
/// difference, the dominant period estimated by autocorrelation (0 when
/// aperiodic) — the victim's per-inference latency leaks straight into
/// this feature — plus two spectral features (flatness and the dominant
/// bin's normalized position).
///
/// The *raw* trace amplitude is preserved (no standardization): absolute
/// current levels are themselves discriminative between DNN models.
///
/// # Errors
///
/// Propagates [`resample`] errors.
///
/// # Examples
///
/// ```
/// let f = trace_stats::features::feature_vector(&[1.0, 2.0, 3.0, 4.0], 8).unwrap();
/// assert_eq!(f.len(), 8 + 10);
/// ```
pub fn feature_vector(trace: &[f64], resample_len: usize) -> Result<Vec<f64>> {
    let mut features = resample(trace, resample_len)?;
    let summary = Summary::from_samples(trace)?;
    features.push(summary.mean);
    features.push(summary.std_dev);
    features.push(summary.min);
    features.push(summary.max);
    features.push(summary.median);
    features.push(summary.range());
    features.push(mean_abs_diff(trace));
    let period = if trace.len() >= 8 {
        crate::periodicity::estimate_period(trace, trace.len() / 2)
            .ok()
            .flatten()
            .unwrap_or(0)
    } else {
        0
    };
    features.push(period as f64);
    // Spectral features: flatness (tone vs. noise) and the dominant bin's
    // normalized position (rate signature, sample-rate agnostic).
    let flatness = crate::spectrum::spectral_flatness(trace).unwrap_or(1.0);
    features.push(flatness);
    let dominant_rel = crate::spectrum::power_spectrum(trace)
        .ok()
        .and_then(|spec| {
            let (bin, power) =
                spec.iter()
                    .enumerate()
                    .skip(1)
                    .fold(
                        (0usize, 0.0f64),
                        |acc, (i, &p)| if p > acc.1 { (i, p) } else { acc },
                    );
            (power > 0.0).then(|| bin as f64 / spec.len() as f64)
        })
        .unwrap_or(0.0);
    features.push(dominant_rel);
    Ok(features)
}

/// Mean absolute first difference of a trace; zero for constant traces.
pub fn mean_abs_diff(trace: &[f64]) -> f64 {
    if trace.len() < 2 {
        return 0.0;
    }
    trace.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (trace.len() - 1) as f64
}

/// Truncates a trace to the samples collected within `duration_s` seconds
/// given a sampling period of `period_s` seconds. At least one sample is
/// always retained.
///
/// This implements the Table III duration sweep (1 s, 2 s, ... 5 s) over
/// full-length captures.
pub fn truncate_to_duration(trace: &[f64], period_s: f64, duration_s: f64) -> &[f64] {
    if trace.is_empty() || period_s <= 0.0 {
        return trace;
    }
    let n = ((duration_s / period_s).floor() as usize).clamp(1, trace.len());
    &trace[..n]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resample_identity_when_same_length() {
        let xs = [1.0, 5.0, 2.0, 8.0];
        assert_eq!(resample(&xs, 4).unwrap(), xs.to_vec());
    }

    #[test]
    fn resample_downsamples_preserving_endpoints() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys = resample(&xs, 10).unwrap();
        assert_eq!(ys.len(), 10);
        assert_eq!(ys[0], 0.0);
        assert_eq!(ys[9], 99.0);
    }

    #[test]
    fn resample_single_sample_repeats() {
        assert_eq!(resample(&[7.0], 3).unwrap(), vec![7.0, 7.0, 7.0]);
    }

    #[test]
    fn resample_to_one_returns_mean() {
        assert_eq!(resample(&[1.0, 3.0], 1).unwrap(), vec![2.0]);
    }

    #[test]
    fn resample_rejects_bad_inputs() {
        assert!(resample(&[], 4).is_err());
        assert!(resample(&[1.0], 0).is_err());
    }

    #[test]
    fn standardize_produces_zero_mean_unit_var() {
        let mut xs = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        standardize(&mut xs);
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|v| v * v).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn standardize_constant_vector_is_centered() {
        let mut xs = vec![3.0; 4];
        standardize(&mut xs);
        assert!(xs.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn feature_vector_has_expected_length() {
        let f = feature_vector(&[0.0, 1.0, 0.0, 1.0], 16).unwrap();
        assert_eq!(f.len(), 16 + 10);
    }

    #[test]
    fn feature_vector_captures_periodicity() {
        let wave: Vec<f64> = (0..120)
            .map(|i| if (i % 12) < 6 { 10.0 } else { 0.0 })
            .collect();
        let f = feature_vector(&wave, 8).unwrap();
        assert_eq!(f[8 + 7], 12.0, "period feature");
        assert!(f[8 + 8] < 0.3, "square wave is tonal, not flat");
        assert!(f[8 + 9] > 0.0, "dominant bin present");
    }

    #[test]
    fn mean_abs_diff_of_constant_is_zero() {
        assert_eq!(mean_abs_diff(&[4.0; 10]), 0.0);
        assert_eq!(mean_abs_diff(&[4.0]), 0.0);
    }

    #[test]
    fn truncate_duration_picks_prefix() {
        let xs: Vec<f64> = (0..143).map(|i| i as f64).collect();
        // 35 ms period, 2 s duration -> 57 samples
        let t = truncate_to_duration(&xs, 0.035, 2.0);
        assert_eq!(t.len(), 57);
        let full = truncate_to_duration(&xs, 0.035, 100.0);
        assert_eq!(full.len(), xs.len());
        let one = truncate_to_duration(&xs, 0.035, 0.0);
        assert_eq!(one.len(), 1);
    }

    sim_rt::prop_check! {
        fn resample_bounded_by_input_range(
            xs in sim_rt::check::vec_of(-1e3f64..1e3, 1..100),
            len in 1usize..200
        ) {
            let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let ys = resample(&xs, len).unwrap();
            assert_eq!(ys.len(), len);
            for y in ys {
                assert!(y >= min - 1e-9 && y <= max + 1e-9);
            }
        }

        fn feature_vector_is_deterministic(
            xs in sim_rt::check::vec_of(-1e3f64..1e3, 1..50)
        ) {
            let a = feature_vector(&xs, 8).unwrap();
            let b = feature_vector(&xs, 8).unwrap();
            assert_eq!(a, b);
        }
    }
}
