//! Group-separability analysis for quantized side-channel observations.
//!
//! Figure 4 of the paper shows that the FPGA *current* channel separates all
//! 17 RSA key Hamming-weight groups while the *power* channel — truncated to
//! a 25 mW LSB — collapses them into roughly 5 groups. This module provides
//! the clustering logic that turns per-group sample distributions into a
//! "number of distinguishable groups" verdict.

use crate::{Result, StatsError, Summary};

/// Distribution summary for one labelled group of observations.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSummary {
    /// Caller-supplied label (e.g. the key's Hamming weight).
    pub label: String,
    /// Descriptive statistics of the group's samples.
    pub summary: Summary,
}

/// Result of a separability analysis over several groups.
#[derive(Debug, Clone, PartialEq)]
pub struct Separability {
    /// Per-group summaries, in the caller's group order.
    pub groups: Vec<GroupSummary>,
    /// Cluster index assigned to each group (same order as `groups`).
    /// Groups sharing an index are statistically indistinguishable.
    pub cluster_of: Vec<usize>,
    /// Number of distinct clusters.
    pub distinguishable: usize,
}

impl Separability {
    /// Groups per cluster, as lists of group indices.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); self.distinguishable];
        for (g, &c) in self.cluster_of.iter().enumerate() {
            out[c].push(g);
        }
        out
    }
}

/// Analyzes whether labelled sample groups are pairwise distinguishable.
///
/// Two *adjacent* groups (in the caller-supplied order, which should be the
/// natural ordering of the underlying secret, e.g. increasing Hamming
/// weight) are merged into one cluster when the difference of their means is
/// smaller than `z * pooled standard error` — i.e. when a mean-difference
/// test at roughly the given z-score cannot tell them apart.
///
/// # Errors
///
/// * [`StatsError::Empty`] if `groups` is empty or any group is empty.
/// * [`StatsError::InvalidParameter`] if `z` is not positive.
///
/// # Examples
///
/// ```
/// use trace_stats::separability::separability;
///
/// let low: Vec<f64> = (0..100).map(|i| 10.0 + (i % 3) as f64 * 0.01).collect();
/// let high: Vec<f64> = (0..100).map(|i| 20.0 + (i % 3) as f64 * 0.01).collect();
/// let result = separability(&[("low", low.as_slice()), ("high", &high)], 3.0).unwrap();
/// assert_eq!(result.distinguishable, 2);
/// ```
pub fn separability(groups: &[(&str, &[f64])], z: f64) -> Result<Separability> {
    separability_quantized(groups, z, 0.0)
}

/// Like [`separability`], but for channels quantized to a known
/// `resolution` (the channel's LSB): a group only starts a new cluster when
/// its mean has moved at least `max(z * SE, resolution)` away from the
/// current cluster's first group. This is what collapses the paper's 17
/// RSA Hamming-weight groups to ~5 on the 25 mW power channel while the
/// 1 mA current channel keeps all 17 apart.
///
/// # Errors
///
/// Same conditions as [`separability`]; additionally rejects a negative
/// `resolution`.
pub fn separability_quantized(
    groups: &[(&str, &[f64])],
    z: f64,
    resolution: f64,
) -> Result<Separability> {
    if groups.is_empty() {
        return Err(StatsError::Empty);
    }
    if z <= 0.0 {
        return Err(StatsError::InvalidParameter("z must be positive"));
    }
    if resolution < 0.0 {
        return Err(StatsError::InvalidParameter(
            "resolution must be non-negative",
        ));
    }
    let summaries: Vec<GroupSummary> = groups
        .iter()
        .map(|(label, samples)| {
            Ok(GroupSummary {
                label: (*label).to_owned(),
                summary: Summary::from_samples(samples)?,
            })
        })
        .collect::<Result<_>>()?;

    let mut cluster_of = Vec::with_capacity(summaries.len());
    let mut current = 0usize;
    let mut cluster_start = &summaries[0].summary;
    cluster_of.push(0);
    for g in &summaries[1..] {
        if means_distinguishable(cluster_start, &g.summary, z, resolution) {
            current += 1;
            cluster_start = &g.summary;
        }
        cluster_of.push(current);
    }
    Ok(Separability {
        groups: summaries,
        cluster_of,
        distinguishable: current + 1,
    })
}

/// Mean-difference test against both the statistical and the quantization
/// floor.
fn means_distinguishable(a: &Summary, b: &Summary, z: f64, resolution: f64) -> bool {
    let se = (a.variance / a.count as f64 + b.variance / b.count as f64).sqrt();
    let delta = (a.mean - b.mean).abs();
    if se == 0.0 && resolution == 0.0 {
        // Noise-free unquantized channels: distinguishable iff the latched
        // values differ at all.
        return a.mean != b.mean;
    }
    delta > (z * se).max(resolution)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spread(center: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| center + ((i % 7) as f64 - 3.0) * 0.1)
            .collect()
    }

    #[test]
    fn well_separated_groups_all_distinguishable() {
        let a = spread(0.0, 50);
        let b = spread(10.0, 50);
        let c = spread(20.0, 50);
        let r = separability(&[("a", &a), ("b", &b), ("c", &c)], 3.0).unwrap();
        assert_eq!(r.distinguishable, 3);
        assert_eq!(r.cluster_of, vec![0, 1, 2]);
    }

    #[test]
    fn identical_groups_collapse() {
        let a = spread(5.0, 50);
        let r = separability(&[("a", &a), ("b", &a), ("c", &a)], 3.0).unwrap();
        assert_eq!(r.distinguishable, 1);
    }

    #[test]
    fn quantized_channel_merges_neighbors() {
        // Simulate a 25-unit LSB: groups 0..5 quantize to only two values.
        let groups: Vec<Vec<f64>> = (0..5)
            .map(|g| {
                let raw = g as f64 * 8.0; // 8 units apart, LSB = 25
                let q = (raw / 25.0).round() * 25.0;
                vec![q; 40]
            })
            .collect();
        let refs: Vec<(&str, &[f64])> = ["g0", "g1", "g2", "g3", "g4"]
            .iter()
            .zip(&groups)
            .map(|(l, g)| (*l, g.as_slice()))
            .collect();
        let r = separability(&refs, 3.0).unwrap();
        assert!(r.distinguishable < 5, "quantization must merge groups");
        assert!(r.distinguishable >= 2);
    }

    #[test]
    fn clusters_partition_groups() {
        let a = spread(0.0, 30);
        let b = spread(0.01, 30);
        let c = spread(50.0, 30);
        let r = separability(&[("a", &a), ("b", &b), ("c", &c)], 3.0).unwrap();
        let clusters = r.clusters();
        let total: usize = clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 3);
        assert_eq!(clusters.len(), r.distinguishable);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(separability(&[], 3.0).is_err());
        let a = spread(0.0, 10);
        assert!(separability(&[("a", &a)], 0.0).is_err());
        assert!(separability(&[("a", &[])], 3.0).is_err());
    }

    #[test]
    fn single_group_is_one_cluster() {
        let a = spread(1.0, 10);
        let r = separability(&[("a", &a)], 3.0).unwrap();
        assert_eq!(r.distinguishable, 1);
        assert_eq!(r.cluster_of, vec![0]);
    }

    sim_rt::prop_check! {
        fn distinguishable_never_exceeds_group_count(
            centers in sim_rt::check::vec_of(-100.0f64..100.0, 1..10),
            z in 0.5f64..5.0
        ) {
            let groups: Vec<Vec<f64>> = centers.iter().map(|&c| spread(c, 20)).collect();
            let labels: Vec<String> = (0..groups.len()).map(|i| format!("g{i}")).collect();
            let refs: Vec<(&str, &[f64])> = labels
                .iter()
                .zip(&groups)
                .map(|(l, g)| (l.as_str(), g.as_slice()))
                .collect();
            let r = separability(&refs, z).unwrap();
            assert!(r.distinguishable >= 1);
            assert!(r.distinguishable <= groups.len());
            assert_eq!(r.cluster_of.len(), groups.len());
        }
    }
}
