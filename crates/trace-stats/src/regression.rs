use crate::{Result, StatsError};

/// Ordinary-least-squares fit `y = slope * x + intercept`.
///
/// Figure 2 of the paper reports "the linear function for each type of
/// measurements"; the slope of the current channel (~40 LSB per activation
/// setting) versus the voltage channel (~0.006) quantifies the resolution
/// advantage that makes AmpereBleed work.
///
/// # Examples
///
/// ```
/// use trace_stats::LinearFit;
///
/// let xs = [0.0, 1.0, 2.0, 3.0];
/// let ys = [1.0, 3.0, 5.0, 7.0];
/// let fit = LinearFit::fit(&xs, &ys).unwrap();
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// assert!((fit.r_squared - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
    /// Standard deviation of the residuals.
    pub residual_std: f64,
}

impl LinearFit {
    /// Fits a least-squares line through `(xs[i], ys[i])`.
    ///
    /// # Errors
    ///
    /// * [`StatsError::LengthMismatch`] if the inputs differ in length.
    /// * [`StatsError::Empty`] with fewer than two points.
    /// * [`StatsError::ZeroVariance`] if all `xs` are identical.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self> {
        if xs.len() != ys.len() {
            return Err(StatsError::LengthMismatch {
                left: xs.len(),
                right: ys.len(),
            });
        }
        if xs.len() < 2 {
            return Err(StatsError::Empty);
        }
        let n = xs.len() as f64;
        let mean_x = xs.iter().sum::<f64>() / n;
        let mean_y = ys.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            let dx = x - mean_x;
            let dy = y - mean_y;
            sxx += dx * dx;
            sxy += dx * dy;
            syy += dy * dy;
        }
        if sxx == 0.0 {
            return Err(StatsError::ZeroVariance);
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let mut ss_res = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            let e = y - (slope * x + intercept);
            ss_res += e * e;
        }
        let r_squared = if syy == 0.0 { 1.0 } else { 1.0 - ss_res / syy };
        Ok(LinearFit {
            slope,
            intercept,
            r_squared,
            residual_std: (ss_res / n).sqrt(),
        })
    }

    /// Predicts `y` for a given `x` from the fitted line.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_exact_line() {
        let xs: Vec<f64> = (0..10).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -3.0 * x + 7.0).collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        assert!((fit.slope + 3.0).abs() < 1e-12);
        assert!((fit.intercept - 7.0).abs() < 1e-12);
        assert!(fit.residual_std < 1e-9);
    }

    #[test]
    fn r_squared_of_constant_target_is_one() {
        // syy == 0: the line fits perfectly (slope 0).
        let fit = LinearFit::fit(&[0.0, 1.0, 2.0], &[4.0, 4.0, 4.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(matches!(
            LinearFit::fit(&[1.0, 2.0], &[1.0]),
            Err(StatsError::LengthMismatch { .. })
        ));
        assert_eq!(LinearFit::fit(&[1.0], &[1.0]), Err(StatsError::Empty));
        assert_eq!(
            LinearFit::fit(&[2.0, 2.0], &[1.0, 3.0]),
            Err(StatsError::ZeroVariance)
        );
    }

    #[test]
    fn predict_uses_fit() {
        let fit = LinearFit::fit(&[0.0, 1.0], &[1.0, 3.0]).unwrap();
        assert!((fit.predict(2.0) - 5.0).abs() < 1e-12);
    }

    sim_rt::prop_check! {
        fn recovers_noiseless_parameters(
            slope in -100.0f64..100.0,
            intercept in -100.0f64..100.0,
            n in 2usize..50
        ) {
            let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
            let fit = LinearFit::fit(&xs, &ys).unwrap();
            assert!((fit.slope - slope).abs() < 1e-6);
            assert!((fit.intercept - intercept).abs() < 1e-6);
        }

        fn r_squared_in_unit_interval(
            xy in sim_rt::check::vec_of((-1e3f64..1e3, -1e3f64..1e3), 3..50)
        ) {
            let xs: Vec<f64> = xy.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = xy.iter().map(|p| p.1).collect();
            if let Ok(fit) = LinearFit::fit(&xs, &ys) {
                assert!((-1e-9..=1.0 + 1e-9).contains(&fit.r_squared));
            }
        }
    }
}
