//! ROC-style success-vs-strength curves for attack-vs-defense sweeps.
//!
//! A `defend` sweep measures one attack's success metric (key-recovery
//! rate, fingerprint accuracy, covert capacity) at increasing defense
//! strengths. This module turns those points into the report artifact: a
//! validated curve with the area under it (mean residual attack success —
//! 1.0 means the defense never helped, 0.0 means it always killed the
//! attack) and the interpolated strength at which success first drops
//! below a target — the "how hard must I defend" number an operator reads
//! off the ROC.

use crate::{Result, StatsError};

/// One measured sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Defense strength in `[0, 1]`.
    pub strength: f64,
    /// Attack success metric in `[0, 1]` at that strength.
    pub success: f64,
}

/// A validated success-vs-strength curve.
#[derive(Debug, Clone, PartialEq)]
pub struct RocCurve {
    points: Vec<RocPoint>,
}

impl RocCurve {
    /// Builds a curve from `(strength, success)` pairs.
    ///
    /// # Errors
    ///
    /// * [`StatsError::Empty`] for no points.
    /// * [`StatsError::InvalidParameter`] for non-finite values, values
    ///   outside `[0, 1]`, or strengths that are not strictly increasing.
    pub fn new(points: Vec<RocPoint>) -> Result<RocCurve> {
        if points.is_empty() {
            return Err(StatsError::Empty);
        }
        for p in &points {
            if !p.strength.is_finite() || !(0.0..=1.0).contains(&p.strength) {
                return Err(StatsError::InvalidParameter("strength outside [0, 1]"));
            }
            if !p.success.is_finite() || !(0.0..=1.0).contains(&p.success) {
                return Err(StatsError::InvalidParameter("success outside [0, 1]"));
            }
        }
        if points.windows(2).any(|w| w[1].strength <= w[0].strength) {
            return Err(StatsError::InvalidParameter(
                "strengths must be strictly increasing",
            ));
        }
        Ok(RocCurve { points })
    }

    /// The sweep points, in increasing strength order.
    pub fn points(&self) -> &[RocPoint] {
        &self.points
    }

    /// Area under the curve, normalized by the swept strength span
    /// (trapezoid rule) — the mean residual attack success across the
    /// sweep. A single-point curve returns that point's success.
    pub fn auc(&self) -> f64 {
        let span = self.points.last().unwrap().strength - self.points[0].strength;
        if span <= 0.0 {
            return self.points[0].success;
        }
        let area: f64 = self
            .points
            .windows(2)
            .map(|w| (w[1].strength - w[0].strength) * (w[0].success + w[1].success) / 2.0)
            .sum();
        area / span
    }

    /// The smallest strength (linearly interpolated between sweep points)
    /// at which success drops to `target` or below; `None` if the sweep
    /// never gets there.
    pub fn strength_to_suppress(&self, target: f64) -> Option<f64> {
        let first = self.points[0];
        if first.success <= target {
            return Some(first.strength);
        }
        for w in self.points.windows(2) {
            let (a, b) = (w[0], w[1]);
            if b.success <= target {
                // success is above target at `a`, at-or-below at `b`:
                // interpolate the crossing.
                let run = b.success - a.success;
                if run.abs() < f64::EPSILON {
                    return Some(b.strength);
                }
                let t = (target - a.success) / run;
                return Some(a.strength + t.clamp(0.0, 1.0) * (b.strength - a.strength));
            }
        }
        None
    }

    /// Renders the deterministic fixed-width report table the `defend`
    /// verb emits — the artifact determinism tests pin byte-for-byte.
    pub fn render_table(&self, attack: &str, stack: &str, baseline_success: f64) -> String {
        let mut out = String::new();
        out.push_str(&format!("defend sweep        : {attack} vs {stack}\n"));
        out.push_str(&format!("baseline success    : {baseline_success:.4}\n"));
        for p in &self.points {
            out.push_str(&format!(
                "  strength {:.2}      : success {:.4}\n",
                p.strength, p.success
            ));
        }
        out.push_str(&format!("auc                 : {:.4}\n", self.auc()));
        match self.strength_to_suppress(baseline_success / 2.0) {
            Some(s) => out.push_str(&format!("strength to halve   : {s:.2}\n")),
            None => out.push_str("strength to halve   : not reached\n"),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(pairs: &[(f64, f64)]) -> RocCurve {
        RocCurve::new(
            pairs
                .iter()
                .map(|&(strength, success)| RocPoint { strength, success })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_input() {
        assert!(matches!(RocCurve::new(vec![]), Err(StatsError::Empty)));
        let bad = vec![
            RocPoint {
                strength: 0.5,
                success: 1.0,
            },
            RocPoint {
                strength: 0.5,
                success: 0.5,
            },
        ];
        assert!(RocCurve::new(bad).is_err());
        assert!(RocCurve::new(vec![RocPoint {
            strength: 1.5,
            success: 0.0
        }])
        .is_err());
        assert!(RocCurve::new(vec![RocPoint {
            strength: 0.5,
            success: f64::NAN
        }])
        .is_err());
    }

    #[test]
    fn auc_of_linear_decay_is_half() {
        let c = curve(&[(0.0, 1.0), (1.0, 0.0)]);
        assert!((c.auc() - 0.5).abs() < 1e-12);
        let flat = curve(&[(0.0, 0.8), (0.5, 0.8), (1.0, 0.8)]);
        assert!((flat.auc() - 0.8).abs() < 1e-12);
        let single = curve(&[(0.3, 0.7)]);
        assert_eq!(single.auc(), 0.7);
    }

    #[test]
    fn suppression_strength_interpolates() {
        let c = curve(&[(0.0, 1.0), (1.0, 0.0)]);
        let s = c.strength_to_suppress(0.5).unwrap();
        assert!((s - 0.5).abs() < 1e-12);
        // Already at or below target at the first point.
        let low = curve(&[(0.0, 0.2), (1.0, 0.1)]);
        assert_eq!(low.strength_to_suppress(0.5), Some(0.0));
        // Never reached.
        let high = curve(&[(0.0, 1.0), (1.0, 0.9)]);
        assert_eq!(high.strength_to_suppress(0.5), None);
    }

    #[test]
    fn table_is_stable() {
        let c = curve(&[(0.0, 1.0), (0.5, 0.6), (1.0, 0.1)]);
        let t = c.render_table("rsa", "jitter:1.00", 1.0);
        assert!(t.contains("defend sweep        : rsa vs jitter:1.00"));
        assert!(t.contains("strength 0.50      : success 0.6000"));
        assert!(t.contains("auc"));
        assert_eq!(t, c.render_table("rsa", "jitter:1.00", 1.0));
    }
}
