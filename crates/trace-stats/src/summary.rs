use crate::{Result, StatsError};

/// Descriptive statistics over a finite sample set.
///
/// Used throughout the reproduction wherever the paper takes "the mean of
/// these samples as the final value" (Section IV-A) or inspects a
/// distribution (Figure 4).
///
/// # Examples
///
/// ```
/// use trace_stats::Summary;
///
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// assert_eq!(s.count, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample variance (n-1 denominator); 0 for a single sample.
    pub variance: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (average of the two central order statistics for even counts).
    pub median: f64,
}

impl Summary {
    /// Computes descriptive statistics for `samples`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] if `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Result<Self> {
        if samples.is_empty() {
            return Err(StatsError::Empty);
        }
        let mut acc = OnlineStats::new();
        for &x in samples {
            acc.push(x);
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            let hi = sorted.len() / 2;
            (sorted[hi - 1] + sorted[hi]) / 2.0
        };
        Ok(Summary {
            count: acc.count(),
            mean: acc.mean(),
            variance: acc.variance(),
            std_dev: acc.variance().sqrt(),
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            median,
        })
    }

    /// Peak-to-peak range (`max - min`).
    ///
    /// This is the "variation" magnitude the paper compares between the
    /// hwmon current channel and the RO baseline (the 261x factor).
    pub fn range(&self) -> f64 {
        self.max - self.min
    }

    /// Coefficient of variation (`std_dev / mean`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::ZeroVariance`] if the mean is zero.
    pub fn coefficient_of_variation(&self) -> Result<f64> {
        if self.mean == 0.0 {
            return Err(StatsError::ZeroVariance);
        }
        Ok(self.std_dev / self.mean)
    }

    /// Relative peak-to-peak variation (`range / |mean|`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::ZeroVariance`] if the mean is zero.
    pub fn relative_range(&self) -> Result<f64> {
        if self.mean == 0.0 {
            return Err(StatsError::ZeroVariance);
        }
        Ok(self.range() / self.mean.abs())
    }
}

/// Numerically stable single-pass accumulator (Welford's algorithm).
///
/// Suitable for streaming sensor samples without buffering the full trace.
///
/// # Examples
///
/// ```
/// use trace_stats::OnlineStats;
///
/// let mut acc = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.mean(), 5.0);
/// assert!((acc.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples accumulated so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Current mean; 0 before any sample is pushed.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; 0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (n denominator); 0 before any sample.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen, or `None` before any sample.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample seen, or `None` before any sample.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Computes the `q`-quantile (0 <= q <= 1) of `samples` by linear
/// interpolation between order statistics.
///
/// # Errors
///
/// Returns [`StatsError::Empty`] for empty input and
/// [`StatsError::InvalidParameter`] when `q` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
/// assert_eq!(trace_stats::quantile(&xs, 0.5).unwrap(), 3.0);
/// ```
pub fn quantile(samples: &[f64], q: f64) -> Result<f64> {
    if samples.is_empty() {
        return Err(StatsError::Empty);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter("quantile must be in [0, 1]"));
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_single_sample() {
        let s = Summary::from_samples(&[42.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.range(), 0.0);
    }

    #[test]
    fn summary_rejects_empty() {
        assert_eq!(Summary::from_samples(&[]), Err(StatsError::Empty));
    }

    #[test]
    fn summary_even_count_median_interpolates() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 10.0]).unwrap();
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn summary_variance_matches_textbook() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn relative_range_and_cv() {
        let s = Summary::from_samples(&[9.0, 10.0, 11.0]).unwrap();
        assert!((s.relative_range().unwrap() - 0.2).abs() < 1e-12);
        assert!(s.coefficient_of_variation().unwrap() > 0.0);
        let zero = Summary::from_samples(&[-1.0, 1.0]).unwrap();
        assert_eq!(zero.relative_range(), Err(StatsError::ZeroVariance));
    }

    #[test]
    fn online_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn online_merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn quantile_endpoints_are_min_max() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 5.0);
    }

    #[test]
    fn quantile_rejects_bad_inputs() {
        assert_eq!(quantile(&[], 0.5), Err(StatsError::Empty));
        assert!(matches!(
            quantile(&[1.0], 1.5),
            Err(StatsError::InvalidParameter(_))
        ));
    }

    sim_rt::prop_check! {
        fn online_stats_match_summary(xs in sim_rt::check::vec_of(-1e6f64..1e6, 1..200)) {
            let mut acc = OnlineStats::new();
            for &x in &xs {
                acc.push(x);
            }
            let s = Summary::from_samples(&xs).unwrap();
            assert!((acc.mean() - s.mean).abs() < 1e-6);
            assert!((acc.variance() - s.variance).abs() / (1.0 + s.variance) < 1e-6);
            assert_eq!(acc.min().unwrap(), s.min);
            assert_eq!(acc.max().unwrap(), s.max);
        }

        fn quantile_is_monotone(xs in sim_rt::check::vec_of(-1e3f64..1e3, 2..100),
                                 a in 0.0f64..1.0, b in 0.0f64..1.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let ql = quantile(&xs, lo).unwrap();
            let qh = quantile(&xs, hi).unwrap();
            assert!(ql <= qh + 1e-12);
        }

        fn mean_bounded_by_min_max(xs in sim_rt::check::vec_of(-1e6f64..1e6, 1..100)) {
            let s = Summary::from_samples(&xs).unwrap();
            assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        }
    }
}
