use crate::{Result, StatsError};

/// Fixed-bin histogram over a closed interval.
///
/// Used to render the Figure 4 distributions of FPGA current and power
/// during RSA-1024 execution at each Hamming weight.
///
/// # Examples
///
/// ```
/// use trace_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// for x in [1.0, 1.5, 9.9, 5.0] {
///     h.add(x);
/// }
/// assert_eq!(h.counts()[0], 2); // 1.0 and 1.5 fall in [0, 2)
/// assert_eq!(h.total(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Creates a histogram spanning `[lo, hi]` with `bins` equal-width bins.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `bins == 0` or
    /// `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if bins == 0 {
            return Err(StatsError::InvalidParameter("bins must be non-zero"));
        }
        if lo >= hi {
            return Err(StatsError::InvalidParameter("lo must be less than hi"));
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            below: 0,
            above: 0,
        })
    }

    /// Builds a histogram from `samples`, spanning their min..max range.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] for empty input and
    /// [`StatsError::InvalidParameter`] if `bins == 0`. Constant input
    /// produces a single fully-populated central bin.
    pub fn from_samples(samples: &[f64], bins: usize) -> Result<Self> {
        if samples.is_empty() {
            return Err(StatsError::Empty);
        }
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let (lo, hi) = if min == max {
            (min - 0.5, max + 0.5)
        } else {
            (min, max)
        };
        let mut h = Histogram::new(lo, hi, bins)?;
        for &x in samples {
            h.add(x);
        }
        Ok(h)
    }

    /// Adds one sample. Values outside `[lo, hi]` are tallied in underflow /
    /// overflow counters rather than silently dropped.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.below += 1;
        } else if x > self.hi {
            self.above += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let mut idx = ((x - self.lo) / width) as usize;
            if idx == self.counts.len() {
                idx -= 1; // x == hi lands in the last bin
            }
            self.counts[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of samples outside the histogram range (under, over).
    pub fn outliers(&self) -> (u64, u64) {
        (self.below, self.above)
    }

    /// Total number of samples added, including outliers.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.below + self.above
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }

    /// Index of the most populated bin (ties break toward lower index).
    pub fn mode_bin(&self) -> usize {
        let mut best = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > self.counts[best] {
                best = i;
            }
        }
        best
    }

    /// Renders the histogram as rows of `(bin_center, count)`.
    pub fn rows(&self) -> Vec<(f64, u64)> {
        (0..self.counts.len())
            .map(|i| (self.bin_center(i), self.counts[i]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_range() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        for x in [0.0, 0.9, 1.0, 2.5, 4.0] {
            h.add(x);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        assert_eq!(h.outliers(), (0, 0));
    }

    #[test]
    fn outliers_are_counted() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(-1.0);
        h.add(2.0);
        assert_eq!(h.outliers(), (1, 1));
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn upper_edge_lands_in_last_bin() {
        let mut h = Histogram::new(0.0, 1.0, 10).unwrap();
        h.add(1.0);
        assert_eq!(h.counts()[9], 1);
    }

    #[test]
    fn from_samples_handles_constant_input() {
        let h = Histogram::from_samples(&[3.0, 3.0, 3.0], 5).unwrap();
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts().iter().sum::<u64>(), 3);
    }

    #[test]
    fn rejects_invalid_construction() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
        assert!(Histogram::from_samples(&[], 4).is_err());
    }

    #[test]
    fn mode_and_centers() {
        let mut h = Histogram::new(0.0, 3.0, 3).unwrap();
        for x in [1.2, 1.4, 2.5] {
            h.add(x);
        }
        assert_eq!(h.mode_bin(), 1);
        assert!((h.bin_center(1) - 1.5).abs() < 1e-12);
        let rows = h.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1].1, 2);
    }

    sim_rt::prop_check! {
        fn total_equals_samples_added(
            xs in sim_rt::check::vec_of(-10.0f64..10.0, 1..200),
            bins in 1usize..32
        ) {
            let h = Histogram::from_samples(&xs, bins).unwrap();
            assert_eq!(h.total() as usize, xs.len());
        }

        fn in_range_samples_never_outliers(
            xs in sim_rt::check::vec_of(0.0f64..1.0, 1..100)
        ) {
            let mut h = Histogram::new(0.0, 1.0, 7).unwrap();
            for &x in &xs {
                h.add(x);
            }
            assert_eq!(h.outliers(), (0, 0));
        }
    }
}
