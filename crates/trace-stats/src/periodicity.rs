//! Periodicity analysis for side-channel traces.
//!
//! A victim accelerator that processes requests in a loop (the DPU's
//! inference loop, the RSA circuit's encryption loop) imprints its period
//! onto the current trace. Estimating that period via autocorrelation
//! gives the attacker the victim's end-to-end latency — itself a strong
//! fingerprinting feature (a VGG-19 inference takes ~10x longer than a
//! MobileNet-V1 inference on the same DPU).

use crate::{Result, StatsError};

/// Normalized autocorrelation of `trace` at integer lags `0..max_lag`.
///
/// The lag-0 coefficient is always 1; subsequent coefficients are the
/// Pearson correlation of the trace with itself shifted by the lag.
///
/// # Errors
///
/// * [`StatsError::Empty`] if the trace is empty.
/// * [`StatsError::InvalidParameter`] if `max_lag == 0` or
///   `max_lag >= trace.len()`.
/// * [`StatsError::ZeroVariance`] for a constant trace.
///
/// # Examples
///
/// ```
/// let wave: Vec<f64> = (0..100)
///     .map(|i| (i as f64 * std::f64::consts::TAU / 10.0).sin())
///     .collect();
/// let ac = trace_stats::periodicity::autocorrelation(&wave, 25).unwrap();
/// assert!((ac[0] - 1.0).abs() < 1e-12);
/// assert!(ac[10] > 0.85); // one full period (damped by the shrinking overlap)
/// assert!(ac[5] < -0.85); // half a period, anti-phase
/// ```
pub fn autocorrelation(trace: &[f64], max_lag: usize) -> Result<Vec<f64>> {
    if trace.is_empty() {
        return Err(StatsError::Empty);
    }
    if max_lag == 0 || max_lag >= trace.len() {
        return Err(StatsError::InvalidParameter(
            "max_lag must be in 1..trace.len()",
        ));
    }
    let n = trace.len();
    let mean = trace.iter().sum::<f64>() / n as f64;
    let var: f64 = trace.iter().map(|x| (x - mean) * (x - mean)).sum();
    if var == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let mut out = Vec::with_capacity(max_lag);
    for lag in 0..max_lag {
        let mut acc = 0.0;
        for i in 0..n - lag {
            acc += (trace[i] - mean) * (trace[i + lag] - mean);
        }
        out.push(acc / var);
    }
    Ok(out)
}

/// Estimates the dominant period of `trace` in samples: the lag of the
/// highest autocorrelation peak after the first zero crossing.
///
/// Returns `None` when no periodic structure is detectable (no positive
/// peak after the autocorrelation first decays through zero).
///
/// # Errors
///
/// Same conditions as [`autocorrelation`].
///
/// # Examples
///
/// ```
/// let wave: Vec<f64> = (0..200)
///     .map(|i| (i as f64 * std::f64::consts::TAU / 14.0).sin())
///     .collect();
/// let period = trace_stats::periodicity::estimate_period(&wave, 60).unwrap();
/// assert_eq!(period, Some(14));
/// ```
pub fn estimate_period(trace: &[f64], max_lag: usize) -> Result<Option<usize>> {
    let ac = autocorrelation(trace, max_lag)?;
    // Skip the initial positive hump around lag 0.
    let first_nonpositive = match ac.iter().position(|&c| c <= 0.0) {
        Some(i) => i,
        None => return Ok(None), // monotone positive: no period inside max_lag
    };
    let mut best: Option<(usize, f64)> = None;
    for (lag, &c) in ac.iter().enumerate().skip(first_nonpositive) {
        if c > 0.0 && best.is_none_or(|(_, b)| c > b) {
            best = Some((lag, c));
        }
    }
    // Require a meaningful peak, not numeric dust.
    Ok(best.filter(|&(_, c)| c > 0.1).map(|(lag, _)| lag))
}

/// Signal-to-noise ratio of a trace against a known period: variance of
/// the per-phase means (signal) over the mean of the per-phase variances
/// (noise). Higher means the periodic structure dominates.
///
/// # Errors
///
/// * [`StatsError::Empty`] for an empty trace.
/// * [`StatsError::InvalidParameter`] if `period` is 0 or not smaller
///   than the trace length.
pub fn periodic_snr(trace: &[f64], period: usize) -> Result<f64> {
    if trace.is_empty() {
        return Err(StatsError::Empty);
    }
    if period == 0 || period >= trace.len() {
        return Err(StatsError::InvalidParameter(
            "period must be in 1..trace.len()",
        ));
    }
    let mut phase_sum = vec![0.0; period];
    let mut phase_sq = vec![0.0; period];
    let mut phase_n = vec![0usize; period];
    for (i, &x) in trace.iter().enumerate() {
        let p = i % period;
        phase_sum[p] += x;
        phase_sq[p] += x * x;
        phase_n[p] += 1;
    }
    let means: Vec<f64> = (0..period)
        .map(|p| phase_sum[p] / phase_n[p] as f64)
        .collect();
    let grand = means.iter().sum::<f64>() / period as f64;
    let signal = means.iter().map(|m| (m - grand) * (m - grand)).sum::<f64>() / period as f64;
    let noise = (0..period)
        .map(|p| {
            let n = phase_n[p] as f64;
            (phase_sq[p] / n - means[p] * means[p]).max(0.0)
        })
        .sum::<f64>()
        / period as f64;
    if noise == 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(signal / noise)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_wave(period: usize, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| if (i % period) < period / 2 { 1.0 } else { -1.0 })
            .collect()
    }

    #[test]
    fn autocorrelation_of_square_wave() {
        let w = square_wave(20, 400);
        let ac = autocorrelation(&w, 50).unwrap();
        assert!((ac[0] - 1.0).abs() < 1e-12);
        assert!(ac[20] > 0.9);
        assert!(ac[10] < -0.9);
    }

    #[test]
    fn estimate_period_square_wave() {
        let w = square_wave(16, 320);
        assert_eq!(estimate_period(&w, 40).unwrap(), Some(16));
    }

    #[test]
    fn noise_has_no_period() {
        // Deterministic hash noise (splitmix-style), aperiodic.
        let w: Vec<f64> = (0..300u64)
            .map(|i| {
                let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        let p = estimate_period(&w, 100).unwrap();
        if let Some(lag) = p {
            // If something is found it must be a weak accidental peak, not
            // real periodic structure.
            let ac = autocorrelation(&w, 100).unwrap();
            assert!(ac[lag] < 0.5, "lag {lag} has ac {}", ac[lag]);
        }
    }

    #[test]
    fn constant_trace_rejected() {
        assert_eq!(
            autocorrelation(&[3.0; 50], 10),
            Err(StatsError::ZeroVariance)
        );
    }

    #[test]
    fn invalid_lags_rejected() {
        let w = square_wave(4, 20);
        assert!(autocorrelation(&w, 0).is_err());
        assert!(autocorrelation(&w, 20).is_err());
        assert!(autocorrelation(&[], 5).is_err());
    }

    #[test]
    fn snr_high_for_clean_periodic_signal() {
        let w = square_wave(10, 500);
        let snr = periodic_snr(&w, 10).unwrap();
        assert!(snr > 100.0, "clean square wave snr {snr}");
        // Wrong period -> poor snr.
        let wrong = periodic_snr(&w, 7).unwrap();
        assert!(wrong < snr / 10.0);
    }

    #[test]
    fn snr_parameter_validation() {
        let w = square_wave(4, 40);
        assert!(periodic_snr(&w, 0).is_err());
        assert!(periodic_snr(&w, 40).is_err());
        assert!(periodic_snr(&[], 2).is_err());
    }

    #[test]
    fn snr_infinite_for_noise_free_exact_period() {
        let w: Vec<f64> = (0..40).map(|i| (i % 4) as f64).collect();
        assert!(periodic_snr(&w, 4).unwrap().is_infinite());
    }

    sim_rt::prop_check! {
        fn autocorrelation_bounded(
            xs in sim_rt::check::vec_of(-100.0f64..100.0, 10..200),
            frac in 0.1f64..0.9
        ) {
            let max_lag = ((xs.len() as f64 * frac) as usize).max(1);
            if let Ok(ac) = autocorrelation(&xs, max_lag) {
                for (lag, c) in ac.iter().enumerate() {
                    assert!(
                        (-1.0 - 1e-9..=1.0 + 1e-9).contains(c),
                        "lag {lag}: {c}"
                    );
                }
            }
        }

        fn estimated_period_matches_construction(period in 4usize..30) {
            let w = square_wave(period, period * 20);
            let est = estimate_period(&w, period * 3).unwrap();
            assert_eq!(est, Some(period));
        }
    }
}
