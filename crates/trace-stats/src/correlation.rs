use crate::{Result, StatsError};

/// Pearson product-moment correlation coefficient between `xs` and `ys`.
///
/// This is the statistic reported in Figure 2 of the paper: the FPGA current
/// channel reaches r = 0.999 against the number of activated power-virus
/// instances while the RO baseline reaches r = -0.996.
///
/// # Errors
///
/// * [`StatsError::Empty`] if the inputs are empty or have fewer than two
///   samples.
/// * [`StatsError::LengthMismatch`] if the inputs differ in length.
/// * [`StatsError::ZeroVariance`] if either input is constant.
///
/// # Examples
///
/// ```
/// let xs = [1.0, 2.0, 3.0];
/// let ys = [10.0, 8.0, 6.0];
/// let r = trace_stats::pearson(&xs, &ys).unwrap();
/// assert!((r + 1.0).abs() < 1e-12);
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64> {
    check_paired(xs, ys)?;
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x == 0.0 || var_y == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    Ok(cov / (var_x.sqrt() * var_y.sqrt()))
}

/// Spearman rank correlation coefficient between `xs` and `ys`.
///
/// More robust than [`pearson`] for the heavily quantized voltage channel,
/// where ties dominate; used in characterization sanity checks.
///
/// # Errors
///
/// Same conditions as [`pearson`].
///
/// # Examples
///
/// ```
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// let ys = [1.0, 4.0, 9.0, 16.0]; // monotone, non-linear
/// let rho = trace_stats::spearman(&xs, &ys).unwrap();
/// assert!((rho - 1.0).abs() < 1e-12);
/// ```
pub fn spearman(xs: &[f64], ys: &[f64]) -> Result<f64> {
    check_paired(xs, ys)?;
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

fn check_paired(xs: &[f64], ys: &[f64]) -> Result<()> {
    if xs.len() != ys.len() {
        return Err(StatsError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(StatsError::Empty);
    }
    Ok(())
}

/// Fractional ranks with ties assigned the average rank of the tied block.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .expect("samples must not contain NaN")
    });
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_correlation() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [5.0, 7.0, 9.0, 11.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative_correlation() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_symmetric_data() {
        let xs = [-1.0, 0.0, 1.0];
        let ys = [1.0, 0.0, 1.0];
        assert!(pearson(&xs, &ys).unwrap().abs() < 1e-12);
    }

    #[test]
    fn rejects_mismatched_lengths() {
        assert!(matches!(
            pearson(&[1.0], &[1.0, 2.0]),
            Err(StatsError::LengthMismatch { left: 1, right: 2 })
        ));
    }

    #[test]
    fn rejects_constant_input() {
        assert_eq!(
            pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::ZeroVariance)
        );
    }

    #[test]
    fn rejects_single_sample() {
        assert_eq!(pearson(&[1.0], &[2.0]), Err(StatsError::Empty));
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }

    sim_rt::prop_check! {
        fn pearson_is_bounded(
            xy in sim_rt::check::vec_of((-1e3f64..1e3, -1e3f64..1e3), 3..100)
        ) {
            let xs: Vec<f64> = xy.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = xy.iter().map(|p| p.1).collect();
            if let Ok(r) = pearson(&xs, &ys) {
                assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            }
        }

        fn pearson_is_symmetric(
            xy in sim_rt::check::vec_of((-1e3f64..1e3, -1e3f64..1e3), 3..50)
        ) {
            let xs: Vec<f64> = xy.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = xy.iter().map(|p| p.1).collect();
            match (pearson(&xs, &ys), pearson(&ys, &xs)) {
                (Ok(a), Ok(b)) => assert!((a - b).abs() < 1e-9),
                (Err(a), Err(b)) => assert_eq!(a, b),
                _ => panic!("asymmetric result"),
            }
        }

        fn pearson_invariant_under_affine_transform(
            xy in sim_rt::check::vec_of((-1e3f64..1e3, -1e3f64..1e3), 3..50),
            scale in 0.1f64..10.0, shift in -100.0f64..100.0
        ) {
            let xs: Vec<f64> = xy.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = xy.iter().map(|p| p.1).collect();
            let xs2: Vec<f64> = xs.iter().map(|x| x * scale + shift).collect();
            if let (Ok(a), Ok(b)) = (pearson(&xs, &ys), pearson(&xs2, &ys)) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }
}
