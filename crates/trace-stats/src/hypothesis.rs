//! Hypothesis testing for side-channel leakage assessment.
//!
//! Welch's unequal-variance t-test is the standard leakage-detection
//! statistic in the hardware-security community (TVLA): two trace
//! populations (e.g. "victim active" vs. "victim idle", or two key
//! hypotheses) leak if their means differ significantly. The
//! characterization and RSA experiments use it to state *how confidently*
//! a channel separates conditions, and the sample-size planner answers
//! "how many hwmon reads does the attacker need?".

use crate::{Result, StatsError, Summary};

/// Result of a Welch two-sample t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WelchTest {
    /// The t statistic (sign follows `mean(a) - mean(b)`).
    pub t: f64,
    /// Welch-Satterthwaite degrees of freedom.
    pub df: f64,
}

impl WelchTest {
    /// Whether the difference is significant at the given z-style
    /// threshold (TVLA convention uses |t| > 4.5).
    pub fn significant(&self, threshold: f64) -> bool {
        self.t.abs() > threshold
    }
}

/// Welch's t-test between two sample sets.
///
/// # Errors
///
/// * [`StatsError::Empty`] if either set has fewer than two samples.
/// * [`StatsError::ZeroVariance`] if both sets are constant.
///
/// # Examples
///
/// ```
/// use trace_stats::hypothesis::welch_t;
///
/// let idle: Vec<f64> = (0..50).map(|i| 100.0 + (i % 5) as f64).collect();
/// let busy: Vec<f64> = (0..50).map(|i| 140.0 + (i % 5) as f64).collect();
/// let test = welch_t(&idle, &busy).unwrap();
/// assert!(test.significant(4.5)); // TVLA threshold
/// ```
pub fn welch_t(a: &[f64], b: &[f64]) -> Result<WelchTest> {
    if a.len() < 2 || b.len() < 2 {
        return Err(StatsError::Empty);
    }
    welch_t_summaries(&Summary::from_samples(a)?, &Summary::from_samples(b)?)
}

/// Welch's t-test from precomputed summaries — useful when the raw traces
/// have already been reduced (e.g. the per-key observations of the RSA
/// attack report).
///
/// # Errors
///
/// * [`StatsError::Empty`] if either summary has fewer than two samples.
/// * [`StatsError::ZeroVariance`] if both summaries are constant.
pub fn welch_t_summaries(sa: &Summary, sb: &Summary) -> Result<WelchTest> {
    if sa.count < 2 || sb.count < 2 {
        return Err(StatsError::Empty);
    }
    let va = sa.variance / sa.count as f64;
    let vb = sb.variance / sb.count as f64;
    let se_sqr = va + vb;
    if se_sqr == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let t = (sa.mean - sb.mean) / se_sqr.sqrt();
    let df = se_sqr * se_sqr
        / (va * va / (sa.count as f64 - 1.0) + vb * vb / (sb.count as f64 - 1.0))
            .max(f64::MIN_POSITIVE);
    Ok(WelchTest { t, df })
}

/// Sample-size planner: how many observations per group are needed for a
/// two-sample z-test to distinguish means `delta` apart with noise
/// `sigma` (common standard deviation) at detection threshold `z` and
/// power ~50% (the attacker repeats until detection, so the median case
/// is the planning quantity).
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for non-positive inputs.
///
/// # Examples
///
/// ```
/// use trace_stats::hypothesis::required_samples;
///
/// // 8 mA group spacing, 3 mA of sensor noise, z = 4.5:
/// let n = required_samples(8.0, 3.0, 4.5).unwrap();
/// assert!(n < 20, "a handful of samples suffices ({n})");
/// // 0.3 mA spacing (sub-LSB) needs thousands.
/// let n = required_samples(0.3, 3.0, 4.5).unwrap();
/// assert!(n > 1_000);
/// ```
pub fn required_samples(delta: f64, sigma: f64, z: f64) -> Result<usize> {
    if delta <= 0.0 || sigma <= 0.0 || z <= 0.0 {
        return Err(StatsError::InvalidParameter(
            "delta, sigma and z must be positive",
        ));
    }
    // |t| = delta / sqrt(2 sigma^2 / n) >= z  =>  n >= 2 (z sigma / delta)^2
    let n = 2.0 * (z * sigma / delta).powi(2);
    Ok(n.ceil().max(2.0) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jittered(center: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| center + ((i * 7) % 11) as f64 * 0.1)
            .collect()
    }

    #[test]
    fn identical_distributions_are_insignificant() {
        let a = jittered(5.0, 100);
        let b = jittered(5.0, 100);
        let test = welch_t(&a, &b).unwrap();
        assert!(!test.significant(4.5), "t = {}", test.t);
    }

    #[test]
    fn separated_means_are_significant() {
        let a = jittered(5.0, 100);
        let b = jittered(6.0, 100);
        let test = welch_t(&a, &b).unwrap();
        assert!(test.significant(4.5));
        assert!(test.t < 0.0, "a < b gives negative t");
        assert!(test.df > 50.0);
    }

    #[test]
    fn sign_follows_order() {
        let a = jittered(10.0, 50);
        let b = jittered(5.0, 50);
        assert!(welch_t(&a, &b).unwrap().t > 0.0);
        assert!(welch_t(&b, &a).unwrap().t < 0.0);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert_eq!(welch_t(&[1.0], &[1.0, 2.0]), Err(StatsError::Empty));
        assert_eq!(
            welch_t(&[3.0, 3.0], &[3.0, 3.0]),
            Err(StatsError::ZeroVariance)
        );
    }

    #[test]
    fn planner_matches_direct_computation() {
        // n = 2 (z sigma / delta)^2, rounded up.
        assert_eq!(required_samples(1.0, 1.0, 3.0).unwrap(), 18);
        assert_eq!(required_samples(2.0, 1.0, 3.0).unwrap(), 5);
        assert!(required_samples(0.0, 1.0, 3.0).is_err());
        assert!(required_samples(1.0, -1.0, 3.0).is_err());
    }

    #[test]
    fn planner_is_consistent_with_welch() {
        // With the planned n, synthetic groups at the planned spacing
        // should reach the threshold.
        let delta = 4.0;
        let sigma = 2.0;
        let z = 4.5;
        let n = required_samples(delta, sigma, z).unwrap();
        // Deterministic samples with std ~ sigma.
        let noise = |i: usize| ((i * 37) % 13) as f64 / 12.0 * sigma * 3.4 - sigma * 1.7;
        let a: Vec<f64> = (0..n).map(|i| 100.0 + noise(i)).collect();
        let b: Vec<f64> = (0..n).map(|i| 100.0 + delta + noise(i + 5)).collect();
        let test = welch_t(&a, &b).unwrap();
        assert!(test.significant(z * 0.5), "t = {} with n = {n}", test.t);
    }

    sim_rt::prop_check! {
        fn t_is_finite(
            a in sim_rt::check::vec_of(-100.0f64..100.0, 2..50),
            b in sim_rt::check::vec_of(-100.0f64..100.0, 2..50)
        ) {
            if let Ok(test) = welch_t(&a, &b) {
                assert!(test.t.is_finite());
                assert!(test.df.is_finite() && test.df > 0.0);
            }
        }

        fn planner_monotone_in_delta(
            delta in 0.1f64..10.0, sigma in 0.1f64..10.0
        ) {
            let n_small = required_samples(delta, sigma, 4.5).unwrap();
            let n_large = required_samples(delta * 2.0, sigma, 4.5).unwrap();
            assert!(n_large <= n_small);
        }
    }
}
