//! Spectral analysis of side-channel traces (radix-2 FFT).
//!
//! The time-domain features of [`crate::features`] capture amplitude and
//! periodicity; the frequency domain exposes a victim's characteristic
//! rates directly — a DPU's per-layer cadence, the RSA circuit's
//! encryption-loop line, the covert channel's keying rate — even when the
//! time-domain trace looks like noise. This module provides a
//! from-scratch iterative radix-2 FFT, power spectra, and dominant
//! frequency estimation.

use crate::{Result, StatsError};

/// A complex number (minimal, crate-internal needs only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// Creates a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^(i theta)`.
    pub fn from_angle(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    fn mul(self, other: Complex) -> Complex {
        Complex {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }

    fn add(self, other: Complex) -> Complex {
        Complex {
            re: self.re + other.re,
            im: self.im + other.im,
        }
    }

    fn sub(self, other: Complex) -> Complex {
        Complex {
            re: self.re - other.re,
            im: self.im - other.im,
        }
    }
}

/// In-place iterative radix-2 Cooley-Tukey FFT.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] unless `data.len()` is a
/// non-zero power of two.
///
/// # Examples
///
/// ```
/// use trace_stats::spectrum::{fft, Complex};
///
/// // FFT of an impulse is flat.
/// let mut data = vec![Complex::ZERO; 8];
/// data[0] = Complex::new(1.0, 0.0);
/// fft(&mut data).unwrap();
/// for bin in &data {
///     assert!((bin.abs() - 1.0).abs() < 1e-12);
/// }
/// ```
pub fn fft(data: &mut [Complex]) -> Result<()> {
    let n = data.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(StatsError::InvalidParameter(
            "fft length must be a non-zero power of two",
        ));
    }
    if n == 1 {
        return Ok(()); // length-1 transform is the identity
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterfly stages.
    let mut len = 2;
    while len <= n {
        let angle = -2.0 * std::f64::consts::PI / len as f64;
        let w_len = Complex::from_angle(angle);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half].mul(w);
                chunk[k] = u.add(v);
                chunk[k + half] = u.sub(v);
                w = w.mul(w_len);
            }
        }
        len *= 2;
    }
    Ok(())
}

/// One-sided power spectrum of a real trace: the trace is mean-removed,
/// zero-padded to the next power of two, transformed, and the squared
/// magnitudes of bins `0..=n/2` returned (bin 0 is ~0 after mean removal).
///
/// # Errors
///
/// Returns [`StatsError::Empty`] for an empty trace.
///
/// # Examples
///
/// ```
/// let wave: Vec<f64> = (0..64)
///     .map(|i| (i as f64 * std::f64::consts::TAU * 8.0 / 64.0).sin())
///     .collect();
/// let spectrum = trace_stats::spectrum::power_spectrum(&wave).unwrap();
/// // Energy concentrates in bin 8.
/// let peak = spectrum
///     .iter()
///     .enumerate()
///     .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
///     .unwrap()
///     .0;
/// assert_eq!(peak, 8);
/// ```
pub fn power_spectrum(trace: &[f64]) -> Result<Vec<f64>> {
    if trace.is_empty() {
        return Err(StatsError::Empty);
    }
    let n = trace.len().next_power_of_two();
    let mean = trace.iter().sum::<f64>() / trace.len() as f64;
    let mut data = vec![Complex::ZERO; n];
    for (i, &x) in trace.iter().enumerate() {
        data[i] = Complex::new(x - mean, 0.0);
    }
    fft(&mut data)?;
    Ok(data[..=n / 2].iter().map(|c| c.norm_sqr()).collect())
}

/// Dominant frequency of a trace sampled at `sample_rate_hz`, in Hz —
/// the strongest non-DC bin of the one-sided power spectrum. Returns
/// `None` for traces shorter than 4 samples or with no spectral content.
///
/// # Errors
///
/// Returns [`StatsError::Empty`] for an empty trace.
pub fn dominant_frequency(trace: &[f64], sample_rate_hz: f64) -> Result<Option<f64>> {
    if trace.is_empty() {
        return Err(StatsError::Empty);
    }
    if trace.len() < 4 || sample_rate_hz <= 0.0 {
        return Ok(None);
    }
    let spectrum = power_spectrum(trace)?;
    let n_fft = (spectrum.len() - 1) * 2;
    let (best_bin, best_power) = spectrum
        .iter()
        .enumerate()
        .skip(1) // skip residual DC
        .fold(
            (0usize, 0.0f64),
            |acc, (i, &p)| {
                if p > acc.1 {
                    (i, p)
                } else {
                    acc
                }
            },
        );
    if best_power <= 0.0 || best_bin == 0 {
        return Ok(None);
    }
    Ok(Some(best_bin as f64 * sample_rate_hz / n_fft as f64))
}

/// Spectral flatness (geometric mean over arithmetic mean of the non-DC
/// power bins): ~1 for white noise, ~0 for a pure tone. A useful scalar
/// feature for "is anything periodic running?".
///
/// # Errors
///
/// Returns [`StatsError::Empty`] for an empty trace.
pub fn spectral_flatness(trace: &[f64]) -> Result<f64> {
    let spectrum = power_spectrum(trace)?;
    let bins: Vec<f64> = spectrum.into_iter().skip(1).filter(|&p| p > 0.0).collect();
    if bins.is_empty() {
        return Ok(1.0); // flat (empty) spectrum: nothing periodic
    }
    let log_mean = bins.iter().map(|p| p.ln()).sum::<f64>() / bins.len() as f64;
    let mean = bins.iter().sum::<f64>() / bins.len() as f64;
    Ok((log_mean.exp() / mean).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(freq_bins: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * std::f64::consts::TAU * freq_bins / n as f64).sin())
            .collect()
    }

    #[test]
    fn fft_rejects_non_power_of_two() {
        let mut data = vec![Complex::ZERO; 6];
        assert!(fft(&mut data).is_err());
        let mut empty: Vec<Complex> = vec![];
        assert!(fft(&mut empty).is_err());
    }

    #[test]
    fn fft_of_constant_is_dc_only() {
        let mut data = vec![Complex::new(2.0, 0.0); 16];
        fft(&mut data).unwrap();
        assert!((data[0].re - 32.0).abs() < 1e-9);
        for bin in &data[1..] {
            assert!(bin.abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let xs = sine(3.0, 64);
        let time_energy: f64 = xs.iter().map(|x| x * x).sum();
        let mut data: Vec<Complex> = xs.iter().map(|&x| Complex::new(x, 0.0)).collect();
        fft(&mut data).unwrap();
        let freq_energy: f64 = data.iter().map(|c| c.norm_sqr()).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn sine_peak_lands_in_correct_bin() {
        for k in [2usize, 5, 13] {
            let spectrum = power_spectrum(&sine(k as f64, 128)).unwrap();
            let peak = spectrum
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(peak, k, "bin for k={k}");
        }
    }

    #[test]
    fn dominant_frequency_in_hz() {
        // 8 cycles over 64 samples at 1 kHz = 125 Hz.
        let f = dominant_frequency(&sine(8.0, 64), 1_000.0).unwrap();
        assert_eq!(f, Some(125.0));
        assert_eq!(dominant_frequency(&[1.0, 2.0], 1_000.0).unwrap(), None);
        assert!(dominant_frequency(&[], 1_000.0).is_err());
    }

    #[test]
    fn flatness_separates_tone_from_noise() {
        let tone = spectral_flatness(&sine(7.0, 256)).unwrap();
        let noise: Vec<f64> = (0..256u64)
            .map(|i| {
                let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect();
        let flat = spectral_flatness(&noise).unwrap();
        assert!(tone < 0.05, "pure tone flatness {tone}");
        assert!(flat > 0.3, "noise flatness {flat}");
    }

    #[test]
    fn zero_padding_handles_non_power_lengths() {
        let spectrum = power_spectrum(&sine(5.0, 100)).unwrap();
        // Padded to 128: one-sided spectrum has 65 bins.
        assert_eq!(spectrum.len(), 65);
    }

    sim_rt::prop_check! {
        fn spectrum_is_nonnegative(xs in sim_rt::check::vec_of(-100.0f64..100.0, 1..200)) {
            for p in power_spectrum(&xs).unwrap() {
                assert!(p >= 0.0);
            }
        }

        fn fft_linearity(
            a in sim_rt::check::vec_of(-10.0f64..10.0, 16),
            b in sim_rt::check::vec_of(-10.0f64..10.0, 16),
            s in -3.0f64..3.0
        ) {
            let mut fa: Vec<Complex> = a.iter().map(|&x| Complex::new(x, 0.0)).collect();
            let mut fb: Vec<Complex> = b.iter().map(|&x| Complex::new(x, 0.0)).collect();
            let mut fc: Vec<Complex> = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| Complex::new(x + s * y, 0.0))
                .collect();
            fft(&mut fa).unwrap();
            fft(&mut fb).unwrap();
            fft(&mut fc).unwrap();
            for i in 0..16 {
                let expect_re = fa[i].re + s * fb[i].re;
                let expect_im = fa[i].im + s * fb[i].im;
                assert!((fc[i].re - expect_re).abs() < 1e-6);
                assert!((fc[i].im - expect_im).abs() < 1e-6);
            }
        }
    }
}
