//! Register-level behavioural model of the TI INA226 current/voltage/power
//! monitor.
//!
//! The INA226 is the sensor AmpereBleed exploits: ARM-FPGA SoC evaluation
//! boards integrate 14-22 of them on their power rails (Table I of the
//! paper), and Linux exposes them through unprivileged hwmon sysfs nodes.
//!
//! The model reproduces the datasheet behaviours the attack depends on:
//!
//! * **Shunt ADC** — 2.5 µV LSB over ±81.92 mV, so a milliohm-scale shunt
//!   resolves milliamp-scale load changes.
//! * **Bus ADC** — fixed 1.25 mV LSB. A stabilized FPGA rail moves only a
//!   couple of LSBs across the entire workload range, which is why the
//!   *voltage* channel is nearly information-free (Figure 2).
//! * **Calibration arithmetic** — `CAL = 0.00512 / (current_lsb * R_shunt)`;
//!   the current register is `shunt_reg * CAL / 2048` and the power
//!   register is `current_reg * bus_reg / 20000` with a **power LSB fixed
//!   at 25x the current LSB**. That x25 truncation is exactly why the
//!   power channel distinguishes only ~5 of the 17 RSA Hamming-weight
//!   groups while the current channel separates all 17 (Figure 4).
//! * **Conversion timing** — per-channel conversion times of 140 µs to
//!   8.244 ms and 1-1024x averaging, giving the 2-35 ms hwmon update
//!   interval range quoted in Section III-C.
//!
//! # Examples
//!
//! ```
//! use ina226::{Config, Ina226};
//!
//! // FPGA rail: 0.5 mΩ shunt, 0.5 mA current LSB.
//! let mut sensor = Ina226::new(0.0005, 0.0005, 99);
//! sensor.set_config(Config::default());
//! // One conversion cycle over a constant 2 A / 0.85 V operating point:
//! sensor.convert_constant(2.0, 0.85);
//! assert!((sensor.current_amps() - 2.0).abs() < 0.01);
//! assert!((sensor.bus_volts() - 0.85).abs() < 0.00125);
//! assert!((sensor.power_watts() - 1.7).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
mod device;
mod error;
pub mod i2c;
mod registers;

pub use device::{Ina226, Readouts};
pub use error::Ina226Error;
pub use registers::{AvgMode, Config, ConversionTime, OperatingMode, Register};

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, Ina226Error>;

/// Shunt-voltage ADC LSB in volts (datasheet: 2.5 µV).
pub const SHUNT_LSB_V: f64 = 2.5e-6;

/// Bus-voltage ADC LSB in volts (datasheet: 1.25 mV).
pub const BUS_LSB_V: f64 = 1.25e-3;

/// Ratio of the power-register LSB to the current-register LSB
/// (datasheet: power LSB = 25 x current LSB).
pub const POWER_LSB_RATIO: f64 = 25.0;

/// Manufacturer ID register value ("TI").
pub const MANUFACTURER_ID: u16 = 0x5449;

/// Die ID register value.
pub const DIE_ID: u16 = 0x2260;
