//! Alert (Mask/Enable) function of the INA226.
//!
//! The chip can assert its ALERT pin when a conversion crosses a
//! programmed limit — boards use this for over-current protection, and the
//! Linux driver exposes it as hwmon alarm attributes. The reproduction
//! models it because a *defensive* use of the same sensors ("alert when
//! fabric current ramps abnormally") is one plausible mitigation direction
//! beyond Section V's access-control fix.
//!
//! Bit layout of the Mask/Enable register (datasheet Table 11):
//!
//! | bit | name | meaning |
//! |---|---|---|
//! | 15 | SOL | shunt voltage over limit |
//! | 14 | SUL | shunt voltage under limit |
//! | 13 | BOL | bus voltage over limit |
//! | 12 | BUL | bus voltage under limit |
//! | 11 | POL | power over limit |
//! | 10 | CNVR | alert on conversion ready |
//! | 4 | AFF | alert function flag (sticky status) |
//! | 3 | CVRF | conversion ready flag |
//! | 2 | OVF | math overflow flag |

/// Mask/Enable register bits.
pub mod bits {
    /// Shunt voltage over-limit enable.
    pub const SOL: u16 = 1 << 15;
    /// Shunt voltage under-limit enable.
    pub const SUL: u16 = 1 << 14;
    /// Bus voltage over-limit enable.
    pub const BOL: u16 = 1 << 13;
    /// Bus voltage under-limit enable.
    pub const BUL: u16 = 1 << 12;
    /// Power over-limit enable.
    pub const POL: u16 = 1 << 11;
    /// Conversion-ready alert enable.
    pub const CNVR: u16 = 1 << 10;
    /// Alert function flag (set when the enabled condition fired).
    pub const AFF: u16 = 1 << 4;
    /// Conversion ready flag (set after every completed conversion).
    pub const CVRF: u16 = 1 << 3;
    /// Math overflow flag.
    pub const OVF: u16 = 1 << 2;
}

/// Evaluates the alert function after a conversion: given the enabled
/// function bits, the latched measurement registers and the alert limit,
/// returns the status bits to OR into the Mask/Enable register.
///
/// Only one alert function may be enabled at a time per the datasheet;
/// when several are set, the highest-priority (most significant) wins —
/// this mirrors silicon behaviour rather than rejecting the write.
pub(crate) fn evaluate(
    mask_enable: u16,
    shunt_reg: i16,
    bus_reg: u16,
    power_reg: u16,
    alert_limit: u16,
) -> u16 {
    let mut status = bits::CVRF; // every conversion sets conversion-ready
    let fired = if mask_enable & bits::SOL != 0 {
        shunt_reg >= alert_limit as i16
    } else if mask_enable & bits::SUL != 0 {
        shunt_reg <= alert_limit as i16
    } else if mask_enable & bits::BOL != 0 {
        bus_reg >= alert_limit
    } else if mask_enable & bits::BUL != 0 {
        bus_reg <= alert_limit
    } else if mask_enable & bits::POL != 0 {
        power_reg >= alert_limit
    } else {
        false
    };
    if fired {
        status |= bits::AFF;
    }
    status
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ina226, Register};

    fn quiet() -> Ina226 {
        let mut s = Ina226::new(0.002, 0.001, 0);
        s.set_adc_noise(0.0, 0.0);
        s
    }

    #[test]
    fn conversion_ready_after_every_conversion() {
        let mut s = quiet();
        assert_eq!(s.read_register(Register::MaskEnable) & bits::CVRF, 0);
        s.convert_constant(1.0, 0.85);
        assert_ne!(s.read_register(Register::MaskEnable) & bits::CVRF, 0);
    }

    #[test]
    fn shunt_over_limit_alert() {
        let mut s = quiet();
        // 1.5 A over a 2 mΩ shunt = 3 mV = 1200 shunt LSBs. Set the limit
        // at 1000 LSBs (2.5 mV -> 1.25 A).
        s.write_register(Register::MaskEnable, bits::SOL).unwrap();
        s.write_register(Register::AlertLimit, 1_000).unwrap();
        s.convert_constant(1.0, 0.85); // 400 LSBs: below the limit
        assert_eq!(s.read_register(Register::MaskEnable) & bits::AFF, 0);
        s.convert_constant(1.5, 0.85); // 1200 LSBs: above
        assert_ne!(s.read_register(Register::MaskEnable) & bits::AFF, 0);
    }

    #[test]
    fn bus_under_limit_alert() {
        let mut s = quiet();
        // Brown-out detector: alert when the bus drops below 0.80 V
        // (640 bus LSBs of 1.25 mV).
        s.write_register(Register::MaskEnable, bits::BUL).unwrap();
        s.write_register(Register::AlertLimit, 640).unwrap();
        s.convert_constant(0.5, 0.85);
        assert_eq!(s.read_register(Register::MaskEnable) & bits::AFF, 0);
        s.convert_constant(0.5, 0.78);
        assert_ne!(s.read_register(Register::MaskEnable) & bits::AFF, 0);
    }

    #[test]
    fn power_over_limit_alert() {
        let mut s = quiet();
        // Power LSB = 25 mW at this calibration; limit 40 counts = 1 W.
        s.write_register(Register::MaskEnable, bits::POL).unwrap();
        s.write_register(Register::AlertLimit, 40).unwrap();
        s.convert_constant(0.5, 0.85); // 0.425 W
        assert_eq!(s.read_register(Register::MaskEnable) & bits::AFF, 0);
        s.convert_constant(2.0, 0.85); // 1.7 W
        assert_ne!(s.read_register(Register::MaskEnable) & bits::AFF, 0);
    }

    #[test]
    fn flag_clears_when_condition_clears() {
        let mut s = quiet();
        s.write_register(Register::MaskEnable, bits::SOL).unwrap();
        s.write_register(Register::AlertLimit, 1_000).unwrap();
        s.convert_constant(1.5, 0.85);
        assert_ne!(s.read_register(Register::MaskEnable) & bits::AFF, 0);
        s.convert_constant(0.2, 0.85);
        assert_eq!(s.read_register(Register::MaskEnable) & bits::AFF, 0);
    }

    #[test]
    fn enable_bits_survive_status_updates() {
        let mut s = quiet();
        s.write_register(Register::MaskEnable, bits::BOL).unwrap();
        s.convert_constant(1.0, 0.85);
        let me = s.read_register(Register::MaskEnable);
        assert_ne!(me & bits::BOL, 0, "enable bit must persist");
    }

    #[test]
    fn priority_order_highest_bit_wins() {
        // SOL and POL both set: SOL (bit 15) is evaluated.
        let status = evaluate(bits::SOL | bits::POL, 2_000, 680, 10, 1_000);
        assert_ne!(status & bits::AFF, 0, "SOL fired");
        let status = evaluate(bits::SOL | bits::POL, 10, 680, 10_000, 1_000);
        assert_eq!(status & bits::AFF, 0, "POL ignored while SOL enabled");
    }
}
