use std::fmt;

use crate::Register;

/// Error type for INA226 register operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Ina226Error {
    /// Attempted to write a read-only register.
    ReadOnlyRegister(Register),
    /// A configuration or calibration value was outside its valid domain.
    InvalidValue(&'static str),
}

impl fmt::Display for Ina226Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ina226Error::ReadOnlyRegister(r) => {
                write!(f, "register {r:?} is read-only")
            }
            Ina226Error::InvalidValue(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl std::error::Error for Ina226Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Ina226Error::ReadOnlyRegister(Register::Current);
        assert!(e.to_string().contains("read-only"));
        assert!(Ina226Error::InvalidValue("shunt")
            .to_string()
            .contains("shunt"));
    }
}
