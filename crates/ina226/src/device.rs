use sim_rt::rng::{Rng, SimRng};

use crate::registers::{Config, Register};
use crate::{
    Ina226Error, Result, BUS_LSB_V, DIE_ID, MANUFACTURER_ID, POWER_LSB_RATIO, SHUNT_LSB_V,
};

/// Behavioural INA226 device instance attached to one rail.
///
/// The device owns its register file and ADC noise source. A *conversion
/// cycle* ([`Ina226::convert`]) consumes one `(current, bus voltage)`
/// operating-point sample per averaging step, quantizes through the shunt
/// and bus ADCs, then runs the datasheet's integer pipeline to produce the
/// current and power registers. Host-visible readouts ([`current_amps`],
/// [`bus_volts`], [`power_watts`]) scale registers exactly the way the
/// Linux ina226 hwmon driver does.
///
/// [`current_amps`]: Ina226::current_amps
/// [`bus_volts`]: Ina226::bus_volts
/// [`power_watts`]: Ina226::power_watts
///
/// # Examples
///
/// ```
/// use ina226::{Config, Ina226, Register};
///
/// let mut s = Ina226::new(0.002, 0.0001, 1); // 2 mΩ shunt, 0.1 mA LSB
/// assert_eq!(s.read_register(Register::ManufacturerId), 0x5449);
/// s.convert_constant(0.5, 0.85);
/// assert!((s.current_amps() - 0.5).abs() < 0.002);
/// ```
#[derive(Debug, Clone)]
pub struct Ina226 {
    shunt_ohm: f64,
    current_lsb_a: f64,
    config: Config,
    calibration: u16,
    mask_enable: u16,
    alert_limit: u16,
    shunt_reg: i16,
    bus_reg: u16,
    current_reg: i16,
    power_reg: u16,
    conversions: u64,
    rng: SimRng,
    gauss_cache: Option<f64>,
    shunt_noise_v: f64,
    bus_noise_v: f64,
}

impl Ina226 {
    /// Creates a device for a rail with the given shunt resistance (ohms)
    /// and desired current LSB (amps); programs the matching calibration
    /// register. `seed` fixes the ADC noise stream.
    ///
    /// # Panics
    ///
    /// Panics if `shunt_ohm` or `current_lsb_a` is not strictly positive,
    /// or if the resulting calibration value overflows 15 bits (choose a
    /// larger current LSB or shunt).
    pub fn new(shunt_ohm: f64, current_lsb_a: f64, seed: u64) -> Self {
        assert!(shunt_ohm > 0.0, "shunt resistance must be positive");
        assert!(current_lsb_a > 0.0, "current LSB must be positive");
        let cal = Self::calibration_for(shunt_ohm, current_lsb_a)
            .expect("calibration value overflows the 15-bit register");
        Ina226 {
            shunt_ohm,
            current_lsb_a,
            config: Config::default(),
            calibration: cal,
            mask_enable: 0,
            alert_limit: 0,
            shunt_reg: 0,
            bus_reg: 0,
            current_reg: 0,
            power_reg: 0,
            conversions: 0,
            rng: SimRng::seed_from_u64(seed),
            gauss_cache: None,
            // ~1 shunt LSB and ~0.4 bus LSB of per-sample ADC noise.
            shunt_noise_v: SHUNT_LSB_V,
            bus_noise_v: BUS_LSB_V * 0.4,
        }
    }

    /// Datasheet calibration value `CAL = 0.00512 / (lsb * R_shunt)`,
    /// or `None` if it does not fit the 15-bit register.
    pub fn calibration_for(shunt_ohm: f64, current_lsb_a: f64) -> Option<u16> {
        let cal = (0.00512 / (current_lsb_a * shunt_ohm)).round();
        if (1.0..=32767.0).contains(&cal) {
            Some(cal as u16)
        } else {
            None
        }
    }

    /// The shunt resistance in ohms.
    pub fn shunt_ohm(&self) -> f64 {
        self.shunt_ohm
    }

    /// The programmed current LSB in amps.
    pub fn current_lsb_a(&self) -> f64 {
        self.current_lsb_a
    }

    /// The power LSB in watts (25x the current LSB).
    pub fn power_lsb_w(&self) -> f64 {
        self.current_lsb_a * POWER_LSB_RATIO
    }

    /// The active configuration.
    pub fn config(&self) -> Config {
        self.config
    }

    /// Replaces the configuration (equivalent to writing register 00h).
    pub fn set_config(&mut self, config: Config) {
        self.config = config;
    }

    /// Number of completed conversion cycles.
    pub fn conversions(&self) -> u64 {
        self.conversions
    }

    /// Overrides the per-sample ADC noise levels (volts); useful for
    /// noise-free unit tests and for noise-sensitivity ablations.
    ///
    /// # Panics
    ///
    /// Panics if either value is negative.
    pub fn set_adc_noise(&mut self, shunt_noise_v: f64, bus_noise_v: f64) {
        assert!(
            shunt_noise_v >= 0.0 && bus_noise_v >= 0.0,
            "noise must be non-negative"
        );
        self.shunt_noise_v = shunt_noise_v;
        self.bus_noise_v = bus_noise_v;
    }

    /// Reads a register through the I2C interface.
    pub fn read_register(&self, reg: Register) -> u16 {
        match reg {
            Register::Configuration => self.config.encode(),
            Register::ShuntVoltage => self.shunt_reg as u16,
            Register::BusVoltage => self.bus_reg,
            Register::Power => self.power_reg,
            Register::Current => self.current_reg as u16,
            Register::Calibration => self.calibration,
            Register::MaskEnable => self.mask_enable,
            Register::AlertLimit => self.alert_limit,
            Register::ManufacturerId => MANUFACTURER_ID,
            Register::DieId => DIE_ID,
        }
    }

    /// Writes a register through the I2C interface.
    ///
    /// # Errors
    ///
    /// Returns [`Ina226Error::ReadOnlyRegister`] for result registers and
    /// the ID registers.
    pub fn write_register(&mut self, reg: Register, value: u16) -> Result<()> {
        if !reg.is_writable() {
            return Err(Ina226Error::ReadOnlyRegister(reg));
        }
        match reg {
            Register::Configuration => self.config = Config::decode(value),
            Register::Calibration => self.calibration = value & 0x7FFF,
            Register::MaskEnable => {
                // Status flags (AFF/CVRF/OVF) are read-only; host writes
                // only set the enable bits.
                let status_mask =
                    crate::alert::bits::AFF | crate::alert::bits::CVRF | crate::alert::bits::OVF;
                self.mask_enable = (value & !status_mask) | (self.mask_enable & status_mask);
            }
            Register::AlertLimit => self.alert_limit = value,
            _ => unreachable!("writable set covered above"),
        }
        Ok(())
    }

    /// Runs one full conversion cycle over per-averaging-step operating
    /// points. `samples` must yield `(rail_current_amps, bus_volts)` pairs;
    /// exactly `config.avg.samples()` of them are consumed (missing samples
    /// repeat the last seen value; an empty iterator leaves registers
    /// unchanged).
    ///
    /// In power-down mode the device performs no conversion and the
    /// registers hold their last values; channels disabled by the
    /// operating mode keep their previous register contents.
    pub fn convert<I>(&mut self, samples: I)
    where
        I: IntoIterator<Item = (f64, f64)>,
    {
        if !self.config.mode.converts_shunt() && !self.config.mode.converts_bus() {
            return; // power-down
        }
        let n = self.config.avg.samples() as usize;
        let mut iter = samples.into_iter();
        let mut shunt_acc = 0.0;
        let mut bus_acc = 0.0;
        let mut last = match iter.next() {
            Some(p) => p,
            None => return,
        };
        for i in 0..n {
            if i > 0 {
                if let Some(p) = iter.next() {
                    last = p;
                }
            }
            let (amps, volts) = last;
            // Each averaging step is an independent ADC sample with its own
            // thermal/quantization noise.
            let shunt_v = amps * self.shunt_ohm + self.gaussian() * self.shunt_noise_v;
            let bus_v = volts + self.gaussian() * self.bus_noise_v;
            shunt_acc += shunt_v;
            bus_acc += bus_v;
        }
        let shunt_mean = shunt_acc / n as f64;
        let bus_mean = bus_acc / n as f64;

        // Quantize through the two ADCs — but only the channels the mode
        // enables; the other register holds its previous value.
        if self.config.mode.converts_shunt() {
            let counts = (shunt_mean / SHUNT_LSB_V).round();
            if !(i16::MIN as f64..=i16::MAX as f64).contains(&counts) {
                obs::counter!("ina226.clips.shunt").inc();
            }
            self.shunt_reg = counts.clamp(i16::MIN as f64, i16::MAX as f64) as i16;
        }
        if self.config.mode.converts_bus() {
            let counts = (bus_mean / BUS_LSB_V).round();
            if !(0.0..=0x7FFF as f64).contains(&counts) {
                obs::counter!("ina226.clips.bus").inc();
            }
            self.bus_reg = counts.clamp(0.0, 0x7FFF as f64) as u16;
        }

        // Datasheet integer pipeline.
        let current = (self.shunt_reg as i64 * self.calibration as i64) / 2048;
        if !(i16::MIN as i64..=i16::MAX as i64).contains(&current) {
            obs::counter!("ina226.clips.current").inc();
        }
        self.current_reg = current.clamp(i16::MIN as i64, i16::MAX as i64) as i16;
        let power = (self.current_reg as i64 * self.bus_reg as i64) / 20_000;
        self.power_reg = power.clamp(0, u16::MAX as i64) as u16;
        self.conversions += 1;
        obs::counter!("ina226.conversions").inc();

        // Alert function: refresh the status bits from this conversion.
        let status_mask =
            crate::alert::bits::AFF | crate::alert::bits::CVRF | crate::alert::bits::OVF;
        let status = crate::alert::evaluate(
            self.mask_enable,
            self.shunt_reg,
            self.bus_reg,
            self.power_reg,
            self.alert_limit,
        );
        self.mask_enable = (self.mask_enable & !status_mask) | status;
    }

    /// Convenience wrapper: one conversion cycle over a constant operating
    /// point.
    pub fn convert_constant(&mut self, amps: f64, volts: f64) {
        let n = self.config.avg.samples() as usize;
        self.convert(std::iter::repeat_n((amps, volts), n));
    }

    /// Latched current in amps (register x current LSB).
    pub fn current_amps(&self) -> f64 {
        self.current_reg as f64 * self.current_lsb_a
    }

    /// Latched bus voltage in volts.
    pub fn bus_volts(&self) -> f64 {
        self.bus_reg as f64 * BUS_LSB_V
    }

    /// Latched power in watts (register x 25 x current LSB).
    pub fn power_watts(&self) -> f64 {
        self.power_reg as f64 * self.power_lsb_w()
    }

    /// Latched shunt voltage in volts.
    pub fn shunt_volts(&self) -> f64 {
        self.shunt_reg as f64 * SHUNT_LSB_V
    }

    /// All four measurement registers converted to integer hwmon units in
    /// one call — what the Linux driver reports for `curr1_input`,
    /// `in0_input`, `in1_input` and `power1_input`.
    ///
    /// Reading them together lets the hwmon layer latch one conversion's
    /// outputs once and serve every subsequent value-hold read without
    /// touching the sensor again; the rounding here is bit-identical to
    /// rounding each floating-point accessor individually.
    pub fn readouts(&self) -> Readouts {
        Readouts {
            curr1_ma: (self.current_amps() * 1_000.0).round() as i64,
            in0_mv: (self.shunt_volts() * 1_000.0).round() as i64,
            in1_mv: (self.bus_volts() * 1_000.0).round() as i64,
            power1_uw: (self.power_watts() * 1e6).round() as i64,
        }
    }

    fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_cache.take() {
            return z;
        }
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_cache = Some(r * theta.sin());
        r * theta.cos()
    }
}

/// One conversion's measurement registers in integer hwmon units (the exact
/// values the driver prints into `curr1_input` and friends).
///
/// # Examples
///
/// ```
/// use ina226::Ina226;
///
/// let mut sensor = Ina226::new(0.0005, 0.0005, 99);
/// sensor.set_adc_noise(0.0, 0.0);
/// sensor.convert_constant(2.0, 0.85);
/// let r = sensor.readouts();
/// assert!((r.curr1_ma - 2_000).abs() <= 2);
/// assert!((r.in1_mv - 850).abs() <= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Readouts {
    /// `curr1_input`: current in mA.
    pub curr1_ma: i64,
    /// `in0_input`: shunt voltage in mV.
    pub in0_mv: i64,
    /// `in1_input`: bus voltage in mV.
    pub in1_mv: i64,
    /// `power1_input`: power in µW.
    pub power1_uw: i64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AvgMode;

    fn quiet(shunt_ohm: f64, lsb: f64) -> Ina226 {
        let mut s = Ina226::new(shunt_ohm, lsb, 0);
        s.set_adc_noise(0.0, 0.0);
        s
    }

    #[test]
    fn id_registers() {
        let s = Ina226::new(0.002, 0.0001, 0);
        assert_eq!(s.read_register(Register::ManufacturerId), 0x5449);
        assert_eq!(s.read_register(Register::DieId), 0x2260);
    }

    #[test]
    fn calibration_matches_datasheet_example() {
        // Datasheet section 7.5: lsb = 1 mA, shunt = 2 mΩ -> CAL = 2560.
        assert_eq!(Ina226::calibration_for(0.002, 0.001), Some(2560));
        // Overflow case.
        assert_eq!(Ina226::calibration_for(1e-6, 1e-6), None);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn new_rejects_overflowing_calibration() {
        let _ = Ina226::new(1e-6, 1e-6, 0);
    }

    #[test]
    fn noiseless_conversion_recovers_operating_point() {
        let mut s = quiet(0.0005, 0.0005);
        s.convert_constant(2.0, 0.85);
        assert!(
            (s.current_amps() - 2.0).abs() < 0.0011,
            "{}",
            s.current_amps()
        );
        assert!((s.bus_volts() - 0.85).abs() <= BUS_LSB_V / 2.0 + 1e-12);
        assert!((s.power_watts() - 1.7).abs() < 0.02);
        assert_eq!(s.conversions(), 1);
    }

    #[test]
    fn power_register_is_truncated_to_25x_lsb() {
        let mut s = quiet(0.0005, 0.0005);
        // Two currents 10 mA apart: current registers differ by ~20 counts
        // (0.5 mA LSB) while power (12.5 mW LSB here) moves by less than 1
        // count x ratio than current does.
        s.convert_constant(1.000, 0.85);
        let p1 = s.power_watts();
        let c1 = s.current_amps();
        s.convert_constant(1.010, 0.85);
        let p2 = s.power_watts();
        let c2 = s.current_amps();
        assert!((c2 - c1) > 0.009, "current channel resolves the step");
        // Power steps in multiples of the power LSB.
        let steps = (p2 - p1) / s.power_lsb_w();
        assert!((steps - steps.round()).abs() < 1e-9);
    }

    #[test]
    fn write_protection() {
        let mut s = Ina226::new(0.002, 0.001, 0);
        assert_eq!(
            s.write_register(Register::Current, 1),
            Err(Ina226Error::ReadOnlyRegister(Register::Current))
        );
        assert_eq!(
            s.write_register(Register::ManufacturerId, 1),
            Err(Ina226Error::ReadOnlyRegister(Register::ManufacturerId))
        );
        s.write_register(Register::AlertLimit, 0x1234).unwrap();
        assert_eq!(s.read_register(Register::AlertLimit), 0x1234);
    }

    #[test]
    fn config_write_changes_cycle() {
        let mut s = Ina226::new(0.002, 0.001, 0);
        let cfg = Config {
            avg: AvgMode::X16,
            ..Config::default()
        };
        s.write_register(Register::Configuration, cfg.encode())
            .unwrap();
        assert_eq!(s.config().avg, AvgMode::X16);
        assert_eq!(s.config().cycle_micros(), 16 * 2_200);
    }

    #[test]
    fn averaging_reduces_noise() {
        let spread = |avg: AvgMode| {
            let mut s = Ina226::new(0.0005, 0.0005, 42);
            s.set_config(Config {
                avg,
                ..Config::default()
            });
            let mut vals = Vec::new();
            for _ in 0..200 {
                s.convert_constant(2.0, 0.85);
                vals.push(s.current_amps());
            }
            let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
            (vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64).sqrt()
        };
        let s1 = spread(AvgMode::X1);
        let s64 = spread(AvgMode::X64);
        assert!(
            s64 < s1 / 2.0,
            "64x averaging must cut noise well below 1x ({s64} vs {s1})"
        );
    }

    #[test]
    fn shunt_adc_clamps_at_full_scale() {
        let mut s = quiet(0.002, 0.001);
        // 81.92 mV full scale / 2 mΩ = 40.96 A; drive far beyond.
        s.convert_constant(100.0, 0.85);
        assert_eq!(s.read_register(Register::ShuntVoltage), i16::MAX as u16);
    }

    #[test]
    fn empty_sample_iterator_leaves_registers() {
        let mut s = quiet(0.002, 0.001);
        s.convert_constant(1.0, 0.85);
        let before = s.current_amps();
        s.convert(std::iter::empty());
        assert_eq!(s.current_amps(), before);
        assert_eq!(s.conversions(), 1);
    }

    #[test]
    fn power_down_mode_freezes_registers() {
        use crate::OperatingMode;
        let mut s = quiet(0.0005, 0.0005);
        s.convert_constant(2.0, 0.85);
        let before = (s.current_amps(), s.bus_volts());
        s.set_config(Config {
            mode: OperatingMode::PowerDown,
            ..Config::default()
        });
        s.convert_constant(5.0, 0.80);
        assert_eq!((s.current_amps(), s.bus_volts()), before);
        assert_eq!(s.conversions(), 1, "power-down must not convert");
    }

    #[test]
    fn shunt_only_mode_holds_bus_register() {
        use crate::OperatingMode;
        let mut s = quiet(0.0005, 0.0005);
        s.convert_constant(1.0, 0.85);
        let bus_before = s.bus_volts();
        s.set_config(Config {
            mode: OperatingMode::ShuntContinuous,
            ..Config::default()
        });
        s.convert_constant(3.0, 0.70);
        assert!(
            (s.current_amps() - 3.0).abs() < 0.01,
            "shunt channel updates"
        );
        assert_eq!(s.bus_volts(), bus_before, "bus register held");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mut a = Ina226::new(0.0005, 0.0005, 7);
        let mut b = Ina226::new(0.0005, 0.0005, 7);
        for _ in 0..50 {
            a.convert_constant(1.5, 0.85);
            b.convert_constant(1.5, 0.85);
            assert_eq!(a.current_amps(), b.current_amps());
        }
    }

    #[test]
    fn negative_current_reads_negative() {
        let mut s = quiet(0.002, 0.001);
        s.convert_constant(-1.0, 0.85);
        assert!((s.current_amps() + 1.0).abs() < 0.005);
    }

    sim_rt::prop_check! {
        fn conversion_error_bounded_by_lsb(
            amps in 0.0f64..6.0,
            volts in 0.7f64..1.3
        ) {
            let mut s = quiet(0.0005, 0.0005);
            s.convert_constant(amps, volts);
            // Within 1 current LSB + shunt quantization (0.0025/0.5mΩ = 5 mA).
            assert!((s.current_amps() - amps).abs() < 0.006);
            assert!((s.bus_volts() - volts).abs() <= BUS_LSB_V);
        }

        fn power_consistent_with_current_times_voltage(
            amps in 0.1f64..6.0,
            volts in 0.7f64..1.3
        ) {
            let mut s = quiet(0.0005, 0.0005);
            s.convert_constant(amps, volts);
            let p = s.power_watts();
            let expect = s.current_amps() * s.bus_volts();
            // Truncation means p <= expect, within one power LSB.
            assert!(p <= expect + 1e-9);
            assert!(expect - p <= s.power_lsb_w() + 1e-9);
        }
    }
}
