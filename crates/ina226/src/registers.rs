/// INA226 register map (datasheet Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Register {
    /// 00h — operating configuration.
    Configuration,
    /// 01h — shunt voltage, signed, 2.5 µV LSB.
    ShuntVoltage,
    /// 02h — bus voltage, unsigned, 1.25 mV LSB.
    BusVoltage,
    /// 03h — calculated power, unsigned, 25 x current LSB.
    Power,
    /// 04h — calculated current, signed.
    Current,
    /// 05h — calibration value.
    Calibration,
    /// 06h — mask/enable (alert configuration).
    MaskEnable,
    /// 07h — alert limit.
    AlertLimit,
    /// FEh — manufacturer ID (0x5449, "TI").
    ManufacturerId,
    /// FFh — die ID (0x2260).
    DieId,
}

impl Register {
    /// I2C register pointer value.
    pub fn address(self) -> u8 {
        match self {
            Register::Configuration => 0x00,
            Register::ShuntVoltage => 0x01,
            Register::BusVoltage => 0x02,
            Register::Power => 0x03,
            Register::Current => 0x04,
            Register::Calibration => 0x05,
            Register::MaskEnable => 0x06,
            Register::AlertLimit => 0x07,
            Register::ManufacturerId => 0xFE,
            Register::DieId => 0xFF,
        }
    }

    /// Whether the host may write this register.
    pub fn is_writable(self) -> bool {
        matches!(
            self,
            Register::Configuration
                | Register::Calibration
                | Register::MaskEnable
                | Register::AlertLimit
        )
    }
}

/// Averaging mode (AVG bits of the configuration register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AvgMode {
    /// 1 sample (no averaging).
    X1,
    /// 4 samples.
    X4,
    /// 16 samples.
    X16,
    /// 64 samples.
    X64,
    /// 128 samples.
    X128,
    /// 256 samples.
    X256,
    /// 512 samples.
    X512,
    /// 1024 samples.
    X1024,
}

impl AvgMode {
    /// All modes in register-encoding order.
    pub const ALL: [AvgMode; 8] = [
        AvgMode::X1,
        AvgMode::X4,
        AvgMode::X16,
        AvgMode::X64,
        AvgMode::X128,
        AvgMode::X256,
        AvgMode::X512,
        AvgMode::X1024,
    ];

    /// Number of samples averaged per conversion result.
    pub fn samples(self) -> u32 {
        match self {
            AvgMode::X1 => 1,
            AvgMode::X4 => 4,
            AvgMode::X16 => 16,
            AvgMode::X64 => 64,
            AvgMode::X128 => 128,
            AvgMode::X256 => 256,
            AvgMode::X512 => 512,
            AvgMode::X1024 => 1024,
        }
    }

    fn bits(self) -> u16 {
        Self::ALL.iter().position(|&m| m == self).expect("in ALL") as u16
    }

    fn from_bits(bits: u16) -> AvgMode {
        Self::ALL[(bits & 0x7) as usize]
    }
}

/// Per-channel ADC conversion time (VBUSCT / VSHCT bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConversionTime {
    /// 140 µs.
    Us140,
    /// 204 µs.
    Us204,
    /// 332 µs.
    Us332,
    /// 588 µs.
    Us588,
    /// 1.1 ms (power-on default).
    Us1100,
    /// 2.116 ms.
    Us2116,
    /// 4.156 ms.
    Us4156,
    /// 8.244 ms.
    Us8244,
}

impl ConversionTime {
    /// All conversion times in register-encoding order.
    pub const ALL: [ConversionTime; 8] = [
        ConversionTime::Us140,
        ConversionTime::Us204,
        ConversionTime::Us332,
        ConversionTime::Us588,
        ConversionTime::Us1100,
        ConversionTime::Us2116,
        ConversionTime::Us4156,
        ConversionTime::Us8244,
    ];

    /// Conversion time in microseconds.
    pub fn micros(self) -> u64 {
        match self {
            ConversionTime::Us140 => 140,
            ConversionTime::Us204 => 204,
            ConversionTime::Us332 => 332,
            ConversionTime::Us588 => 588,
            ConversionTime::Us1100 => 1_100,
            ConversionTime::Us2116 => 2_116,
            ConversionTime::Us4156 => 4_156,
            ConversionTime::Us8244 => 8_244,
        }
    }

    fn bits(self) -> u16 {
        Self::ALL.iter().position(|&c| c == self).expect("in ALL") as u16
    }

    fn from_bits(bits: u16) -> ConversionTime {
        Self::ALL[(bits & 0x7) as usize]
    }
}

/// Operating mode (MODE bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatingMode {
    /// Power-down.
    PowerDown,
    /// Shunt voltage, triggered.
    ShuntTriggered,
    /// Bus voltage, triggered.
    BusTriggered,
    /// Shunt and bus, triggered.
    ShuntBusTriggered,
    /// Shunt voltage, continuous.
    ShuntContinuous,
    /// Bus voltage, continuous.
    BusContinuous,
    /// Shunt and bus, continuous (power-on default).
    ShuntBusContinuous,
}

impl OperatingMode {
    fn bits(self) -> u16 {
        match self {
            OperatingMode::PowerDown => 0b000,
            OperatingMode::ShuntTriggered => 0b001,
            OperatingMode::BusTriggered => 0b010,
            OperatingMode::ShuntBusTriggered => 0b011,
            OperatingMode::ShuntContinuous => 0b101,
            OperatingMode::BusContinuous => 0b110,
            OperatingMode::ShuntBusContinuous => 0b111,
        }
    }

    fn from_bits(bits: u16) -> OperatingMode {
        match bits & 0b111 {
            0b000 | 0b100 => OperatingMode::PowerDown,
            0b001 => OperatingMode::ShuntTriggered,
            0b010 => OperatingMode::BusTriggered,
            0b011 => OperatingMode::ShuntBusTriggered,
            0b101 => OperatingMode::ShuntContinuous,
            0b110 => OperatingMode::BusContinuous,
            _ => OperatingMode::ShuntBusContinuous,
        }
    }

    /// Whether shunt conversions run in this mode.
    pub fn converts_shunt(self) -> bool {
        matches!(
            self,
            OperatingMode::ShuntTriggered
                | OperatingMode::ShuntBusTriggered
                | OperatingMode::ShuntContinuous
                | OperatingMode::ShuntBusContinuous
        )
    }

    /// Whether bus conversions run in this mode.
    pub fn converts_bus(self) -> bool {
        matches!(
            self,
            OperatingMode::BusTriggered
                | OperatingMode::ShuntBusTriggered
                | OperatingMode::BusContinuous
                | OperatingMode::ShuntBusContinuous
        )
    }
}

/// Decoded configuration register.
///
/// The default matches the power-on value 0x4127: no averaging, 1.1 ms
/// conversion time on both channels, continuous shunt+bus conversion.
///
/// # Examples
///
/// ```
/// use ina226::Config;
///
/// let c = Config::default();
/// assert_eq!(c.encode(), 0x4127);
/// assert_eq!(Config::decode(0x4127), c);
/// // Default cycle: (1.1ms + 1.1ms) * 1 sample = 2.2 ms
/// assert_eq!(c.cycle_micros(), 2_200);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Config {
    /// Averaging mode applied to both channels.
    pub avg: AvgMode,
    /// Bus-voltage conversion time.
    pub bus_ct: ConversionTime,
    /// Shunt-voltage conversion time.
    pub shunt_ct: ConversionTime,
    /// Operating mode.
    pub mode: OperatingMode,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            avg: AvgMode::X1,
            bus_ct: ConversionTime::Us1100,
            shunt_ct: ConversionTime::Us1100,
            mode: OperatingMode::ShuntBusContinuous,
        }
    }
}

impl Config {
    /// Encodes to the 16-bit register value.
    pub fn encode(self) -> u16 {
        0x4000 // reserved bit 14 always reads 1
            | (self.avg.bits() << 9)
            | (self.bus_ct.bits() << 6)
            | (self.shunt_ct.bits() << 3)
            | self.mode.bits()
    }

    /// Decodes from a 16-bit register value.
    pub fn decode(raw: u16) -> Config {
        Config {
            avg: AvgMode::from_bits(raw >> 9),
            bus_ct: ConversionTime::from_bits(raw >> 6),
            shunt_ct: ConversionTime::from_bits(raw >> 3),
            mode: OperatingMode::from_bits(raw),
        }
    }

    /// Total time of one complete conversion cycle in microseconds:
    /// `(bus_ct + shunt_ct) * avg_samples` for shunt+bus modes.
    pub fn cycle_micros(self) -> u64 {
        let mut per_sample = 0;
        if self.mode.converts_bus() {
            per_sample += self.bus_ct.micros();
        }
        if self.mode.converts_shunt() {
            per_sample += self.shunt_ct.micros();
        }
        per_sample * self.avg.samples() as u64
    }

    /// Picks the configuration whose full cycle best matches a requested
    /// hwmon `update_interval` in milliseconds, mirroring the Linux ina226
    /// driver's `ina226_interval_to_avg` logic (conversion times stay at
    /// the 1.1 ms default; only the averaging changes).
    pub fn for_update_interval_ms(interval_ms: u64) -> Config {
        let base = Config::default();
        let per_sample_us = base.bus_ct.micros() + base.shunt_ct.micros();
        let mut best = base;
        let mut best_err = u64::MAX;
        for avg in AvgMode::ALL {
            let cycle_us = per_sample_us * avg.samples() as u64;
            let err = cycle_us.abs_diff(interval_ms * 1_000);
            if err < best_err {
                best_err = err;
                best = Config { avg, ..base };
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_encodes_to_power_on_value() {
        assert_eq!(Config::default().encode(), 0x4127);
    }

    #[test]
    fn encode_decode_round_trips() {
        for avg in AvgMode::ALL {
            for bus_ct in ConversionTime::ALL {
                for shunt_ct in ConversionTime::ALL {
                    let c = Config {
                        avg,
                        bus_ct,
                        shunt_ct,
                        mode: OperatingMode::ShuntBusContinuous,
                    };
                    assert_eq!(Config::decode(c.encode()), c);
                }
            }
        }
    }

    #[test]
    fn register_addresses_match_datasheet() {
        assert_eq!(Register::Configuration.address(), 0x00);
        assert_eq!(Register::Calibration.address(), 0x05);
        assert_eq!(Register::ManufacturerId.address(), 0xFE);
        assert_eq!(Register::DieId.address(), 0xFF);
    }

    #[test]
    fn writability_matches_datasheet() {
        assert!(Register::Configuration.is_writable());
        assert!(Register::Calibration.is_writable());
        assert!(!Register::Current.is_writable());
        assert!(!Register::Power.is_writable());
        assert!(!Register::ShuntVoltage.is_writable());
        assert!(!Register::ManufacturerId.is_writable());
    }

    #[test]
    fn avg_samples_are_powers() {
        let counts: Vec<u32> = AvgMode::ALL.iter().map(|m| m.samples()).collect();
        assert_eq!(counts, vec![1, 4, 16, 64, 128, 256, 512, 1024]);
    }

    #[test]
    fn conversion_times_match_datasheet() {
        let times: Vec<u64> = ConversionTime::ALL.iter().map(|c| c.micros()).collect();
        assert_eq!(times, vec![140, 204, 332, 588, 1_100, 2_116, 4_156, 8_244]);
    }

    #[test]
    fn cycle_time_spans_the_hwmon_interval_range() {
        // Fastest usable cycle (~0.28 ms) up to the 35 ms default: the
        // paper's "configurable updating interval between 2 and 35 ms".
        let fast = Config {
            avg: AvgMode::X1,
            bus_ct: ConversionTime::Us140,
            shunt_ct: ConversionTime::Us140,
            mode: OperatingMode::ShuntBusContinuous,
        };
        assert_eq!(fast.cycle_micros(), 280);
        let default_35ms = Config::for_update_interval_ms(35);
        let cycle = default_35ms.cycle_micros();
        assert!((30_000..=40_000).contains(&cycle), "cycle {cycle} us");
    }

    #[test]
    fn interval_mapping_is_monotone() {
        let mut prev = 0;
        for ms in [2, 4, 9, 18, 35, 70] {
            let cycle = Config::for_update_interval_ms(ms).cycle_micros();
            assert!(cycle >= prev);
            prev = cycle;
        }
    }

    #[test]
    fn power_down_converts_nothing() {
        let c = Config {
            mode: OperatingMode::PowerDown,
            ..Config::default()
        };
        assert_eq!(c.cycle_micros(), 0);
        assert!(!OperatingMode::PowerDown.converts_shunt());
        assert!(!OperatingMode::PowerDown.converts_bus());
    }

    sim_rt::prop_check! {
        fn decode_never_panics(raw in 0u16..=u16::MAX) {
            let c = Config::decode(raw);
            // Re-encoding normalizes reserved bits but preserves fields.
            let c2 = Config::decode(c.encode());
            assert_eq!(c, c2);
        }
    }
}
