//! I2C transaction layer.
//!
//! On real boards the hwmon driver reaches the INA226 over an I2C bus
//! (the ZCU102 routes its 18 sensors through PCA9544 muxes on a single
//! controller). This module models the bus-level protocol: 7-bit
//! addressing, the pointer-register write, big-endian 16-bit register
//! reads/writes, and NACK behaviour for absent devices — so the register
//! file is exercised exactly the way the kernel driver exercises it.

use std::collections::BTreeMap;
use std::fmt;

use crate::registers::Register;
use crate::{Ina226, Ina226Error};

/// A validated 7-bit I2C address.
///
/// # Examples
///
/// ```
/// use ina226::i2c::I2cAddress;
///
/// let addr = I2cAddress::new(0x40)?;
/// assert_eq!(addr.value(), 0x40);
/// assert!(I2cAddress::new(0x80).is_err());
/// # Ok::<(), ina226::i2c::I2cError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct I2cAddress(u8);

impl I2cAddress {
    /// Creates an address; must fit in 7 bits.
    ///
    /// # Errors
    ///
    /// Returns [`I2cError::InvalidAddress`] for values above 0x7F.
    pub fn new(addr: u8) -> Result<Self, I2cError> {
        if addr > 0x7F {
            return Err(I2cError::InvalidAddress(addr));
        }
        Ok(I2cAddress(addr))
    }

    /// The raw 7-bit value.
    pub fn value(self) -> u8 {
        self.0
    }

    /// The INA226's address range given its A1/A0 strap pins
    /// (datasheet Table 2: 0x40..=0x4F).
    pub fn ina226_strap(a1: u8, a0: u8) -> Result<Self, I2cError> {
        if a1 > 3 || a0 > 3 {
            return Err(I2cError::InvalidAddress(0x40 + (a1 << 2) + a0));
        }
        I2cAddress::new(0x40 + (a1 << 2) + a0)
    }
}

impl fmt::Display for I2cAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:02x}", self.0)
    }
}

/// I2C bus errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum I2cError {
    /// Address does not fit in 7 bits or is otherwise malformed.
    InvalidAddress(u8),
    /// No device acknowledged the address.
    Nack(u8),
    /// An address is already occupied on this bus.
    AddressInUse(u8),
    /// The transaction payload was malformed (wrong byte count).
    MalformedTransaction(&'static str),
    /// The target device rejected the operation.
    Target(Ina226Error),
}

impl fmt::Display for I2cError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            I2cError::InvalidAddress(a) => write!(f, "invalid 7-bit address 0x{a:02x}"),
            I2cError::Nack(a) => write!(f, "no ack from 0x{a:02x}"),
            I2cError::AddressInUse(a) => write!(f, "address 0x{a:02x} already in use"),
            I2cError::MalformedTransaction(what) => {
                write!(f, "malformed transaction: {what}")
            }
            I2cError::Target(e) => write!(f, "target error: {e}"),
        }
    }
}

impl std::error::Error for I2cError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            I2cError::Target(e) => Some(e),
            _ => None,
        }
    }
}

/// An INA226 attached to a bus: the chip-side pointer-register state
/// machine.
#[derive(Debug)]
struct BusAttachedIna226 {
    device: Ina226,
    /// Last written register pointer.
    pointer: u8,
}

/// An I2C bus with INA226 targets.
///
/// # Examples
///
/// ```
/// use ina226::i2c::{I2cAddress, I2cBus};
/// use ina226::{Ina226, Register};
///
/// let mut bus = I2cBus::new();
/// let addr = I2cAddress::new(0x40)?;
/// bus.attach(addr, Ina226::new(0.002, 0.001, 1))?;
///
/// // Kernel-driver style register read: pointer write, then 2-byte read.
/// let id = bus.write_read_u16(addr, Register::ManufacturerId.address())?;
/// assert_eq!(id, 0x5449);
/// # Ok::<(), ina226::i2c::I2cError>(())
/// ```
#[derive(Debug, Default)]
pub struct I2cBus {
    targets: BTreeMap<u8, BusAttachedIna226>,
    transactions: u64,
}

impl I2cBus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        I2cBus::default()
    }

    /// Attaches a device at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`I2cError::AddressInUse`] if the address is occupied.
    pub fn attach(&mut self, addr: I2cAddress, device: Ina226) -> Result<(), I2cError> {
        if self.targets.contains_key(&addr.value()) {
            return Err(I2cError::AddressInUse(addr.value()));
        }
        self.targets
            .insert(addr.value(), BusAttachedIna226 { device, pointer: 0 });
        Ok(())
    }

    /// Addresses of attached devices.
    pub fn scan(&self) -> Vec<I2cAddress> {
        self.targets.keys().map(|&a| I2cAddress(a)).collect()
    }

    /// Number of completed transactions (diagnostics).
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Mutable access to a target's device model (the simulation backend
    /// feeding conversions; not part of the host-visible protocol).
    pub fn device_mut(&mut self, addr: I2cAddress) -> Option<&mut Ina226> {
        self.targets.get_mut(&addr.value()).map(|t| &mut t.device)
    }

    fn target_mut(&mut self, addr: I2cAddress) -> Result<&mut BusAttachedIna226, I2cError> {
        self.targets
            .get_mut(&addr.value())
            .ok_or(I2cError::Nack(addr.value()))
    }

    /// I2C write: first byte is the register pointer, optionally followed
    /// by two big-endian data bytes (a register write).
    ///
    /// # Errors
    ///
    /// * [`I2cError::Nack`] for absent targets.
    /// * [`I2cError::MalformedTransaction`] for byte counts other than 1
    ///   or 3.
    /// * [`I2cError::Target`] if the chip rejects the register write.
    pub fn write(&mut self, addr: I2cAddress, bytes: &[u8]) -> Result<(), I2cError> {
        self.transactions += 1;
        let target = self.target_mut(addr)?;
        match bytes {
            [pointer] => {
                target.pointer = *pointer;
                Ok(())
            }
            [pointer, hi, lo] => {
                target.pointer = *pointer;
                let reg = register_for(*pointer)
                    .ok_or(I2cError::MalformedTransaction("unknown register pointer"))?;
                let value = u16::from_be_bytes([*hi, *lo]);
                target
                    .device
                    .write_register(reg, value)
                    .map_err(I2cError::Target)
            }
            _ => Err(I2cError::MalformedTransaction(
                "writes are 1 (pointer) or 3 (pointer + u16) bytes",
            )),
        }
    }

    /// I2C read: returns the 2 big-endian bytes of the register the
    /// pointer currently selects.
    ///
    /// # Errors
    ///
    /// * [`I2cError::Nack`] for absent targets.
    /// * [`I2cError::MalformedTransaction`] if the pointer selects an
    ///   unknown register.
    pub fn read_u16(&mut self, addr: I2cAddress) -> Result<u16, I2cError> {
        self.transactions += 1;
        let target = self.target_mut(addr)?;
        let reg = register_for(target.pointer)
            .ok_or(I2cError::MalformedTransaction("unknown register pointer"))?;
        Ok(target.device.read_register(reg))
    }

    /// Combined transaction: pointer write followed by a repeated-start
    /// 2-byte read — the `i2c_smbus_read_word_swapped` the Linux driver
    /// issues.
    ///
    /// # Errors
    ///
    /// Same conditions as [`I2cBus::write`] and [`I2cBus::read_u16`].
    pub fn write_read_u16(&mut self, addr: I2cAddress, pointer: u8) -> Result<u16, I2cError> {
        self.write(addr, &[pointer])?;
        self.read_u16(addr)
    }
}

/// Maps a pointer byte to the register it selects.
fn register_for(pointer: u8) -> Option<Register> {
    Some(match pointer {
        0x00 => Register::Configuration,
        0x01 => Register::ShuntVoltage,
        0x02 => Register::BusVoltage,
        0x03 => Register::Power,
        0x04 => Register::Current,
        0x05 => Register::Calibration,
        0x06 => Register::MaskEnable,
        0x07 => Register::AlertLimit,
        0xFE => Register::ManufacturerId,
        0xFF => Register::DieId,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Config;

    fn bus_with_sensor() -> (I2cBus, I2cAddress) {
        let mut bus = I2cBus::new();
        let addr = I2cAddress::new(0x41).unwrap();
        bus.attach(addr, Ina226::new(0.002, 0.001, 9)).unwrap();
        (bus, addr)
    }

    #[test]
    fn strap_addresses_match_datasheet() {
        assert_eq!(I2cAddress::ina226_strap(0, 0).unwrap().value(), 0x40);
        assert_eq!(I2cAddress::ina226_strap(3, 3).unwrap().value(), 0x4F);
        assert!(I2cAddress::ina226_strap(4, 0).is_err());
    }

    #[test]
    fn id_read_over_bus() {
        let (mut bus, addr) = bus_with_sensor();
        assert_eq!(bus.write_read_u16(addr, 0xFE).unwrap(), 0x5449);
        assert_eq!(bus.write_read_u16(addr, 0xFF).unwrap(), 0x2260);
        assert_eq!(bus.transactions(), 4);
    }

    #[test]
    fn configuration_write_over_bus() {
        let (mut bus, addr) = bus_with_sensor();
        let cfg = Config::for_update_interval_ms(2).encode();
        let [hi, lo] = cfg.to_be_bytes();
        bus.write(addr, &[0x00, hi, lo]).unwrap();
        assert_eq!(bus.write_read_u16(addr, 0x00).unwrap(), cfg);
    }

    #[test]
    fn measurement_flow_like_kernel_driver() {
        let (mut bus, addr) = bus_with_sensor();
        // Simulation backend latches a conversion...
        bus.device_mut(addr).unwrap().set_adc_noise(0.0, 0.0);
        bus.device_mut(addr).unwrap().convert_constant(1.0, 0.85);
        // ...driver reads current register over the wire.
        let raw = bus.write_read_u16(addr, 0x04).unwrap() as i16;
        let amps = raw as f64 * 0.001;
        assert!((amps - 1.0).abs() < 0.005, "{amps}");
    }

    #[test]
    fn absent_device_nacks() {
        let (mut bus, _) = bus_with_sensor();
        let ghost = I2cAddress::new(0x4A).unwrap();
        assert_eq!(bus.read_u16(ghost), Err(I2cError::Nack(0x4A)));
        assert_eq!(bus.write(ghost, &[0]), Err(I2cError::Nack(0x4A)));
    }

    #[test]
    fn double_attach_rejected() {
        let (mut bus, addr) = bus_with_sensor();
        assert_eq!(
            bus.attach(addr, Ina226::new(0.002, 0.001, 0)),
            Err(I2cError::AddressInUse(0x41))
        );
    }

    #[test]
    fn malformed_transactions_rejected() {
        let (mut bus, addr) = bus_with_sensor();
        assert!(matches!(
            bus.write(addr, &[0x00, 0x12]),
            Err(I2cError::MalformedTransaction(_))
        ));
        assert!(matches!(
            bus.write(addr, &[0x99, 0, 0]),
            Err(I2cError::MalformedTransaction(_))
        ));
        // Read-only register write propagates the chip error.
        assert!(matches!(
            bus.write(addr, &[0x04, 0, 1]),
            Err(I2cError::Target(Ina226Error::ReadOnlyRegister(_)))
        ));
    }

    #[test]
    fn scan_lists_devices() {
        let (mut bus, addr) = bus_with_sensor();
        let other = I2cAddress::new(0x44).unwrap();
        bus.attach(other, Ina226::new(0.001, 0.0005, 1)).unwrap();
        assert_eq!(bus.scan(), vec![addr, other]);
    }

    #[test]
    fn address_display() {
        assert_eq!(I2cAddress::new(0x40).unwrap().to_string(), "0x40");
    }
}
