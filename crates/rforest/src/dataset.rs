use std::fmt;

/// Error constructing a [`Dataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DatasetError {
    /// The dataset has no samples.
    Empty,
    /// Feature and label counts differ.
    LengthMismatch {
        /// Number of feature vectors.
        features: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A feature vector has a different dimensionality than the first.
    RaggedFeatures {
        /// Index of the offending sample.
        index: usize,
        /// Expected dimensionality.
        expected: usize,
        /// Actual dimensionality.
        actual: usize,
    },
    /// A feature value is NaN or infinite.
    NonFiniteFeature {
        /// Index of the offending sample.
        index: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Empty => write!(f, "dataset has no samples"),
            DatasetError::LengthMismatch { features, labels } => {
                write!(
                    f,
                    "feature count {features} does not match label count {labels}"
                )
            }
            DatasetError::RaggedFeatures {
                index,
                expected,
                actual,
            } => write!(
                f,
                "sample {index} has {actual} features, expected {expected}"
            ),
            DatasetError::NonFiniteFeature { index } => {
                write!(f, "sample {index} contains a non-finite feature")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// A labelled classification dataset.
///
/// Labels are arbitrary `usize` class ids; the number of classes is
/// `max(label) + 1`.
///
/// # Examples
///
/// ```
/// use rforest::Dataset;
///
/// let d = Dataset::new(vec![vec![1.0], vec![2.0]], vec![0, 1])?;
/// assert_eq!(d.len(), 2);
/// assert_eq!(d.n_classes(), 2);
/// assert_eq!(d.n_features(), 1);
/// # Ok::<(), rforest::DatasetError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    labels: Vec<usize>,
    n_classes: usize,
}

impl Dataset {
    /// Creates a dataset from feature vectors and class labels.
    ///
    /// # Errors
    ///
    /// Returns a [`DatasetError`] if the dataset is empty, lengths
    /// mismatch, features are ragged, or any feature is non-finite.
    pub fn new(features: Vec<Vec<f64>>, labels: Vec<usize>) -> Result<Self, DatasetError> {
        if features.is_empty() {
            return Err(DatasetError::Empty);
        }
        if features.len() != labels.len() {
            return Err(DatasetError::LengthMismatch {
                features: features.len(),
                labels: labels.len(),
            });
        }
        let dim = features[0].len();
        for (i, row) in features.iter().enumerate() {
            if row.len() != dim {
                return Err(DatasetError::RaggedFeatures {
                    index: i,
                    expected: dim,
                    actual: row.len(),
                });
            }
            if row.iter().any(|v| !v.is_finite()) {
                return Err(DatasetError::NonFiniteFeature { index: i });
            }
        }
        let n_classes = labels.iter().copied().max().unwrap_or(0) + 1;
        Ok(Dataset {
            features,
            labels,
            n_classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty (never true for a constructed dataset).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn n_features(&self) -> usize {
        self.features[0].len()
    }

    /// Number of classes (`max(label) + 1`).
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Feature vector of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn features_of(&self, i: usize) -> &[f64] {
        &self.features[i]
    }

    /// Label of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn label_of(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Builds a sub-dataset from sample indices (with repetition allowed —
    /// this is how bootstrap resamples are expressed).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            n_classes: self.n_classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_construction() {
        let d = Dataset::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![0, 2]).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_classes(), 3);
        assert_eq!(d.features_of(1), &[3.0, 4.0]);
        assert_eq!(d.label_of(1), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Dataset::new(vec![], vec![]), Err(DatasetError::Empty));
    }

    #[test]
    fn rejects_length_mismatch() {
        assert_eq!(
            Dataset::new(vec![vec![1.0]], vec![0, 1]),
            Err(DatasetError::LengthMismatch {
                features: 1,
                labels: 2
            })
        );
    }

    #[test]
    fn rejects_ragged() {
        assert!(matches!(
            Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 1]),
            Err(DatasetError::RaggedFeatures {
                index: 1,
                expected: 1,
                actual: 2
            })
        ));
    }

    #[test]
    fn rejects_non_finite() {
        assert_eq!(
            Dataset::new(vec![vec![f64::NAN]], vec![0]),
            Err(DatasetError::NonFiniteFeature { index: 0 })
        );
        assert_eq!(
            Dataset::new(vec![vec![f64::INFINITY]], vec![0]),
            Err(DatasetError::NonFiniteFeature { index: 0 })
        );
    }

    #[test]
    fn subset_with_repetition() {
        let d = Dataset::new(vec![vec![1.0], vec![2.0], vec![3.0]], vec![0, 1, 2]).unwrap();
        let s = d.subset(&[2, 2, 0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.features_of(0), &[3.0]);
        assert_eq!(s.label_of(2), 0);
        // Class count is inherited, not recomputed.
        assert_eq!(s.n_classes(), 3);
    }

    #[test]
    fn error_display() {
        assert!(DatasetError::Empty.to_string().contains("no samples"));
    }
}
