use sim_rt::rng::{Rng, SimRng, SliceShuffle};

use crate::Dataset;

/// Configuration of a single CART decision tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum depth (paper: 32).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Number of candidate features examined per split; `None` means all
    /// (forests use sqrt(d)).
    pub features_per_split: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 32,
            min_samples_split: 2,
            features_per_split: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        /// Class vote distribution at this leaf.
        counts: Vec<u32>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A CART decision tree with Gini-impurity splits.
///
/// # Examples
///
/// ```
/// use rforest::{Dataset, DecisionTree, TreeConfig};
///
/// let data = Dataset::new(
///     vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]],
///     vec![0, 0, 1, 1],
/// )?;
/// let tree = DecisionTree::fit(&data, &TreeConfig::default(), 1);
/// assert_eq!(tree.predict(&[0.5]), 0);
/// assert_eq!(tree.predict(&[10.5]), 1);
/// # Ok::<(), rforest::DatasetError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_classes: usize,
}

impl DecisionTree {
    /// Trains a tree on `data`.
    pub fn fit(data: &Dataset, config: &TreeConfig, seed: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_classes: data.n_classes(),
        };
        let indices: Vec<usize> = (0..data.len()).collect();
        tree.build(data, indices, config, 0, &mut rng);
        tree
    }

    fn class_counts(&self, data: &Dataset, indices: &[usize]) -> Vec<u32> {
        let mut counts = vec![0u32; self.n_classes];
        for &i in indices {
            counts[data.label_of(i)] += 1;
        }
        counts
    }

    fn build(
        &mut self,
        data: &Dataset,
        indices: Vec<usize>,
        config: &TreeConfig,
        depth: usize,
        rng: &mut SimRng,
    ) -> usize {
        let counts = self.class_counts(data, &indices);
        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
        if pure || depth >= config.max_depth || indices.len() < config.min_samples_split {
            let id = self.nodes.len();
            self.nodes.push(Node::Leaf { counts });
            return id;
        }
        match self.best_split(data, &indices, config, rng) {
            Some((feature, threshold)) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| data.features_of(i)[feature] <= threshold);
                if left_idx.is_empty() || right_idx.is_empty() {
                    let id = self.nodes.len();
                    self.nodes.push(Node::Leaf { counts });
                    return id;
                }
                let id = self.nodes.len();
                // Placeholder; children are appended after.
                self.nodes.push(Node::Split {
                    feature,
                    threshold,
                    left: 0,
                    right: 0,
                });
                let left = self.build(data, left_idx, config, depth + 1, rng);
                let right = self.build(data, right_idx, config, depth + 1, rng);
                if let Node::Split {
                    left: l, right: r, ..
                } = &mut self.nodes[id]
                {
                    *l = left;
                    *r = right;
                }
                id
            }
            None => {
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf { counts });
                id
            }
        }
    }

    /// Finds the `(feature, threshold)` pair minimizing weighted Gini
    /// impurity over a random feature subset.
    fn best_split(
        &self,
        data: &Dataset,
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut SimRng,
    ) -> Option<(usize, f64)> {
        let d = data.n_features();
        let k = config.features_per_split.unwrap_or(d).clamp(1, d);
        let mut features: Vec<usize> = (0..d).collect();
        features.shuffle(rng);
        features.truncate(k);

        let mut best: Option<(f64, usize, f64)> = None;
        let total = indices.len() as f64;
        for &f in &features {
            // Sort samples by this feature's value.
            let mut order: Vec<usize> = indices.to_vec();
            order.sort_by(|&a, &b| {
                data.features_of(a)[f]
                    .partial_cmp(&data.features_of(b)[f])
                    .expect("features validated finite")
            });
            let mut left_counts = vec![0u32; self.n_classes];
            let mut right_counts = self.class_counts(data, indices);
            let mut n_left = 0.0;
            for w in 0..order.len() - 1 {
                let i = order[w];
                let label = data.label_of(i);
                left_counts[label] += 1;
                right_counts[label] -= 1;
                n_left += 1.0;
                let v_here = data.features_of(i)[f];
                let v_next = data.features_of(order[w + 1])[f];
                if v_here == v_next {
                    continue; // can't split between equal values
                }
                let n_right = total - n_left;
                let score = n_left / total * gini(&left_counts, n_left)
                    + n_right / total * gini(&right_counts, n_right);
                if best.is_none_or(|(s, _, _)| score < s) {
                    best = Some((score, f, (v_here + v_next) / 2.0));
                }
            }
        }
        best.map(|(_, f, t)| (f, t))
    }

    fn leaf_for(&self, x: &[f64]) -> &[u32] {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { counts } => return counts,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Per-class vote distribution for a sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` has fewer features than the training data.
    pub fn vote_counts(&self, x: &[f64]) -> &[u32] {
        self.leaf_for(x)
    }

    /// Predicted class (majority of the reached leaf).
    pub fn predict(&self, x: &[f64]) -> usize {
        let counts = self.leaf_for(x);
        counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], id: usize) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        walk(&self.nodes, 0)
    }
}

/// Gini impurity of a class-count vector with `n` samples.
fn gini(counts: &[u32], n: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    let mut g = 1.0;
    for &c in counts {
        let p = c as f64 / n;
        g -= p * p;
    }
    g
}

/// Draws a bootstrap resample (n samples with replacement).
pub(crate) fn bootstrap_indices(n: usize, rng: &mut SimRng) -> Vec<usize> {
    (0..n).map(|_| rng.gen_range(0..n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_dataset() -> Dataset {
        // XOR is not linearly separable; a depth>=2 tree handles it.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..10 {
            for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
                features.push(vec![a, b]);
                labels.push(((a as u8) ^ (b as u8)) as usize);
            }
        }
        Dataset::new(features, labels).unwrap()
    }

    #[test]
    fn gini_of_pure_and_even() {
        assert_eq!(gini(&[10, 0], 10.0), 0.0);
        assert!((gini(&[5, 5], 10.0) - 0.5).abs() < 1e-12);
        assert_eq!(gini(&[0, 0], 0.0), 0.0);
    }

    #[test]
    fn learns_xor_perfectly() {
        let data = xor_dataset();
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), 0);
        for (x, want) in [
            (vec![0.0, 0.0], 0),
            (vec![0.0, 1.0], 1),
            (vec![1.0, 0.0], 1),
            (vec![1.0, 1.0], 0),
        ] {
            assert_eq!(tree.predict(&x), want, "xor({x:?})");
        }
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn depth_limit_is_respected() {
        let data = xor_dataset();
        let stump = DecisionTree::fit(
            &data,
            &TreeConfig {
                max_depth: 1,
                ..TreeConfig::default()
            },
            0,
        );
        assert!(stump.depth() <= 1);
    }

    #[test]
    fn single_class_yields_single_leaf() {
        let data = Dataset::new(vec![vec![1.0], vec![2.0], vec![3.0]], vec![0, 0, 0]).unwrap();
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), 0);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[99.0]), 0);
    }

    #[test]
    fn constant_features_yield_leaf() {
        let data = Dataset::new(vec![vec![5.0], vec![5.0]], vec![0, 1]).unwrap();
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), 0);
        // No split possible between equal values.
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn vote_counts_sum_to_leaf_population() {
        let data = xor_dataset();
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), 3);
        let votes = tree.vote_counts(&[0.0, 0.0]);
        assert_eq!(votes.iter().sum::<u32>(), 10);
    }

    #[test]
    fn bootstrap_is_full_size_with_replacement() {
        let mut rng = SimRng::seed_from_u64(1);
        let idx = bootstrap_indices(100, &mut rng);
        assert_eq!(idx.len(), 100);
        assert!(idx.iter().all(|&i| i < 100));
        // With replacement: some duplicates are overwhelmingly likely.
        let unique: std::collections::BTreeSet<usize> = idx.iter().copied().collect();
        assert!(unique.len() < 100);
    }

    sim_rt::prop_check! {
        cases = 32;

        fn training_accuracy_is_high_on_separable_data(
            seed in 0u64..100, gap in 2.0f64..10.0
        ) {
            let mut features = Vec::new();
            let mut labels = Vec::new();
            for i in 0..30 {
                let wiggle = (i as f64 * 0.618).fract();
                features.push(vec![wiggle]);
                labels.push(0);
                features.push(vec![gap + wiggle]);
                labels.push(1);
            }
            let data = Dataset::new(features, labels).unwrap();
            let tree = DecisionTree::fit(&data, &TreeConfig::default(), seed);
            let correct = (0..data.len())
                .filter(|&i| tree.predict(data.features_of(i)) == data.label_of(i))
                .count();
            assert_eq!(correct, data.len());
        }

        fn gini_is_bounded(counts in sim_rt::check::vec_of(0u32..100, 1..10usize)) {
            let n: u32 = counts.iter().sum();
            let g = gini(&counts, n as f64);
            assert!((0.0..=1.0).contains(&g));
        }
    }
}
