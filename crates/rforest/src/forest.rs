use sim_rt::pool::Pool;
use sim_rt::rng::{derive_seed, SimRng};

use crate::tree::bootstrap_indices;
use crate::{Dataset, DecisionTree, TreeConfig};

/// Configuration of a [`RandomForest`].
///
/// The default matches the paper's classifier: 100 trees, depth 32, Gini
/// impurity, bootstrap sampling, sqrt(d) features per split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestConfig {
    /// Number of trees (paper: 100).
    pub n_trees: usize,
    /// Maximum depth per tree (paper: 32).
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Use bootstrap resampling per tree (paper: yes).
    pub bootstrap: bool,
    /// Master seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 100,
            max_depth: 32,
            min_samples_split: 2,
            bootstrap: true,
            seed: 0x5EED,
        }
    }
}

/// A bagged ensemble of Gini-split decision trees.
///
/// # Examples
///
/// See the [crate-level documentation](crate) for a complete example.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Trains the ensemble on the process-wide thread pool.
    ///
    /// # Panics
    ///
    /// Panics if `config.n_trees` is zero.
    pub fn fit(data: &Dataset, config: &ForestConfig) -> Self {
        Self::fit_with(data, config, Pool::global())
    }

    /// Trains the ensemble, building trees in parallel on `pool`.
    ///
    /// Each tree's training and bootstrap seeds are derived up front from
    /// `config.seed` and the tree index, so the resulting forest is
    /// identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `config.n_trees` is zero.
    pub fn fit_with(data: &Dataset, config: &ForestConfig, pool: &Pool) -> Self {
        assert!(config.n_trees > 0, "forest needs at least one tree");
        let _span = obs::span!("rforest.forest", "fit");
        obs::counter!("rforest.fits").inc();
        let tree_config = TreeConfig {
            max_depth: config.max_depth,
            min_samples_split: config.min_samples_split,
            features_per_split: Some((data.n_features() as f64).sqrt().ceil() as usize),
        };
        let seeds: Vec<(u64, u64)> = (0..config.n_trees as u64)
            .map(|t| {
                (
                    derive_seed(config.seed, 2 * t),
                    derive_seed(config.seed, 2 * t + 1),
                )
            })
            .collect();
        let trees = pool.par_map(&seeds, |_, &(tree_seed, bootstrap_seed)| {
            if config.bootstrap {
                let mut rng = SimRng::seed_from_u64(bootstrap_seed);
                let idx = bootstrap_indices(data.len(), &mut rng);
                let sample = data.subset(&idx);
                DecisionTree::fit(&sample, &tree_config, tree_seed)
            } else {
                DecisionTree::fit(data, &tree_config, tree_seed)
            }
        });
        RandomForest {
            trees,
            n_classes: data.n_classes(),
        }
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Per-class vote tally across all trees (each tree votes once, for
    /// its leaf's majority class).
    ///
    /// # Panics
    ///
    /// Panics if `x` has fewer features than the training data.
    pub fn votes(&self, x: &[f64]) -> Vec<u32> {
        let mut votes = vec![0u32; self.n_classes];
        for tree in &self.trees {
            votes[tree.predict(x)] += 1;
        }
        votes
    }

    /// Predicted class (majority vote; ties break to the lower class id).
    pub fn predict(&self, x: &[f64]) -> usize {
        let votes = self.votes(x);
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(_, &v)| v)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// The `k` classes with the most votes, most-voted first.
    pub fn top_k(&self, x: &[f64], k: usize) -> Vec<usize> {
        let votes = self.votes(x);
        let mut order: Vec<usize> = (0..votes.len()).collect();
        order.sort_by(|&a, &b| votes[b].cmp(&votes[a]).then(a.cmp(&b)));
        order.truncate(k);
        order
    }

    /// Whether `label` is among the top-`k` predictions for `x` — the
    /// metric of Table III's second rows.
    pub fn top_k_contains(&self, x: &[f64], label: usize, k: usize) -> bool {
        self.top_k(x, k).contains(&label)
    }

    /// Classification accuracy over a labelled dataset.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        let correct = (0..data.len())
            .filter(|&i| self.predict(data.features_of(i)) == data.label_of(i))
            .count();
        correct as f64 / data.len() as f64
    }

    /// Top-`k` accuracy over a labelled dataset.
    pub fn top_k_accuracy(&self, data: &Dataset, k: usize) -> f64 {
        let correct = (0..data.len())
            .filter(|&i| self.top_k_contains(data.features_of(i), data.label_of(i), k))
            .count();
        correct as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_classes: usize, per_class: usize, spread: f64) -> Dataset {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for c in 0..n_classes {
            for i in 0..per_class {
                let w1 = ((i * 7 + c) as f64 * 0.618).fract() * spread;
                let w2 = ((i * 13 + c) as f64 * 0.414).fract() * spread;
                features.push(vec![c as f64 * 10.0 + w1, c as f64 * 10.0 + w2]);
                labels.push(c);
            }
        }
        Dataset::new(features, labels).unwrap()
    }

    #[test]
    fn separable_blobs_are_classified() {
        let data = blobs(4, 20, 1.0);
        let forest = RandomForest::fit(
            &data,
            &ForestConfig {
                n_trees: 20,
                ..ForestConfig::default()
            },
        );
        assert_eq!(forest.accuracy(&data), 1.0);
        assert_eq!(forest.n_classes(), 4);
        assert_eq!(forest.n_trees(), 20);
    }

    #[test]
    fn votes_sum_to_tree_count() {
        let data = blobs(3, 10, 1.0);
        let forest = RandomForest::fit(
            &data,
            &ForestConfig {
                n_trees: 15,
                ..ForestConfig::default()
            },
        );
        let votes = forest.votes(&[0.0, 0.0]);
        assert_eq!(votes.iter().sum::<u32>(), 15);
    }

    #[test]
    fn top_k_ordering_and_membership() {
        let data = blobs(5, 15, 1.0);
        let forest = RandomForest::fit(
            &data,
            &ForestConfig {
                n_trees: 25,
                ..ForestConfig::default()
            },
        );
        let x = data.features_of(0);
        let top = forest.top_k(x, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0], forest.predict(x));
        assert!(forest.top_k_contains(x, data.label_of(0), 1));
        // Top-5 over 5 classes always contains the label.
        assert!(forest.top_k_contains(x, 4, 5));
    }

    #[test]
    fn top_k_accuracy_dominates_top_1() {
        let data = blobs(6, 8, 6.0); // noisy blobs
        let forest = RandomForest::fit(
            &data,
            &ForestConfig {
                n_trees: 10,
                max_depth: 3,
                ..ForestConfig::default()
            },
        );
        let top1 = forest.top_k_accuracy(&data, 1);
        let top5 = forest.top_k_accuracy(&data, 5);
        assert!(top5 >= top1);
        assert_eq!(top1, forest.accuracy(&data));
    }

    #[test]
    fn deterministic_under_seed() {
        let data = blobs(3, 12, 1.0);
        let config = ForestConfig {
            n_trees: 8,
            seed: 99,
            ..ForestConfig::default()
        };
        let a = RandomForest::fit(&data, &config);
        let b = RandomForest::fit(&data, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn identical_at_any_thread_count() {
        let data = blobs(3, 12, 1.0);
        let config = ForestConfig {
            n_trees: 12,
            seed: 7,
            ..ForestConfig::default()
        };
        let serial = RandomForest::fit_with(&data, &config, &Pool::serial());
        for threads in [2, 8] {
            let parallel = RandomForest::fit_with(&data, &config, &Pool::new(threads));
            assert_eq!(
                serial, parallel,
                "thread count {threads} changed the forest"
            );
        }
    }

    #[test]
    fn without_bootstrap_trees_see_all_data() {
        let data = blobs(2, 10, 1.0);
        let forest = RandomForest::fit(
            &data,
            &ForestConfig {
                n_trees: 5,
                bootstrap: false,
                ..ForestConfig::default()
            },
        );
        assert_eq!(forest.accuracy(&data), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_rejected() {
        let data = blobs(2, 5, 1.0);
        let _ = RandomForest::fit(
            &data,
            &ForestConfig {
                n_trees: 0,
                ..ForestConfig::default()
            },
        );
    }
}
