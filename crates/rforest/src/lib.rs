//! From-scratch random-forest classifier.
//!
//! The fingerprinting attack of Table III is "essentially a classification
//! task with straightforward features", evaluated with a random forest of
//! 100 trees, maximum depth 32, Gini impurity splits, bootstrap sampling,
//! and 10-fold cross-validation. This crate implements exactly that
//! pipeline so the reproduction has no Python/scikit-learn dependency:
//!
//! * [`Dataset`] — labelled feature vectors with validation.
//! * [`DecisionTree`] — CART trees split on Gini impurity.
//! * [`RandomForest`] — bagged ensemble with feature subsampling and
//!   majority voting; exposes vote counts for top-k scoring.
//! * [`stratified_k_fold`] / [`cross_validate`] — the 10-fold evaluation
//!   protocol (9 folds train, 1 fold test, rotating).
//!
//! # Examples
//!
//! ```
//! use rforest::{Dataset, ForestConfig, RandomForest};
//!
//! // Two trivially separable classes.
//! let features = vec![
//!     vec![0.0, 0.1], vec![0.2, 0.0], vec![0.1, 0.2],
//!     vec![5.0, 5.1], vec![5.2, 5.0], vec![5.1, 5.2],
//! ];
//! let labels = vec![0, 0, 0, 1, 1, 1];
//! let data = Dataset::new(features, labels)?;
//! let forest = RandomForest::fit(&data, &ForestConfig::default());
//! assert_eq!(forest.predict(&[0.05, 0.05]), 0);
//! assert_eq!(forest.predict(&[5.05, 5.05]), 1);
//! # Ok::<(), rforest::DatasetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cv;
mod dataset;
mod forest;
mod tree;

pub use cv::{cross_validate, cross_validate_with, stratified_k_fold, CvReport};
pub use dataset::{Dataset, DatasetError};
pub use forest::{ForestConfig, RandomForest};
pub use tree::{DecisionTree, TreeConfig};
