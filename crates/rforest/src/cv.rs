use sim_rt::pool::Pool;
use sim_rt::rng::{SimRng, SliceShuffle};
use sim_rt::ser::{Record, ToRecord};

use crate::{Dataset, ForestConfig, RandomForest};

/// Aggregate result of a cross-validation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CvReport {
    /// Mean top-1 accuracy across folds.
    pub top1: f64,
    /// Mean top-5 accuracy across folds.
    pub top5: f64,
    /// Number of folds evaluated.
    pub folds: usize,
}

impl ToRecord for CvReport {
    fn to_record(&self) -> Record {
        let mut r = Record::new();
        r.push("top1", self.top1)
            .push("top5", self.top5)
            .push("folds", self.folds);
        r
    }
}

/// Splits sample indices into `k` stratified folds: each fold receives a
/// proportional share of every class, so a fold never misses a class
/// entirely (important with 39 classes and modest trace counts).
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the dataset size.
///
/// # Examples
///
/// ```
/// use rforest::{stratified_k_fold, Dataset};
///
/// let d = Dataset::new(
///     vec![vec![0.0]; 10],
///     vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1],
/// )?;
/// let folds = stratified_k_fold(&d, 5, 42);
/// assert_eq!(folds.len(), 5);
/// for fold in &folds {
///     assert_eq!(fold.len(), 2); // one sample of each class
/// }
/// # Ok::<(), rforest::DatasetError>(())
/// ```
pub fn stratified_k_fold(data: &Dataset, k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k > 0, "fold count must be non-zero");
    assert!(k <= data.len(), "more folds than samples");
    let mut rng = SimRng::seed_from_u64(seed);
    // Bucket indices per class, shuffle within class, deal round-robin.
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); data.n_classes()];
    for i in 0..data.len() {
        per_class[data.label_of(i)].push(i);
    }
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut next = 0usize;
    for bucket in &mut per_class {
        bucket.shuffle(&mut rng);
        for &i in bucket.iter() {
            folds[next % k].push(i);
            next += 1;
        }
    }
    folds
}

/// Runs the paper's evaluation protocol: `k`-fold stratified
/// cross-validation where each iteration trains a fresh forest on `k-1`
/// folds and tests on the held-out fold; reports mean top-1 and top-5
/// accuracy.
///
/// # Panics
///
/// Panics if `k < 2` or `k` exceeds the dataset size.
///
/// # Examples
///
/// ```
/// use rforest::{cross_validate, Dataset, ForestConfig};
///
/// let mut features = Vec::new();
/// let mut labels = Vec::new();
/// for c in 0..3usize {
///     for i in 0..10 {
///         features.push(vec![c as f64 * 5.0 + (i as f64) * 0.01]);
///         labels.push(c);
///     }
/// }
/// let data = Dataset::new(features, labels)?;
/// let config = ForestConfig { n_trees: 10, ..ForestConfig::default() };
/// let report = cross_validate(&data, &config, 5, 1);
/// assert!(report.top1 > 0.9);
/// # Ok::<(), rforest::DatasetError>(())
/// ```
pub fn cross_validate(data: &Dataset, config: &ForestConfig, k: usize, seed: u64) -> CvReport {
    cross_validate_with(data, config, k, seed, Pool::global())
}

/// [`cross_validate`] with fold evaluations spread across `pool`.
///
/// Each fold is an independent train/test job (the forests inside a fold
/// train serially to avoid nested parallelism), and fold accuracies are
/// reduced in fold order, so the report is identical at any thread count.
///
/// # Panics
///
/// Panics if `k < 2` or `k` exceeds the dataset size.
pub fn cross_validate_with(
    data: &Dataset,
    config: &ForestConfig,
    k: usize,
    seed: u64,
    pool: &Pool,
) -> CvReport {
    assert!(k >= 2, "cross-validation needs at least 2 folds");
    let folds = stratified_k_fold(data, k, seed);
    let fold_ids: Vec<usize> = (0..k).collect();
    let accuracies = pool.par_map(&fold_ids, |_, &test_fold| {
        let train_idx: Vec<usize> = folds
            .iter()
            .enumerate()
            .filter(|&(f, _)| f != test_fold)
            .flat_map(|(_, fold)| fold.iter().copied())
            .collect();
        let train = data.subset(&train_idx);
        let forest = RandomForest::fit_with(&train, config, &Pool::serial());
        let test = data.subset(&folds[test_fold]);
        (
            forest.top_k_accuracy(&test, 1),
            forest.top_k_accuracy(&test, 5),
        )
    });
    let (top1_sum, top5_sum) = accuracies
        .iter()
        .fold((0.0, 0.0), |(a1, a5), &(t1, t5)| (a1 + t1, a5 + t5));
    CvReport {
        top1: top1_sum / k as f64,
        top5: top5_sum / k as f64,
        folds: k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn labelled(n_classes: usize, per_class: usize) -> Dataset {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for c in 0..n_classes {
            for i in 0..per_class {
                features.push(vec![c as f64 * 10.0 + (i as f64 * 0.618).fract()]);
                labels.push(c);
            }
        }
        Dataset::new(features, labels).unwrap()
    }

    #[test]
    fn folds_partition_the_dataset() {
        let data = labelled(4, 10);
        let folds = stratified_k_fold(&data, 10, 7);
        let all: Vec<usize> = folds.iter().flatten().copied().collect();
        assert_eq!(all.len(), data.len());
        let unique: BTreeSet<usize> = all.iter().copied().collect();
        assert_eq!(unique.len(), data.len(), "no index may repeat");
    }

    #[test]
    fn folds_are_stratified() {
        let data = labelled(4, 20);
        let folds = stratified_k_fold(&data, 10, 3);
        for fold in &folds {
            let classes: BTreeSet<usize> = fold.iter().map(|&i| data.label_of(i)).collect();
            assert_eq!(classes.len(), 4, "every fold must contain every class");
        }
    }

    #[test]
    fn cross_validation_on_separable_data_is_near_perfect() {
        let data = labelled(5, 20);
        let config = ForestConfig {
            n_trees: 15,
            ..ForestConfig::default()
        };
        let report = cross_validate(&data, &config, 10, 0);
        assert_eq!(report.folds, 10);
        assert!(report.top1 > 0.95, "top1 {}", report.top1);
        assert!(report.top5 >= report.top1);
    }

    #[test]
    fn random_labels_give_chance_accuracy() {
        // Features carry no information about labels.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200usize {
            features.push(vec![(i as f64 * 0.618).fract()]);
            labels.push(i % 10);
        }
        let data = Dataset::new(features, labels).unwrap();
        let config = ForestConfig {
            n_trees: 10,
            ..ForestConfig::default()
        };
        let report = cross_validate(&data, &config, 5, 1);
        assert!(
            report.top1 < 0.35,
            "top1 {} should be near 0.1",
            report.top1
        );
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_fold_rejected() {
        let data = labelled(2, 5);
        let _ = cross_validate(&data, &ForestConfig::default(), 1, 0);
    }

    #[test]
    #[should_panic(expected = "more folds")]
    fn too_many_folds_rejected() {
        let data = labelled(2, 2);
        let _ = stratified_k_fold(&data, 10, 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let data = labelled(3, 10);
        assert_eq!(
            stratified_k_fold(&data, 5, 11),
            stratified_k_fold(&data, 5, 11)
        );
    }

    #[test]
    fn report_identical_at_any_thread_count() {
        let data = labelled(4, 10);
        let config = ForestConfig {
            n_trees: 6,
            ..ForestConfig::default()
        };
        let serial = cross_validate_with(&data, &config, 5, 2, &Pool::serial());
        for threads in [2, 8] {
            let parallel = cross_validate_with(&data, &config, 5, 2, &Pool::new(threads));
            assert_eq!(
                serial, parallel,
                "thread count {threads} changed the report"
            );
        }
    }
}
