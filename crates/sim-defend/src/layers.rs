//! The concrete defense layers.

use hwmon_sim::{HwmonFs, Readouts};
use sim_rt::lockorder::TrackedMutex;
use std::collections::BTreeMap;
use zynq_soc::{hash01, hash_gauss};

use crate::DefenseLayer;

/// The paper's Section V policy as a stackable layer: any non-zero
/// strength restricts every registered device's measurement attributes to
/// root at install time. The layer has **no runtime hooks** — privileged
/// monitoring keeps reading bit-identical undefended values — which makes
/// it the zero-cost baseline of the sweep matrix.
#[derive(Debug, Clone, Copy)]
pub struct RootOnly {
    strength: f64,
}

impl RootOnly {
    /// A root-only policy layer; any `strength > 0` enables it.
    pub fn new(strength: f64) -> Self {
        RootOnly { strength }
    }

    /// The enabled policy (strength 1).
    pub fn enabled() -> Self {
        RootOnly::new(1.0)
    }

    /// Lifts the policy from every registered device — the inverse of
    /// installing this layer.
    pub fn lift(fs: &mut HwmonFs) {
        let names: Vec<String> = (0..fs.len())
            .filter_map(|i| fs.device(i).map(|d| d.name().to_owned()))
            .collect();
        for name in names {
            fs.unrestrict_reads(&name);
        }
    }
}

impl DefenseLayer for RootOnly {
    fn name(&self) -> &'static str {
        "root-only"
    }

    fn strength(&self) -> f64 {
        self.strength
    }

    fn runtime_hooks(&self) -> bool {
        false
    }

    fn install(&self, fs: &mut HwmonFs) -> hwmon_sim::Result<()> {
        let names: Vec<String> = (0..fs.len())
            .filter_map(|i| fs.device(i).map(|d| d.name().to_owned()))
            .collect();
        for name in names {
            fs.restrict_reads_to_root(&name)?;
        }
        Ok(())
    }
}

/// Update-clock dithering: shifts each conversion window's update boundary
/// forward by a deterministic per-window uniform offset of up to
/// `strength` times the update interval (capped below one interval).
/// Attackers that phase-lock onto the driver's periodic update clock (the
/// covert receiver, phase-folding profilers) lose their timing reference.
#[derive(Debug, Clone, Copy)]
pub struct UpdateJitter {
    strength: f64,
    seed: u64,
}

impl UpdateJitter {
    /// Jitter of up to `strength` (clamped to `[0, 1]`) intervals, drawing
    /// offsets from `seed`.
    pub fn new(strength: f64, seed: u64) -> Self {
        UpdateJitter {
            strength: strength.clamp(0.0, 1.0),
            seed,
        }
    }
}

impl DefenseLayer for UpdateJitter {
    fn name(&self) -> &'static str {
        "jitter"
    }

    fn strength(&self) -> f64 {
        self.strength
    }

    fn boundary_offset_ns(&self, device_stream: u64, window: u64, interval_ns: u64) -> u64 {
        // At most 95% of the interval so a window always retains a
        // readable span of its own.
        let frac = self.strength.min(0.95) * hash01(self.seed, device_stream, window);
        (frac * interval_ns as f64) as u64
    }
}

/// Quantization widening: rounds the latched current to a
/// strength-dependent LSB of up to [`Quantize::MAX_STEP_MA`] (and power to
/// 25x that, mirroring the INA226's power-register scaling). Coarser
/// output bins collapse nearby activity levels the way the paper's 25 mW
/// power channel already collapses adjacent RSA Hamming weights.
#[derive(Debug, Clone, Copy)]
pub struct Quantize {
    strength: f64,
    step_ma: i64,
}

impl Quantize {
    /// Output LSB at full strength, in mA.
    pub const MAX_STEP_MA: i64 = 256;

    /// Quantization to `1 + strength * (MAX_STEP_MA - 1)` mA.
    pub fn new(strength: f64) -> Self {
        let strength = strength.clamp(0.0, 1.0);
        Quantize {
            strength,
            step_ma: 1 + (strength * (Self::MAX_STEP_MA - 1) as f64).round() as i64,
        }
    }

    /// The current-channel output LSB this layer applies, in mA.
    pub fn step_ma(&self) -> i64 {
        self.step_ma
    }
}

fn round_to(v: i64, q: i64) -> i64 {
    if q <= 1 {
        return v;
    }
    let half = q / 2;
    if v >= 0 {
        (v + half) / q * q
    } else {
        -((-v + half) / q * q)
    }
}

impl DefenseLayer for Quantize {
    fn name(&self) -> &'static str {
        "quantize"
    }

    fn strength(&self) -> f64 {
        self.strength
    }

    fn transform(&self, _device_stream: u64, _window: u64, mut r: Readouts) -> Readouts {
        if self.step_ma <= 1 {
            return r; // 1 mA is the native LSB: exact identity.
        }
        r.curr1_ma = round_to(r.curr1_ma, self.step_ma);
        r.power1_uw = round_to(r.power1_uw, self.step_ma * 25_000);
        r
    }
}

/// Calibrated analog current-noise injection: adds one Gaussian draw per
/// `(device, window)` — sigma up to [`NoiseInject::MAX_SIGMA_MA`] at full
/// strength — to every averaging step of the conversion, modelling a
/// deliberately noisy supply. Because the draw is constant within a
/// window, sensor averaging cannot cancel it; attack statistics built on
/// per-window means degrade directly with sigma.
#[derive(Debug, Clone, Copy)]
pub struct NoiseInject {
    strength: f64,
    seed: u64,
}

impl NoiseInject {
    /// Noise sigma at full strength, in mA.
    pub const MAX_SIGMA_MA: f64 = 400.0;

    /// Noise of sigma `strength * MAX_SIGMA_MA`, drawing from `seed`.
    pub fn new(strength: f64, seed: u64) -> Self {
        NoiseInject {
            strength: strength.clamp(0.0, 1.0),
            seed,
        }
    }

    /// The injected sigma in mA.
    pub fn sigma_ma(&self) -> f64 {
        self.strength * Self::MAX_SIGMA_MA
    }
}

impl DefenseLayer for NoiseInject {
    fn name(&self) -> &'static str {
        "noise"
    }

    fn strength(&self) -> f64 {
        self.strength
    }

    fn perturb_steps(&self, device_stream: u64, window: u64, steps: &mut [(f64, f64)]) {
        let offset_a = self.sigma_ma() / 1_000.0 * hash_gauss(self.seed, device_stream, window);
        for s in steps {
            s.0 += offset_a;
        }
    }
}

/// SHIELD-style activity-triggered throttling: when the latched current
/// jumps by more than [`Throttle::THRESHOLD_MA`] between consecutive
/// conversions of a device, the *served* value follows only
/// `1 - strength` of the jump (power is scaled proportionally). Internal
/// tracking keeps the true value, so throttling attenuates exactly the
/// large activity swings attacks modulate — while leaving slow benign
/// monitoring untouched.
#[derive(Debug)]
pub struct Throttle {
    strength: f64,
    /// Last *raw* current per device stream, so attenuation is relative to
    /// the true trajectory and cannot wind up unbounded error.
    last_raw_ma: TrackedMutex<BTreeMap<u64, i64>>,
}

impl Throttle {
    /// Current jump (mA, between consecutive conversions) above which the
    /// throttle engages.
    pub const THRESHOLD_MA: i64 = 100;

    /// Throttling that passes `1 - strength` of each large jump.
    pub fn new(strength: f64) -> Self {
        Throttle {
            strength: strength.clamp(0.0, 1.0),
            last_raw_ma: TrackedMutex::new("defend.throttle", BTreeMap::new()),
        }
    }
}

impl DefenseLayer for Throttle {
    fn name(&self) -> &'static str {
        "throttle"
    }

    fn strength(&self) -> f64 {
        self.strength
    }

    fn transform(&self, device_stream: u64, _window: u64, mut r: Readouts) -> Readouts {
        let mut state = self.last_raw_ma.lock();
        let raw_ma = r.curr1_ma;
        if let Some(&last) = state.get(&device_stream) {
            let delta = raw_ma - last;
            if delta.abs() > Self::THRESHOLD_MA {
                obs::counter!("defend.throttle.trips").inc();
                let served = last as f64 + delta as f64 * (1.0 - self.strength);
                let served_ma = served.round() as i64;
                if raw_ma != 0 {
                    let ratio = served_ma as f64 / raw_ma as f64;
                    r.power1_uw = (r.power1_uw as f64 * ratio).round() as i64;
                }
                r.curr1_ma = served_ma;
            }
        }
        state.insert(device_stream, raw_ma);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_to_behaves() {
        assert_eq!(round_to(1234, 1), 1234);
        assert_eq!(round_to(1234, 100), 1200);
        assert_eq!(round_to(1250, 100), 1300);
        assert_eq!(round_to(-1234, 100), -1200);
        assert_eq!(round_to(0, 256), 0);
    }

    #[test]
    fn quantize_strength_maps_to_step() {
        assert_eq!(Quantize::new(0.0).step_ma(), 1);
        assert_eq!(Quantize::new(1.0).step_ma(), Quantize::MAX_STEP_MA);
        let mid = Quantize::new(0.5).step_ma();
        assert!(mid > 1 && mid < Quantize::MAX_STEP_MA, "{mid}");
        // Step 1 is the identity transform.
        let r = Readouts {
            curr1_ma: 1_234,
            in0_mv: 2,
            in1_mv: 850,
            power1_uw: 1_047_000,
        };
        assert_eq!(Quantize::new(0.0).transform(0, 0, r), r);
        let q = Quantize::new(1.0).transform(0, 0, r);
        assert_eq!(q.curr1_ma % 256, 0);
        assert_eq!(q.power1_uw % (256 * 25_000), 0);
    }

    #[test]
    fn jitter_offsets_stay_inside_the_interval() {
        let j = UpdateJitter::new(1.0, 42);
        let interval = 35_000_000u64;
        for w in 0..500 {
            let off = j.boundary_offset_ns(7, w, interval);
            assert!(off < interval, "window {w}: {off}");
        }
        // Zero strength is exactly zero offset.
        let z = UpdateJitter::new(0.0, 42);
        assert_eq!(z.boundary_offset_ns(7, 3, interval), 0);
    }

    #[test]
    fn noise_is_constant_within_a_window_and_varies_across() {
        let n = NoiseInject::new(1.0, 9);
        let mut steps = vec![(1.0, 0.85); 8];
        n.perturb_steps(3, 10, &mut steps);
        let first = steps[0].0;
        assert!(steps.iter().all(|s| s.0 == first));
        assert!(steps.iter().all(|s| s.1 == 0.85), "voltage untouched");
        let mut other = vec![(1.0, 0.85); 8];
        n.perturb_steps(3, 11, &mut other);
        assert_ne!(first, other[0].0, "windows draw independently");
    }

    #[test]
    fn throttle_attenuates_large_jumps_only() {
        let t = Throttle::new(1.0);
        let read = |ma: i64| Readouts {
            curr1_ma: ma,
            in0_mv: 1,
            in1_mv: 850,
            power1_uw: ma * 850,
        };
        // First conversion passes through (nothing to compare against).
        assert_eq!(t.transform(5, 0, read(1_000)).curr1_ma, 1_000);
        // Small drift passes through.
        assert_eq!(t.transform(5, 1, read(1_050)).curr1_ma, 1_050);
        // A big jump is fully suppressed at strength 1 (served value holds
        // at the previous raw current)...
        let throttled = t.transform(5, 2, read(4_000));
        assert_eq!(throttled.curr1_ma, 1_050);
        assert_eq!(throttled.power1_uw, (4_000 * 850) * 1_050 / 4_000);
        // ...but tracking follows the raw value, so settling back is a
        // big (throttled) jump down, not a no-op.
        assert_eq!(t.transform(5, 3, read(4_000)).curr1_ma, 4_000);
    }

    #[test]
    fn half_strength_throttle_passes_half_the_jump() {
        let t = Throttle::new(0.5);
        let read = |ma: i64| Readouts {
            curr1_ma: ma,
            in0_mv: 1,
            in1_mv: 850,
            power1_uw: ma * 850,
        };
        assert_eq!(t.transform(1, 0, read(1_000)).curr1_ma, 1_000);
        assert_eq!(t.transform(1, 1, read(2_000)).curr1_ma, 1_500);
    }

    #[test]
    fn root_only_lift_restores_access() {
        use hwmon_sim::{HwmonDevice, Privilege};
        use std::sync::Arc;
        use zynq_soc::SimTime;
        let mut fs = HwmonFs::new();
        fs.register(HwmonDevice::new(
            "ina226_u76",
            0.0005,
            0.0005,
            Arc::new(|_t: SimTime| (1.0, 0.85)),
            1,
        ));
        RootOnly::enabled().install(&mut fs).unwrap();
        let path = "/sys/class/hwmon/hwmon0/curr1_input";
        assert!(fs
            .read_raw(path, SimTime::from_ms(40), Privilege::User)
            .is_err());
        RootOnly::lift(&mut fs);
        assert!(fs
            .read_raw(path, SimTime::from_ms(40), Privilege::User)
            .is_ok());
    }
}
