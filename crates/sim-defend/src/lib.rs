//! Composable countermeasure layers for the simulated sensing path.
//!
//! AmpereBleed's attacks need nothing but the hwmon current nodes, so the
//! defense literature attacks exactly that interface: SHIELD-style noise
//! injection and activity-triggered throttling, quantization widening, and
//! update-clock dithering all degrade what an unprivileged reader can
//! learn, while the paper's own Section V policy simply takes the nodes
//! away. This crate reproduces those countermeasures as a library of
//! [`DefenseLayer`]s that stack in any order on a platform's
//! [`HwmonFs`] via the [`hwmon_sim::SensorDefense`] hook points:
//!
//! * **When** a conversion latches — [`UpdateJitter`] dithers the update
//!   boundary of each window.
//! * **What** the sensor averages — [`NoiseInject`] perturbs the analog
//!   operating points before conversion.
//! * **What** readers see — [`Quantize`] widens the output LSB and
//!   [`Throttle`] slew-limits large swings; [`RootOnly`] (the Section V
//!   baseline) removes unprivileged access entirely at install time.
//!
//! Every layer has a `strength` in `[0, 1]`; strength `0` is exactly a
//! no-op (a stack of zero-strength layers installs nothing, so readings
//! are bit-identical to an undefended platform). All randomness is
//! stateless: a layer's noise sequence is a pure function of its own seed
//! (derived from the campaign seed and the layer *kind*, never its stack
//! position) plus the device and window being converted — so stacking
//! order cannot change a layer's sequence, and repeated runs are
//! byte-identical at any thread count.
//!
//! # Examples
//!
//! ```
//! use sim_defend::{stack_from, LayerKind};
//!
//! let stack = stack_from(&[LayerKind::Jitter, LayerKind::Noise], 0.5, 42);
//! assert_eq!(stack.describe(), "jitter:0.50+noise:0.50");
//! assert!(!stack.is_noop());
//! // `stack.install(&mut fs)` wires it onto a platform's hwmon tree.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod layers;

use std::sync::Arc;

use hwmon_sim::{HwmonFs, Readouts, SensorDefense};
use sim_rt::rng::derive_seed;

pub use layers::{NoiseInject, Quantize, RootOnly, Throttle, UpdateJitter};

/// FNV-1a hash of a name into a stream identifier — how layers map device
/// names and layer kinds onto independent [`zynq_soc::hash01`] streams.
pub fn stream_id(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One countermeasure in a [`DefenseStack`].
///
/// The runtime hooks mirror [`hwmon_sim::SensorDefense`] but receive a
/// precomputed `device_stream` (see [`stream_id`]) instead of the device
/// name, so stateless layers can hash without re-walking the string. All
/// hooks default to the identity; [`install`](DefenseLayer::install) lets
/// install-time layers (like [`RootOnly`]) act on the tree itself.
pub trait DefenseLayer: Send + Sync + std::fmt::Debug {
    /// Short stable name used in stack descriptions and reports.
    fn name(&self) -> &'static str;

    /// The layer's strength in `[0, 1]`; `0` must mean "exactly off".
    fn strength(&self) -> f64;

    /// Whether this layer is a no-op at its current strength. No-op layers
    /// are skipped entirely at install time, which is what guarantees a
    /// zero-strength stack leaves readings bit-identical to an undefended
    /// platform.
    fn is_noop(&self) -> bool {
        self.strength() <= 0.0
    }

    /// Whether the layer participates in the per-conversion runtime hooks
    /// (as opposed to acting only at install time, like [`RootOnly`]).
    fn runtime_hooks(&self) -> bool {
        true
    }

    /// Install-time action on the hwmon tree (permission changes, ...).
    ///
    /// # Errors
    ///
    /// Propagates [`hwmon_sim::HwmonError`] from tree manipulation.
    fn install(&self, _fs: &mut HwmonFs) -> hwmon_sim::Result<()> {
        Ok(())
    }

    /// See [`SensorDefense::boundary_offset_ns`].
    fn boundary_offset_ns(&self, _device_stream: u64, _window: u64, _interval_ns: u64) -> u64 {
        0
    }

    /// See [`SensorDefense::perturb_steps`].
    fn perturb_steps(&self, _device_stream: u64, _window: u64, _steps: &mut [(f64, f64)]) {}

    /// See [`SensorDefense::transform`].
    fn transform(&self, _device_stream: u64, _window: u64, readouts: Readouts) -> Readouts {
        readouts
    }
}

/// An ordered stack of defense layers sharing one install call.
///
/// Layers apply in push order at every hook: boundary offsets add up
/// (clamped to the update interval by the device), analog perturbations
/// and digital transforms chain. Ordering therefore matters *semantically*
/// (quantizing before throttling differs from after), but never changes
/// any individual layer's own noise sequence — each layer seeds its
/// randomness from its kind, not its position.
#[derive(Debug, Clone, Default)]
pub struct DefenseStack {
    layers: Vec<Arc<dyn DefenseLayer>>,
}

impl DefenseStack {
    /// An empty stack (a no-op).
    pub fn new() -> Self {
        DefenseStack::default()
    }

    /// Appends a layer; returns `self` for chaining.
    #[must_use]
    pub fn with(mut self, layer: Arc<dyn DefenseLayer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Appends a layer in place.
    pub fn push(&mut self, layer: Arc<dyn DefenseLayer>) {
        self.layers.push(layer);
    }

    /// The stacked layers, in application order.
    pub fn layers(&self) -> &[Arc<dyn DefenseLayer>] {
        &self.layers
    }

    /// Whether the whole stack is a no-op (empty or all layers at
    /// strength zero).
    pub fn is_noop(&self) -> bool {
        self.layers.iter().all(|l| l.is_noop())
    }

    /// Stable textual form, e.g. `"jitter:0.50+noise:0.50"` (`"none"` for
    /// an empty stack) — used in sweep reports.
    pub fn describe(&self) -> String {
        if self.layers.is_empty() {
            return "none".to_owned();
        }
        self.layers
            .iter()
            .map(|l| format!("{}:{:.2}", l.name(), l.strength()))
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Installs the stack on a hwmon tree: runs each active layer's
    /// install-time action, then registers the runtime hooks — but only if
    /// some active layer actually has runtime hooks, so a stack of no-ops
    /// (or of install-only layers) leaves the sensing fast path untouched.
    ///
    /// # Errors
    ///
    /// Propagates the first failing layer install.
    pub fn install(&self, fs: &mut HwmonFs) -> hwmon_sim::Result<()> {
        obs::counter!("defend.stack.installs").inc();
        let active: Vec<Arc<dyn DefenseLayer>> = self
            .layers
            .iter()
            .filter(|l| !l.is_noop())
            .map(Arc::clone)
            .collect();
        for layer in &active {
            layer.install(fs)?;
        }
        let runtime: Vec<Arc<dyn DefenseLayer>> =
            active.into_iter().filter(|l| l.runtime_hooks()).collect();
        if !runtime.is_empty() {
            fs.install_defense(Arc::new(RuntimeStack { layers: runtime }));
        }
        Ok(())
    }
}

/// The [`SensorDefense`] adapter a [`DefenseStack`] registers: folds the
/// active runtime layers over each hook, hashing the device name into a
/// stream id once per call.
#[derive(Debug)]
struct RuntimeStack {
    layers: Vec<Arc<dyn DefenseLayer>>,
}

impl SensorDefense for RuntimeStack {
    fn boundary_offset_ns(&self, device: &str, window: u64, interval_ns: u64) -> u64 {
        let stream = stream_id(device);
        self.layers
            .iter()
            .map(|l| l.boundary_offset_ns(stream, window, interval_ns))
            .fold(0u64, u64::saturating_add)
    }

    fn perturb_steps(&self, device: &str, window: u64, steps: &mut [(f64, f64)]) {
        let stream = stream_id(device);
        for layer in &self.layers {
            layer.perturb_steps(stream, window, steps);
        }
    }

    fn transform(&self, device: &str, window: u64, readouts: Readouts) -> Readouts {
        obs::counter!("defend.stack.transforms").inc();
        let stream = stream_id(device);
        self.layers
            .iter()
            .fold(readouts, |r, layer| layer.transform(stream, window, r))
    }
}

/// The layer kinds a sweep can instantiate by name — the configuration
/// surface of the `defend` campaign verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum LayerKind {
    /// [`RootOnly`] — the paper's Section V root-only read policy.
    RootOnly,
    /// [`UpdateJitter`] — update-clock dithering.
    Jitter,
    /// [`Quantize`] — output LSB widening.
    Quantize,
    /// [`NoiseInject`] — calibrated analog current noise.
    Noise,
    /// [`Throttle`] — SHIELD-style activity-triggered slew limiting.
    Throttle,
}

impl LayerKind {
    /// Every kind, in canonical order.
    pub const ALL: [LayerKind; 5] = [
        LayerKind::RootOnly,
        LayerKind::Jitter,
        LayerKind::Quantize,
        LayerKind::Noise,
        LayerKind::Throttle,
    ];

    /// Stable configuration tag (`"root-only"`, `"jitter"`, ...).
    pub fn tag(self) -> &'static str {
        match self {
            LayerKind::RootOnly => "root-only",
            LayerKind::Jitter => "jitter",
            LayerKind::Quantize => "quantize",
            LayerKind::Noise => "noise",
            LayerKind::Throttle => "throttle",
        }
    }

    /// Parses a configuration tag.
    pub fn from_tag(tag: &str) -> Option<LayerKind> {
        LayerKind::ALL.into_iter().find(|k| k.tag() == tag)
    }

    /// Builds this kind at `strength`, deriving the layer's seed from the
    /// campaign master seed and the kind's tag — *not* from any stack
    /// index, so the same layer draws the same noise sequence wherever it
    /// sits in a stack.
    pub fn build(self, strength: f64, master_seed: u64) -> Arc<dyn DefenseLayer> {
        let seed = derive_seed(master_seed, stream_id(self.tag()));
        match self {
            LayerKind::RootOnly => Arc::new(RootOnly::new(strength)),
            LayerKind::Jitter => Arc::new(UpdateJitter::new(strength, seed)),
            LayerKind::Quantize => Arc::new(Quantize::new(strength)),
            LayerKind::Noise => Arc::new(NoiseInject::new(strength, seed)),
            LayerKind::Throttle => Arc::new(Throttle::new(strength)),
        }
    }
}

/// Builds a [`DefenseStack`] of `kinds` (in order) with one shared
/// `strength`, seeding every layer from `master_seed` via its kind tag.
pub fn stack_from(kinds: &[LayerKind], strength: f64, master_seed: u64) -> DefenseStack {
    let mut stack = DefenseStack::new();
    for &kind in kinds {
        stack.push(kind.build(strength, master_seed));
    }
    stack
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwmon_sim::{HwmonDevice, Privilege};
    use std::sync::Arc;
    use zynq_soc::SimTime;

    fn quiet_fs(seed: u64) -> HwmonFs {
        let probe: Arc<dyn hwmon_sim::RailProbe> =
            Arc::new(|t: SimTime| (1.0 + 0.2 * t.as_secs_f64(), 0.85));
        let mut fs = HwmonFs::new();
        for (i, name) in ["ina226_u76", "ina226_u79"].iter().enumerate() {
            let dev = HwmonDevice::new(*name, 0.0005, 0.0005, Arc::clone(&probe), seed + i as u64);
            dev.with_sensor(|s| s.set_adc_noise(0.0, 0.0));
            fs.register(dev);
        }
        fs
    }

    fn read_ma(fs: &HwmonFs, ms: u64) -> i64 {
        fs.read_raw(
            "/sys/class/hwmon/hwmon0/curr1_input",
            SimTime::from_ms(ms),
            Privilege::User,
        )
        .unwrap()
    }

    #[test]
    fn stream_id_is_stable_and_distinct() {
        assert_eq!(stream_id("ina226_u76"), stream_id("ina226_u76"));
        assert_ne!(stream_id("ina226_u76"), stream_id("ina226_u79"));
        assert_ne!(stream_id("jitter"), stream_id("noise"));
    }

    #[test]
    fn zero_strength_stack_installs_nothing() {
        let mut defended = quiet_fs(3);
        let undefended = quiet_fs(3);
        let stack = stack_from(&LayerKind::ALL, 0.0, 99);
        assert!(stack.is_noop());
        stack.install(&mut defended).unwrap();
        for ms in [40u64, 80, 300, 1_000] {
            assert_eq!(read_ma(&defended, ms), read_ma(&undefended, ms));
        }
        // Section V baseline stays off at strength zero too.
        assert!(defended
            .read_raw(
                "/sys/class/hwmon/hwmon0/curr1_input",
                SimTime::from_ms(40),
                Privilege::User
            )
            .is_ok());
    }

    #[test]
    fn active_stack_changes_readings() {
        let mut defended = quiet_fs(3);
        let undefended = quiet_fs(3);
        let stack = stack_from(&[LayerKind::Noise], 1.0, 99);
        stack.install(&mut defended).unwrap();
        let diverged = [40u64, 80, 300, 1_000]
            .iter()
            .any(|&ms| read_ma(&defended, ms) != read_ma(&undefended, ms));
        assert!(diverged, "full-strength noise must perturb readings");
    }

    #[test]
    fn root_only_in_stack_blocks_user_reads_without_runtime_hooks() {
        let mut fs = quiet_fs(3);
        let stack = stack_from(&[LayerKind::RootOnly], 1.0, 0);
        stack.install(&mut fs).unwrap();
        let path = "/sys/class/hwmon/hwmon0/curr1_input";
        assert!(matches!(
            fs.read_raw(path, SimTime::from_ms(40), Privilege::User),
            Err(hwmon_sim::HwmonError::PermissionDenied(_))
        ));
        // Root readings are bit-identical to an undefended tree: the
        // baseline layer registers no runtime hooks.
        let undefended = quiet_fs(3);
        let v = fs
            .read_raw(path, SimTime::from_ms(40), Privilege::Root)
            .unwrap();
        assert_eq!(v, read_ma(&undefended, 40));
    }

    #[test]
    fn describe_and_tags_round_trip() {
        let stack = stack_from(&[LayerKind::Jitter, LayerKind::Noise], 0.5, 1);
        assert_eq!(stack.describe(), "jitter:0.50+noise:0.50");
        assert_eq!(DefenseStack::new().describe(), "none");
        for kind in LayerKind::ALL {
            assert_eq!(LayerKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(LayerKind::from_tag("bogus"), None);
    }

    #[test]
    fn install_is_repeatable_and_clearable() {
        let mut fs = quiet_fs(5);
        let undefended = quiet_fs(5);
        let stack = stack_from(&[LayerKind::Quantize], 1.0, 7);
        stack.install(&mut fs).unwrap();
        let defended = read_ma(&fs, 40);
        fs.clear_defense();
        assert_eq!(read_ma(&fs, 40), read_ma(&undefended, 40));
        stack.install(&mut fs).unwrap();
        assert_eq!(read_ma(&fs, 40), defended);
    }

    mod properties {
        use super::*;

        sim_rt::prop_check! {
            /// Stacking order never changes a layer's own noise sequence:
            /// the jitter layer's boundary offsets and the noise layer's
            /// analog perturbations are identical whether the layer sits
            /// first or last in the stack.
            fn layer_sequences_are_order_independent(
                seed in 0u64..500,
                strength_pct in 1u64..=100,
                window in 0u64..2_000
            ) {
                let strength = strength_pct as f64 / 100.0;
                let ab = RuntimeStack {
                    layers: vec![
                        LayerKind::Jitter.build(strength, seed),
                        LayerKind::Noise.build(strength, seed),
                        LayerKind::Quantize.build(strength, seed),
                    ],
                };
                let ba = RuntimeStack {
                    layers: vec![
                        LayerKind::Quantize.build(strength, seed),
                        LayerKind::Noise.build(strength, seed),
                        LayerKind::Jitter.build(strength, seed),
                    ],
                };
                let interval = 35_000_000u64;
                assert_eq!(
                    ab.boundary_offset_ns("ina226_u76", window, interval),
                    ba.boundary_offset_ns("ina226_u76", window, interval),
                );
                let mut steps_ab = vec![(1.0, 0.85); 16];
                let mut steps_ba = steps_ab.clone();
                ab.perturb_steps("ina226_u76", window, &mut steps_ab);
                ba.perturb_steps("ina226_u76", window, &mut steps_ba);
                assert_eq!(steps_ab, steps_ba);
            }

            /// Different devices and different windows draw independent
            /// (unequal) jitter offsets — the per-device stream split works.
            fn jitter_streams_are_split_per_device(seed in 0u64..200, window in 0u64..1_000) {
                let jitter = LayerKind::Jitter.build(1.0, seed);
                let interval = 35_000_000u64;
                let a = jitter.boundary_offset_ns(stream_id("ina226_u76"), window, interval);
                let b = jitter.boundary_offset_ns(stream_id("ina226_u79"), window, interval);
                let c = jitter.boundary_offset_ns(stream_id("ina226_u76"), window + 1, interval);
                // Collisions are possible but must not be systematic.
                assert!(a != b || a != c, "offsets degenerate: {a} {b} {c}");
            }
        }
    }
}
