use crate::{Layer, LayerKind};

/// Builds a network's layer list while tracking tensor shapes.
///
/// Shapes follow the usual NCHW conventions with `same` padding for odd
/// kernels; MACs/params/traffic are computed from the tracked shapes, so
/// the relative workload of the generated models matches the published
/// architectures.
///
/// # Examples
///
/// ```
/// use dnn_models::NetBuilder;
///
/// let mut b = NetBuilder::new(224, 3);
/// b.conv("conv1", 7, 2, 64);
/// b.pool("pool1", 3, 2);
/// let layers = b.finish();
/// assert_eq!(layers.len(), 2);
/// assert_eq!(layers[0].params, 7 * 7 * 3 * 64);
/// ```
#[derive(Debug, Clone)]
pub struct NetBuilder {
    h: u64,
    w: u64,
    c: u64,
    layers: Vec<Layer>,
}

impl NetBuilder {
    /// Starts a network with a square input of `input` pixels and
    /// `channels` channels.
    ///
    /// # Panics
    ///
    /// Panics if `input` or `channels` is zero.
    pub fn new(input: u64, channels: u64) -> Self {
        assert!(input > 0 && channels > 0, "input shape must be non-zero");
        NetBuilder {
            h: input,
            w: input,
            c: channels,
            layers: Vec::new(),
        }
    }

    /// Current spatial size (height == width).
    pub fn spatial(&self) -> u64 {
        self.h
    }

    /// Current channel count.
    pub fn channels(&self) -> u64 {
        self.c
    }

    fn out_dim(dim: u64, stride: u64) -> u64 {
        dim.div_ceil(stride).max(1)
    }

    fn push(&mut self, name: &str, kind: LayerKind, macs: u64, params: u64, extra_bytes: u64) {
        let activation_bytes = self.h * self.w * self.c; // int8 activations
        self.layers.push(Layer {
            name: name.to_owned(),
            kind,
            macs,
            params,
            dram_bytes: activation_bytes + params + extra_bytes,
        });
    }

    /// Standard convolution: `k x k`, given stride and output channels.
    pub fn conv(&mut self, name: &str, k: u64, stride: u64, out_c: u64) -> &mut Self {
        let oh = Self::out_dim(self.h, stride);
        let ow = Self::out_dim(self.w, stride);
        let macs = k * k * self.c * out_c * oh * ow;
        let params = k * k * self.c * out_c;
        let in_bytes = self.h * self.w * self.c;
        self.h = oh;
        self.w = ow;
        self.c = out_c;
        self.push(name, LayerKind::Conv, macs, params, in_bytes);
        self
    }

    /// Depthwise convolution: `k x k` per channel.
    pub fn dw_conv(&mut self, name: &str, k: u64, stride: u64) -> &mut Self {
        let oh = Self::out_dim(self.h, stride);
        let ow = Self::out_dim(self.w, stride);
        let macs = k * k * self.c * oh * ow;
        let params = k * k * self.c;
        let in_bytes = self.h * self.w * self.c;
        self.h = oh;
        self.w = ow;
        self.push(name, LayerKind::DepthwiseConv, macs, params, in_bytes);
        self
    }

    /// Pooling layer.
    pub fn pool(&mut self, name: &str, k: u64, stride: u64) -> &mut Self {
        let oh = Self::out_dim(self.h, stride);
        let ow = Self::out_dim(self.w, stride);
        let macs = k * k * self.c * oh * ow / 4; // comparisons, not MACs
        let in_bytes = self.h * self.w * self.c;
        self.h = oh;
        self.w = ow;
        self.push(name, LayerKind::Pool, macs, 0, in_bytes);
        self
    }

    /// Global average pool to 1x1.
    pub fn global_pool(&mut self, name: &str) -> &mut Self {
        let k = self.h;
        self.pool(name, k, k.max(1))
    }

    /// Fully connected layer to `out` units.
    pub fn fc(&mut self, name: &str, out: u64) -> &mut Self {
        let in_features = self.h * self.w * self.c;
        let macs = in_features * out;
        let params = in_features * out;
        self.h = 1;
        self.w = 1;
        self.c = out;
        self.push(name, LayerKind::FullyConnected, macs, params, in_features);
        self
    }

    /// Residual elementwise add (shape unchanged).
    pub fn add(&mut self, name: &str) -> &mut Self {
        let bytes = self.h * self.w * self.c;
        self.push(name, LayerKind::Add, bytes, 0, bytes * 2);
        self
    }

    /// Channel concatenation with a branch of `extra_c` channels.
    pub fn concat(&mut self, name: &str, extra_c: u64) -> &mut Self {
        self.c += extra_c;
        let bytes = self.h * self.w * self.c;
        self.push(name, LayerKind::Concat, bytes / 8, 0, bytes);
        self
    }

    /// Squeeze-and-excite gate: global pool to a 1x1 descriptor, two small
    /// fully-connected layers (`c -> c/reduction -> c`), multiply back into
    /// the feature map. Tensor shape is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `reduction` is zero.
    pub fn se_block(&mut self, name: &str, reduction: u64) -> &mut Self {
        assert!(reduction > 0, "reduction must be non-zero");
        let c = self.c;
        let mid = (c / reduction).max(8);
        let pool_macs = self.h * self.w * self.c / 4;
        self.push(&format!("{name}.gap"), LayerKind::Pool, pool_macs, 0, 0);
        self.push(
            &format!("{name}.fc1"),
            LayerKind::FullyConnected,
            c * mid,
            c * mid,
            c,
        );
        self.push(
            &format!("{name}.fc2"),
            LayerKind::FullyConnected,
            mid * c,
            mid * c,
            mid,
        );
        self
    }

    /// Overrides the tracked channel count (for hand-managed branching).
    pub fn set_channels(&mut self, c: u64) -> &mut Self {
        assert!(c > 0, "channel count must be non-zero");
        self.c = c;
        self
    }

    /// Finishes the network and returns the layer list.
    pub fn finish(self) -> Vec<Layer> {
        self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shapes_and_macs() {
        let mut b = NetBuilder::new(224, 3);
        b.conv("c1", 7, 2, 64);
        assert_eq!(b.spatial(), 112);
        assert_eq!(b.channels(), 64);
        let l = &b.clone().finish()[0];
        assert_eq!(l.macs, 7 * 7 * 3 * 64 * 112 * 112);
        assert_eq!(l.params, 7 * 7 * 3 * 64);
    }

    #[test]
    fn dw_conv_macs_scale_with_channels_only() {
        let mut b = NetBuilder::new(112, 32);
        b.dw_conv("dw", 3, 1);
        let l = &b.finish()[0];
        assert_eq!(l.macs, 3 * 3 * 32 * 112 * 112);
        assert_eq!(l.params, 3 * 3 * 32);
    }

    #[test]
    fn fc_flattens() {
        let mut b = NetBuilder::new(7, 512);
        b.fc("fc", 1000);
        assert_eq!(b.spatial(), 1);
        assert_eq!(b.channels(), 1000);
        let l = &b.finish()[0];
        assert_eq!(l.macs, 7 * 7 * 512 * 1000);
    }

    #[test]
    fn global_pool_reduces_to_one() {
        let mut b = NetBuilder::new(7, 2048);
        b.global_pool("gap");
        assert_eq!(b.spatial(), 1);
        assert_eq!(b.channels(), 2048);
    }

    #[test]
    fn concat_grows_channels() {
        let mut b = NetBuilder::new(28, 128);
        b.concat("cat", 32);
        assert_eq!(b.channels(), 160);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_input_rejected() {
        let _ = NetBuilder::new(0, 3);
    }

    sim_rt::prop_check! {
        fn spatial_never_zero(
            input in 1u64..300, k in 1u64..8, stride in 1u64..5
        ) {
            let mut b = NetBuilder::new(input, 3);
            b.conv("c", k, stride, 8);
            assert!(b.spatial() >= 1);
            b.pool("p", k, stride);
            assert!(b.spatial() >= 1);
        }

        fn all_layers_have_positive_traffic(
            stride in 1u64..4, out_c in 1u64..64
        ) {
            let mut b = NetBuilder::new(56, 16);
            b.conv("c", 3, stride, out_c)
                .dw_conv("d", 3, 1)
                .pool("p", 2, 2)
                .add("a")
                .fc("f", 10);
            for l in b.finish() {
                assert!(l.dram_bytes > 0, "{} has zero traffic", l.name);
            }
        }
    }
}
