//! Zoo-wide statistics and inventory rendering.
//!
//! The fingerprinting evaluation reasons about the zoo in aggregate: how
//! spread out the per-family workloads are (spread is what makes models
//! separable), and what the victim suite looks like as a table. These
//! helpers back the bench output and give downstream users a quick
//! inventory API.

use std::collections::BTreeMap;

use crate::{Family, ModelArch};

/// Aggregate workload statistics for one architecture family.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyStats {
    /// The family.
    pub family: Family,
    /// Number of models.
    pub models: usize,
    /// Smallest per-inference MAC count in the family.
    pub min_gmacs: f64,
    /// Largest per-inference MAC count in the family.
    pub max_gmacs: f64,
    /// Mean model size in MB (int8 weights).
    pub mean_size_mb: f64,
}

/// Computes per-family aggregates over a model list.
///
/// # Examples
///
/// ```
/// use dnn_models::{stats::family_stats, zoo};
///
/// let stats = family_stats(&zoo());
/// assert_eq!(stats.len(), 7);
/// let vgg = stats.iter().find(|s| s.family == dnn_models::Family::Vgg).unwrap();
/// assert_eq!(vgg.models, 4);
/// assert!(vgg.max_gmacs > vgg.min_gmacs);
/// ```
pub fn family_stats(models: &[ModelArch]) -> Vec<FamilyStats> {
    let mut buckets: BTreeMap<Family, Vec<&ModelArch>> = BTreeMap::new();
    for m in models {
        buckets.entry(m.family).or_default().push(m);
    }
    buckets
        .into_iter()
        .map(|(family, members)| {
            let gmacs: Vec<f64> = members
                .iter()
                .map(|m| m.total_macs() as f64 / 1e9)
                .collect();
            FamilyStats {
                family,
                models: members.len(),
                min_gmacs: gmacs.iter().copied().fold(f64::INFINITY, f64::min),
                max_gmacs: gmacs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                mean_size_mb: members.iter().map(|m| m.model_size_mb()).sum::<f64>()
                    / members.len() as f64,
            }
        })
        .collect()
}

/// Renders the zoo as a Markdown table (name, family, input, GMACs, MB).
///
/// # Examples
///
/// ```
/// use dnn_models::{stats::zoo_markdown, zoo};
///
/// let table = zoo_markdown(&zoo());
/// assert!(table.starts_with("| model |"));
/// assert_eq!(table.lines().count(), 2 + 39);
/// ```
pub fn zoo_markdown(models: &[ModelArch]) -> String {
    let mut out = String::from("| model | family | input | GMACs | size (MB) |\n");
    out.push_str("|---|---|---|---|---|\n");
    for m in models {
        out.push_str(&format!(
            "| {} | {} | {} | {:.2} | {:.1} |\n",
            m.name,
            m.family,
            m.input,
            m.total_macs() as f64 / 1e9,
            m.model_size_mb(),
        ));
    }
    out
}

/// The spread of the zoo's mean workloads: max/min total MACs across all
/// models. A large ratio is why even a 1-feature classifier (mean current)
/// gets most models right.
///
/// Returns `None` for an empty list.
pub fn workload_spread(models: &[ModelArch]) -> Option<f64> {
    let gmacs: Vec<f64> = models.iter().map(|m| m.total_macs() as f64).collect();
    let min = gmacs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = gmacs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (min > 0.0 && min.is_finite()).then(|| max / min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn family_counts_match_zoo() {
        let stats = family_stats(&zoo());
        let total: usize = stats.iter().map(|s| s.models).sum();
        assert_eq!(total, 39);
        for s in &stats {
            assert!(s.min_gmacs > 0.0);
            assert!(s.max_gmacs >= s.min_gmacs);
            assert!(s.mean_size_mb > 0.0);
        }
    }

    #[test]
    fn markdown_table_rows() {
        let table = zoo_markdown(&zoo());
        assert!(table.contains("| resnet-50 | ResNet | 224 |"));
        assert!(table.contains("| vgg-19 |"));
    }

    #[test]
    fn workload_spread_is_wide() {
        let spread = workload_spread(&zoo()).unwrap();
        // MobileNet-0.25 to VGG-19 span >100x of compute.
        assert!(spread > 50.0, "spread {spread}");
        assert_eq!(workload_spread(&[]), None);
    }

    #[test]
    fn empty_input_yields_empty_outputs() {
        assert!(family_stats(&[]).is_empty());
        assert_eq!(zoo_markdown(&[]).lines().count(), 2);
    }
}
