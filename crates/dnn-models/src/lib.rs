//! DNN model zoo: 39 image-recognition architectures over 7 families.
//!
//! Section IV-B of the paper fingerprints "a complete suite of image
//! recognition models from the Vitis AI Library ... 39 architectures over
//! 7 diverse architecture families". This crate provides structurally
//! faithful layer-level descriptions of such a suite: each
//! [`ModelArch`] lists its layers with multiply-accumulate counts,
//! parameter counts, and activation/weight memory traffic, derived from the
//! published network topologies (stem/block structure, channel widths,
//! strides).
//!
//! These layer schedules are what make each model's side-channel signature
//! unique: a VGG-19 keeps the DPU's MAC array saturated for long stretches
//! (compute-bound), a MobileNet's depthwise stages are memory-bound and
//! bursty, an Inception's mixed modules alternate — patterns the
//! hwmon current channel resolves at 35 ms granularity (Figure 3).
//!
//! # Examples
//!
//! ```
//! use dnn_models::{zoo, Family};
//!
//! let models = zoo();
//! assert_eq!(models.len(), 39);
//! let families: std::collections::BTreeSet<Family> =
//!     models.iter().map(|m| m.family).collect();
//! assert_eq!(families.len(), 7);
//! let vgg19 = models.iter().find(|m| m.name == "vgg-19").unwrap();
//! let resnet50 = models.iter().find(|m| m.name == "resnet-50").unwrap();
//! assert!(vgg19.total_macs() > 3 * resnet50.total_macs());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod layer;
pub mod stats;
mod zoo;

pub use builder::NetBuilder;
pub use layer::{Layer, LayerKind};
pub use zoo::{zoo, Family, ModelArch};
