/// The kind of a network layer, as the DPU's scheduler sees it.
///
/// Kinds matter because they determine the accelerator's achievable
/// efficiency: standard convolutions keep the MAC array busy, depthwise
/// convolutions and pooling are memory-bound, fully-connected layers are
/// weight-bandwidth-bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Standard convolution (im2col / systolic friendly).
    Conv,
    /// Depthwise convolution (one filter per channel).
    DepthwiseConv,
    /// Max/average pooling.
    Pool,
    /// Fully connected / matrix-vector layer.
    FullyConnected,
    /// Elementwise addition (residual connections).
    Add,
    /// Channel concatenation (inception / dense blocks).
    Concat,
}

impl LayerKind {
    /// Fraction of the DPU's peak MAC throughput this layer kind typically
    /// achieves (roofline compute ceiling).
    pub fn compute_efficiency(self) -> f64 {
        match self {
            LayerKind::Conv => 0.75,
            LayerKind::DepthwiseConv => 0.18,
            LayerKind::Pool => 0.10,
            LayerKind::FullyConnected => 0.30,
            LayerKind::Add => 0.08,
            LayerKind::Concat => 0.05,
        }
    }

    /// Relative switching intensity of the fabric while executing this
    /// layer kind at full tilt (how "hot" the MAC array runs).
    pub fn switching_intensity(self) -> f64 {
        match self {
            LayerKind::Conv => 1.0,
            LayerKind::DepthwiseConv => 0.45,
            LayerKind::Pool => 0.25,
            LayerKind::FullyConnected => 0.6,
            LayerKind::Add => 0.2,
            LayerKind::Concat => 0.12,
        }
    }
}

/// One layer of a network, with its workload totals.
///
/// # Examples
///
/// ```
/// use dnn_models::{Layer, LayerKind};
///
/// let l = Layer {
///     name: "conv1".into(),
///     kind: LayerKind::Conv,
///     macs: 118_013_952,
///     params: 9_408,
///     dram_bytes: 1_000_000,
/// };
/// assert!(l.arithmetic_intensity() > 100.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Layer {
    /// Layer name (unique within a model).
    pub name: String,
    /// Layer kind.
    pub kind: LayerKind,
    /// Multiply-accumulate operations.
    pub macs: u64,
    /// Parameter (weight) count.
    pub params: u64,
    /// DRAM traffic in bytes (activations in + out + weights, int8).
    pub dram_bytes: u64,
}

impl Layer {
    /// MACs per DRAM byte — the roofline arithmetic intensity deciding
    /// whether the layer is compute- or memory-bound.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.dram_bytes == 0 {
            return f64::INFINITY;
        }
        self.macs as f64 / self.dram_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_ordering_is_sane() {
        assert!(
            LayerKind::Conv.compute_efficiency() > LayerKind::DepthwiseConv.compute_efficiency()
        );
        assert!(
            LayerKind::DepthwiseConv.compute_efficiency() > LayerKind::Concat.compute_efficiency()
        );
        for k in [
            LayerKind::Conv,
            LayerKind::DepthwiseConv,
            LayerKind::Pool,
            LayerKind::FullyConnected,
            LayerKind::Add,
            LayerKind::Concat,
        ] {
            assert!((0.0..=1.0).contains(&k.compute_efficiency()));
            assert!((0.0..=1.0).contains(&k.switching_intensity()));
        }
    }

    #[test]
    fn arithmetic_intensity() {
        let l = Layer {
            name: "x".into(),
            kind: LayerKind::Conv,
            macs: 1000,
            params: 10,
            dram_bytes: 100,
        };
        assert_eq!(l.arithmetic_intensity(), 10.0);
        let zero = Layer { dram_bytes: 0, ..l };
        assert!(zero.arithmetic_intensity().is_infinite());
    }
}
