use crate::{Layer, NetBuilder};

/// Architecture family of a model (7 families, per Section IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Family {
    /// Residual networks.
    ResNet,
    /// VGG-style plain deep convnets.
    Vgg,
    /// Inception / GoogLeNet family.
    Inception,
    /// MobileNet depthwise-separable family.
    MobileNet,
    /// SqueezeNet fire-module family.
    SqueezeNet,
    /// EfficientNet MBConv family.
    EfficientNet,
    /// DenseNet densely-connected family.
    DenseNet,
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Family::ResNet => "ResNet",
            Family::Vgg => "VGG",
            Family::Inception => "Inception",
            Family::MobileNet => "MobileNet",
            Family::SqueezeNet => "SqueezeNet",
            Family::EfficientNet => "EfficientNet",
            Family::DenseNet => "DenseNet",
        };
        f.write_str(s)
    }
}

/// One model architecture with its full layer schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArch {
    /// Model name, e.g. "resnet-50".
    pub name: String,
    /// Architecture family.
    pub family: Family,
    /// Square input resolution in pixels.
    pub input: u64,
    /// Layer schedule in execution order.
    pub layers: Vec<Layer>,
}

impl ModelArch {
    /// Total multiply-accumulate operations per inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Total parameter count.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(|l| l.params).sum()
    }

    /// Total DRAM traffic per inference, bytes.
    pub fn total_dram_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.dram_bytes).sum()
    }

    /// Model size in megabytes (int8 weights).
    pub fn model_size_mb(&self) -> f64 {
        self.total_params() as f64 / 1e6
    }
}

fn model(name: &str, family: Family, input: u64, layers: Vec<Layer>) -> ModelArch {
    ModelArch {
        name: name.to_owned(),
        family,
        input,
        layers,
    }
}

// --- ResNet -----------------------------------------------------------

fn resnet(name: &str, blocks: [u64; 4], bottleneck: bool) -> ModelArch {
    let mut b = NetBuilder::new(224, 3);
    b.conv("conv1", 7, 2, 64).pool("pool1", 3, 2);
    let widths = [64u64, 128, 256, 512];
    for (stage, (&n, &w)) in blocks.iter().zip(&widths).enumerate() {
        for block in 0..n {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            let tag = format!("s{stage}b{block}");
            if bottleneck {
                b.conv(&format!("{tag}.c1"), 1, 1, w)
                    .conv(&format!("{tag}.c2"), 3, stride, w)
                    .conv(&format!("{tag}.c3"), 1, 1, w * 4)
                    .add(&format!("{tag}.add"));
            } else {
                b.conv(&format!("{tag}.c1"), 3, stride, w)
                    .conv(&format!("{tag}.c2"), 3, 1, w)
                    .add(&format!("{tag}.add"));
            }
        }
    }
    b.global_pool("gap").fc("fc", 1000);
    model(name, Family::ResNet, 224, b.finish())
}

// --- VGG --------------------------------------------------------------

fn vgg(name: &str, convs_per_stage: [u64; 5]) -> ModelArch {
    let mut b = NetBuilder::new(224, 3);
    let widths = [64u64, 128, 256, 512, 512];
    for (stage, (&n, &w)) in convs_per_stage.iter().zip(&widths).enumerate() {
        for i in 0..n {
            b.conv(&format!("s{stage}c{i}"), 3, 1, w);
        }
        b.pool(&format!("pool{stage}"), 2, 2);
    }
    b.fc("fc6", 4096).fc("fc7", 4096).fc("fc8", 1000);
    model(name, Family::Vgg, 224, b.finish())
}

// --- Inception --------------------------------------------------------

/// One simplified inception module: 1x1 / 3x3 / double-3x3 / pool-proj
/// branches followed by a concat. Branch widths derive from `width`.
fn inception_module(b: &mut NetBuilder, tag: &str, width: u64) {
    let c_in = b.channels();
    b.conv(&format!("{tag}.b1"), 1, 1, width);
    b.conv(&format!("{tag}.b3r"), 1, 1, width / 2)
        .conv(&format!("{tag}.b3"), 3, 1, width);
    b.conv(&format!("{tag}.b5r"), 1, 1, width / 4)
        .conv(&format!("{tag}.b5a"), 3, 1, width / 2)
        .conv(&format!("{tag}.b5b"), 3, 1, width / 2);
    b.pool(&format!("{tag}.pp"), 3, 1);
    b.set_channels(width + width + width / 2);
    b.concat(&format!("{tag}.cat"), c_in / 4);
}

fn inception(name: &str, input: u64, modules: &[(u64, u64)]) -> ModelArch {
    // `modules`: (count, width) per spatial stage, pool between stages.
    let mut b = NetBuilder::new(input, 3);
    b.conv("stem1", 3, 2, 32)
        .conv("stem2", 3, 1, 64)
        .pool("stem.pool", 3, 2)
        .conv("stem3", 1, 1, 80)
        .conv("stem4", 3, 1, 192)
        .pool("stem.pool2", 3, 2);
    for (stage, &(count, width)) in modules.iter().enumerate() {
        for m in 0..count {
            inception_module(&mut b, &format!("mix{stage}_{m}"), width);
        }
        if stage + 1 < modules.len() {
            b.pool(&format!("red{stage}"), 3, 2);
        }
    }
    b.global_pool("gap").fc("fc", 1000);
    model(name, Family::Inception, input, b.finish())
}

fn inception_resnet(name: &str, input: u64, modules: &[(u64, u64)]) -> ModelArch {
    let mut base = inception(name, input, modules);
    // Residual variants add an elementwise add after each module; patch the
    // family-level structure by appending adds proportional to module count.
    let adds: u64 = modules.iter().map(|&(c, _)| c).sum();
    let mut b = NetBuilder::new(8, 1024);
    for i in 0..adds {
        b.add(&format!("res.add{i}"));
    }
    base.layers.extend(b.finish());
    base
}

// --- MobileNet --------------------------------------------------------

fn scaled(c: u64, alpha: f64) -> u64 {
    ((c as f64 * alpha / 8.0).round() as u64 * 8).max(8)
}

fn mobilenet_v1(name: &str, alpha: f64) -> ModelArch {
    let mut b = NetBuilder::new(224, 3);
    b.conv("conv1", 3, 2, scaled(32, alpha));
    // (stride, out_channels) of the 13 depthwise-separable blocks.
    let blocks: [(u64, u64); 13] = [
        (1, 64),
        (2, 128),
        (1, 128),
        (2, 256),
        (1, 256),
        (2, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (2, 1024),
        (1, 1024),
    ];
    for (i, &(stride, out_c)) in blocks.iter().enumerate() {
        b.dw_conv(&format!("dw{i}"), 3, stride)
            .conv(&format!("pw{i}"), 1, 1, scaled(out_c, alpha));
    }
    b.global_pool("gap").fc("fc", 1000);
    model(name, Family::MobileNet, 224, b.finish())
}

fn mobilenet_v2(name: &str, alpha: f64) -> ModelArch {
    let mut b = NetBuilder::new(224, 3);
    b.conv("conv1", 3, 2, scaled(32, alpha));
    // (expansion, out_channels, repeats, stride) per stage.
    let stages: [(u64, u64, u64, u64); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    for (s, &(t, c, n, stride)) in stages.iter().enumerate() {
        for i in 0..n {
            let st = if i == 0 { stride } else { 1 };
            let hidden = b.channels() * t;
            let tag = format!("ir{s}_{i}");
            b.conv(&format!("{tag}.exp"), 1, 1, hidden)
                .dw_conv(&format!("{tag}.dw"), 3, st)
                .conv(&format!("{tag}.proj"), 1, 1, scaled(c, alpha));
            if st == 1 && i > 0 {
                b.add(&format!("{tag}.add"));
            }
        }
    }
    b.conv("conv_last", 1, 1, scaled(1280, alpha.max(1.0)))
        .global_pool("gap")
        .fc("fc", 1000);
    model(name, Family::MobileNet, 224, b.finish())
}

fn mobilenet_v3(name: &str, large: bool) -> ModelArch {
    let mut b = NetBuilder::new(224, 3);
    b.conv("conv1", 3, 2, 16);
    let stages: &[(u64, u64, u64, u64)] = if large {
        &[
            (1, 16, 1, 1),
            (4, 24, 2, 2),
            (3, 40, 3, 2),
            (6, 80, 4, 2),
            (6, 112, 2, 1),
            (6, 160, 3, 2),
        ]
    } else {
        &[(1, 16, 1, 2), (4, 24, 2, 2), (4, 40, 3, 2), (6, 96, 3, 2)]
    };
    for (s, &(t, c, n, stride)) in stages.iter().enumerate() {
        for i in 0..n {
            let st = if i == 0 { stride } else { 1 };
            let hidden = b.channels() * t;
            let tag = format!("v3s{s}_{i}");
            b.conv(&format!("{tag}.exp"), 1, 1, hidden)
                .dw_conv(&format!("{tag}.dw"), if s >= 2 { 5 } else { 3 }, st)
                .conv(&format!("{tag}.proj"), 1, 1, c);
            if st == 1 && i > 0 {
                b.add(&format!("{tag}.add"));
            }
        }
    }
    b.conv("conv_last", 1, 1, if large { 960 } else { 576 })
        .global_pool("gap")
        .fc("fc", 1000);
    model(name, Family::MobileNet, 224, b.finish())
}

// --- SqueezeNet -------------------------------------------------------

fn fire(b: &mut NetBuilder, tag: &str, squeeze: u64, expand: u64) {
    b.conv(&format!("{tag}.sq"), 1, 1, squeeze);
    b.conv(&format!("{tag}.e1"), 1, 1, expand);
    b.conv(&format!("{tag}.e3"), 3, 1, expand);
    b.set_channels(expand * 2);
}

fn squeezenet(name: &str, v11: bool, residual: bool) -> ModelArch {
    let mut b = NetBuilder::new(224, 3);
    if v11 {
        b.conv("conv1", 3, 2, 64).pool("pool1", 3, 2);
    } else {
        b.conv("conv1", 7, 2, 96).pool("pool1", 3, 2);
    }
    let fires: [(u64, u64); 8] = [
        (16, 64),
        (16, 64),
        (32, 128),
        (32, 128),
        (48, 192),
        (48, 192),
        (64, 256),
        (64, 256),
    ];
    for (i, &(s, e)) in fires.iter().enumerate() {
        fire(&mut b, &format!("fire{}", i + 2), s, e);
        if residual && i % 2 == 1 {
            b.add(&format!("fire{}.add", i + 2));
        }
        if i == 3 || i == 6 {
            b.pool(&format!("pool{}", i + 2), 3, 2);
        }
    }
    b.conv("conv10", 1, 1, 1000).global_pool("gap");
    model(name, Family::SqueezeNet, 224, b.finish())
}

// --- EfficientNet -----------------------------------------------------

/// `se` adds squeeze-and-excite gating (b-series); the lite variants drop
/// it for integer-friendly DPU deployment.
fn efficientnet(name: &str, input: u64, width: f64, depth: f64, se: bool) -> ModelArch {
    let mut b = NetBuilder::new(input, 3);
    b.conv("stem", 3, 2, scaled(32, width));
    // b0 baseline: (expansion, channels, repeats, stride, kernel).
    let stages: [(u64, u64, u64, u64, u64); 7] = [
        (1, 16, 1, 1, 3),
        (6, 24, 2, 2, 3),
        (6, 40, 2, 2, 5),
        (6, 80, 3, 2, 3),
        (6, 112, 3, 1, 5),
        (6, 192, 4, 2, 5),
        (6, 320, 1, 1, 3),
    ];
    for (s, &(t, c, n, stride, k)) in stages.iter().enumerate() {
        let reps = ((n as f64 * depth).ceil() as u64).max(1);
        for i in 0..reps {
            let st = if i == 0 { stride } else { 1 };
            let hidden = b.channels() * t;
            let tag = format!("mb{s}_{i}");
            b.conv(&format!("{tag}.exp"), 1, 1, hidden)
                .dw_conv(&format!("{tag}.dw"), k, st);
            if se {
                // Squeeze-and-excite gating (b-series only; lite variants
                // drop it for integer-friendly DPU deployment).
                b.se_block(&format!("{tag}.se"), 24);
            }
            b.conv(&format!("{tag}.proj"), 1, 1, scaled(c, width));
            if st == 1 && i > 0 {
                b.add(&format!("{tag}.add"));
            }
        }
    }
    b.conv("head", 1, 1, scaled(1280, width))
        .global_pool("gap")
        .fc("fc", 1000);
    model(name, Family::EfficientNet, input, b.finish())
}

// --- DenseNet ---------------------------------------------------------

fn densenet(name: &str, blocks: [u64; 4], growth: u64) -> ModelArch {
    let mut b = NetBuilder::new(224, 3);
    b.conv("conv1", 7, 2, growth * 2).pool("pool1", 3, 2);
    for (stage, &n) in blocks.iter().enumerate() {
        for i in 0..n {
            let tag = format!("d{stage}_{i}");
            let c_in = b.channels();
            b.conv(&format!("{tag}.bn1x1"), 1, 1, growth * 4).conv(
                &format!("{tag}.c3"),
                3,
                1,
                growth,
            );
            b.set_channels(c_in);
            b.concat(&format!("{tag}.cat"), growth);
        }
        if stage < 3 {
            let half = (b.channels() / 2).max(1);
            b.conv(&format!("t{stage}.conv"), 1, 1, half)
                .pool(&format!("t{stage}.pool"), 2, 2);
        }
    }
    b.global_pool("gap").fc("fc", 1000);
    model(name, Family::DenseNet, 224, b.finish())
}

/// The complete 39-model zoo (7 families), mirroring the Vitis AI image
/// recognition suite used as victim accelerators in Section IV-B.
pub fn zoo() -> Vec<ModelArch> {
    vec![
        // ResNet family (6)
        resnet("resnet-18", [2, 2, 2, 2], false),
        resnet("resnet-34", [3, 4, 6, 3], false),
        resnet("resnet-50", [3, 4, 6, 3], true),
        resnet("resnet-101", [3, 4, 23, 3], true),
        resnet("resnet-152", [3, 8, 36, 3], true),
        resnet("resnet-26", [2, 2, 2, 2], true),
        // VGG family (4)
        vgg("vgg-11", [1, 1, 2, 2, 2]),
        vgg("vgg-13", [2, 2, 2, 2, 2]),
        vgg("vgg-16", [2, 2, 3, 3, 3]),
        vgg("vgg-19", [2, 2, 4, 4, 4]),
        // Inception family (5)
        inception("googlenet", 224, &[(2, 128), (5, 192), (2, 256)]),
        inception("inception-v2", 224, &[(3, 160), (5, 224), (2, 320)]),
        inception("inception-v3", 299, &[(3, 192), (5, 288), (3, 448)]),
        inception("inception-v4", 299, &[(4, 224), (7, 320), (3, 512)]),
        inception_resnet("inception-resnet-v2", 299, &[(5, 192), (10, 256), (5, 384)]),
        // MobileNet family (8)
        mobilenet_v1("mobilenet-v1-0.25", 0.25),
        mobilenet_v1("mobilenet-v1-0.5", 0.5),
        mobilenet_v1("mobilenet-v1", 1.0),
        mobilenet_v2("mobilenet-v2-0.5", 0.5),
        mobilenet_v2("mobilenet-v2", 1.0),
        mobilenet_v2("mobilenet-v2-1.4", 1.4),
        mobilenet_v3("mobilenet-v3-small", false),
        mobilenet_v3("mobilenet-v3-large", true),
        // SqueezeNet family (3)
        squeezenet("squeezenet", false, false),
        squeezenet("squeezenet-1.1", true, false),
        squeezenet("squeezenet-res", true, true),
        // EfficientNet family (8)
        efficientnet("efficientnet-lite0", 224, 1.0, 1.0, false),
        efficientnet("efficientnet-lite1", 240, 1.0, 1.1, false),
        efficientnet("efficientnet-lite2", 260, 1.1, 1.2, false),
        efficientnet("efficientnet-lite3", 280, 1.2, 1.4, false),
        efficientnet("efficientnet-lite4", 300, 1.4, 1.8, false),
        efficientnet("efficientnet-b0", 224, 1.0, 1.0, true),
        efficientnet("efficientnet-b1", 240, 1.0, 1.1, true),
        efficientnet("efficientnet-b2", 260, 1.1, 1.2, true),
        // DenseNet family (5)
        densenet("densenet-121", [6, 12, 24, 16], 32),
        densenet("densenet-161", [6, 12, 36, 24], 48),
        densenet("densenet-169", [6, 12, 32, 32], 32),
        densenet("densenet-201", [6, 12, 48, 32], 32),
        densenet("densenet-264", [6, 12, 64, 48], 32),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn zoo_has_39_models_in_7_families() {
        let models = zoo();
        assert_eq!(models.len(), 39);
        let families: BTreeSet<Family> = models.iter().map(|m| m.family).collect();
        assert_eq!(families.len(), 7);
        let names: BTreeSet<&str> = models.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names.len(), 39, "model names must be unique");
    }

    #[test]
    fn figure_three_models_are_present() {
        let models = zoo();
        for name in [
            "mobilenet-v1",
            "squeezenet",
            "efficientnet-lite0",
            "inception-v3",
            "resnet-50",
            "vgg-19",
        ] {
            assert!(
                models.iter().any(|m| m.name == name),
                "{name} missing from zoo"
            );
        }
    }

    #[test]
    fn relative_workloads_match_published_order() {
        let models = zoo();
        let macs = |n: &str| models.iter().find(|m| m.name == n).unwrap().total_macs();
        // VGG-19 >> Inception-v3 > ResNet-50 >> MobileNet-v1 > SqueezeNet-ish
        assert!(macs("vgg-19") > macs("inception-v3"));
        assert!(macs("inception-v3") > macs("resnet-50"));
        assert!(macs("resnet-50") > macs("mobilenet-v1"));
        assert!(macs("mobilenet-v1") > macs("mobilenet-v1-0.25"));
        // Depth orderings within families.
        assert!(macs("resnet-152") > macs("resnet-101"));
        assert!(macs("resnet-101") > macs("resnet-50"));
        assert!(macs("vgg-19") > macs("vgg-16"));
        assert!(macs("densenet-264") > macs("densenet-121"));
    }

    #[test]
    fn absolute_mac_counts_are_plausible() {
        let models = zoo();
        let gmacs =
            |n: &str| models.iter().find(|m| m.name == n).unwrap().total_macs() as f64 / 1e9;
        // Published figures: VGG-19 ~19.6 GMACs, ResNet-50 ~4.1,
        // MobileNet-v1 ~0.57. Allow generous tolerance for the simplified
        // bookkeeping (no bias/BN terms, approximate inception branches).
        assert!(
            (15.0..26.0).contains(&gmacs("vgg-19")),
            "{}",
            gmacs("vgg-19")
        );
        assert!(
            (2.5..6.5).contains(&gmacs("resnet-50")),
            "{}",
            gmacs("resnet-50")
        );
        assert!(
            (0.3..1.0).contains(&gmacs("mobilenet-v1")),
            "{}",
            gmacs("mobilenet-v1")
        );
    }

    #[test]
    fn vgg_parameter_heavy_resnet_compute_heavy() {
        let models = zoo();
        let get = |n: &str| models.iter().find(|m| m.name == n).unwrap();
        let vgg = get("vgg-16");
        let res = get("resnet-50");
        // VGG's FC layers dominate parameters (~138M float / int8 MB).
        assert!(vgg.total_params() > 3 * res.total_params());
    }

    #[test]
    fn every_model_is_nonempty_and_positive() {
        for m in zoo() {
            assert!(!m.layers.is_empty(), "{} has no layers", m.name);
            assert!(m.total_macs() > 1_000_000, "{} too small", m.name);
            assert!(m.total_dram_bytes() > 100_000, "{} no traffic", m.name);
            assert!(m.model_size_mb() > 0.1, "{} no params", m.name);
            assert!(m.input >= 224);
        }
    }

    #[test]
    fn family_counts() {
        let models = zoo();
        let count = |f: Family| models.iter().filter(|m| m.family == f).count();
        assert_eq!(count(Family::ResNet), 6);
        assert_eq!(count(Family::Vgg), 4);
        assert_eq!(count(Family::Inception), 5);
        assert_eq!(count(Family::MobileNet), 8);
        assert_eq!(count(Family::SqueezeNet), 3);
        assert_eq!(count(Family::EfficientNet), 8);
        assert_eq!(count(Family::DenseNet), 5);
    }

    #[test]
    fn workloads_are_pairwise_distinct() {
        // The fingerprinting attack needs distinguishable workloads; the
        // zoo must not contain two models with identical schedules.
        let models = zoo();
        for i in 0..models.len() {
            for j in i + 1..models.len() {
                assert!(
                    models[i].layers != models[j].layers,
                    "{} and {} have identical schedules",
                    models[i].name,
                    models[j].name
                );
            }
        }
    }

    #[test]
    fn display_family_names() {
        assert_eq!(Family::Vgg.to_string(), "VGG");
        assert_eq!(Family::MobileNet.to_string(), "MobileNet");
    }
}
