//! Behavioural model of an ARM-FPGA SoC platform (Zynq UltraScale+ / Versal).
//!
//! The AmpereBleed paper runs on a physical Xilinx ZCU102 board. This crate
//! replaces that hardware with a first-order electrical and timing model
//! that preserves everything the attack depends on:
//!
//! * [`board`] — the catalog of evaluation boards from Table I (families,
//!   voltage bands, CPU models, DRAM, INA226 sensor counts, prices) and the
//!   ZCU102 sensor map from Table II.
//! * [`PowerDomain`] — the monitored power domains (full-power CPU,
//!   low-power CPU, FPGA logic, DDR).
//! * [`PowerLoad`] — the trait every current-drawing component implements
//!   (power-virus groups, RSA circuit, DPU, CPU background activity, static
//!   leakage). Loads are pure functions of simulation time so the electrical
//!   solve is deterministic and replayable.
//! * [`Pdn`] — the power-delivery network with its on-board stabilizer:
//!   `V(t) = V_set - I*R_eff - L_eff*dI/dt`, clamped to the regulated band
//!   (0.825-0.876 V on Zynq UltraScale+). The stabilizer is what defeats
//!   classic RO-based voltage attacks and what AmpereBleed side-steps by
//!   reading *current* instead.
//! * [`cpu`] — background OS activity and scheduler jitter on the ARM cores.
//! * [`SimTime`] — nanosecond-resolution simulation clock.
//!
//! # Examples
//!
//! ```
//! use zynq_soc::{board::BoardSpec, Pdn, PowerDomain, SimTime};
//!
//! let zcu102 = BoardSpec::zcu102();
//! let pdn = Pdn::for_board(&zcu102, PowerDomain::FpgaLogic);
//! // 1 A of fabric load barely moves the stabilized rail:
//! let v = pdn.rail_voltage(1000.0, 0.0);
//! assert!(zcu102.fpga_voltage_band.contains(v));
//! let _t = SimTime::from_ms(35);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod board;
pub mod cpu;
mod domain;
pub mod dvfs;
mod noise;
mod oppoint;
mod pdn;
mod power;
pub mod thermal;
mod time;

pub use domain::PowerDomain;
pub use noise::{
    hash01, hash01_bucket_term, hash01_finish, hash01_stream_key, hash_gauss, GaussianNoise,
};
pub use oppoint::{OpPointCache, RailOperatingPoint};
pub use pdn::{Pdn, VoltageBand};
pub use power::{
    invalidate_load_caches, load_control_epoch, CompositeLoad, ConstantLoad, PowerLoad,
    StaticFabricLoad,
};
pub use time::SimTime;
