//! First-order (RC) thermal model of the SoC die.
//!
//! Dynamic power heats the die; junction temperature follows with a
//! thermal time constant; static (leakage) current rises with temperature
//! (Moradi, CHES'14 — the paper cites leakage as the reason Figure 2's
//! current "does not start from 0"). This module provides the standard
//! junction-temperature integrator
//!
//! ```text
//! dT/dt = (P * R_theta - (T - T_ambient)) / tau
//! ```
//!
//! and the leakage-vs-temperature scale factor, for thermal analyses of
//! capture campaigns (long captures wander as the board heats, which is
//! why per-run sensor means are not stable identity features). The live
//! electrical solve keeps loads as pure functions of time —
//! [`crate::StaticFabricLoad`]'s deterministic drift stands in for the
//! integrated thermal state there.

/// Thermal parameters of the package/heatsink assembly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalConfig {
    /// Ambient temperature, Celsius.
    pub ambient_c: f64,
    /// Junction-to-ambient thermal resistance, Celsius per watt.
    pub r_theta_c_per_w: f64,
    /// Thermal time constant, seconds.
    pub tau_s: f64,
    /// Relative leakage increase per Celsius (exponential coefficient).
    pub leakage_tempco: f64,
    /// Junction temperature that triggers thermal throttling, Celsius.
    pub throttle_c: f64,
}

impl Default for ThermalConfig {
    fn default() -> Self {
        ThermalConfig {
            ambient_c: 35.0,
            r_theta_c_per_w: 2.8,
            tau_s: 12.0,
            leakage_tempco: 0.010,
            throttle_c: 100.0,
        }
    }
}

/// Junction-temperature integrator.
///
/// # Examples
///
/// ```
/// use zynq_soc::thermal::{ThermalConfig, ThermalModel};
///
/// let mut th = ThermalModel::new(ThermalConfig::default());
/// // 10 W sustained for five time constants: ~28 C of self-heating.
/// for _ in 0..600 {
///     th.step(10.0, 0.1);
/// }
/// assert!((th.junction_c() - (35.0 + 28.0)).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalModel {
    config: ThermalConfig,
    junction_c: f64,
    elapsed_s: f64,
}

impl ThermalModel {
    /// Starts at ambient temperature.
    pub fn new(config: ThermalConfig) -> Self {
        ThermalModel {
            junction_c: config.ambient_c,
            config,
            elapsed_s: 0.0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ThermalConfig {
        &self.config
    }

    /// Current junction temperature, Celsius.
    pub fn junction_c(&self) -> f64 {
        self.junction_c
    }

    /// Total integrated time, seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }

    /// Steady-state junction temperature for a constant power, Celsius.
    pub fn steady_state_c(&self, power_w: f64) -> f64 {
        self.config.ambient_c + power_w * self.config.r_theta_c_per_w
    }

    /// Advances the integrator by `dt_s` seconds of `power_w` dissipation
    /// (exact first-order step, stable for any `dt_s`).
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is not positive or `power_w` is negative.
    pub fn step(&mut self, power_w: f64, dt_s: f64) {
        assert!(dt_s > 0.0, "time step must be positive");
        assert!(power_w >= 0.0, "power must be non-negative");
        let target = self.steady_state_c(power_w);
        let alpha = (-dt_s / self.config.tau_s).exp();
        let was_throttling = self.throttling();
        self.junction_c = target + (self.junction_c - target) * alpha;
        self.elapsed_s += dt_s;
        obs::gauge!("zynq.thermal.junction_c").set(self.junction_c);
        obs::gauge!("zynq.thermal.leakage_scale").set(self.leakage_scale());
        if !was_throttling && self.throttling() {
            obs::counter!("zynq.thermal.throttle_crossings").inc();
            obs::warn!(
                "zynq.thermal",
                "junction crossed the throttle threshold";
                "junction_c" => self.junction_c,
                "throttle_c" => self.config.throttle_c
            );
        }
    }

    /// Leakage-current scale factor at the present junction temperature,
    /// relative to leakage at ambient (`exp(tempco * dT)`).
    pub fn leakage_scale(&self) -> f64 {
        (self.config.leakage_tempco * (self.junction_c - self.config.ambient_c)).exp()
    }

    /// Whether the die has crossed the throttling threshold.
    pub fn throttling(&self) -> bool {
        self.junction_c >= self.config.throttle_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_ambient() {
        let th = ThermalModel::new(ThermalConfig::default());
        assert_eq!(th.junction_c(), 35.0);
        assert_eq!(th.leakage_scale(), 1.0);
        assert!(!th.throttling());
    }

    #[test]
    fn approaches_steady_state_exponentially() {
        let mut th = ThermalModel::new(ThermalConfig::default());
        // One time constant at 10 W: 63.2% of the 28 C rise.
        th.step(10.0, 12.0);
        let rise = th.junction_c() - 35.0;
        assert!((rise - 28.0 * 0.632).abs() < 0.1, "rise {rise}");
        // Five time constants: essentially settled.
        for _ in 0..5 {
            th.step(10.0, 12.0);
        }
        assert!((th.junction_c() - th.steady_state_c(10.0)).abs() < 0.1);
    }

    #[test]
    fn cools_back_to_ambient() {
        let mut th = ThermalModel::new(ThermalConfig::default());
        th.step(15.0, 60.0);
        assert!(th.junction_c() > 70.0);
        th.step(0.0, 120.0);
        assert!((th.junction_c() - 35.0).abs() < 0.01);
    }

    #[test]
    fn step_size_invariance() {
        // The exact exponential step makes 1x60s equal 60x1s.
        let mut coarse = ThermalModel::new(ThermalConfig::default());
        coarse.step(8.0, 60.0);
        let mut fine = ThermalModel::new(ThermalConfig::default());
        for _ in 0..60 {
            fine.step(8.0, 1.0);
        }
        assert!((coarse.junction_c() - fine.junction_c()).abs() < 1e-9);
    }

    #[test]
    fn leakage_rises_with_temperature() {
        let mut th = ThermalModel::new(ThermalConfig::default());
        th.step(10.0, 120.0);
        // ~28 C rise -> exp(0.01 * 28) ~ 1.32.
        let scale = th.leakage_scale();
        assert!((1.25..1.40).contains(&scale), "leakage scale {scale}");
    }

    #[test]
    fn throttling_threshold() {
        let mut th = ThermalModel::new(ThermalConfig::default());
        th.step(30.0, 600.0); // 35 + 84 = 119 C steady state
        assert!(th.throttling());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_step_rejected() {
        let mut th = ThermalModel::new(ThermalConfig::default());
        th.step(1.0, 0.0);
    }

    sim_rt::prop_check! {
        fn temperature_bounded_by_ambient_and_steady_state(
            power in 0.0f64..30.0,
            steps in 1usize..50,
            dt in 0.01f64..20.0
        ) {
            let mut th = ThermalModel::new(ThermalConfig::default());
            for _ in 0..steps {
                th.step(power, dt);
            }
            let ss = th.steady_state_c(power);
            assert!(th.junction_c() >= 35.0 - 1e-9);
            assert!(th.junction_c() <= ss + 1e-9);
        }

        fn monotone_heating_under_constant_power(dt in 0.1f64..10.0) {
            let mut th = ThermalModel::new(ThermalConfig::default());
            let mut prev = th.junction_c();
            for _ in 0..20 {
                th.step(12.0, dt);
                assert!(th.junction_c() >= prev - 1e-12);
                prev = th.junction_c();
            }
        }
    }
}
