//! Per-rail operating points and the keyed operating-point cache.
//!
//! Every averaging step of an INA226 conversion needs the full electrical
//! operating point of one rail: the instantaneous current, the current one
//! microsecond earlier (for the PDN's `L * dI/dt` transient term), and the
//! resulting bus voltage. Historically each of those was a separate walk of
//! the load composite — three walks per step. [`RailOperatingPoint`] packages
//! the triple so the whole solve happens in a single pass, and
//! [`OpPointCache`] memoizes it: conversion timestamps are deterministic
//! multiples of the hwmon update boundary, so repeated captures over the
//! same window (calibration sweeps, ground-truth checks, multi-pass
//! experiments) hit identical `(domain, t)` keys.
//!
//! Cache entries are tagged with the [`crate::load_control_epoch`] at
//! evaluation time; any control-state change invalidates every entry at
//! once, so a cached point can never leak across a virus activation or a
//! DPU model swap.

use sim_rt::lockorder::TrackedMutex;

use crate::{Pdn, PowerDomain, SimTime};

/// The electrical operating point of one rail at one instant.
///
/// # Examples
///
/// ```
/// use zynq_soc::{board::BoardSpec, Pdn, PowerDomain};
///
/// let pdn = Pdn::for_board(&BoardSpec::zcu102(), PowerDomain::FpgaLogic);
/// let p = pdn.operating_point(2_000.0, 1_990.0);
/// assert_eq!(p.i_now_ma, 2_000.0);
/// assert_eq!(p.slew_ma_per_us(), 10.0);
/// assert!(pdn.band.contains(p.volts));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RailOperatingPoint {
    /// Rail current at the evaluation instant, in mA.
    pub i_now_ma: f64,
    /// Rail current one microsecond earlier, in mA (transient term input).
    pub i_prev_ma: f64,
    /// Bus voltage under that load, in volts.
    pub volts: f64,
}

impl RailOperatingPoint {
    /// Rail current in amps.
    pub fn amps(&self) -> f64 {
        self.i_now_ma / 1_000.0
    }

    /// Current slew in mA/µs, as fed to [`Pdn::rail_voltage`].
    pub fn slew_ma_per_us(&self) -> f64 {
        self.i_now_ma - self.i_prev_ma
    }
}

impl Pdn {
    /// Solves the rail for a current pair in one call: the voltage uses the
    /// same 1 µs finite-difference slew as the historical two-walk path, so
    /// the result is bit-identical to
    /// `rail_voltage(i_now_ma, i_now_ma - i_prev_ma)`.
    pub fn operating_point(&self, i_now_ma: f64, i_prev_ma: f64) -> RailOperatingPoint {
        RailOperatingPoint {
            i_now_ma,
            i_prev_ma,
            volts: self.rail_voltage(i_now_ma, i_now_ma - i_prev_ma),
        }
    }
}

/// One direct-mapped cache slot.
#[derive(Debug, Clone, Copy)]
struct Slot {
    domain: PowerDomain,
    t_ns: u64,
    epoch: u64,
    point: RailOperatingPoint,
}

/// Number of direct-mapped slots. A 64-sample three-channel capture touches
/// at most `16 steps x 64 boundaries = 1024` distinct instants per domain;
/// 512 slots keep the working set of repeated-window experiments resident
/// while the whole table stays a few pages.
const SLOTS: usize = 512;

/// A fixed-size, direct-mapped cache of [`RailOperatingPoint`]s keyed by
/// `(domain, t)` and validated against the global load-control epoch.
///
/// Lookups and inserts take a single short mutex hold; the expensive load
/// walk happens *outside* the lock, so concurrent samplers on different
/// domains never serialize on each other's evaluations. Hits and misses are
/// reported through the `soc.oppoint.cache_hit` / `soc.oppoint.cache_miss`
/// counters.
#[derive(Debug, Default)]
pub struct OpPointCache {
    slots: TrackedMutex<Vec<Option<Slot>>>,
}

impl OpPointCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        OpPointCache {
            slots: TrackedMutex::new("soc.oppoint.slots", vec![None; SLOTS]),
        }
    }

    fn index(domain: PowerDomain, t_ns: u64) -> usize {
        let d = domain as u64;
        // Fibonacci mixing of the key; conversion timestamps share low-order
        // structure (multiples of the averaging step), so mix before masking.
        let h =
            (t_ns ^ (d.wrapping_mul(0x9E37_79B9_7F4A_7C15))).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize % SLOTS
    }

    /// Looks up the point for `(domain, t)` computed at `epoch`.
    ///
    /// Returns `None` (and counts a miss) when the slot is empty, holds a
    /// different key, or was computed under an older epoch.
    pub fn get(&self, domain: PowerDomain, t: SimTime, epoch: u64) -> Option<RailOperatingPoint> {
        let t_ns = t.as_nanos();
        let slots = self.slots.lock();
        // A `Default`-built cache has zero slots; `get` on it misses
        // naturally because the index lookup finds nothing.
        match slots.get(Self::index(domain, t_ns)).copied().flatten() {
            Some(s) if s.domain == domain && s.t_ns == t_ns && s.epoch == epoch => {
                obs::counter!("soc.oppoint.cache_hit").inc();
                Some(s.point)
            }
            _ => {
                obs::counter!("soc.oppoint.cache_miss").inc();
                None
            }
        }
    }

    /// Stores a point computed under `epoch`. The caller must have read the
    /// epoch *before* evaluating the loads — an entry tagged with a stale
    /// epoch is simply never returned again.
    pub fn insert(&self, domain: PowerDomain, t: SimTime, epoch: u64, point: RailOperatingPoint) {
        let t_ns = t.as_nanos();
        let mut slots = self.slots.lock();
        let idx = Self::index(domain, t_ns);
        // On a `Default`-built zero-slot cache there is nowhere to store;
        // the insert is silently a no-op, matching `get`'s always-miss.
        if let Some(slot) = slots.get_mut(idx) {
            *slot = Some(Slot {
                domain,
                t_ns,
                epoch,
                point,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::BoardSpec;
    use crate::{invalidate_load_caches, load_control_epoch};

    fn point(i: f64) -> RailOperatingPoint {
        Pdn::for_board(&BoardSpec::zcu102(), PowerDomain::FpgaLogic).operating_point(i, i - 5.0)
    }

    #[test]
    fn operating_point_matches_rail_voltage() {
        let pdn = Pdn::for_board(&BoardSpec::zcu102(), PowerDomain::FpgaLogic);
        let p = pdn.operating_point(3_000.0, 2_400.0);
        assert_eq!(
            p.volts.to_bits(),
            pdn.rail_voltage(3_000.0, 600.0).to_bits()
        );
        assert_eq!(p.amps(), 3.0);
        assert_eq!(p.slew_ma_per_us(), 600.0);
    }

    #[test]
    fn hit_returns_inserted_point() {
        let cache = OpPointCache::new();
        let e = load_control_epoch();
        let t = SimTime::from_us(1234);
        assert!(cache.get(PowerDomain::FpgaLogic, t, e).is_none());
        cache.insert(PowerDomain::FpgaLogic, t, e, point(1_000.0));
        let got = cache.get(PowerDomain::FpgaLogic, t, e).expect("hit");
        assert_eq!(got.i_now_ma, 1_000.0);
        // Same instant on another domain is a distinct key.
        assert!(cache.get(PowerDomain::Ddr, t, e).is_none());
    }

    #[test]
    fn epoch_bump_invalidates() {
        let cache = OpPointCache::new();
        let e = load_control_epoch();
        let t = SimTime::from_ms(35);
        cache.insert(PowerDomain::Ddr, t, e, point(500.0));
        assert!(cache.get(PowerDomain::Ddr, t, e).is_some());
        invalidate_load_caches();
        let e2 = load_control_epoch();
        assert_ne!(e, e2);
        assert!(cache.get(PowerDomain::Ddr, t, e2).is_none());
    }

    #[test]
    fn default_cache_never_panics() {
        let cache = OpPointCache::default();
        let e = load_control_epoch();
        cache.insert(PowerDomain::FpgaLogic, SimTime::ZERO, e, point(1.0));
        assert!(cache
            .get(PowerDomain::FpgaLogic, SimTime::ZERO, e)
            .is_none());
    }

    sim_rt::prop_check! {
        /// Distinct keys written through the same cache never read back the
        /// wrong point: a colliding insert evicts, it does not alias.
        fn collisions_evict_not_alias(a in 0u64..5_000_000, b in 0u64..5_000_000) {
            let cache = OpPointCache::new();
            let e = load_control_epoch();
            let (ta, tb) = (SimTime::from_nanos(a), SimTime::from_nanos(b));
            cache.insert(PowerDomain::FpgaLogic, ta, e, point(100.0));
            cache.insert(PowerDomain::FpgaLogic, tb, e, point(200.0));
            if let Some(p) = cache.get(PowerDomain::FpgaLogic, ta, e) {
                assert_eq!(p.i_now_ma, if a == b { 200.0 } else { 100.0 });
            }
            let p = cache.get(PowerDomain::FpgaLogic, tb, e).expect("last insert resident");
            assert_eq!(p.i_now_ma, 200.0);
        }
    }
}
