use crate::board::BoardSpec;
use crate::PowerDomain;

/// A closed voltage interval `[min_v, max_v]` guaranteed by a rail's
/// regulator (the "PDN stabilizer" of Section III-B).
///
/// # Examples
///
/// ```
/// use zynq_soc::VoltageBand;
///
/// let band = VoltageBand::ZYNQ_ULTRASCALE_PLUS;
/// assert!(band.contains(0.85));
/// assert!(!band.contains(0.9));
/// assert_eq!(band.clamp(1.0), band.max_v);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageBand {
    /// Lower bound in volts.
    pub min_v: f64,
    /// Upper bound in volts.
    pub max_v: f64,
}

impl VoltageBand {
    /// Zynq UltraScale+ FPGA core band: 0.825 V to 0.876 V (Table I).
    pub const ZYNQ_ULTRASCALE_PLUS: VoltageBand = VoltageBand {
        min_v: 0.825,
        max_v: 0.876,
    };

    /// Versal FPGA core band: 0.775 V to 0.825 V (Table I).
    pub const VERSAL: VoltageBand = VoltageBand {
        min_v: 0.775,
        max_v: 0.825,
    };

    /// Creates a band.
    ///
    /// # Panics
    ///
    /// Panics if `min_v > max_v`.
    pub fn new(min_v: f64, max_v: f64) -> Self {
        assert!(min_v <= max_v, "voltage band must be ordered");
        VoltageBand { min_v, max_v }
    }

    /// Whether `v` lies inside the band.
    pub fn contains(&self, v: f64) -> bool {
        (self.min_v..=self.max_v).contains(&v)
    }

    /// Clamps `v` into the band.
    pub fn clamp(&self, v: f64) -> f64 {
        v.clamp(self.min_v, self.max_v)
    }

    /// Band width in volts.
    pub fn width(&self) -> f64 {
        self.max_v - self.min_v
    }

    /// Band midpoint in volts.
    pub fn midpoint(&self) -> f64 {
        (self.min_v + self.max_v) / 2.0
    }
}

/// First-order power-delivery-network model for one rail.
///
/// Implements Equation 1 of the paper:
///
/// ```text
/// V_drop = I * R + L * dI/dt
/// ```
///
/// with the regulator holding the output inside a [`VoltageBand`]. The
/// effective output impedance `R_eff` of a stabilized rail is tiny — a full
/// 6 A swing of fabric current moves the rail by only a few millivolts,
/// which is why voltage-observing attacks (RO circuits) see almost nothing
/// while the *current* through the shunt tracks the load one-for-one.
///
/// # Examples
///
/// ```
/// use zynq_soc::{board::BoardSpec, Pdn, PowerDomain};
///
/// let pdn = Pdn::for_board(&BoardSpec::zcu102(), PowerDomain::FpgaLogic);
/// let idle = pdn.rail_voltage(500.0, 0.0);
/// let busy = pdn.rail_voltage(6_500.0, 0.0);
/// assert!(idle > busy);           // IR droop is monotone in load
/// assert!(idle - busy < 0.01);    // ...but stabilized to millivolts
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pdn {
    /// Regulator set-point in volts.
    pub v_set: f64,
    /// Guaranteed output band.
    pub band: VoltageBand,
    /// Effective DC output impedance in ohms (regulator + plane).
    pub r_eff_ohm: f64,
    /// Effective output inductance in henries (transient term of Eq. 1).
    pub l_eff_h: f64,
    /// Stabilizer strength in `[0, 1]`: 1.0 is the shipped board behaviour,
    /// 0.0 disables regulation entirely (an unstabilized research PDN).
    /// Exposed for the `ablation_stabilizer` experiment.
    pub stabilizer_strength: f64,
}

impl Pdn {
    /// Builds the PDN model of one monitored rail on a given board.
    pub fn for_board(board: &BoardSpec, domain: PowerDomain) -> Self {
        let band = match domain {
            PowerDomain::FpgaLogic => board.fpga_voltage_band,
            // CPU and DDR rails on these boards are regulated at higher
            // voltages; band widths are comparable.
            PowerDomain::FullPowerCpu => VoltageBand::new(0.845, 0.905),
            PowerDomain::LowPowerCpu => VoltageBand::new(0.845, 0.905),
            PowerDomain::Ddr => VoltageBand::new(1.185, 1.235),
        };
        Pdn {
            v_set: band.midpoint() + band.width() * 0.2,
            band,
            // ~0.9 mΩ effective impedance: 6 A swing -> ~5.4 mV droop,
            // i.e. ~4 LSB of the INA226's 1.25 mV bus ADC. This reproduces
            // the "voltage shows only slight LSB changes" observation.
            r_eff_ohm: 0.9e-3,
            l_eff_h: 0.4e-9,
            stabilizer_strength: 1.0,
        }
    }

    /// Returns a copy with a different stabilizer strength.
    ///
    /// # Panics
    ///
    /// Panics if `strength` is outside `[0, 1]`.
    pub fn with_stabilizer_strength(mut self, strength: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&strength),
            "stabilizer strength must be in [0, 1]"
        );
        self.stabilizer_strength = strength;
        self
    }

    /// Computes the rail voltage for a load current `i_ma` (milliamps) and
    /// current slew `di_dt_ma_per_us` (milliamps per microsecond).
    ///
    /// With the stabilizer at full strength the result is clamped into the
    /// guaranteed band; with the stabilizer weakened, droop grows toward
    /// the raw (unregulated) `V_set - I*R_raw - L*dI/dt` response, where the
    /// raw plane impedance is ~20x the regulated effective impedance.
    pub fn rail_voltage(&self, i_ma: f64, di_dt_ma_per_us: f64) -> f64 {
        // A slew past ~1 A/us is a genuine transient event (virus toggles,
        // DPU layer edges) — worth counting for the campaign profile.
        if di_dt_ma_per_us.abs() > 1_000.0 {
            obs::counter!("zynq.pdn.transients").inc();
        }
        let i_a = i_ma / 1_000.0;
        let di_dt_a_per_s = di_dt_ma_per_us * 1_000.0; // mA/us == A/ms -> A/s x1000
                                                       // Interpolate impedance between regulated and raw as the stabilizer
                                                       // weakens.
        let raw_factor = 20.0;
        let scale = self.stabilizer_strength + (1.0 - self.stabilizer_strength) * raw_factor;
        let drop = i_a * self.r_eff_ohm * scale + self.l_eff_h * scale * di_dt_a_per_s;
        obs::gauge!("zynq.pdn.droop_uv").set(drop * 1e6);
        let v = self.v_set - drop;
        if self.stabilizer_strength >= 1.0 {
            self.band.clamp(v)
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_match_table_one() {
        assert_eq!(VoltageBand::ZYNQ_ULTRASCALE_PLUS.min_v, 0.825);
        assert_eq!(VoltageBand::ZYNQ_ULTRASCALE_PLUS.max_v, 0.876);
        assert_eq!(VoltageBand::VERSAL.min_v, 0.775);
        assert_eq!(VoltageBand::VERSAL.max_v, 0.825);
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn band_rejects_inverted_bounds() {
        let _ = VoltageBand::new(1.0, 0.5);
    }

    #[test]
    fn stabilized_rail_stays_in_band() {
        let pdn = Pdn::for_board(&BoardSpec::zcu102(), PowerDomain::FpgaLogic);
        for i_ma in [0.0, 100.0, 1_000.0, 7_000.0, 20_000.0] {
            let v = pdn.rail_voltage(i_ma, 0.0);
            assert!(pdn.band.contains(v), "{i_ma} mA -> {v} V escapes the band");
        }
    }

    #[test]
    fn droop_is_monotone_in_load() {
        let pdn = Pdn::for_board(&BoardSpec::zcu102(), PowerDomain::FpgaLogic);
        let mut prev = f64::INFINITY;
        for i_ma in [0.0, 1_000.0, 3_000.0, 6_000.0] {
            let v = pdn.rail_voltage(i_ma, 0.0);
            assert!(v <= prev);
            prev = v;
        }
    }

    #[test]
    fn full_load_droop_is_millivolts() {
        // The stabilizer limits a 6.4 A virus swing to a handful of bus-ADC
        // LSBs (1.25 mV) — the Figure 2 voltage observation.
        let pdn = Pdn::for_board(&BoardSpec::zcu102(), PowerDomain::FpgaLogic);
        let droop = pdn.rail_voltage(500.0, 0.0) - pdn.rail_voltage(6_900.0, 0.0);
        assert!(droop > 0.0);
        assert!(
            droop < 0.010,
            "droop {droop} V too large for a stabilized rail"
        );
        assert!(droop / 1.25e-3 < 8.0, "more than 8 voltage LSBs of droop");
    }

    #[test]
    fn weakened_stabilizer_increases_droop() {
        let strong = Pdn::for_board(&BoardSpec::zcu102(), PowerDomain::FpgaLogic);
        let weak = strong.clone().with_stabilizer_strength(0.0);
        let d_strong = strong.rail_voltage(0.0, 0.0) - strong.rail_voltage(6_000.0, 0.0);
        let d_weak = weak.rail_voltage(0.0, 0.0) - weak.rail_voltage(6_000.0, 0.0);
        assert!(d_weak > 5.0 * d_strong);
    }

    #[test]
    fn transient_term_contributes() {
        let pdn = Pdn::for_board(&BoardSpec::zcu102(), PowerDomain::FpgaLogic)
            .with_stabilizer_strength(0.5);
        let steady = pdn.rail_voltage(1_000.0, 0.0);
        let slewing = pdn.rail_voltage(1_000.0, 50_000.0);
        assert!(slewing < steady, "dI/dt term must add droop");
    }

    #[test]
    #[should_panic(expected = "[0, 1]")]
    fn stabilizer_strength_validated() {
        let _ = Pdn::for_board(&BoardSpec::zcu102(), PowerDomain::FpgaLogic)
            .with_stabilizer_strength(1.5);
    }

    sim_rt::prop_check! {
        fn clamp_is_idempotent(v in -10.0f64..10.0) {
            let band = VoltageBand::ZYNQ_ULTRASCALE_PLUS;
            let once = band.clamp(v);
            assert_eq!(band.clamp(once), once);
            assert!(band.contains(once));
        }

        fn rail_voltage_in_band_at_full_strength(i_ma in 0.0f64..50_000.0, slew in -1e5f64..1e5) {
            let pdn = Pdn::for_board(&BoardSpec::zcu102(), PowerDomain::FpgaLogic);
            let v = pdn.rail_voltage(i_ma, slew);
            assert!(pdn.band.contains(v));
        }
    }
}
