use sim_rt::rng::{Rng, SimRng};

/// Deterministic stateless hash of a `(seed, stream, bucket)` triple to a
/// uniform value in `[0, 1)`.
///
/// Loads use this to derive time-bucketed pseudo-random activity while
/// remaining pure functions of simulation time (the same query always
/// returns the same answer, regardless of query order).
///
/// # Examples
///
/// ```
/// let a = zynq_soc::hash01(1, 2, 3);
/// assert_eq!(a, zynq_soc::hash01(1, 2, 3));
/// assert!((0.0..1.0).contains(&a));
/// ```
pub fn hash01(seed: u64, stream: u64, bucket: u64) -> f64 {
    hash01_finish(hash01_stream_key(seed, stream), hash01_bucket_term(bucket))
}

/// The `(seed, stream)` half of [`hash01`]'s input mixing.
///
/// A load that hashes many streams against the same bucket (or the same
/// stream against many buckets) can precompute its keys once and combine
/// them with [`hash01_bucket_term`] via [`hash01_finish`]; the result is
/// bit-for-bit identical to calling [`hash01`].
#[inline]
pub fn hash01_stream_key(seed: u64, stream: u64) -> u64 {
    seed ^ stream.wrapping_mul(0xA24B_AED4_963E_E407)
}

/// The bucket half of [`hash01`]'s input mixing; see [`hash01_stream_key`].
#[inline]
pub fn hash01_bucket_term(bucket: u64) -> u64 {
    bucket.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Finalizes a [`hash01_stream_key`] / [`hash01_bucket_term`] pair into the
/// same uniform `[0, 1)` value [`hash01`] produces.
#[inline]
pub fn hash01_finish(stream_key: u64, bucket_term: u64) -> f64 {
    let mut z = stream_key ^ bucket_term;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // `z >> 11` fits in 53 bits, so the signed cast converts the same
    // value — and i64 -> f64 is a single instruction on x86-64, where the
    // unsigned conversion lowers to a multi-op sequence. This finisher
    // runs once per (group, bucket) in every conversion's jitter walk.
    ((z >> 11) as i64) as f64 / (1u64 << 53) as f64
}

/// Deterministic stateless standard-normal hash of a `(seed, stream,
/// bucket)` triple — the Gaussian counterpart of [`hash01`].
///
/// Box-Muller over two adjacent [`hash01`] buckets (`2*bucket` and
/// `2*bucket + 1`), so distinct buckets draw from disjoint uniforms and
/// the same query always returns the same answer regardless of query
/// order. Defense layers use this to inject per-window noise that is a
/// pure function of the window index.
///
/// # Examples
///
/// ```
/// let z = zynq_soc::hash_gauss(1, 2, 3);
/// assert_eq!(z, zynq_soc::hash_gauss(1, 2, 3));
/// assert!(z.is_finite());
/// ```
pub fn hash_gauss(seed: u64, stream: u64, bucket: u64) -> f64 {
    let u1 = hash01(seed, stream, bucket.wrapping_mul(2)).max(f64::MIN_POSITIVE);
    let u2 = hash01(seed, stream, bucket.wrapping_mul(2).wrapping_add(1));
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Deterministic Gaussian noise source (Box-Muller over a seeded PRNG).
///
/// Every stochastic component of the platform (ADC noise, thermal drift,
/// scheduler jitter, per-instance process variation) owns one of these, so
/// an experiment is exactly reproducible from its seed.
///
/// # Examples
///
/// ```
/// use zynq_soc::GaussianNoise;
///
/// let mut a = GaussianNoise::new(42);
/// let mut b = GaussianNoise::new(42);
/// assert_eq!(a.sample(0.0, 1.0), b.sample(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct GaussianNoise {
    rng: SimRng,
    cached: Option<f64>,
}

impl GaussianNoise {
    /// Creates a noise source from a seed.
    pub fn new(seed: u64) -> Self {
        GaussianNoise {
            rng: SimRng::seed_from_u64(seed),
            cached: None,
        }
    }

    /// Draws one sample from `N(mean, std_dev^2)`.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn sample(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.standard()
    }

    /// Draws one standard-normal sample.
    pub fn standard(&mut self) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        // Box-Muller transform: two uniforms -> two independent normals.
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draws a uniform sample from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    /// Draws a uniform integer from `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_hash_equals_composed_hash() {
        // The staged form exists so hot loops can hoist the per-stream and
        // per-bucket halves; it must be the same function bit for bit.
        for (seed, stream, bucket) in [
            (0, 0, 0),
            (1, 2, 3),
            (42, 159, u64::MAX),
            (u64::MAX, 7, 100),
        ] {
            assert_eq!(
                hash01(seed, stream, bucket).to_bits(),
                hash01_finish(hash01_stream_key(seed, stream), hash01_bucket_term(bucket))
                    .to_bits()
            );
        }
    }

    #[test]
    fn hash_gauss_is_stateless_and_plausibly_normal() {
        assert_eq!(
            hash_gauss(9, 4, 100).to_bits(),
            hash_gauss(9, 4, 100).to_bits()
        );
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|b| hash_gauss(123, 7, b)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
        // Adjacent buckets must not share uniforms.
        assert_ne!(hash_gauss(1, 1, 10), hash_gauss(1, 1, 11));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = GaussianNoise::new(7);
        let mut b = GaussianNoise::new(7);
        for _ in 0..100 {
            assert_eq!(a.standard(), b.standard());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = GaussianNoise::new(1);
        let mut b = GaussianNoise::new(2);
        let same = (0..10).filter(|_| a.standard() == b.standard()).count();
        assert!(same < 10);
    }

    #[test]
    fn sample_statistics_are_plausible() {
        let mut g = GaussianNoise::new(123);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| g.sample(5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn zero_std_returns_mean() {
        let mut g = GaussianNoise::new(3);
        assert_eq!(g.sample(1.5, 0.0), 1.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_std_panics() {
        let mut g = GaussianNoise::new(3);
        let _ = g.sample(0.0, -1.0);
    }

    sim_rt::prop_check! {
        fn uniform_respects_bounds(seed in 0u64..1000, lo in -10.0f64..0.0, width in 0.1f64..10.0) {
            let mut g = GaussianNoise::new(seed);
            let hi = lo + width;
            for _ in 0..20 {
                let x = g.uniform(lo, hi);
                assert!(x >= lo && x < hi);
            }
        }

        fn below_respects_bound(seed in 0u64..1000, n in 1usize..100) {
            let mut g = GaussianNoise::new(seed);
            for _ in 0..20 {
                assert!(g.below(n) < n);
            }
        }
    }
}
