use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{PowerDomain, SimTime};

/// Process-global generation counter for load-control state.
///
/// Operating-point caches key their entries by `(domain, t)` and a snapshot
/// of this epoch; any control-state change (virus group activation, RSA
/// start/stop, DPU model load, a new load attached to a rail) bumps it via
/// [`invalidate_load_caches`], instantly invalidating every cached entry
/// without the mutator having to know which caches exist.
static LOAD_CONTROL_EPOCH: AtomicU64 = AtomicU64::new(0);

/// Current load-control epoch. Snapshot it *before* evaluating loads, and
/// tag cache entries with the snapshot so a concurrent control change can
/// only ever invalidate, never resurrect, an entry.
pub fn load_control_epoch() -> u64 {
    LOAD_CONTROL_EPOCH.load(Ordering::Acquire)
}

/// Invalidates every operating-point cache in the process.
///
/// Every API that changes a load's *control state* (anything that alters
/// the value a future `current_ma(t, d)` call returns for the same `(t, d)`)
/// must call this after the change is visible.
pub fn invalidate_load_caches() {
    LOAD_CONTROL_EPOCH.fetch_add(1, Ordering::AcqRel);
}

/// A component that draws current from the SoC's monitored rails.
///
/// Loads are queried as pure functions of simulation time: given the same
/// `t` they must report the same current (control-state changes such as
/// activating power-virus groups happen *between* electrical evaluations
/// through each load's own API, typically via atomics). This keeps the
/// two-phase solve — loads first, then rail voltage, then sensor ADCs —
/// deterministic and race-free even when an attacker thread samples
/// concurrently.
///
/// Dynamic current follows Equation 2 of the paper:
///
/// ```text
/// P_dyn = V_dd * sum I(LE, RAM, DSP, Clocks, ...)
/// ```
///
/// each load contributes one term of that sum on each domain it touches.
pub trait PowerLoad: Send + Sync {
    /// Current drawn from `domain` at time `t`, in milliamps. Loads that do
    /// not touch `domain` return 0.
    fn current_ma(&self, t: SimTime, domain: PowerDomain) -> f64;

    /// Current at two nearby instants in one call — the transient-aware
    /// sampling fast path (`V = V_set - I*R - L*dI/dt` needs `I` at `t` and
    /// `t - 1 µs` for every averaging step).
    ///
    /// The contract is strict bit-equality with two [`PowerLoad::current_ma`]
    /// calls: implementations may share work between the two instants (most
    /// loads quantize time into activity buckets far coarser than 1 µs, so
    /// both instants usually map to the same internal state), but the
    /// returned pair must be exactly `(current_ma(t_now), current_ma(t_prev))`.
    fn current_ma_pair(&self, t_now: SimTime, t_prev: SimTime, domain: PowerDomain) -> (f64, f64) {
        (
            self.current_ma(t_now, domain),
            self.current_ma(t_prev, domain),
        )
    }

    /// Short human-readable label for diagnostics.
    fn label(&self) -> &str {
        "load"
    }
}

impl<T: PowerLoad + ?Sized> PowerLoad for Arc<T> {
    fn current_ma(&self, t: SimTime, domain: PowerDomain) -> f64 {
        (**self).current_ma(t, domain)
    }

    fn current_ma_pair(&self, t_now: SimTime, t_prev: SimTime, domain: PowerDomain) -> (f64, f64) {
        (**self).current_ma_pair(t_now, t_prev, domain)
    }

    fn label(&self) -> &str {
        (**self).label()
    }
}

/// A fixed current draw on a single domain.
///
/// # Examples
///
/// ```
/// use zynq_soc::{ConstantLoad, PowerDomain, PowerLoad, SimTime};
///
/// let idle = ConstantLoad::new(PowerDomain::Ddr, 120.0);
/// assert_eq!(idle.current_ma(SimTime::ZERO, PowerDomain::Ddr), 120.0);
/// assert_eq!(idle.current_ma(SimTime::ZERO, PowerDomain::FpgaLogic), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ConstantLoad {
    domain: PowerDomain,
    current_ma: f64,
    label: String,
}

impl ConstantLoad {
    /// Creates a constant load of `current_ma` milliamps on `domain`.
    ///
    /// # Panics
    ///
    /// Panics if `current_ma` is negative.
    pub fn new(domain: PowerDomain, current_ma: f64) -> Self {
        assert!(current_ma >= 0.0, "current must be non-negative");
        ConstantLoad {
            domain,
            current_ma,
            label: format!("constant({domain})"),
        }
    }
}

impl PowerLoad for ConstantLoad {
    fn current_ma(&self, _t: SimTime, domain: PowerDomain) -> f64 {
        if domain == self.domain {
            self.current_ma
        } else {
            0.0
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// Static (leakage) current of deployed-but-inactive fabric logic, with a
/// slow thermal drift.
///
/// The paper notes that "current measurements do not start from 0" because
/// inactive power-virus instances still leak (static workloads, Moradi
/// CHES'14). Leakage rises with die temperature; we model the drift as a
/// pair of slow deterministic oscillations (self-heating and ambient), so
/// long captures show realistic wander without breaking reproducibility.
///
/// # Examples
///
/// ```
/// use zynq_soc::{PowerDomain, PowerLoad, SimTime, StaticFabricLoad};
///
/// let leak = StaticFabricLoad::new(600.0, 7);
/// let i = leak.current_ma(SimTime::from_secs(1), PowerDomain::FpgaLogic);
/// assert!((i - 600.0).abs() < 600.0 * 0.02); // within the +/-1% drift
/// ```
#[derive(Debug, Clone)]
pub struct StaticFabricLoad {
    base_ma: f64,
    phase_a: f64,
    phase_b: f64,
}

impl StaticFabricLoad {
    /// Relative amplitude of each drift component.
    const DRIFT_AMPLITUDE: f64 = 0.005;
    /// Periods of the two drift components in seconds.
    const PERIOD_A_S: f64 = 41.0;
    const PERIOD_B_S: f64 = 173.0;

    /// Creates a static fabric load of `base_ma` milliamps; `seed` fixes
    /// the drift phases.
    ///
    /// # Panics
    ///
    /// Panics if `base_ma` is negative.
    pub fn new(base_ma: f64, seed: u64) -> Self {
        assert!(base_ma >= 0.0, "current must be non-negative");
        // Derive two deterministic phases from the seed (splitmix-style).
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9) ^ (z >> 27);
            (z % 10_000) as f64 / 10_000.0 * std::f64::consts::TAU
        };
        StaticFabricLoad {
            base_ma,
            phase_a: next(),
            phase_b: next(),
        }
    }

    /// The nominal leakage at the reference temperature.
    pub fn base_ma(&self) -> f64 {
        self.base_ma
    }
}

impl PowerLoad for StaticFabricLoad {
    fn current_ma(&self, t: SimTime, domain: PowerDomain) -> f64 {
        if domain != PowerDomain::FpgaLogic {
            return 0.0;
        }
        let s = t.as_secs_f64();
        let drift = Self::DRIFT_AMPLITUDE
            * ((std::f64::consts::TAU * s / Self::PERIOD_A_S + self.phase_a).sin()
                + (std::f64::consts::TAU * s / Self::PERIOD_B_S + self.phase_b).sin());
        self.base_ma * (1.0 + drift)
    }

    fn label(&self) -> &str {
        "static-fabric"
    }
}

/// Sum of several loads, itself a load.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use zynq_soc::{CompositeLoad, ConstantLoad, PowerDomain, PowerLoad, SimTime};
///
/// let mut rail = CompositeLoad::new();
/// rail.push(Arc::new(ConstantLoad::new(PowerDomain::FpgaLogic, 100.0)));
/// rail.push(Arc::new(ConstantLoad::new(PowerDomain::FpgaLogic, 50.0)));
/// assert_eq!(rail.current_ma(SimTime::ZERO, PowerDomain::FpgaLogic), 150.0);
/// ```
#[derive(Clone, Default)]
pub struct CompositeLoad {
    parts: Vec<Arc<dyn PowerLoad>>,
}

impl CompositeLoad {
    /// Creates an empty composite (draws zero current).
    pub fn new() -> Self {
        CompositeLoad { parts: Vec::new() }
    }

    /// Adds a component load.
    pub fn push(&mut self, load: Arc<dyn PowerLoad>) {
        self.parts.push(load);
    }

    /// Number of component loads.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether the composite has no components.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Iterates over the component loads.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn PowerLoad>> {
        self.parts.iter()
    }
}

impl std::fmt::Debug for CompositeLoad {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompositeLoad")
            .field(
                "parts",
                &self.parts.iter().map(|p| p.label()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl PowerLoad for CompositeLoad {
    fn current_ma(&self, t: SimTime, domain: PowerDomain) -> f64 {
        self.parts.iter().map(|p| p.current_ma(t, domain)).sum()
    }

    /// Single traversal of the parts for both instants.
    ///
    /// The two sums accumulate separately, each in part order, so the result
    /// is bit-identical to two independent [`CompositeLoad::current_ma`]
    /// walks — while paying the vec traversal (and each part's shared
    /// bucket lookup) only once.
    fn current_ma_pair(&self, t_now: SimTime, t_prev: SimTime, domain: PowerDomain) -> (f64, f64) {
        let mut i_now = 0.0;
        let mut i_prev = 0.0;
        for p in &self.parts {
            let (a, b) = p.current_ma_pair(t_now, t_prev, domain);
            i_now += a;
            i_prev += b;
        }
        (i_now, i_prev)
    }

    fn label(&self) -> &str {
        "composite"
    }
}

impl FromIterator<Arc<dyn PowerLoad>> for CompositeLoad {
    fn from_iter<I: IntoIterator<Item = Arc<dyn PowerLoad>>>(iter: I) -> Self {
        CompositeLoad {
            parts: iter.into_iter().collect(),
        }
    }
}

impl Extend<Arc<dyn PowerLoad>> for CompositeLoad {
    fn extend<I: IntoIterator<Item = Arc<dyn PowerLoad>>>(&mut self, iter: I) {
        self.parts.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_load_only_on_its_domain() {
        let l = ConstantLoad::new(PowerDomain::FullPowerCpu, 250.0);
        for d in PowerDomain::ALL {
            let expect = if d == PowerDomain::FullPowerCpu {
                250.0
            } else {
                0.0
            };
            assert_eq!(l.current_ma(SimTime::from_ms(5), d), expect);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn constant_load_rejects_negative() {
        let _ = ConstantLoad::new(PowerDomain::Ddr, -1.0);
    }

    #[test]
    fn static_load_is_deterministic_and_bounded() {
        let a = StaticFabricLoad::new(600.0, 42);
        let b = StaticFabricLoad::new(600.0, 42);
        for ms in (0..10_000).step_by(137) {
            let t = SimTime::from_ms(ms);
            let ia = a.current_ma(t, PowerDomain::FpgaLogic);
            assert_eq!(ia, b.current_ma(t, PowerDomain::FpgaLogic));
            assert!((ia - 600.0).abs() <= 600.0 * 0.0101);
        }
    }

    #[test]
    fn static_load_actually_drifts() {
        let l = StaticFabricLoad::new(600.0, 1);
        let i0 = l.current_ma(SimTime::ZERO, PowerDomain::FpgaLogic);
        let i1 = l.current_ma(SimTime::from_secs(20), PowerDomain::FpgaLogic);
        assert_ne!(i0, i1);
    }

    #[test]
    fn static_load_silent_on_other_domains() {
        let l = StaticFabricLoad::new(600.0, 1);
        assert_eq!(l.current_ma(SimTime::ZERO, PowerDomain::Ddr), 0.0);
    }

    #[test]
    fn composite_sums_components() {
        let mut c = CompositeLoad::new();
        assert!(c.is_empty());
        c.push(Arc::new(ConstantLoad::new(PowerDomain::FpgaLogic, 10.0)));
        c.push(Arc::new(ConstantLoad::new(PowerDomain::FpgaLogic, 20.0)));
        c.push(Arc::new(ConstantLoad::new(PowerDomain::Ddr, 5.0)));
        assert_eq!(c.len(), 3);
        assert_eq!(c.current_ma(SimTime::ZERO, PowerDomain::FpgaLogic), 30.0);
        assert_eq!(c.current_ma(SimTime::ZERO, PowerDomain::Ddr), 5.0);
        assert_eq!(c.current_ma(SimTime::ZERO, PowerDomain::LowPowerCpu), 0.0);
    }

    #[test]
    fn composite_collects_from_iterator() {
        let loads: Vec<Arc<dyn PowerLoad>> = vec![
            Arc::new(ConstantLoad::new(PowerDomain::Ddr, 1.0)),
            Arc::new(ConstantLoad::new(PowerDomain::Ddr, 2.0)),
        ];
        let c: CompositeLoad = loads.into_iter().collect();
        assert_eq!(c.current_ma(SimTime::ZERO, PowerDomain::Ddr), 3.0);
    }

    #[test]
    fn loads_are_object_safe_and_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompositeLoad>();
        assert_send_sync::<Arc<dyn PowerLoad>>();
    }

    #[test]
    fn epoch_moves_only_on_invalidation() {
        let a = crate::load_control_epoch();
        let b = crate::load_control_epoch();
        assert_eq!(a, b);
        crate::invalidate_load_caches();
        assert!(crate::load_control_epoch() > a);
    }

    sim_rt::prop_check! {
        /// The transient-pair walk must be bit-identical to two independent
        /// walks, at any instant — including bucket boundaries of the
        /// sub-loads, where the shared-evaluation shortcut must not apply.
        fn pair_walk_matches_two_walks(ns in 0u64..10_000_000_000u64) {
            let mut c = CompositeLoad::new();
            c.push(Arc::new(StaticFabricLoad::new(480.0, 3)));
            c.push(Arc::new(crate::cpu::CpuBackgroundLoad::new(
                crate::cpu::CpuActivityConfig::default(),
                4,
            )));
            c.push(Arc::new(ConstantLoad::new(PowerDomain::Ddr, 140.0)));
            let t_now = SimTime::from_nanos(ns);
            let t_prev = t_now.saturating_sub(SimTime::from_us(1));
            for d in PowerDomain::ALL {
                let (a, b) = c.current_ma_pair(t_now, t_prev, d);
                assert_eq!(a.to_bits(), c.current_ma(t_now, d).to_bits());
                assert_eq!(b.to_bits(), c.current_ma(t_prev, d).to_bits());
            }
        }

        fn composite_sum_matches_manual(
            currents in sim_rt::check::vec_of(0.0f64..1e4, 0..10)
        ) {
            let mut c = CompositeLoad::new();
            for &i in &currents {
                c.push(Arc::new(ConstantLoad::new(PowerDomain::FpgaLogic, i)));
            }
            let total: f64 = currents.iter().sum();
            let got = c.current_ma(SimTime::ZERO, PowerDomain::FpgaLogic);
            assert!((got - total).abs() < 1e-9);
        }
    }
}
