use std::fmt;

/// A monitored power domain of the SoC.
///
/// These correspond to the four "sensitive sensors" of Table II on the
/// ZCU102: each domain has a dedicated rail with a shunt resistor and an
/// INA226 monitor exposed through hwmon.
///
/// # Examples
///
/// ```
/// use zynq_soc::PowerDomain;
///
/// let d = PowerDomain::FpgaLogic;
/// assert_eq!(d.ina226_designator(), "ina226_u79");
/// assert_eq!(PowerDomain::ALL.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PowerDomain {
    /// Full-power domain of the ARM processor cores (Cortex-A53 cluster).
    FullPowerCpu,
    /// Low-power domain of the ARM processor cores (RPU, OCM, peripherals).
    LowPowerCpu,
    /// FPGA programmable-logic and processing elements.
    FpgaLogic,
    /// DDR memory subsystem.
    Ddr,
}

impl PowerDomain {
    /// All monitored domains, in Table II order.
    pub const ALL: [PowerDomain; 4] = [
        PowerDomain::FullPowerCpu,
        PowerDomain::LowPowerCpu,
        PowerDomain::FpgaLogic,
        PowerDomain::Ddr,
    ];

    /// Board designator of the INA226 sensor monitoring this domain on the
    /// ZCU102 (Table II).
    pub fn ina226_designator(self) -> &'static str {
        match self {
            PowerDomain::FullPowerCpu => "ina226_u76",
            PowerDomain::LowPowerCpu => "ina226_u77",
            PowerDomain::FpgaLogic => "ina226_u79",
            PowerDomain::Ddr => "ina226_u93",
        }
    }

    /// Human-readable description as given in Table II.
    pub fn description(self) -> &'static str {
        match self {
            PowerDomain::FullPowerCpu => {
                "current, voltage, and power for full-power domain of the ARM processor cores"
            }
            PowerDomain::LowPowerCpu => {
                "current, voltage, and power for low-power domain of the ARM processor cores"
            }
            PowerDomain::FpgaLogic => {
                "current, voltage, and power for FPGA's logic and processing elements"
            }
            PowerDomain::Ddr => "current, voltage, and power for DDR memory",
        }
    }

    /// Short label used in experiment tables ("FPGA", "DRAM", ...).
    pub fn short_label(self) -> &'static str {
        match self {
            PowerDomain::FullPowerCpu => "Full-power CPU",
            PowerDomain::LowPowerCpu => "Low-power CPU",
            PowerDomain::FpgaLogic => "FPGA",
            PowerDomain::Ddr => "DRAM",
        }
    }
}

impl fmt::Display for PowerDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn designators_match_table_two() {
        assert_eq!(PowerDomain::FullPowerCpu.ina226_designator(), "ina226_u76");
        assert_eq!(PowerDomain::LowPowerCpu.ina226_designator(), "ina226_u77");
        assert_eq!(PowerDomain::FpgaLogic.ina226_designator(), "ina226_u79");
        assert_eq!(PowerDomain::Ddr.ina226_designator(), "ina226_u93");
    }

    #[test]
    fn all_domains_unique() {
        for (i, a) in PowerDomain::ALL.iter().enumerate() {
            for b in &PowerDomain::ALL[i + 1..] {
                assert_ne!(a, b);
                assert_ne!(a.ina226_designator(), b.ina226_designator());
            }
        }
    }

    #[test]
    fn display_uses_short_label() {
        assert_eq!(PowerDomain::FpgaLogic.to_string(), "FPGA");
        assert_eq!(PowerDomain::Ddr.to_string(), "DRAM");
    }

    #[test]
    fn descriptions_are_nonempty() {
        for d in PowerDomain::ALL {
            assert!(!d.description().is_empty());
        }
    }
}
