//! Background activity of the ARM processor cores.
//!
//! The attacker process and the victim's trigger task run on the SoC's ARM
//! cores alongside the OS (the paper pins the DPU trigger to core 0 and the
//! sampler to core 3 to limit scheduling interference). This module models
//! the resulting baseline current on the CPU power domains: a per-core idle
//! floor plus bursty, scheduler-quantized activity.
//!
//! The burst pattern is a pure function of `(seed, core, time bucket)` so
//! the electrical solve stays deterministic and replayable.

use crate::{PowerDomain, PowerLoad, SimTime};

/// Configuration of the CPU background-activity model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuActivityConfig {
    /// Number of application cores (4 on the ZCU102's Cortex-A53 cluster).
    pub core_count: u32,
    /// Idle current per core on the full-power domain, in mA.
    pub idle_ma_per_core: f64,
    /// Additional current of one fully busy core, in mA.
    pub busy_ma_per_core: f64,
    /// Scheduler quantum in microseconds (activity changes per quantum).
    pub quantum_us: u64,
    /// Probability that a core is running OS background work in a quantum.
    pub background_utilization: f64,
    /// Constant current on the low-power domain (RPU/OCM/peripherals), mA.
    pub low_power_base_ma: f64,
}

impl Default for CpuActivityConfig {
    fn default() -> Self {
        CpuActivityConfig {
            core_count: 4,
            idle_ma_per_core: 80.0,
            busy_ma_per_core: 130.0,
            quantum_us: 10_000, // 10 ms CFS-scale quantum
            background_utilization: 0.045,
            low_power_base_ma: 110.0,
        }
    }
}

/// Background OS load on the CPU power domains.
///
/// # Examples
///
/// ```
/// use zynq_soc::cpu::{CpuActivityConfig, CpuBackgroundLoad};
/// use zynq_soc::{PowerDomain, PowerLoad, SimTime};
///
/// let cpu = CpuBackgroundLoad::new(CpuActivityConfig::default(), 11);
/// let i = cpu.current_ma(SimTime::from_ms(100), PowerDomain::FullPowerCpu);
/// assert!(i >= 4.0 * 80.0); // at least the idle floor of 4 cores
/// ```
#[derive(Debug, Clone)]
pub struct CpuBackgroundLoad {
    config: CpuActivityConfig,
    seed: u64,
}

impl CpuBackgroundLoad {
    /// Creates a background load with the given configuration and seed.
    ///
    /// # Panics
    ///
    /// Panics if `core_count == 0`, `quantum_us == 0`, or
    /// `background_utilization` is outside `[0, 1]`.
    pub fn new(config: CpuActivityConfig, seed: u64) -> Self {
        assert!(config.core_count > 0, "core count must be non-zero");
        assert!(config.quantum_us > 0, "quantum must be non-zero");
        assert!(
            (0.0..=1.0).contains(&config.background_utilization),
            "utilization must be in [0, 1]"
        );
        CpuBackgroundLoad { config, seed }
    }

    /// The configuration this load was built with.
    pub fn config(&self) -> &CpuActivityConfig {
        &self.config
    }

    /// Whether `core` is running background work during the quantum that
    /// contains `t`.
    pub fn core_busy(&self, t: SimTime, core: u32) -> bool {
        let bucket = t.as_micros() / self.config.quantum_us;
        crate::hash01(self.seed, core as u64, bucket) < self.config.background_utilization
    }
}

impl PowerLoad for CpuBackgroundLoad {
    fn current_ma(&self, t: SimTime, domain: PowerDomain) -> f64 {
        match domain {
            PowerDomain::FullPowerCpu => {
                let mut total = self.config.core_count as f64 * self.config.idle_ma_per_core;
                for core in 0..self.config.core_count {
                    if self.core_busy(t, core) {
                        total += self.config.busy_ma_per_core;
                    }
                }
                total
            }
            PowerDomain::LowPowerCpu => {
                // Low-power domain activity is loosely coupled to OS load:
                // peripheral DMA and OCM traffic add a small modulated term.
                let bucket = t.as_micros() / self.config.quantum_us;
                let wiggle = crate::hash01(self.seed ^ 0x5bd1, 255, bucket);
                self.config.low_power_base_ma * (1.0 + 0.03 * wiggle)
            }
            _ => 0.0,
        }
    }

    /// Activity is constant within a scheduler quantum (10 ms by default),
    /// so two instants 1 µs apart almost always see the same busy set —
    /// evaluate once and return the value for both.
    fn current_ma_pair(&self, t_now: SimTime, t_prev: SimTime, domain: PowerDomain) -> (f64, f64) {
        let q = self.config.quantum_us;
        if t_now.as_micros() / q == t_prev.as_micros() / q {
            let i = self.current_ma(t_now, domain);
            (i, i)
        } else {
            (
                self.current_ma(t_now, domain),
                self.current_ma(t_prev, domain),
            )
        }
    }

    fn label(&self) -> &str {
        "cpu-background"
    }
}

/// A pinned task that keeps one core busy for a time interval, drawing
/// extra current on the full-power domain — e.g. the victim's DPU-trigger
/// process on core 0 or the attacker's sampler on core 3.
///
/// # Examples
///
/// ```
/// use zynq_soc::cpu::PinnedTaskLoad;
/// use zynq_soc::{PowerDomain, PowerLoad, SimTime};
///
/// let task = PinnedTaskLoad::new(0, SimTime::ZERO, SimTime::from_secs(5), 150.0);
/// assert_eq!(task.current_ma(SimTime::from_secs(1), PowerDomain::FullPowerCpu), 150.0);
/// assert_eq!(task.current_ma(SimTime::from_secs(6), PowerDomain::FullPowerCpu), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PinnedTaskLoad {
    core: u32,
    start: SimTime,
    end: SimTime,
    active_ma: f64,
}

impl PinnedTaskLoad {
    /// Creates a task pinned to `core` running in `[start, end)` and
    /// drawing `active_ma` while running.
    ///
    /// # Panics
    ///
    /// Panics if `end < start` or `active_ma` is negative.
    pub fn new(core: u32, start: SimTime, end: SimTime, active_ma: f64) -> Self {
        assert!(end >= start, "task must end after it starts");
        assert!(active_ma >= 0.0, "current must be non-negative");
        PinnedTaskLoad {
            core,
            start,
            end,
            active_ma,
        }
    }

    /// The core this task is pinned to.
    pub fn core(&self) -> u32 {
        self.core
    }
}

impl PowerLoad for PinnedTaskLoad {
    fn current_ma(&self, t: SimTime, domain: PowerDomain) -> f64 {
        if domain == PowerDomain::FullPowerCpu && t >= self.start && t < self.end {
            self.active_ma
        } else {
            0.0
        }
    }

    fn label(&self) -> &str {
        "pinned-task"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_floor_is_respected() {
        let cpu = CpuBackgroundLoad::new(CpuActivityConfig::default(), 3);
        for ms in (0..1000).step_by(37) {
            let i = cpu.current_ma(SimTime::from_ms(ms), PowerDomain::FullPowerCpu);
            assert!(i >= 320.0);
            assert!(i <= 320.0 + 4.0 * 170.0);
        }
    }

    #[test]
    fn background_bursts_occur_at_configured_rate() {
        let config = CpuActivityConfig {
            background_utilization: 0.25,
            ..CpuActivityConfig::default()
        };
        let cpu = CpuBackgroundLoad::new(config, 9);
        let mut busy = 0usize;
        let mut total = 0usize;
        for q in 0..4_000u64 {
            let t = SimTime::from_us(q * config.quantum_us + 1);
            for core in 0..4 {
                total += 1;
                if cpu.core_busy(t, core) {
                    busy += 1;
                }
            }
        }
        let rate = busy as f64 / total as f64;
        assert!((rate - 0.25).abs() < 0.03, "burst rate {rate}");
    }

    #[test]
    fn activity_is_stable_within_a_quantum() {
        let cpu = CpuBackgroundLoad::new(CpuActivityConfig::default(), 5);
        let base = SimTime::from_ms(40);
        let a = cpu.core_busy(base, 1);
        let b = cpu.core_busy(base + SimTime::from_us(9_999), 1);
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_across_instances() {
        let a = CpuBackgroundLoad::new(CpuActivityConfig::default(), 77);
        let b = CpuBackgroundLoad::new(CpuActivityConfig::default(), 77);
        for ms in (0..500).step_by(13) {
            let t = SimTime::from_ms(ms);
            assert_eq!(
                a.current_ma(t, PowerDomain::FullPowerCpu),
                b.current_ma(t, PowerDomain::FullPowerCpu)
            );
        }
    }

    #[test]
    fn low_power_domain_is_modulated_but_small() {
        let cpu = CpuBackgroundLoad::new(CpuActivityConfig::default(), 4);
        let mut values = Vec::new();
        for ms in (0..2_000).step_by(10) {
            values.push(cpu.current_ma(SimTime::from_ms(ms), PowerDomain::LowPowerCpu));
        }
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(min >= 110.0);
        assert!(max <= 110.0 * 1.031);
        assert!(max > min, "low-power current must be modulated");
    }

    #[test]
    fn config_validation() {
        let c = CpuActivityConfig {
            core_count: 0,
            ..CpuActivityConfig::default()
        };
        assert!(std::panic::catch_unwind(|| CpuBackgroundLoad::new(c, 0)).is_err());
        let c = CpuActivityConfig {
            background_utilization: 1.5,
            ..CpuActivityConfig::default()
        };
        assert!(std::panic::catch_unwind(|| CpuBackgroundLoad::new(c, 0)).is_err());
    }

    #[test]
    fn pinned_task_window() {
        let t = PinnedTaskLoad::new(0, SimTime::from_ms(10), SimTime::from_ms(20), 100.0);
        assert_eq!(
            t.current_ma(SimTime::from_ms(5), PowerDomain::FullPowerCpu),
            0.0
        );
        assert_eq!(
            t.current_ma(SimTime::from_ms(15), PowerDomain::FullPowerCpu),
            100.0
        );
        assert_eq!(
            t.current_ma(SimTime::from_ms(20), PowerDomain::FullPowerCpu),
            0.0
        );
        assert_eq!(t.current_ma(SimTime::from_ms(15), PowerDomain::Ddr), 0.0);
        assert_eq!(t.core(), 0);
    }

    #[test]
    #[should_panic(expected = "end after")]
    fn pinned_task_rejects_inverted_window() {
        let _ = PinnedTaskLoad::new(0, SimTime::from_ms(2), SimTime::from_ms(1), 1.0);
    }

    sim_rt::prop_check! {
        fn bucket_noise_is_uniform_ish(seed in 0u64..100) {
            let n = 2_000u64;
            let mean: f64 = (0..n).map(|b| crate::hash01(seed, 0, b)).sum::<f64>() / n as f64;
            assert!((mean - 0.5).abs() < 0.05);
        }

        fn current_never_negative(seed in 0u64..50, ms in 0u64..100_000) {
            let cpu = CpuBackgroundLoad::new(CpuActivityConfig::default(), seed);
            for d in PowerDomain::ALL {
                assert!(cpu.current_ma(SimTime::from_ms(ms), d) >= 0.0);
            }
        }
    }
}
