//! Dynamic voltage and frequency scaling (cpufreq) for the ARM cluster.
//!
//! The paper keeps "dynamic voltage and frequency scaling (DVFS) policies
//! ... by default", i.e. the `performance`-like governor of the PetaLinux
//! image. This module models the cpufreq machinery so the reproduction can
//! also explore non-default policies: an `ondemand` governor that follows
//! load changes the CPU rail's current signature (current scales with
//! `f * V^2` to first order), which interacts with the full-power-CPU
//! fingerprinting channel of Table III.

use crate::cpu::CpuBackgroundLoad;
use crate::{PowerDomain, PowerLoad, SimTime};

/// One operating performance point (OPP) of the cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Core clock in MHz.
    pub freq_mhz: u32,
    /// Core voltage in volts.
    pub volts: f64,
}

/// cpufreq governor policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Governor {
    /// Always the highest OPP (the PetaLinux default behaviour).
    Performance,
    /// Always the lowest OPP.
    Powersave,
    /// Highest OPP when recent utilization exceeds the threshold,
    /// otherwise the lowest — a two-point `ondemand` approximation.
    Ondemand {
        /// Busy-fraction threshold in `[0, 1]` that triggers the boost.
        up_threshold: f64,
    },
}

/// Configuration of the DVFS model.
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsConfig {
    /// Available OPPs, ascending by frequency.
    pub opps: Vec<OperatingPoint>,
    /// Active governor.
    pub governor: Governor,
}

impl Default for DvfsConfig {
    fn default() -> Self {
        DvfsConfig {
            // ZCU102 Cortex-A53 OPP table (PetaLinux device tree).
            opps: vec![
                OperatingPoint {
                    freq_mhz: 300,
                    volts: 0.76,
                },
                OperatingPoint {
                    freq_mhz: 600,
                    volts: 0.80,
                },
                OperatingPoint {
                    freq_mhz: 1_200,
                    volts: 0.85,
                },
            ],
            governor: Governor::Performance,
        }
    }
}

impl DvfsConfig {
    /// The highest OPP.
    ///
    /// # Panics
    ///
    /// Panics if the OPP table is empty (checked at load construction).
    pub fn max_opp(&self) -> OperatingPoint {
        *self.opps.last().expect("non-empty OPP table")
    }

    /// The lowest OPP.
    pub fn min_opp(&self) -> OperatingPoint {
        *self.opps.first().expect("non-empty OPP table")
    }
}

/// A CPU background load whose current scales with the governor-selected
/// operating point.
///
/// # Examples
///
/// ```
/// use zynq_soc::cpu::{CpuActivityConfig, CpuBackgroundLoad};
/// use zynq_soc::dvfs::{DvfsConfig, DvfsCpuLoad, Governor};
/// use zynq_soc::{PowerDomain, PowerLoad, SimTime};
///
/// let base = CpuBackgroundLoad::new(CpuActivityConfig::default(), 1);
/// let perf = DvfsCpuLoad::new(base.clone(), DvfsConfig::default());
/// let save = DvfsCpuLoad::new(base, DvfsConfig {
///     governor: Governor::Powersave,
///     ..DvfsConfig::default()
/// });
/// let t = SimTime::from_ms(50);
/// assert!(perf.current_ma(t, PowerDomain::FullPowerCpu)
///     > save.current_ma(t, PowerDomain::FullPowerCpu));
/// ```
#[derive(Debug, Clone)]
pub struct DvfsCpuLoad {
    inner: CpuBackgroundLoad,
    config: DvfsConfig,
}

impl DvfsCpuLoad {
    /// Wraps a background load with a DVFS policy.
    ///
    /// # Panics
    ///
    /// Panics if the OPP table is empty or not ascending in frequency.
    pub fn new(inner: CpuBackgroundLoad, config: DvfsConfig) -> Self {
        assert!(!config.opps.is_empty(), "OPP table must be non-empty");
        assert!(
            config
                .opps
                .windows(2)
                .all(|w| w[0].freq_mhz < w[1].freq_mhz),
            "OPP table must be ascending"
        );
        DvfsCpuLoad { inner, config }
    }

    /// The DVFS configuration.
    pub fn config(&self) -> &DvfsConfig {
        &self.config
    }

    /// Cluster utilization during the scheduler quantum containing `t`
    /// (fraction of cores running background work).
    pub fn utilization_at(&self, t: SimTime) -> f64 {
        let cores = self.inner.config().core_count;
        let busy = (0..cores).filter(|&c| self.inner.core_busy(t, c)).count();
        busy as f64 / cores as f64
    }

    /// The OPP the governor selects at `t`.
    pub fn opp_at(&self, t: SimTime) -> OperatingPoint {
        match self.config.governor {
            Governor::Performance => self.config.max_opp(),
            Governor::Powersave => self.config.min_opp(),
            Governor::Ondemand { up_threshold } => {
                if self.utilization_at(t) >= up_threshold {
                    self.config.max_opp()
                } else {
                    self.config.min_opp()
                }
            }
        }
    }

    /// Dynamic-current scale factor of an OPP relative to the highest
    /// (`I ~ C * V * f`, since `P = C * V^2 * f` and `I = P / V`).
    fn scale(&self, opp: OperatingPoint) -> f64 {
        let max = self.config.max_opp();
        (opp.freq_mhz as f64 / max.freq_mhz as f64) * (opp.volts / max.volts)
    }
}

impl PowerLoad for DvfsCpuLoad {
    fn current_ma(&self, t: SimTime, domain: PowerDomain) -> f64 {
        let base = self.inner.current_ma(t, domain);
        if domain == PowerDomain::FullPowerCpu {
            base * self.scale(self.opp_at(t))
        } else {
            base
        }
    }

    fn label(&self) -> &str {
        "cpu-dvfs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuActivityConfig;

    fn base(seed: u64) -> CpuBackgroundLoad {
        CpuBackgroundLoad::new(CpuActivityConfig::default(), seed)
    }

    #[test]
    fn performance_governor_runs_flat_out() {
        let load = DvfsCpuLoad::new(base(1), DvfsConfig::default());
        for ms in (0..500).step_by(50) {
            assert_eq!(load.opp_at(SimTime::from_ms(ms)).freq_mhz, 1_200);
        }
    }

    #[test]
    fn powersave_governor_stays_low() {
        let load = DvfsCpuLoad::new(
            base(1),
            DvfsConfig {
                governor: Governor::Powersave,
                ..DvfsConfig::default()
            },
        );
        assert_eq!(load.opp_at(SimTime::from_ms(5)).freq_mhz, 300);
    }

    #[test]
    fn ondemand_tracks_utilization() {
        // High utilization config so boosts actually happen.
        let busy_cpu = CpuBackgroundLoad::new(
            CpuActivityConfig {
                background_utilization: 0.7,
                ..CpuActivityConfig::default()
            },
            3,
        );
        let load = DvfsCpuLoad::new(
            busy_cpu,
            DvfsConfig {
                governor: Governor::Ondemand { up_threshold: 0.5 },
                ..DvfsConfig::default()
            },
        );
        let mut boosted = 0;
        let mut low = 0;
        for q in 0..200u64 {
            let t = SimTime::from_ms(q * 10 + 1);
            match load.opp_at(t).freq_mhz {
                1_200 => boosted += 1,
                300 => low += 1,
                other => panic!("unexpected OPP {other}"),
            }
        }
        assert!(
            boosted > 100,
            "90% busy cluster should mostly boost ({boosted})"
        );
        assert!(low > 0, "occasionally idle quanta drop to the low OPP");
    }

    #[test]
    fn current_scales_with_opp() {
        let t = SimTime::from_ms(77);
        let perf = DvfsCpuLoad::new(base(5), DvfsConfig::default());
        let save = DvfsCpuLoad::new(
            base(5),
            DvfsConfig {
                governor: Governor::Powersave,
                ..DvfsConfig::default()
            },
        );
        let i_perf = perf.current_ma(t, PowerDomain::FullPowerCpu);
        let i_save = save.current_ma(t, PowerDomain::FullPowerCpu);
        let expect_scale = (300.0 / 1200.0) * (0.76 / 0.85);
        assert!((i_save / i_perf - expect_scale).abs() < 1e-9);
    }

    #[test]
    fn other_domains_unscaled() {
        let t = SimTime::from_ms(10);
        let raw = base(6);
        let load = DvfsCpuLoad::new(
            raw.clone(),
            DvfsConfig {
                governor: Governor::Powersave,
                ..DvfsConfig::default()
            },
        );
        assert_eq!(
            load.current_ma(t, PowerDomain::LowPowerCpu),
            raw.current_ma(t, PowerDomain::LowPowerCpu)
        );
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_opp_table_rejected() {
        let _ = DvfsCpuLoad::new(
            base(0),
            DvfsConfig {
                opps: vec![
                    OperatingPoint {
                        freq_mhz: 1_200,
                        volts: 0.85,
                    },
                    OperatingPoint {
                        freq_mhz: 300,
                        volts: 0.76,
                    },
                ],
                governor: Governor::Performance,
            },
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_opp_table_rejected() {
        let _ = DvfsCpuLoad::new(
            base(0),
            DvfsConfig {
                opps: vec![],
                governor: Governor::Performance,
            },
        );
    }
}
