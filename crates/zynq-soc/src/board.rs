//! Evaluation-board catalog (Table I) and per-board sensor inventory
//! (Table II).
//!
//! Table I of the paper surveys 8 representative ARM-FPGA SoC boards across
//! the Zynq UltraScale+ and Versal families, all of which integrate INA226
//! sensors — the attack surface AmpereBleed exploits. This module encodes
//! that catalog verbatim so the `table1_boards` bench can regenerate it.

use std::fmt;

use crate::{PowerDomain, VoltageBand};

/// FPGA device family of a board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpgaFamily {
    /// Xilinx Zynq UltraScale+ MPSoC family.
    ZynqUltraScalePlus,
    /// Xilinx/AMD Versal ACAP family.
    Versal,
}

impl fmt::Display for FpgaFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpgaFamily::ZynqUltraScalePlus => f.write_str("Zynq UltraScale+"),
            FpgaFamily::Versal => f.write_str("Versal"),
        }
    }
}

/// ARM CPU cluster integrated on a board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuModel {
    /// Quad-core ARM Cortex-A53 (Zynq UltraScale+).
    CortexA53,
    /// Dual-core ARM Cortex-A72 (Versal).
    CortexA72,
}

impl fmt::Display for CpuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuModel::CortexA53 => f.write_str("Cortex-A53"),
            CpuModel::CortexA72 => f.write_str("Cortex-A72"),
        }
    }
}

/// One row of the Table I board survey.
///
/// # Examples
///
/// ```
/// use zynq_soc::board::BoardSpec;
///
/// let b = BoardSpec::zcu102();
/// assert_eq!(b.name, "ZCU102");
/// assert_eq!(b.ina_sensor_count, 18);
/// assert!(b.fpga_voltage_band.contains(0.85));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BoardSpec {
    /// Marketing name, e.g. "ZCU102".
    pub name: &'static str,
    /// FPGA device family.
    pub family: FpgaFamily,
    /// Regulated FPGA core voltage band (the stabilizer's guarantee).
    pub fpga_voltage_band: VoltageBand,
    /// CPU cluster model.
    pub cpu: CpuModel,
    /// DRAM capacity in gigabytes.
    pub dram_gb: u32,
    /// Number of INA226 sensors integrated on the board.
    pub ina_sensor_count: u32,
    /// List price in USD at the time of the survey.
    pub price_usd: u32,
    /// Fabric clock of the programmable logic in MHz (experimental machine
    /// description in Section IV; 300 MHz on the ZCU102 testbed).
    pub fabric_clock_mhz: u32,
    /// CPU base frequency in MHz.
    pub cpu_clock_mhz: u32,
}

/// Builds one catalog row in const context.
const fn spec(
    name: &'static str,
    family: FpgaFamily,
    band: VoltageBand,
    cpu: CpuModel,
    dram_gb: u32,
    ina_sensor_count: u32,
    price_usd: u32,
) -> BoardSpec {
    BoardSpec {
        name,
        family,
        fpga_voltage_band: band,
        cpu,
        dram_gb,
        ina_sensor_count,
        price_usd,
        fabric_clock_mhz: 300,
        cpu_clock_mhz: match cpu {
            CpuModel::CortexA53 => 1_200,
            CpuModel::CortexA72 => 1_700,
        },
    }
}

impl BoardSpec {
    /// The paper's experimental machine as a const: Xilinx ZCU102 (4x
    /// Cortex-A53 @ 1200 MHz, fabric @ 300 MHz, 18 INA226 sensors).
    pub const ZCU102: BoardSpec = spec(
        "ZCU102",
        FpgaFamily::ZynqUltraScalePlus,
        VoltageBand::ZYNQ_ULTRASCALE_PLUS,
        CpuModel::CortexA53,
        4,
        18,
        3_234,
    );

    /// The full Table I survey (8 boards, both families) as a const table:
    /// board-farm re-imaging constructs a platform per campaign run, so
    /// spec lookup must cost nothing.
    pub const CATALOG: [BoardSpec; 8] = [
        BoardSpec::ZCU102,
        spec(
            "ZCU111",
            FpgaFamily::ZynqUltraScalePlus,
            VoltageBand::ZYNQ_ULTRASCALE_PLUS,
            CpuModel::CortexA53,
            4,
            14,
            14_995,
        ),
        spec(
            "ZCU216",
            FpgaFamily::ZynqUltraScalePlus,
            VoltageBand::ZYNQ_ULTRASCALE_PLUS,
            CpuModel::CortexA53,
            4,
            14,
            16_995,
        ),
        spec(
            "ZCU1285",
            FpgaFamily::ZynqUltraScalePlus,
            VoltageBand::ZYNQ_ULTRASCALE_PLUS,
            CpuModel::CortexA53,
            8,
            21,
            32_394,
        ),
        spec(
            "VEK280",
            FpgaFamily::Versal,
            VoltageBand::VERSAL,
            CpuModel::CortexA72,
            12,
            20,
            6_995,
        ),
        spec(
            "VCK190",
            FpgaFamily::Versal,
            VoltageBand::VERSAL,
            CpuModel::CortexA72,
            8,
            17,
            13_195,
        ),
        spec(
            "VHK158",
            FpgaFamily::Versal,
            VoltageBand::VERSAL,
            CpuModel::CortexA72,
            32,
            22,
            14_995,
        ),
        spec(
            "VPK180",
            FpgaFamily::Versal,
            VoltageBand::VERSAL,
            CpuModel::CortexA72,
            12,
            19,
            17_995,
        ),
    ];

    /// The paper's experimental machine (a copy of [`BoardSpec::ZCU102`]).
    pub fn zcu102() -> Self {
        BoardSpec::ZCU102
    }

    /// The full Table I survey (8 boards, both families).
    pub fn catalog() -> &'static [BoardSpec] {
        &Self::CATALOG
    }

    /// Looks a board up by name (case-insensitive).
    pub fn by_name(name: &str) -> Option<BoardSpec> {
        Self::CATALOG
            .iter()
            .find(|b| b.name.eq_ignore_ascii_case(name))
            .cloned()
    }

    /// The "sensitive sensors" of Table II: INA226 monitors whose hwmon
    /// nodes are readable without privileges and observe security-relevant
    /// domains. On the ZCU102 these are 4 of the 18 on-board sensors.
    /// Returns a fixed-size array — no allocation on the per-board
    /// construction path.
    pub fn sensitive_sensors(&self) -> [SensorSpec; 4] {
        PowerDomain::ALL.map(|domain| SensorSpec {
            designator: domain.ina226_designator(),
            domain,
            // Rail-appropriate shunt values; the FPGA rail carries the
            // largest current and uses the smallest shunt.
            shunt_milliohm: match domain {
                PowerDomain::FpgaLogic => 0.5,
                PowerDomain::Ddr => 1.0,
                PowerDomain::FullPowerCpu => 2.0,
                PowerDomain::LowPowerCpu => 5.0,
            },
        })
    }
}

/// Static description of one INA226 monitoring point on a board.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorSpec {
    /// Board designator (e.g. "ina226_u79").
    pub designator: &'static str,
    /// Monitored power domain.
    pub domain: PowerDomain,
    /// Shunt resistor value in milliohms.
    pub shunt_milliohm: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table_one() {
        let boards = BoardSpec::catalog();
        assert_eq!(boards.len(), 8);
        let counts: Vec<u32> = boards.iter().map(|b| b.ina_sensor_count).collect();
        assert_eq!(counts, vec![18, 14, 14, 21, 20, 17, 22, 19]);
        let zup = boards
            .iter()
            .filter(|b| b.family == FpgaFamily::ZynqUltraScalePlus)
            .count();
        assert_eq!(zup, 4);
        for b in boards {
            match b.family {
                FpgaFamily::ZynqUltraScalePlus => {
                    assert_eq!(b.cpu, CpuModel::CortexA53);
                    assert_eq!(b.fpga_voltage_band, VoltageBand::ZYNQ_ULTRASCALE_PLUS);
                }
                FpgaFamily::Versal => {
                    assert_eq!(b.cpu, CpuModel::CortexA72);
                    assert_eq!(b.fpga_voltage_band, VoltageBand::VERSAL);
                }
            }
        }
    }

    #[test]
    fn every_board_has_ina_sensors() {
        for b in BoardSpec::catalog() {
            assert!(b.ina_sensor_count >= 14, "{} lacks sensors", b.name);
        }
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert_eq!(BoardSpec::by_name("zcu102").unwrap().name, "ZCU102");
        assert_eq!(BoardSpec::by_name("VCK190").unwrap().price_usd, 13_195);
        assert!(BoardSpec::by_name("nonexistent").is_none());
    }

    #[test]
    fn zcu102_matches_experimental_machine() {
        let b = BoardSpec::zcu102();
        assert_eq!(b.cpu_clock_mhz, 1_200);
        assert_eq!(b.fabric_clock_mhz, 300);
        assert_eq!(b.dram_gb, 4);
    }

    #[test]
    fn sensitive_sensors_match_table_two() {
        let sensors = BoardSpec::zcu102().sensitive_sensors();
        assert_eq!(sensors.len(), 4);
        let designators: Vec<&str> = sensors.iter().map(|s| s.designator).collect();
        assert_eq!(
            designators,
            vec!["ina226_u76", "ina226_u77", "ina226_u79", "ina226_u93"]
        );
        for s in &sensors {
            assert!(s.shunt_milliohm > 0.0);
        }
    }

    #[test]
    fn family_and_cpu_display() {
        assert_eq!(
            FpgaFamily::ZynqUltraScalePlus.to_string(),
            "Zynq UltraScale+"
        );
        assert_eq!(CpuModel::CortexA72.to_string(), "Cortex-A72");
    }
}
