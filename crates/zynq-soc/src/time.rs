use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Simulation timestamp with nanosecond resolution.
///
/// All platform components (loads, sensors, the hwmon update clock, the
/// attacker's sampling loop) share this clock, so a capture is fully
/// determined by its start time and seed — there is no wall-clock
/// dependency anywhere in the simulation.
///
/// # Examples
///
/// ```
/// use zynq_soc::SimTime;
///
/// let t = SimTime::from_ms(35);
/// assert_eq!(t.as_nanos(), 35_000_000);
/// assert_eq!(t + SimTime::from_us(500), SimTime::from_us(35_500));
/// assert!((t.as_secs_f64() - 0.035).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a timestamp from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a timestamp from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a timestamp from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a timestamp from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates a timestamp from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "time must be finite and non-negative"
        );
        SimTime((s * 1e9).round() as u64)
    }

    /// Value in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Value in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Value in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked addition, `None` on overflow.
    pub const fn checked_add(self, other: SimTime) -> Option<SimTime> {
        match self.0.checked_add(other.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self` (u64 underflow). Use
    /// [`SimTime::saturating_sub`] when the ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_round_trip() {
        assert_eq!(SimTime::from_secs(2).as_millis(), 2000);
        assert_eq!(SimTime::from_ms(35).as_micros(), 35_000);
        assert_eq!(SimTime::from_us(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_secs_f64(0.001), SimTime::from_ms(1));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ms(10);
        let b = SimTime::from_ms(3);
        assert_eq!(a + b, SimTime::from_ms(13));
        assert_eq!(a - b, SimTime::from_ms(7));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_ms(13));
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(
            SimTime::from_nanos(u64::MAX).checked_add(SimTime::from_nanos(1)),
            None
        );
        assert_eq!(
            SimTime::from_nanos(1).checked_add(SimTime::from_nanos(2)),
            Some(SimTime::from_nanos(3))
        );
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(SimTime::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimTime::from_us(5).to_string(), "5.000us");
        assert_eq!(SimTime::from_ms(5).to_string(), "5.000ms");
        assert_eq!(SimTime::from_secs(5).to_string(), "5.000000s");
    }

    sim_rt::prop_check! {
        fn ordering_consistent_with_nanos(a in 0u64..1u64 << 60, b in 0u64..1u64 << 60) {
            let (ta, tb) = (SimTime::from_nanos(a), SimTime::from_nanos(b));
            assert_eq!(ta < tb, a < b);
            assert_eq!(ta == tb, a == b);
        }

        fn secs_f64_round_trip(ms in 0u64..10_000_000) {
            let t = SimTime::from_ms(ms);
            let back = SimTime::from_secs_f64(t.as_secs_f64());
            // f64 has 52 bits of mantissa; millisecond inputs survive exactly.
            assert_eq!(back, t);
        }
    }
}
