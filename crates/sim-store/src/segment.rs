//! The JSONL-backed persistent tier: append-only segment files plus a
//! rebuild-on-open index.
//!
//! Each record is one JSON line carrying its own CRC-32, so the open
//! scan can tell a well-formed record from the torn tail a crash leaves
//! behind. Because the files are append-only, everything *before* the
//! first bad record is trustworthy and everything after it is not: on a
//! checksum or parse failure the segment is truncated at that byte
//! offset and the surviving prefix is served. Lost entries are only a
//! cache miss — the simulator can always recompute them.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use sim_rt::json;
use sim_rt::ser::Value;

use crate::digest::{crc32, Digest};
use crate::StoreError;

/// Location of one record inside the segment files.
#[derive(Debug, Clone, Copy)]
struct Loc {
    segment: u32,
    offset: u64,
    len: u32,
}

/// What the open scan found (and repaired).
#[derive(Debug, Default, Clone, Copy)]
pub struct OpenReport {
    /// Records indexed.
    pub entries: usize,
    /// Segment files present after recovery.
    pub segments: u32,
    /// Torn/corrupt tails truncated away.
    pub recovered_truncated: u64,
}

/// The persistent tier over one store directory.
#[derive(Debug)]
pub struct Persist {
    dir: PathBuf,
    index: BTreeMap<Digest, Loc>,
    live: u32,
    live_file: File,
    live_bytes: u64,
    segment_max: u64,
}

fn segment_name(id: u32) -> String {
    format!("seg-{id:08}.jsonl")
}

fn io_err(context: &str, path: &Path, err: &std::io::Error) -> StoreError {
    StoreError::new(format!("{context} {}: {err}", path.display()))
}

/// The checksummed portion of a record: everything the CRC must bind
/// together, joined on a unit separator that cannot appear in JSON.
fn crc_preimage(digest: &Digest, verb: &str, seed: u64, result: &str) -> String {
    format!("{}\u{1f}{verb}\u{1f}{seed}\u{1f}{result}", digest.hex())
}

/// Renders one record line (without the trailing newline).
fn encode_record(digest: &Digest, verb: &str, seed: u64, result: &str) -> String {
    let crc = crc32(crc_preimage(digest, verb, seed, result).as_bytes());
    Value::Object(vec![
        ("crc".into(), Value::from(crc)),
        ("digest".into(), Value::Str(digest.hex())),
        ("verb".into(), Value::Str(verb.to_string())),
        // u64 seeds travel as their two's-complement i64, mirroring the
        // serve wire protocol.
        ("seed".into(), Value::Int(seed as i64)),
        ("result".into(), Value::Str(result.to_string())),
    ])
    .to_json()
}

/// Parsed record fields.
struct DecodedRecord {
    digest: Digest,
    result: String,
}

/// Decodes and CRC-verifies one record line.
fn decode_record(line: &str) -> Option<DecodedRecord> {
    let v = json::parse(line).ok()?;
    let crc = u32::try_from(v.get("crc")?.as_u64()?).ok()?;
    let digest = Digest::from_hex(v.get("digest")?.as_str()?)?;
    let verb = v.get("verb")?.as_str()?;
    let seed = v.get("seed")?.as_i64()? as u64;
    let result = v.get("result")?.as_str()?;
    if crc32(crc_preimage(&digest, verb, seed, result).as_bytes()) != crc {
        return None;
    }
    Some(DecodedRecord {
        digest,
        result: result.to_string(),
    })
}

impl Persist {
    /// Opens (creating if needed) the persistent tier in `dir`,
    /// rebuilding the index from the segment files and truncating any
    /// torn or corrupt suffix.
    ///
    /// # Errors
    ///
    /// Returns an error when the directory cannot be created or scanned,
    /// or the live segment cannot be opened for append. Damaged segment
    /// *content* is never an error — it is recovered by truncation and
    /// reported in [`OpenReport::recovered_truncated`].
    pub fn open(dir: &Path, segment_max: u64) -> Result<(Persist, OpenReport), StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("creating store dir", dir, &e))?;
        let mut ids: Vec<u32> = Vec::new();
        let entries = std::fs::read_dir(dir).map_err(|e| io_err("scanning store dir", dir, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("scanning store dir", dir, &e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = name
                .strip_prefix("seg-")
                .and_then(|rest| rest.strip_suffix(".jsonl"))
                .and_then(|digits| digits.parse::<u32>().ok())
            {
                ids.push(id);
            }
        }
        ids.sort_unstable();

        let mut report = OpenReport::default();
        let mut index = BTreeMap::new();
        let mut live_bytes = 0u64;
        for &id in &ids {
            let path = dir.join(segment_name(id));
            let bytes = std::fs::read(&path).map_err(|e| io_err("reading segment", &path, &e))?;
            let (scanned, keep) = scan_segment(id, &bytes, &mut index);
            if keep < bytes.len() as u64 {
                let file = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| io_err("truncating segment", &path, &e))?;
                file.set_len(keep)
                    .map_err(|e| io_err("truncating segment", &path, &e))?;
                report.recovered_truncated += 1;
            }
            report.entries += scanned;
            live_bytes = keep;
        }
        report.segments = ids.len() as u32;
        report.entries = index.len();

        let live = ids.last().copied().unwrap_or(1);
        let live_path = dir.join(segment_name(live));
        let live_file = OpenOptions::new()
            .append(true)
            .create(true)
            .open(&live_path)
            .map_err(|e| io_err("opening live segment", &live_path, &e))?;
        if ids.is_empty() {
            report.segments = 1;
            live_bytes = 0;
        }
        Ok((
            Persist {
                dir: dir.to_path_buf(),
                index,
                live,
                live_file,
                live_bytes,
                segment_max: segment_max.max(1),
            },
            report,
        ))
    }

    /// Number of indexed records.
    pub fn entries(&self) -> usize {
        self.index.len()
    }

    /// Number of segment files (highest id).
    pub fn segments(&self) -> u32 {
        self.live
    }

    /// Whether `digest` is already persisted.
    pub fn contains(&self, digest: &Digest) -> bool {
        self.index.contains_key(digest)
    }

    /// Reads a record's result JSON back from its segment file.
    ///
    /// # Errors
    ///
    /// Returns an error when the segment file cannot be read or the
    /// record on disk no longer checks out (out-of-band damage after
    /// open); `Ok(None)` means the digest was simply never stored.
    pub fn get(&self, digest: &Digest) -> Result<Option<String>, StoreError> {
        let Some(loc) = self.index.get(digest).copied() else {
            return Ok(None);
        };
        let path = self.dir.join(segment_name(loc.segment));
        let mut file = File::open(&path).map_err(|e| io_err("opening segment", &path, &e))?;
        file.seek(SeekFrom::Start(loc.offset))
            .map_err(|e| io_err("seeking segment", &path, &e))?;
        let mut buf = vec![0u8; loc.len as usize];
        file.read_exact(&mut buf)
            .map_err(|e| io_err("reading record", &path, &e))?;
        let line = std::str::from_utf8(&buf)
            .map_err(|_| StoreError::new(format!("record at {} is not UTF-8", path.display())))?;
        let rec = decode_record(line).ok_or_else(|| {
            StoreError::new(format!(
                "record for {} failed its CRC on re-read",
                digest.hex()
            ))
        })?;
        Ok(Some(rec.result))
    }

    /// Appends a record, rolling to a fresh segment when the live one is
    /// full. Returns `false` (without writing) when the digest is
    /// already persisted.
    ///
    /// # Errors
    ///
    /// Returns an error when the record cannot be written; the index is
    /// only updated after a successful write+flush, so a failed append
    /// never serves a phantom entry.
    pub fn append(
        &mut self,
        digest: &Digest,
        verb: &str,
        seed: u64,
        result: &str,
    ) -> Result<bool, StoreError> {
        if self.index.contains_key(digest) {
            return Ok(false);
        }
        let mut line = encode_record(digest, verb, seed, result);
        line.push('\n');
        if self.live_bytes > 0 && self.live_bytes + line.len() as u64 > self.segment_max {
            let next = self.live + 1;
            let path = self.dir.join(segment_name(next));
            let file = OpenOptions::new()
                .append(true)
                .create(true)
                .open(&path)
                .map_err(|e| io_err("rolling to segment", &path, &e))?;
            self.live = next;
            self.live_file = file;
            self.live_bytes = 0;
        }
        let offset = self.live_bytes;
        let path = self.dir.join(segment_name(self.live));
        self.live_file
            .write_all(line.as_bytes())
            .map_err(|e| io_err("appending record", &path, &e))?;
        self.live_file
            .flush()
            .map_err(|e| io_err("flushing segment", &path, &e))?;
        self.live_bytes += line.len() as u64;
        self.index.insert(
            *digest,
            Loc {
                segment: self.live,
                offset,
                len: (line.len() - 1) as u32,
            },
        );
        Ok(true)
    }
}

/// Scans one segment's bytes, indexing valid records. Returns the count
/// of records indexed from this segment and the byte length of the
/// trustworthy prefix (everything past it must be truncated).
fn scan_segment(id: u32, bytes: &[u8], index: &mut BTreeMap<Digest, Loc>) -> (usize, u64) {
    let mut offset = 0usize;
    let mut records = 0usize;
    while offset < bytes.len() {
        let rest = match bytes.get(offset..) {
            Some(rest) => rest,
            None => break,
        };
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            // Torn tail: a final line the crash never finished.
            return (records, offset as u64);
        };
        let line = match rest.get(..nl).map(std::str::from_utf8) {
            Some(Ok(line)) => line,
            // Invalid UTF-8 can only come from a torn or corrupt write;
            // nothing after it is trustworthy in an append-only file.
            _ => return (records, offset as u64),
        };
        let Some(rec) = decode_record(line) else {
            return (records, offset as u64);
        };
        index.insert(
            rec.digest,
            Loc {
                segment: id,
                offset: offset as u64,
                len: nl as u32,
            },
        );
        records += 1;
        offset += nl + 1;
    }
    (records, offset as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sim-store-seg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_reopen_get_round_trips() {
        let dir = tmpdir("roundtrip");
        let d = Digest::of_str("k1");
        {
            let (mut p, report) = Persist::open(&dir, 1 << 20).unwrap();
            assert_eq!(report.entries, 0);
            assert!(p.append(&d, "quickstart", 7, r#"{"ok":true}"#).unwrap());
            assert!(!p.append(&d, "quickstart", 7, r#"{"ok":true}"#).unwrap());
            assert_eq!(p.get(&d).unwrap().as_deref(), Some(r#"{"ok":true}"#));
        }
        let (p, report) = Persist::open(&dir, 1 << 20).unwrap();
        assert_eq!(report.entries, 1);
        assert_eq!(report.recovered_truncated, 0);
        assert_eq!(p.get(&d).unwrap().as_deref(), Some(r#"{"ok":true}"#));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_roll_at_capacity() {
        let dir = tmpdir("roll");
        let (mut p, _) = Persist::open(&dir, 128).unwrap();
        for i in 0..8u32 {
            let d = Digest::of_str(&format!("roll-{i}"));
            p.append(&d, "ping", u64::from(i), r#"{"pong":true}"#)
                .unwrap();
        }
        assert!(p.segments() > 1, "small segment_max must force a roll");
        for i in 0..8u32 {
            let d = Digest::of_str(&format!("roll-{i}"));
            assert!(p.get(&d).unwrap().is_some(), "record {i} lost in roll");
        }
        let (p2, report) = Persist::open(&dir, 128).unwrap();
        assert_eq!(report.entries, 8);
        assert_eq!(p2.entries(), 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_trusted() {
        let dir = tmpdir("torn");
        let d1 = Digest::of_str("good");
        let d2 = Digest::of_str("casualty");
        {
            let (mut p, _) = Persist::open(&dir, 1 << 20).unwrap();
            p.append(&d1, "ping", 1, r#"{"pong":1}"#).unwrap();
            p.append(&d2, "ping", 2, r#"{"pong":2}"#).unwrap();
        }
        // Chop the final record mid-line, as a crash would.
        let path = dir.join(segment_name(1));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (p, report) = Persist::open(&dir, 1 << 20).unwrap();
        assert_eq!(report.recovered_truncated, 1);
        assert_eq!(report.entries, 1);
        assert_eq!(p.get(&d1).unwrap().as_deref(), Some(r#"{"pong":1}"#));
        assert_eq!(p.get(&d2).unwrap(), None);
        // The truncated store keeps accepting appends.
        let (mut p2, _) = Persist::open(&dir, 1 << 20).unwrap();
        assert!(p2.append(&d2, "ping", 2, r#"{"pong":2}"#).unwrap());
        assert_eq!(p2.get(&d2).unwrap().as_deref(), Some(r#"{"pong":2}"#));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_crc_drops_the_suffix() {
        let dir = tmpdir("crc");
        let keys: Vec<Digest> = (0..3).map(|i| Digest::of_str(&format!("c{i}"))).collect();
        {
            let (mut p, _) = Persist::open(&dir, 1 << 20).unwrap();
            for (i, d) in keys.iter().enumerate() {
                p.append(d, "ping", i as u64, r#"{"pong":0}"#).unwrap();
            }
        }
        // Flip one byte inside the *second* record's payload.
        let path = dir.join(segment_name(1));
        let mut bytes = std::fs::read(&path).unwrap();
        let first_nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        let target = first_nl + 20;
        bytes[target] = bytes[target].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();
        let (p, report) = Persist::open(&dir, 1 << 20).unwrap();
        // Record 0 survives; 1 and 2 are behind the corruption horizon.
        assert_eq!(report.recovered_truncated, 1);
        assert!(p.get(&keys[0]).unwrap().is_some());
        assert!(p.get(&keys[1]).unwrap().is_none());
        assert!(p.get(&keys[2]).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
