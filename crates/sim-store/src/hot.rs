//! The bounded in-memory hot tier: result JSON keyed by digest, sharded
//! by digest prefix so concurrent serve shards don't contend on one
//! lock, with logical-tick LRU eviction inside each shard.
//!
//! Each shard wraps a `BTreeMap` behind a typed API (the storage-wrapper
//! idiom): callers never see the map, only `get`/`insert`, and every
//! mutation keeps the shard's byte accounting and LRU clock consistent.
//! The clock is a per-shard logical tick — not wall time — so eviction
//! order is a pure function of the operation sequence and stays
//! reproducible under test.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::digest::Digest;

/// Fixed per-entry overhead charged on top of the JSON payload (key,
/// tick, map node) so capacity accounting tracks real footprint rather
/// than string length alone.
const ENTRY_OVERHEAD: usize = 96;

#[derive(Debug)]
struct Entry {
    json: Arc<str>,
    tick: u64,
}

#[derive(Debug, Default)]
struct Shard {
    entries: BTreeMap<Digest, Entry>,
    tick: u64,
    bytes: usize,
}

impl Shard {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Evicts least-recently-used entries until `bytes <= cap`. Returns
    /// `(evicted_entries, freed_bytes)`.
    fn evict_to(&mut self, cap: usize) -> (u64, usize) {
        let mut evicted = 0u64;
        let mut freed = 0usize;
        while self.bytes > cap {
            // The map is bounded by `cap`, so a linear min-tick scan is
            // cheap; BTreeMap order makes tie-breaks deterministic
            // (ticks are unique per shard, so ties cannot occur anyway).
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(d, _)| *d);
            let Some(victim) = victim else { break };
            if let Some(entry) = self.entries.remove(&victim) {
                let cost = entry.json.len() + ENTRY_OVERHEAD;
                self.bytes = self.bytes.saturating_sub(cost);
                evicted += 1;
                freed += cost;
            }
        }
        (evicted, freed)
    }
}

/// The sharded hot tier. `capacity_bytes` is a whole-tier budget split
/// evenly across shards.
#[derive(Debug)]
pub struct HotTier {
    shards: Vec<Mutex<Shard>>,
    shard_cap: usize,
}

impl HotTier {
    /// Creates a tier of `shards` shards sharing `capacity_bytes`.
    pub fn new(capacity_bytes: usize, shards: usize) -> HotTier {
        let shards = shards.max(1);
        let shard_cap = (capacity_bytes / shards).max(1);
        HotTier {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_cap,
        }
    }

    fn shard(&self, digest: &Digest) -> &Mutex<Shard> {
        let idx = digest.shard(self.shards.len());
        self.shards
            .get(idx)
            .or_else(|| self.shards.first())
            .unwrap_or_else(|| unreachable!("HotTier::new guarantees at least one shard"))
    }

    /// Looks up a digest, refreshing its LRU position on hit.
    pub fn get(&self, digest: &Digest) -> Option<Arc<str>> {
        let mut shard = self
            .shard(digest)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let tick = shard.touch();
        let entry = shard.entries.get_mut(digest)?;
        entry.tick = tick;
        Some(Arc::clone(&entry.json))
    }

    /// Inserts (or refreshes) a digest. Returns `(evicted_entries,
    /// freed_bytes)` from any LRU eviction the insert forced.
    pub fn insert(&self, digest: Digest, json: Arc<str>) -> (u64, usize) {
        let cost = json.len() + ENTRY_OVERHEAD;
        let mut shard = self
            .shard(&digest)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let tick = shard.touch();
        if let Some(old) = shard.entries.insert(digest, Entry { json, tick }) {
            shard.bytes = shard.bytes.saturating_sub(old.json.len() + ENTRY_OVERHEAD);
        }
        shard.bytes += cost;
        let cap = self.shard_cap;
        shard.evict_to(cap)
    }

    /// Total resident entries across all shards.
    pub fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .entries
                    .len()
            })
            .sum()
    }

    /// Total resident bytes (payload + per-entry overhead) across all
    /// shards.
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .bytes
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u32) -> Digest {
        Digest::of_str(&format!("hot-test-{i}"))
    }

    #[test]
    fn get_returns_inserted_payload() {
        let tier = HotTier::new(1 << 20, 4);
        tier.insert(d(1), Arc::from("{\"x\":1}"));
        assert_eq!(tier.get(&d(1)).as_deref(), Some("{\"x\":1}"));
        assert!(tier.get(&d(2)).is_none());
        assert_eq!(tier.entries(), 1);
    }

    #[test]
    fn eviction_is_lru_and_bounded() {
        // One shard so the LRU order is directly observable.
        let payload = "x".repeat(200);
        let tier = HotTier::new(3 * (200 + ENTRY_OVERHEAD), 1);
        tier.insert(d(1), Arc::from(payload.as_str()));
        tier.insert(d(2), Arc::from(payload.as_str()));
        tier.insert(d(3), Arc::from(payload.as_str()));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(tier.get(&d(1)).is_some());
        let (evicted, freed) = tier.insert(d(4), Arc::from(payload.as_str()));
        assert_eq!(evicted, 1);
        assert_eq!(freed, 200 + ENTRY_OVERHEAD);
        assert!(tier.get(&d(2)).is_none(), "LRU entry should be evicted");
        assert!(tier.get(&d(1)).is_some());
        assert!(tier.get(&d(3)).is_some());
        assert!(tier.get(&d(4)).is_some());
        assert!(tier.bytes() <= 3 * (200 + ENTRY_OVERHEAD));
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let tier = HotTier::new(1 << 20, 2);
        tier.insert(d(9), Arc::from("aa"));
        let before = tier.bytes();
        tier.insert(d(9), Arc::from("bb"));
        assert_eq!(tier.bytes(), before);
        assert_eq!(tier.entries(), 1);
        assert_eq!(tier.get(&d(9)).as_deref(), Some("bb"));
    }
}
