//! `sim-store` — content-addressed, append-only result store for the
//! AmpereBleed campaign farm.
//!
//! Every response the farm produces is a deterministic function of
//! `(verb, seed, config)` — the workspace determinism contract (see
//! DESIGN.md) — so a result computed once is a result computed forever. This crate exploits that
//! end-to-end: results are addressed by a 256-bit [`Digest`] over a
//! canonical preimage of the request triple, kept in a bounded sharded
//! in-memory hot tier ([`hot::HotTier`]) backed by CRC-framed JSONL
//! segment files ([`segment::Persist`]), and long multi-point sweeps
//! persist per-point progress through [`Checkpoint`] so a drain resumes
//! instead of restarting.
//!
//! Canonicalization matters: the digest preimage uses
//! [`sim_rt::ser::Value::to_canonical_json`] (sorted keys, `-0.0`
//! normalized, NaN-free), so two configs that differ only in field
//! order address the same record. The preimage also embeds
//! [`STORE_VERSION`]; bumping it when simulation output changes
//! invalidates every stale address at once without touching the files.
//!
//! The store is a cache, never an authority: any record it loses —
//! torn tail, corrupt byte, evicted entry — is only a recompute.
//!
//! # Examples
//!
//! ```
//! use sim_rt::ser::Value;
//! use sim_store::Store;
//!
//! let store = Store::in_memory();
//! let config = Value::Object(vec![("depth".into(), Value::Int(3))]);
//! let key = Store::key("quickstart", 7, &config);
//! assert!(store.get(&key).is_none());
//! store.insert(&key, "quickstart", 7, "{\"top1\":0.99}");
//! assert_eq!(store.get(&key).as_deref(), Some("{\"top1\":0.99}"));
//! ```

pub mod checkpoint;
pub mod digest;
pub mod hot;
pub mod segment;

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sim_rt::ser::Value;

pub use checkpoint::Checkpoint;
pub use digest::Digest;
use hot::HotTier;
use segment::Persist;

/// Version stamped into every digest preimage. Bump whenever simulation
/// output changes for the same `(verb, seed, config)` — every old
/// address goes stale at once, and the files need no migration because
/// unreferenced records are simply never read again.
pub const STORE_VERSION: u32 = 1;

/// A store failure: directory, file, or record-level I/O trouble.
/// Always recoverable by recomputation — the simulator remains the
/// source of truth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError {
    /// Human-readable description.
    pub message: String,
}

impl StoreError {
    /// Wraps a message.
    pub fn new(message: impl Into<String>) -> StoreError {
        StoreError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "store error: {}", self.message)
    }
}

impl std::error::Error for StoreError {}

/// Store tuning knobs.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory for the persistent tier; `None` keeps the store
    /// memory-only.
    pub dir: Option<PathBuf>,
    /// Whole-tier hot-cache budget in bytes.
    pub hot_capacity_bytes: usize,
    /// Number of hot-tier shards (locks).
    pub shards: usize,
    /// Segment file roll-over threshold in bytes.
    pub segment_max_bytes: u64,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            dir: None,
            hot_capacity_bytes: 64 << 20,
            shards: 16,
            segment_max_bytes: 8 << 20,
        }
    }
}

#[derive(Debug, Default)]
struct StatCells {
    hits: AtomicU64,
    hits_persist: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    recovered_truncated: AtomicU64,
    io_errors: AtomicU64,
}

/// A point-in-time snapshot of one store's counters and occupancy,
/// separate from the process-global `obs` metrics so several stores in
/// one process (tests) stay distinguishable.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// Lookups served (hot + persistent).
    pub hits: u64,
    /// The subset of hits served by the persistent tier.
    pub hits_persist: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Results inserted.
    pub inserts: u64,
    /// Hot-tier entries evicted by the byte budget.
    pub evictions: u64,
    /// Torn/corrupt tails truncated on open.
    pub recovered_truncated: u64,
    /// Persistence failures absorbed (insert kept going).
    pub io_errors: u64,
    /// Hot-tier resident entries.
    pub hot_entries: usize,
    /// Hot-tier resident bytes.
    pub hot_bytes: usize,
    /// Persistent-tier indexed records.
    pub persist_entries: usize,
    /// Persistent-tier segment files.
    pub segments: u32,
}

impl StoreStats {
    /// The snapshot as a JSON object for the `stats` serve verb.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("hits".into(), Value::from(self.hits)),
            ("hits_persist".into(), Value::from(self.hits_persist)),
            ("misses".into(), Value::from(self.misses)),
            ("inserts".into(), Value::from(self.inserts)),
            ("evictions".into(), Value::from(self.evictions)),
            (
                "recovered_truncated".into(),
                Value::from(self.recovered_truncated),
            ),
            ("io_errors".into(), Value::from(self.io_errors)),
            ("hot_entries".into(), Value::from(self.hot_entries)),
            ("hot_bytes".into(), Value::from(self.hot_bytes)),
            ("persist_entries".into(), Value::from(self.persist_entries)),
            ("segments".into(), Value::from(self.segments)),
        ])
    }
}

/// The two-tier content-addressed result store.
#[derive(Debug)]
pub struct Store {
    hot: HotTier,
    persist: Option<Mutex<Persist>>,
    stats: StatCells,
}

impl Store {
    /// Opens a store per `cfg`, scanning (and if necessary repairing)
    /// the persistent tier when a directory is configured.
    ///
    /// # Errors
    ///
    /// Propagates persistent-tier open failures (unreadable directory,
    /// uncreatable segment). Damaged record content is repaired, not
    /// reported.
    pub fn open(cfg: StoreConfig) -> Result<Store, StoreError> {
        let _span = obs::trace::span("store", "open");
        let hot = HotTier::new(cfg.hot_capacity_bytes, cfg.shards);
        let stats = StatCells::default();
        let persist = match &cfg.dir {
            None => None,
            Some(dir) => {
                let (persist, report) = Persist::open(dir, cfg.segment_max_bytes)?;
                stats
                    .recovered_truncated
                    .store(report.recovered_truncated, Ordering::Relaxed);
                if report.recovered_truncated > 0 {
                    obs::counter!("store.recovered_truncated").add(report.recovered_truncated);
                }
                obs::gauge!("store.persist.entries").set(report.entries as f64);
                obs::gauge!("store.segments").set(f64::from(report.segments));
                Some(Mutex::new(persist))
            }
        };
        Ok(Store {
            hot,
            persist,
            stats,
        })
    }

    /// A memory-only store with default tuning.
    pub fn in_memory() -> Store {
        // Default config has no dir, so open cannot fail.
        Store::open(StoreConfig::default()).unwrap_or_else(|_| Store {
            hot: HotTier::new(64 << 20, 16),
            persist: None,
            stats: StatCells::default(),
        })
    }

    /// Whether this store has a persistent tier.
    pub fn persistent(&self) -> bool {
        self.persist.is_some()
    }

    /// The content address of a request triple: a [`Digest`] over
    /// `amperebleed-store:v{STORE_VERSION}`, the verb, the seed, and the
    /// canonical JSON of the config.
    pub fn key(verb: &str, seed: u64, config: &Value) -> Digest {
        Digest::of_str(&format!(
            "amperebleed-store:v{STORE_VERSION}\u{1f}{verb}\u{1f}{seed}\u{1f}{}",
            config.to_canonical_json()
        ))
    }

    /// Looks up a result by digest: hot tier first, then the persistent
    /// tier (promoting a persistent hit into the hot tier).
    pub fn get(&self, digest: &Digest) -> Option<Arc<str>> {
        let _span = obs::trace::span("store", "get");
        if let Some(json) = self.hot.get(digest) {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            obs::counter!("store.hits").inc();
            return Some(json);
        }
        if let Some(persist) = &self.persist {
            let read = persist
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .get(digest);
            match read {
                Ok(Some(json)) => {
                    let json: Arc<str> = Arc::from(json.as_str());
                    let (evicted, _) = self.hot.insert(*digest, Arc::clone(&json));
                    self.note_evictions(evicted);
                    self.stats.hits.fetch_add(1, Ordering::Relaxed);
                    self.stats.hits_persist.fetch_add(1, Ordering::Relaxed);
                    obs::counter!("store.hits").inc();
                    obs::counter!("store.hits.persist").inc();
                    self.publish_occupancy();
                    return Some(json);
                }
                Ok(None) => {}
                Err(_) => {
                    self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                    obs::counter!("store.io_errors").inc();
                }
            }
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        obs::counter!("store.misses").inc();
        None
    }

    /// Inserts a computed result. Persistence failures are absorbed and
    /// counted (`store.io_errors`) — a cache must never fail the request
    /// that fed it.
    pub fn insert(&self, digest: &Digest, verb: &str, seed: u64, result_json: &str) {
        let _span = obs::trace::span("store", "insert");
        self.stats.inserts.fetch_add(1, Ordering::Relaxed);
        obs::counter!("store.inserts").inc();
        let (evicted, _) = self.hot.insert(*digest, Arc::from(result_json));
        self.note_evictions(evicted);
        if let Some(persist) = &self.persist {
            let mut persist = persist
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if persist.append(digest, verb, seed, result_json).is_err() {
                self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                obs::counter!("store.io_errors").inc();
            }
            obs::gauge!("store.persist.entries").set(persist.entries() as f64);
            obs::gauge!("store.segments").set(f64::from(persist.segments()));
        }
        self.publish_occupancy();
    }

    /// A snapshot of this store's counters and occupancy.
    pub fn stats(&self) -> StoreStats {
        let (persist_entries, segments) = match &self.persist {
            None => (0, 0),
            Some(p) => {
                let p = p.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                (p.entries(), p.segments())
            }
        };
        StoreStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            hits_persist: self.stats.hits_persist.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            inserts: self.stats.inserts.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            recovered_truncated: self.stats.recovered_truncated.load(Ordering::Relaxed),
            io_errors: self.stats.io_errors.load(Ordering::Relaxed),
            hot_entries: self.hot.entries(),
            hot_bytes: self.hot.bytes(),
            persist_entries,
            segments,
        }
    }

    fn note_evictions(&self, evicted: u64) {
        if evicted > 0 {
            self.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
            obs::counter!("store.evictions").add(evicted);
        }
    }

    fn publish_occupancy(&self) {
        obs::gauge!("store.entries").set(self.hot.entries() as f64);
        obs::gauge!("store.bytes").set(self.hot.bytes() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_ignores_field_order_and_zero_sign() {
        let a = Value::Object(vec![
            ("alpha".into(), Value::Int(1)),
            ("beta".into(), Value::Float(-0.0)),
        ]);
        let b = Value::Object(vec![
            ("beta".into(), Value::Float(0.0)),
            ("alpha".into(), Value::Int(1)),
        ]);
        assert_eq!(Store::key("defend", 3, &a), Store::key("defend", 3, &b));
        assert_ne!(Store::key("defend", 3, &a), Store::key("defend", 4, &a));
        assert_ne!(Store::key("defend", 3, &a), Store::key("covert", 3, &a));
    }

    #[test]
    fn memory_store_round_trips_and_counts() {
        let store = Store::in_memory();
        let cfg = Value::Object(vec![]);
        let key = Store::key("ping", 1, &cfg);
        assert!(store.get(&key).is_none());
        store.insert(&key, "ping", 1, r#"{"pong":true}"#);
        assert_eq!(store.get(&key).as_deref(), Some(r#"{"pong":true}"#));
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.hot_entries, 1);
        assert!(!store.persistent());
    }
}
